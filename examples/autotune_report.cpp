// Auto-tuning walkthrough: tunes a set of workloads on every registry
// device, prints the selected switch points, demonstrates the decoupled
// search's cost, and shows the persistent tuning cache in action — the
// workflow a downstream application would run once at install time.
//
//   ./autotune_report [--cache=/tmp/tda_tuning_cache.txt]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/probes.hpp"
#include "solver/gpu_solver.hpp"
#include "tuning/cache.hpp"
#include "tuning/dynamic_tuner.hpp"
#include "tuning/tuners.hpp"

int main(int argc, char** argv) {
  using namespace tda;
  Cli cli(argc, argv);
  const std::string cache_path =
      cli.get("cache", "/tmp/tda_tuning_cache.txt");

  const solver::Workload workloads[] = {
      {512, 512}, {64, 8192}, {1, 1 << 20}};

  tuning::TuningCache cache;
  const std::size_t preloaded = cache.load(cache_path);
  std::cout << "tuning cache: " << cache_path << " (" << preloaded
            << " records preloaded)\n\n";

  // Micro-benchmark probes: estimate the performance characteristics
  // that cannot be queried (paper §IV-C/D) by timing synthetic kernels.
  {
    TextTable probes("micro-benchmark probe estimates (unqueryable!)");
    probes.set_header({"device", "peak GB/s", "starved GB/s",
                       "inflation saturates at stride", "launch us",
                       "dep penalty"});
    for (const auto& spec : gpusim::device_registry()) {
      gpusim::Device dev(spec);
      auto rep = gpusim::run_probes(dev);
      probes.add_row({spec.name, TextTable::num(rep.peak_bandwidth_gb_s, 1),
                      TextTable::num(rep.starved_bandwidth_gb_s, 1),
                      std::to_string(rep.inflation_saturation_stride),
                      TextTable::num(rep.launch_overhead_us, 1),
                      TextTable::num(rep.dependency_penalty, 1)});
    }
    probes.print(std::cout);
    std::cout << "\n";
  }

  TextTable table("tuned switch points (fp32)");
  table.set_header({"device", "workload", "stage1", "stage3", "thomas",
                    "variant", "evals", "tuned ms", "vs static", "cached"});

  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    for (const auto& w : workloads) {
      WallTimer timer;
      tuning::DynamicTuner<float> tuner(dev, &cache);
      auto r = tuner.tune(w);

      solver::GpuTridiagonalSolver<float> stat_solver(
          dev, tuning::static_switch_points<float>(dev.query()));
      const double t_static = stat_solver.simulate_ms(w);

      table.add_row(
          {spec.name,
           std::to_string(w.num_systems) + "x" +
               std::to_string(w.system_size),
           std::to_string(r.points.stage1_target_systems),
           std::to_string(r.points.stage3_system_size),
           std::to_string(r.points.thomas_switch),
           kernels::to_string(r.points.variant),
           std::to_string(r.evaluations), TextTable::num(r.best_ms, 3),
           TextTable::num(t_static / r.best_ms, 2) + "x",
           r.from_cache ? "hit" : "miss"});
      (void)timer;
    }
  }
  table.print(std::cout);

  if (cache.save(cache_path)) {
    std::cout << "\nsaved " << cache.size() << " records to " << cache_path
              << " — rerun this program to see cache hits.\n";
  }
  return 0;
}
