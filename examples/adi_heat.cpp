// ADI heat-equation solver — the workload class the paper's introduction
// motivates (alternating direction implicit methods solve thousands of
// tridiagonal systems per time step; cf. Sakharnykh's fluid simulation).
//
// Solves u_t = alpha * (u_xx + u_yy) on the unit square with homogeneous
// Dirichlet boundaries using the Peaceman-Rachford ADI scheme. Each half
// step is a batch of N-2 tridiagonal systems of N-2 equations — exactly
// the m x n workloads the multi-stage solver is built for — and the batch
// is solved on the simulated GPU with auto-tuned switch points.
//
// The initial condition sin(pi x) sin(pi y) is an eigenmode, so the exact
// solution is known and the example reports the numerical error.
//
//   ./adi_heat [--grid=258] [--steps=20] [--alpha=1.0]

#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "common/cli.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/batch.hpp"
#include "tridiag/verify.hpp"
#include "tuning/dynamic_tuner.hpp"

namespace {

using tda::tridiag::TridiagBatch;

/// One ADI half-step: implicit along rows of `u`, explicit along columns.
/// Interior unknowns only; `u` is (grid x grid) row-major with boundary
/// ring fixed at zero. r = alpha*dt / (2 h^2).
void half_step_rows(tda::solver::GpuTridiagonalSolver<double>& solver,
                    std::vector<double>& u, std::size_t grid, double r) {
  const std::size_t inner = grid - 2;
  TridiagBatch<double> batch(inner, inner);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t row = 0; row < inner; ++row) {
    const std::size_t y = row + 1;
    for (std::size_t col = 0; col < inner; ++col) {
      const std::size_t x = col + 1;
      const std::size_t k = row * inner + col;
      a[k] = (col == 0) ? 0.0 : -r;
      c[k] = (col == inner - 1) ? 0.0 : -r;
      b[k] = 1.0 + 2.0 * r;
      // Explicit part along the other direction.
      d[k] = (1.0 - 2.0 * r) * u[y * grid + x] +
             r * (u[(y - 1) * grid + x] + u[(y + 1) * grid + x]);
    }
  }
  solver.solve(batch);
  auto xsol = batch.x();
  for (std::size_t row = 0; row < inner; ++row) {
    for (std::size_t col = 0; col < inner; ++col) {
      u[(row + 1) * grid + (col + 1)] = xsol[row * inner + col];
    }
  }
}

/// Transposes the interior interpretation: the same routine serves both
/// directions if we transpose u before/after.
void transpose(std::vector<double>& u, std::size_t grid) {
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = i + 1; j < grid; ++j) {
      std::swap(u[i * grid + j], u[j * grid + i]);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tda;
  Cli cli(argc, argv);
  const std::size_t grid = static_cast<std::size_t>(cli.get_int("grid", 258));
  const int steps = static_cast<int>(cli.get_int("steps", 20));
  const double alpha = cli.get_double("alpha", 1.0);
  if (grid < 4) {
    std::cerr << "grid must be at least 4\n";
    return 1;
  }

  const double h = 1.0 / static_cast<double>(grid - 1);
  const double dt = 0.25 * h;  // ADI is unconditionally stable; dt ~ h
  const double r = alpha * dt / (2.0 * h * h);
  const double pi = std::numbers::pi;

  std::cout << "2-D heat equation via Peaceman-Rachford ADI\n"
            << "grid " << grid << "x" << grid << ", " << steps
            << " steps, dt=" << dt << ", alpha=" << alpha << "\n";

  // Initial condition: the (1,1) eigenmode.
  std::vector<double> u(grid * grid, 0.0);
  for (std::size_t y = 0; y < grid; ++y) {
    for (std::size_t x = 0; x < grid; ++x) {
      u[y * grid + x] = std::sin(pi * x * h) * std::sin(pi * y * h);
    }
  }

  gpusim::Device dev(gpusim::geforce_gtx_470());
  tuning::DynamicTuner<double> tuner(dev);
  const std::size_t inner = grid - 2;
  auto tuned = tuner.tune({inner, inner});
  std::cout << "tuned: " << solver::describe(tuned.points) << "\n";
  solver::GpuTridiagonalSolver<double> solver(dev, tuned.points);

  double sim_ms = 0.0;
  for (int s = 0; s < steps; ++s) {
    const double before = dev.elapsed_ms();
    half_step_rows(solver, u, grid, r);  // implicit in x
    transpose(u, grid);
    half_step_rows(solver, u, grid, r);  // implicit in y
    transpose(u, grid);
    sim_ms += dev.elapsed_ms() - before;
  }

  // Compare against the exact eigenmode decay.
  const double t_final = steps * dt;
  const double decay = std::exp(-2.0 * alpha * pi * pi * t_final);
  double max_err = 0.0, max_u = 0.0;
  for (std::size_t y = 0; y < grid; ++y) {
    for (std::size_t x = 0; x < grid; ++x) {
      const double exact =
          decay * std::sin(pi * x * h) * std::sin(pi * y * h);
      max_err = std::max(max_err, std::abs(u[y * grid + x] - exact));
      max_u = std::max(max_u, std::abs(u[y * grid + x]));
    }
  }
  std::cout << "t=" << t_final << ": exact peak " << decay
            << ", computed peak " << max_u << "\n"
            << "max abs error vs analytic solution: " << max_err << "\n"
            << "tridiagonal solves: " << 2 * steps << " batches of "
            << inner << "x" << inner << " (" << sim_ms
            << " simulated GPU ms total)\n";
  const bool ok = max_err < 5e-3 * decay + 1e-6;
  std::cout << (ok ? "[OK]" : "[FAIL]") << "\n";
  return ok ? 0 : 1;
}
