// Heat diffusion on a ring — periodic boundary conditions produce CYCLIC
// tridiagonal systems, solved with the Sherman-Morrison reduction on top
// of the multi-stage GPU solver (src/tridiag/periodic.hpp).
//
// Solves u_t = u_xx on [0, 2pi) with Crank-Nicolson time stepping for a
// batch of rings initialized to different Fourier modes cos(k x); each
// mode must decay as exp(-k^2 t), giving an exact validation target.
//
//   ./heat_ring [--points=512] [--rings=32] [--steps=50]

#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "common/cli.hpp"
#include "gpusim/launch.hpp"
#include "solver/auto_solver.hpp"
#include "tridiag/periodic.hpp"

int main(int argc, char** argv) {
  using namespace tda;
  Cli cli(argc, argv);
  const std::size_t points =
      static_cast<std::size_t>(cli.get_int("points", 512));
  const std::size_t rings =
      static_cast<std::size_t>(cli.get_int("rings", 32));
  const int steps = static_cast<int>(cli.get_int("steps", 50));
  const double pi = std::numbers::pi;
  const double h = 2.0 * pi / static_cast<double>(points);
  const double dt = 0.2 * h * h;  // CN is stable; keep dt small for accuracy
  const double r = dt / (h * h);

  std::cout << "heat equation on " << rings << " rings of " << points
            << " points, " << steps << " Crank-Nicolson steps (dt=" << dt
            << ")\n";

  // State: ring `s` starts as cos(k_s x) with k_s = 1 + s % 6.
  std::vector<std::vector<double>> u(rings, std::vector<double>(points));
  std::vector<int> wavenumber(rings);
  for (std::size_t s = 0; s < rings; ++s) {
    wavenumber[s] = 1 + static_cast<int>(s % 6);
    for (std::size_t i = 0; i < points; ++i) {
      u[s][i] = std::cos(wavenumber[s] * i * h);
    }
  }

  gpusim::Device dev(gpusim::geforce_gtx_470());
  solver::AutoSolver<double> inner(dev);

  double sim_ms = 0.0;
  for (int step = 0; step < steps; ++step) {
    tridiag::PeriodicBatch<double> batch(rings, points);
    auto a = batch.core.a();
    auto b = batch.core.b();
    auto c = batch.core.c();
    auto d = batch.core.d();
    for (std::size_t s = 0; s < rings; ++s) {
      const std::size_t off = s * points;
      for (std::size_t i = 0; i < points; ++i) {
        const std::size_t k = off + i;
        a[k] = (i == 0) ? 0.0 : -r / 2.0;
        c[k] = (i == points - 1) ? 0.0 : -r / 2.0;
        b[k] = 1.0 + r;
        const double um = u[s][(i + points - 1) % points];
        const double up = u[s][(i + 1) % points];
        d[k] = (1.0 - r) * u[s][i] + (r / 2.0) * (um + up);
      }
      batch.alpha[s] = -r / 2.0;  // wrap-around couplings
      batch.beta[s] = -r / 2.0;
    }
    const double before = dev.elapsed_ms();
    auto x = tridiag::solve_periodic_batch<double>(
        batch, [&](tridiag::TridiagBatch<double>& tb) { inner.solve(tb); });
    sim_ms += dev.elapsed_ms() - before;
    for (std::size_t s = 0; s < rings; ++s) {
      for (std::size_t i = 0; i < points; ++i) {
        u[s][i] = x[s * points + i];
      }
    }
  }

  // Validate against the analytic mode decay (with the discrete
  // dispersion correction: the CN/second-difference decay factor per
  // step is (1 - r s2) / (1 + r s2), s2 = 2 sin^2(k h / 2) / ... folded
  // into a direct comparison with the continuum solution within O(h^2)).
  const double t_final = steps * dt;
  double max_rel_err = 0.0;
  for (std::size_t s = 0; s < rings; ++s) {
    const int k = wavenumber[s];
    const double decay = std::exp(-k * k * t_final);
    for (std::size_t i = 0; i < points; ++i) {
      const double exact = decay * std::cos(k * i * h);
      max_rel_err =
          std::max(max_rel_err, std::abs(u[s][i] - exact) / decay);
    }
  }
  std::cout << "t=" << t_final << ": max relative error vs analytic mode "
            << "decay = " << max_rel_err << "\n"
            << "periodic solves: " << steps << " batches ("
            << 2 * steps << " inner tridiagonal solves, " << sim_ms
            << " simulated GPU ms)\n";
  const bool ok = max_rel_err < 1e-2;
  std::cout << (ok ? "[OK]" : "[FAIL]") << "\n";
  return ok ? 0 : 1;
}
