// Solve service demo: many concurrent clients funnel small tridiagonal
// systems through one shape-bucketing service spanning multiple
// simulated devices, sharing a single warm tuning cache.
//
//   ./service_demo [--clients=4] [--requests=64] [--devices=2]
//                  [--flush=16] [--flush-ms=1] [--capacity=512]
//                  [--policy=block|reject|shed] [--deadline-ms=0]
//                  [--cache=service_cache.txt]
//
// Each client thread submits `requests` random systems with shapes drawn
// from a small pool, then verifies every solution. The summary shows how
// much coalescing the scheduler achieved and where requests ended up.

#include <atomic>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "service/solve_service.hpp"

using namespace tda;
using namespace tda::service;

namespace {

SolveRequest<double> random_request(std::size_t n, Rng& rng,
                                    double deadline_ms) {
  SolveRequest<double> req;
  req.a.resize(n);
  req.b.resize(n);
  req.c.resize(n);
  req.d.resize(n);
  req.deadline_ms = deadline_ms;
  for (std::size_t i = 0; i < n; ++i) {
    req.a[i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
    req.c[i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
    req.b[i] = (std::abs(req.a[i]) + std::abs(req.c[i])) * 2.0 + 0.5;
    req.d[i] = rng.uniform(-1, 1);
  }
  return req;
}

double request_residual(const SolveRequest<double>& req,
                        const std::vector<double>& x) {
  double worst = 0.0;
  const std::size_t n = req.size();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = req.b[i] * x[i] - req.d[i];
    if (i > 0) acc += req.a[i] * x[i - 1];
    if (i + 1 < n) acc += req.c[i] * x[i + 1];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int requests = static_cast<int>(cli.get_int("requests", 64));
  const int num_devices = static_cast<int>(cli.get_int("devices", 2));

  ServiceConfig cfg;
  cfg.flush_systems = static_cast<std::size_t>(cli.get_int("flush", 16));
  cfg.flush_interval_ms = cli.get_double("flush-ms", 1.0);
  cfg.queue_capacity =
      static_cast<std::size_t>(cli.get_int("capacity", 512));
  cfg.default_deadline_ms = cli.get_double("deadline-ms", 0.0);
  cfg.cache_path = cli.get("cache", "");
  const std::string policy = cli.get("policy", "block");
  cfg.backpressure = policy == "reject"
                         ? BackpressurePolicy::Reject
                         : (policy == "shed" ? BackpressurePolicy::ShedOldest
                                             : BackpressurePolicy::Block);

  std::vector<gpusim::DeviceSpec> devices;
  const auto registry = gpusim::device_registry();
  for (int i = 0; i < num_devices; ++i)
    devices.push_back(registry[registry.size() - 1 - i % registry.size()]);

  std::cout << "service: " << devices.size() << " device(s), flush at "
            << cfg.flush_systems << " systems or " << cfg.flush_interval_ms
            << " ms, queue capacity " << cfg.queue_capacity << " ("
            << to_string(cfg.backpressure) << ")\n";
  for (const auto& d : devices) std::cout << "  worker: " << d.name << "\n";

  SolveService<double> svc(devices, cfg);
  svc.telemetry().metrics.enable();

  const std::size_t shapes[] = {33, 64, 128, 200, 256};
  std::atomic<int> solved{0}, not_solved{0}, residual_fail{0};
  std::atomic<double> worst_residual{0.0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9000 + static_cast<std::uint64_t>(t));
      std::vector<SolveRequest<double>> copies;
      std::vector<std::future<SolveResponse<double>>> futures;
      for (int i = 0; i < requests; ++i) {
        const std::size_t n = shapes[(t + i) % 5];
        auto req = random_request(n, rng, cfg.default_deadline_ms);
        copies.push_back(req);
        futures.push_back(svc.submit(std::move(req)));
      }
      for (int i = 0; i < requests; ++i) {
        auto resp = futures[static_cast<std::size_t>(i)].get();
        if (resp.status != SolveStatus::Ok) {
          not_solved.fetch_add(1);
          continue;
        }
        solved.fetch_add(1);
        const double r =
            request_residual(copies[static_cast<std::size_t>(i)], resp.x);
        double prev = worst_residual.load();
        while (r > prev && !worst_residual.compare_exchange_weak(prev, r)) {
        }
        if (r > 1e-8) residual_fail.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  svc.shutdown();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto c = svc.counters();
  const auto& mx = svc.telemetry().metrics;
  std::cout << "\nsubmitted " << c.submitted << " requests from " << clients
            << " clients in " << wall_s << " s ("
            << static_cast<double>(c.submitted) / wall_s << " req/s)\n";
  std::cout << "  solved: " << c.completed << ", timed out: " << c.timed_out
            << ", rejected: " << c.rejected << ", shed: " << c.shed << "\n";
  std::cout << "  flushes: " << c.flushes << ", mean batch occupancy: "
            << (c.flushes > 0 ? static_cast<double>(c.coalesced_systems) /
                                    static_cast<double>(c.flushes)
                              : 0.0)
            << " systems (max " << c.max_batch_systems << ")\n";
  std::cout << "  tuning runs: " << c.tunes << " (cache now holds "
            << svc.cache().size() << " shapes)\n";
  std::cout << "  simulated device time: " << c.device_ms << " ms\n";
  const auto wait = mx.histogram("service.wait_ms");
  const auto depth = mx.histogram("service.queue_depth");
  std::cout << "  wait ms p50/p95: " << wait.p50 << " / " << wait.p95
            << ", queue depth p95: " << depth.p95 << "\n";

  const bool ok = residual_fail.load() == 0 && solved.load() > 0 &&
                  solved.load() + not_solved.load() == clients * requests;
  std::cout << "max residual: " << worst_residual.load()
            << (ok ? "  [OK]" : "  [FAIL]") << "\n";
  return ok ? 0 : 1;
}
