// Batched natural cubic-spline interpolation — another workload from the
// paper's introduction ("cubic spline approximations").
//
// Fits natural cubic splines through samples of many signal channels at
// once. The spline second derivatives M satisfy the classic tridiagonal
// system (diag 4, off-diag 1 for uniform knots), one independent system
// per channel — a perfect m x n batch for the multi-stage solver. The
// example reconstructs each signal between knots and reports the
// interpolation error against the ground-truth function.
//
//   ./cubic_spline [--channels=256] [--knots=1025]

#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "common/cli.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/batch.hpp"
#include "tuning/dynamic_tuner.hpp"

namespace {

double signal(double x, std::size_t channel) {
  // A family of smooth signals, one per channel.
  const double f = 1.0 + static_cast<double>(channel % 7);
  return std::sin(f * x) + 0.3 * std::cos(2.0 * f * x + 0.1 * channel);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tda;
  Cli cli(argc, argv);
  const std::size_t channels =
      static_cast<std::size_t>(cli.get_int("channels", 256));
  const std::size_t knots =
      static_cast<std::size_t>(cli.get_int("knots", 1025));
  if (knots < 4) {
    std::cerr << "need at least 4 knots\n";
    return 1;
  }

  const double x0 = 0.0, x1 = 2.0 * std::numbers::pi;
  const double h = (x1 - x0) / static_cast<double>(knots - 1);
  const std::size_t inner = knots - 2;

  std::cout << "natural cubic splines: " << channels << " channels, "
            << knots << " knots each\n";

  // Sample the signals at the knots.
  std::vector<double> y(channels * knots);
  for (std::size_t ch = 0; ch < channels; ++ch) {
    for (std::size_t i = 0; i < knots; ++i) {
      y[ch * knots + i] = signal(x0 + i * h, ch);
    }
  }

  // Build the tridiagonal systems for the interior second derivatives:
  //   M[i-1] + 4 M[i] + M[i+1] = 6 (y[i-1] - 2 y[i] + y[i+1]) / h^2.
  tridiag::TridiagBatch<double> batch(channels, inner);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t ch = 0; ch < channels; ++ch) {
    const double* yc = &y[ch * knots];
    for (std::size_t i = 0; i < inner; ++i) {
      const std::size_t k = ch * inner + i;
      a[k] = (i == 0) ? 0.0 : 1.0;
      c[k] = (i == inner - 1) ? 0.0 : 1.0;
      b[k] = 4.0;
      d[k] = 6.0 * (yc[i] - 2.0 * yc[i + 1] + yc[i + 2]) / (h * h);
    }
  }

  // Solve on the simulated GPU with tuned switch points.
  gpusim::Device dev(gpusim::geforce_gtx_280());
  tuning::DynamicTuner<double> tuner(dev);
  auto tuned = tuner.tune({channels, inner});
  solver::GpuTridiagonalSolver<double> solver(dev, tuned.points);
  auto stats = solver.solve(batch);
  std::cout << "solved " << channels << " systems of " << inner
            << " equations in " << stats.total_ms << " simulated ms ("
            << solver::describe(tuned.points) << ")\n";

  // Reconstruct between knots and measure the error at midpoints.
  auto xsol = batch.x();
  double max_err = 0.0;       // everywhere
  double interior_err = 0.0;  // away from the boundary layers
  for (std::size_t ch = 0; ch < channels; ++ch) {
    const double* yc = &y[ch * knots];
    auto M = [&](std::size_t i) -> double {  // natural BCs: M0 = Mn = 0
      if (i == 0 || i == knots - 1) return 0.0;
      return xsol[ch * inner + (i - 1)];
    };
    for (std::size_t i = 0; i + 1 < knots; ++i) {
      const double xm = 0.5;  // midpoint in normalized coordinates
      const double t = 1.0 - xm;
      // Standard cubic spline evaluation on segment [x_i, x_{i+1}].
      const double s = M(i) * t * t * t * h * h / 6.0 +
                       M(i + 1) * xm * xm * xm * h * h / 6.0 +
                       (yc[i] - M(i) * h * h / 6.0) * t +
                       (yc[i + 1] - M(i + 1) * h * h / 6.0) * xm;
      const double exact = signal(x0 + (i + 0.5) * h, ch);
      const double err = std::abs(s - exact);
      max_err = std::max(max_err, err);
      if (i > knots / 8 && i < knots - knots / 8) {
        interior_err = std::max(interior_err, err);
      }
    }
  }

  // Natural boundary conditions force M = 0 at the ends, which the true
  // signals do not satisfy, so an O(h^2) error layer hugs the boundary
  // and decays geometrically inward; away from it the spline converges
  // as O(h^4).
  std::cout << "max midpoint error (everywhere): " << max_err << "\n";
  std::cout << "max midpoint error (interior)  : " << interior_err << "\n";
  const bool ok = max_err < 5e-3 && interior_err < 1e-6;
  std::cout << (ok ? "[OK]" : "[FAIL]") << "\n";
  return ok ? 0 : 1;
}
