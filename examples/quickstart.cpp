// Quickstart: solve a batch of tridiagonal systems on a simulated GPU
// with auto-tuned switch points, and verify the solution.
//
//   ./quickstart [--m=64] [--n=4096] [--device="GeForce GTX 470"]

#include <iostream>

#include "common/cli.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "telemetry/export.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/dynamic_tuner.hpp"

int main(int argc, char** argv) {
  using namespace tda;
  Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 64));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 4096));
  const std::string device_name =
      cli.get("device", "GeForce GTX 470");

  // 1. Pick a device from the registry (the paper's three GPUs).
  auto spec = gpusim::device_by_name(device_name);
  if (!spec) {
    std::cerr << "unknown device: " << device_name << "\n";
    return 1;
  }
  gpusim::Device dev(*spec);
  std::cout << "device: " << spec->name << " (" << spec->sm_count
            << " processors, " << spec->shared_mem_per_sm / 1024
            << " KB shared)\n";

  // Env-gated telemetry: TDA_TRACE=<path> writes a Chrome trace of the
  // tune + solve below, TDA_METRICS=<path> a metrics JSON, both when
  // this scope unwinds at the end of main.
  telemetry::Telemetry tel;
  telemetry::EnvExport tel_export(tel);
  if (tel_export.active()) dev.set_telemetry(&tel);

  // 2. Build a workload: m diagonally dominant systems of n equations.
  auto batch = tridiag::make_diag_dominant<float>(m, n, /*seed=*/42);
  auto pristine = batch;  // keep originals for the residual check
  std::cout << "workload: " << m << " systems x " << n << " equations\n";

  // 3. Auto-tune the switch points for this (device, workload) pair.
  tuning::DynamicTuner<float> tuner(dev);
  auto tuned = tuner.tune({m, n});
  std::cout << "tuned switch points: " << solver::describe(tuned.points)
            << "\n  (" << tuned.evaluations << " tuning evaluations)\n";

  // 4. Solve. The solution lands in batch.x(). --trace prints the
  //    kernel-by-kernel timeline.
  if (cli.has("trace")) dev.enable_trace();
  solver::GpuTridiagonalSolver<float> solver(dev, tuned.points);
  auto stats = solver.solve(batch);
  std::cout << "solved in " << stats.total_ms << " simulated ms ("
            << stats.plan.stage1_steps << " cooperative splits, "
            << stats.plan.stage2_steps << " independent splits, on-chip "
            << "subsystems of " << stats.plan.stage3_sub_size << ")\n";

  if (cli.has("trace")) {
    std::cout << "\nkernel trace:\n";
    for (const auto& rec : dev.trace()) {
      std::cout << "  " << rec.name << ": " << rec.blocks << " blocks x "
                << rec.threads_per_block << " threads, "
                << rec.stats.seconds * 1e3 << " ms (mem "
                << rec.stats.mem_seconds * 1e3 << ", compute "
                << rec.stats.compute_seconds * 1e3 << ", occupancy "
                << rec.stats.occupancy.fraction << ", bw-hiding "
                << rec.stats.hiding_factor << ")\n";
    }
    std::cout << "\n";
  }

  // 5. Verify.
  const double residual = tridiag::batch_residual_inf(pristine, batch.x());
  std::cout << "max scaled residual: " << residual
            << (residual < 1e-3 ? "  [OK]" : "  [FAIL]") << "\n";
  std::cout << "x[0..4] of system 0:";
  for (int i = 0; i < 5 && i < static_cast<int>(n); ++i)
    std::cout << ' ' << batch.x()[i];
  std::cout << "\n";
  return residual < 1e-3 ? 0 : 1;
}
