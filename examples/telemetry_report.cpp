// telemetry_report — showcase of the telemetry subsystem: runs the
// micro-benchmark probes, an auto-tuning search and a solve with full
// span tracing + metrics enabled, prints the span tree and the metrics
// registry, and can export both machine-readable files.
//
//   ./telemetry_report [--m=64] [--n=4096] [--device="GeForce GTX 470"]
//                      [--trace=out.json] [--metrics=metrics.json]
//                      [--max-spans=40]
//
// The exports are also env-gated (TDA_TRACE / TDA_METRICS), like every
// other binary in the repo. Open the trace file in chrome://tracing or
// https://ui.perfetto.dev.

#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/probes.hpp"
#include "solver/gpu_solver.hpp"
#include "telemetry/export.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/dynamic_tuner.hpp"

using namespace tda;

namespace {

void print_span_tree(const telemetry::Tracer& tracer,
                     std::size_t max_spans) {
  std::cout << "span tree (" << tracer.spans().size() << " spans";
  if (tracer.spans().size() > max_spans) {
    std::cout << ", first " << max_spans << " shown; --max-spans raises";
  }
  std::cout << "):\n";
  std::size_t shown = 0;
  for (const auto& sp : tracer.spans()) {
    if (++shown > max_spans) break;
    std::cout << "  " << std::string(2 * sp.depth, ' ') << sp.name << "  "
              << TextTable::num((sp.end_s - sp.begin_s) * 1e3, 4) << " ms";
    for (const auto& [k, v] : sp.attrs) {
      std::cout << "  " << k << "=" << v;
    }
    std::cout << "\n";
  }
}

void print_metrics(const telemetry::MetricsRegistry& metrics) {
  std::cout << "\ncounters:\n";
  for (const auto& [name, value] : metrics.counters()) {
    std::cout << "  " << name << " = " << TextTable::num(value, 0) << "\n";
  }
  std::cout << "gauges:\n";
  for (const auto& [name, value] : metrics.gauges()) {
    std::cout << "  " << name << " = " << TextTable::num(value, 3) << "\n";
  }
  std::cout << "histograms:\n";
  TextTable t;
  t.set_header({"name", "count", "min", "p50", "p95", "max", "mean"});
  for (const auto& [name, samples] : metrics.histograms()) {
    (void)samples;
    const auto h = metrics.histogram(name);
    t.add_row({name, std::to_string(h.count), TextTable::num(h.min, 4),
               TextTable::num(h.p50, 4), TextTable::num(h.p95, 4),
               TextTable::num(h.max, 4), TextTable::num(h.mean, 4)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 64));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 4096));
  const auto max_spans =
      static_cast<std::size_t>(cli.get_int("max-spans", 40));
  const std::string device_name = cli.get("device", "GeForce GTX 470");

  auto spec = gpusim::device_by_name(device_name);
  if (!spec) {
    std::cerr << "unknown device: " << device_name << "\n";
    return 1;
  }
  gpusim::Device dev(*spec);

  telemetry::Telemetry tel;
  telemetry::EnvExport tel_export(tel);
  tel.enable_all();  // this binary's whole point is the telemetry
  dev.set_telemetry(&tel);

  std::cout << "device: " << spec->name << "\nworkload: " << m << " x "
            << n << " (fp32)\n\n";

  // 1. Probes (one span per micro-benchmark).
  auto probes = gpusim::run_probes(dev);
  std::cout << "probes: peak " << TextTable::num(probes.peak_bandwidth_gb_s, 1)
            << " GB/s, launch overhead "
            << TextTable::num(probes.launch_overhead_us, 2) << " us\n";

  // 2. Tune (one span per candidate evaluated) and solve (stage spans
  //    with per-launch children).
  tuning::DynamicTuner<float> tuner(dev);
  auto tuned = tuner.tune({m, n});
  auto batch = tridiag::make_diag_dominant<float>(m, n, 42);
  auto pristine = batch;
  solver::GpuTridiagonalSolver<float> solver(dev, tuned.points);
  auto stats = solver.solve(batch);
  const double residual = tridiag::batch_residual_inf(pristine, batch.x());
  std::cout << "solve: " << TextTable::num(stats.total_ms, 4)
            << " simulated ms, residual " << residual << "\n\n";

  print_span_tree(tel.tracer, max_spans);
  print_metrics(tel.metrics);

  // 3. Exports: explicit flags win; env vars (EnvExport) also work.
  const std::string trace_path = cli.get("trace", "");
  if (!trace_path.empty()) {
    if (!telemetry::write_text_file(
            trace_path, telemetry::to_chrome_trace(tel.tracer))) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    std::cout << "\nwrote Chrome trace: " << trace_path
              << " (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  const std::string metrics_path = cli.get("metrics", "");
  if (!metrics_path.empty()) {
    if (!telemetry::write_text_file(
            metrics_path, telemetry::to_metrics_json(tel.metrics))) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    std::cout << "wrote metrics: " << metrics_path << "\n";
  }

  return residual < 1e-3 ? 0 : 1;
}
