// Front-door demo: the solve service behind the wire protocol. A
// FrontDoor listens on a unix socket, several tenants (each with its own
// token, weight, and quotas) hammer it with net::Client connections, and
// every solution is verified against its system. The summary shows
// per-tenant admission accounting and the front door's counters.
//
//   ./net_demo [--tenants=2] [--clients-per-tenant=2] [--requests=16]
//              [--n=512] [--flush=16] [--rate=0] [--max-inflight=0]
//
// Exits nonzero on any wrong solution or transport failure.
//
// With --serve the demo becomes a standing server instead: it prints
// the listen address and tenant tokens, then runs until stdin closes
// (or --serve-seconds elapse). Point `tridiag_cli --connect` at it:
//
//   ./net_demo --serve --listen=unix:/tmp/door.sock &
//   ./tridiag_cli --connect=unix:/tmp/door.sock --token=token-0

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "net/client.hpp"
#include "net/front_door.hpp"
#include "service/solve_service.hpp"

using namespace tda;

namespace {

struct System {
  std::vector<double> a, b, c, d;
};

System random_system(std::size_t n, Rng& rng) {
  System s;
  s.a.resize(n);
  s.b.resize(n);
  s.c.resize(n);
  s.d.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.a[i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
    s.c[i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
    s.b[i] = (std::abs(s.a[i]) + std::abs(s.c[i])) * 2.0 + 0.5;
    s.d[i] = rng.uniform(-1, 1);
  }
  return s;
}

double residual(const System& s, const std::vector<double>& x) {
  double worst = 0.0;
  const std::size_t n = s.b.size();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = s.b[i] * x[i] - s.d[i];
    if (i > 0) acc += s.a[i] * x[i - 1];
    if (i + 1 < n) acc += s.c[i] * x[i + 1];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int tenants = static_cast<int>(cli.get_int("tenants", 2));
  const int per_tenant = static_cast<int>(cli.get_int("clients-per-tenant", 2));
  const int requests = static_cast<int>(cli.get_int("requests", 16));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 512));
  const double rate = cli.get_double("rate", 0.0);
  const std::size_t max_inflight =
      static_cast<std::size_t>(cli.get_int("max-inflight", 0));

  service::ServiceConfig cfg;
  cfg.flush_systems = static_cast<std::size_t>(cli.get_int("flush", 16));
  cfg.flush_interval_ms = 1.0;
  std::vector<gpusim::DeviceSpec> devices{gpusim::device_registry().back()};
  service::SolveService<double> svc(devices, cfg);
  svc.telemetry().metrics.enable();

  std::string sock =
      "/tmp/tda_net_demo_" + std::to_string(::getpid()) + ".sock";
  net::FrontDoorConfig fcfg;
  const std::string listen = cli.get("listen", "");
  if (listen.empty()) {
    fcfg.unix_path = sock;
  } else if (listen.rfind("unix:", 0) == 0) {
    sock = listen.substr(5);
    fcfg.unix_path = sock;
  } else {
    fcfg.tcp = listen;
  }
  net::FrontDoor<double> door(svc, fcfg);
  for (int t = 0; t < tenants; ++t) {
    net::TenantConfig tc;
    tc.name = "tenant-" + std::to_string(t);
    tc.token = "token-" + std::to_string(t);
    tc.weight = 1.0 + t;  // deliberately unequal shares
    tc.requests_per_sec = rate;
    tc.max_inflight = max_inflight;
    door.add_tenant(tc);
  }
  std::string err;
  if (!door.start(&err)) {
    std::cerr << "front door failed to start: " << err << "\n";
    return 1;
  }
  const std::string where =
      fcfg.unix_path.empty()
          ? "127.0.0.1:" + std::to_string(door.tcp_port())
          : "unix:" + sock;

  if (cli.has("serve")) {
    // Standing-server mode for tridiag_cli --connect and CI: print the
    // address and tokens, then run until stdin closes or the clock
    // runs out.
    std::cout << "serving on " << where << "\n";
    for (int t = 0; t < tenants; ++t) {
      std::cout << "  tenant-" << t << " token: token-" << t << "\n";
    }
    std::cout.flush();
    const double secs = cli.get_double("serve-seconds", 0.0);
    if (secs > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    } else {
      std::string line;
      while (std::getline(std::cin, line)) {
      }
    }
    door.shutdown();
    svc.shutdown();
    const auto sc = door.counters();
    std::cout << "served " << sc.responses_sent << " responses over "
              << sc.connections << " connection(s)\n";
    return 0;
  }

  std::cout << "front door on " << where << " with " << tenants
            << " tenant(s), " << per_tenant << " client(s) each\n";

  std::atomic<int> solved{0}, rejected{0}, failed{0};
  std::atomic<double> worst{0.0};
  std::vector<std::thread> threads;
  for (int t = 0; t < tenants; ++t) {
    for (int c = 0; c < per_tenant; ++c) {
      threads.emplace_back([&, t, c] {
        Rng rng(17 + static_cast<std::uint64_t>(t * 131 + c));
        net::Client client;
        std::string cerr_msg;
        if (!client.connect(where, "token-" + std::to_string(t),
                            &cerr_msg)) {
          std::cerr << "connect failed: " << cerr_msg << "\n";
          failed.fetch_add(requests);
          return;
        }
        for (int i = 0; i < requests; ++i) {
          const auto sys = random_system(n, rng);
          const auto r = client.solve<double>(sys.a, sys.b, sys.c, sys.d);
          if (r.code == net::ErrorCode::None) {
            const double res = residual(sys, r.x);
            double prev = worst.load();
            while (res > prev && !worst.compare_exchange_weak(prev, res)) {
            }
            if (res > 1e-8) {
              failed.fetch_add(1);
            } else {
              solved.fetch_add(1);
            }
          } else if (r.code == net::ErrorCode::QuotaRate ||
                     r.code == net::ErrorCode::QuotaInflight ||
                     r.code == net::ErrorCode::QuotaBytes) {
            rejected.fetch_add(1);  // quotas working as configured
          } else {
            std::cerr << "solve failed: " << net::to_string(r.code) << " "
                      << r.error << "\n";
            failed.fetch_add(1);
          }
        }
        client.close();
      });
    }
  }
  for (auto& th : threads) th.join();
  door.shutdown();
  svc.shutdown();

  std::cout << "\nper-tenant accounting:\n";
  for (const auto& u : door.tenants().usage()) {
    std::cout << "  " << u.name << ": admitted " << u.admitted
              << ", rejected " << u.rejected << "\n";
  }
  const auto c = door.counters();
  std::cout << "front door: " << c.connections << " conns, " << c.frames_rx
            << " frames in / " << c.frames_tx << " out, "
            << c.requests_admitted << " admitted, " << c.requests_rejected
            << " rejected, " << c.bad_frames << " bad frames\n";
  std::cout << "service batches: " << svc.counters().flushes
            << " flushes over " << svc.counters().coalesced_systems
            << " systems\n";

  const int total = tenants * per_tenant * requests;
  const bool ok =
      failed.load() == 0 && solved.load() > 0 &&
      solved.load() + rejected.load() == total;
  std::cout << "max residual: " << worst.load()
            << (ok ? "  [OK]" : "  [FAIL]") << "\n";
  return ok ? 0 : 1;
}
