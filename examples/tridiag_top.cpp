// tridiag_top: a one-shot, `top`-style console rendering of the solve
// service's observability surface. It drives a short burst of traffic
// through a multi-device SolveService with tracing + metrics enabled,
// then prints what an operator would want on one screen:
//
//   * process identity (uptime, hot-restart generation, age of the
//     last crash-safe ops snapshot, warm/cold start),
//   * service counters and current queue depth,
//   * per-worker health (breaker state, restarts, backlog, busy flag),
//   * the always-on request-latency histograms, one row per
//     (shape bucket, dtype, outcome) with p50/p95/p99 and the trace id
//     of a p99 straggler (the exemplar),
//   * per-lane engine utilization and buffer-pool hit rate,
//   * per-tenant rows: part of the burst arrives through a wire-protocol
//     front door as two authenticated tenants, so the tenant-labeled
//     latency keys, admission accounting, and net.* counters all fill.
//
//   ./tridiag_top [--clients=4] [--requests=48] [--devices=2]
//                 [--openmetrics=FILE] [--trace=FILE]
//
// The same numbers leave the process in OpenMetrics text format via
// --openmetrics (or TDA_METRICS_INTERVAL snapshots); this example is the
// human-readable view of that export.

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "gpusim/thread_pool.hpp"
#include "net/client.hpp"
#include "net/front_door.hpp"
#include "ops/server.hpp"
#include "service/solve_service.hpp"
#include "telemetry/telemetry.hpp"

using namespace tda;
using namespace tda::service;

namespace {

SolveRequest<double> random_request(std::size_t n, Rng& rng) {
  SolveRequest<double> req;
  req.a.resize(n);
  req.b.resize(n);
  req.c.resize(n);
  req.d.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    req.a[i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
    req.c[i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
    req.b[i] = (std::abs(req.a[i]) + std::abs(req.c[i])) * 2.0 + 0.5;
    req.d[i] = rng.uniform(-1, 1);
  }
  return req;
}

/// Splits `name{k="v",...}` into the value of one label; "" if absent.
std::string label_of(const std::string& key, const std::string& name) {
  const std::string needle = key + "=\"";
  const auto at = name.find(needle);
  if (at == std::string::npos) return "";
  const auto from = at + needle.size();
  const auto to = name.find('"', from);
  return to == std::string::npos ? "" : name.substr(from, to - from);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int requests = static_cast<int>(cli.get_int("requests", 48));
  const int num_devices = static_cast<int>(cli.get_int("devices", 2));
  const std::string om_path = cli.get("openmetrics", "");
  const std::string trace_path = cli.get("trace", "");

  std::vector<gpusim::DeviceSpec> devices;
  const auto registry = gpusim::device_registry();
  for (int i = 0; i < num_devices; ++i)
    devices.push_back(registry[registry.size() - 1 - i % registry.size()]);

  ServiceConfig cfg;
  cfg.flush_systems = 8;
  cfg.flush_interval_ms = 1.0;

  SolveService<double> svc(devices, cfg);
  svc.telemetry().metrics.enable();
  svc.telemetry().tracer.enable();

  // --- the wire side: a front door with two named tenants ---
  const std::string sock =
      "/tmp/tda_top_" + std::to_string(::getpid()) + ".sock";
  net::FrontDoorConfig fcfg;
  fcfg.unix_path = sock;
  net::FrontDoor<double> door(svc, fcfg);
  const char* tenant_names[] = {"alpha", "beta"};
  for (const char* name : tenant_names) {
    net::TenantConfig tc;
    tc.name = name;
    tc.token = std::string("tok-") + name;
    tc.weight = name == tenant_names[0] ? 2.0 : 1.0;
    door.add_tenant(tc);
  }
  // --- the ops side: snapshot persistence, so the ops pane has real
  // numbers (uptime, generation, age of the last crash-safe snapshot).
  const std::string snap =
      "/tmp/tda_top_" + std::to_string(::getpid()) + ".snap";
  ops::OpsConfig ocfg;
  ocfg.snapshot_path = snap;
  ocfg.generation = static_cast<std::uint64_t>(cli.get_int("generation", 1));
  ops::Server<double> ops_srv(svc, door, ocfg);
  std::string ops_why;
  (void)ops_srv.load(&ops_why);  // missing file = clean cold start

  std::string door_err;
  const bool door_up = door.start(&door_err);
  if (!door_up) std::cerr << "front door: " << door_err << "\n";
  std::string ops_err;
  const bool ops_up = ops_srv.start(&ops_err);
  if (!ops_up) std::cerr << "ops server: " << ops_err << "\n";

  // --- the burst: mixed shapes, so several latency buckets fill ---
  const std::size_t shapes[] = {33, 64, 128, 200, 512};
  std::atomic<int> solved{0}, failed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients) + 2);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(4100 + static_cast<std::uint64_t>(t));
      std::vector<std::future<SolveResponse<double>>> futures;
      for (int i = 0; i < requests; ++i) {
        const std::size_t n = shapes[(t + i) % 5];
        futures.push_back(svc.submit(random_request(n, rng)));
      }
      for (auto& f : futures) {
        (f.get().status == SolveStatus::Ok ? solved : failed).fetch_add(1);
      }
    });
  }
  // Two tenants push the same mixed shapes through the front door so
  // every pane below has wire-side rows too.
  if (door_up) {
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(7800 + static_cast<std::uint64_t>(t));
        net::Client client;
        std::string err;
        if (!client.connect("unix:" + sock,
                            std::string("tok-") + tenant_names[t], &err)) {
          failed.fetch_add(requests);
          return;
        }
        for (int i = 0; i < requests; ++i) {
          const std::size_t n = shapes[(t + i) % 5];
          const auto req = random_request(n, rng);
          const auto r = client.solve<double>(req.a, req.b, req.c, req.d);
          (r.ok() ? solved : failed).fetch_add(1);
        }
        client.close();
      });
    }
  }
  for (auto& th : threads) th.join();

  svc.publish_gauges();
  std::string save_why;
  const bool snapshot_ok = ops_srv.save_now(&save_why);
  if (!snapshot_ok) std::cerr << "snapshot: " << save_why << "\n";
  const auto c = svc.counters();
  const auto& mx = svc.telemetry().metrics;

  // --- pane 1: process + service counters + queue ---
  std::cout << "tridiag_top — one-shot service snapshot\n\n";
  std::cout << "process  : uptime "
            << TextTable::num(ops_srv.uptime_s(), 2) << " s, generation "
            << ocfg.generation << ", last snapshot "
            << (ops_srv.snapshot_age_ms() >= 0.0
                    ? TextTable::num(ops_srv.snapshot_age_ms(), 1) + " ms ago"
                    : std::string("never"))
            << (ops_srv.loaded_from_snapshot() ? " (warm start)"
                                               : " (cold start)")
            << "\n";
  std::cout << "requests : submitted " << c.submitted << ", completed "
            << c.completed << ", timed out " << c.timed_out << ", rejected "
            << c.rejected << ", shed " << c.shed << "\n";
  std::cout << "batches  : " << c.flushes << " flushes, mean occupancy "
            << TextTable::num(
                   c.flushes > 0
                       ? static_cast<double>(c.coalesced_systems) /
                             static_cast<double>(c.flushes)
                       : 0.0,
                   2)
            << " systems, queue depth now "
            << mx.gauge("service.queue_depth_now") << "\n\n";

  // --- pane 2: worker health ---
  TextTable workers("workers");
  workers.set_header({"worker", "device", "breaker", "restarts", "queued",
                      "busy"});
  const auto health = svc.worker_health();
  for (std::size_t i = 0; i < health.size(); ++i) {
    const auto& h = health[i];
    workers.add_row({std::to_string(i), h.device, h.breaker,
                     std::to_string(h.restarts),
                     std::to_string(h.queued_systems),
                     h.busy ? "yes" : "no"});
  }
  workers.print(std::cout);

  // --- pane 3: per-tenant accounting + wire-side latency ---
  std::cout << "\n";
  TextTable tenants_tbl("tenants (wire)");
  tenants_tbl.set_header({"tenant", "weight", "admitted", "rejected",
                          "requests", "count", "p95 (ms)"});
  std::size_t tenant_rows = 0;
  for (const auto& u : door.tenants().usage()) {
    // Aggregate the tenant's labeled latency keys (they split by shape
    // bucket); report the total count and the worst per-key p95.
    std::uint64_t count = 0;
    double p95 = 0.0;
    const std::string needle = "tenant=\"" + u.name + "\"";
    for (const auto& [name, snap] : mx.latencies()) {
      if (name.rfind("service.request_latency_ms{", 0) != 0) continue;
      if (name.find(needle) == std::string::npos) continue;
      count += snap.count;
      p95 = std::max(p95, snap.quantile(0.95));
    }
    tenants_tbl.add_row(
        {u.name, TextTable::num(u.weight, 1), std::to_string(u.admitted),
         std::to_string(u.rejected),
         TextTable::num(mx.counter(telemetry::labeled(
                            "net.requests", {{"tenant", u.name}})),
                        0),
         std::to_string(count), TextTable::num(p95, 3)});
    ++tenant_rows;
  }
  tenants_tbl.print(std::cout);

  // --- pane 4: request latency by (tenant, shape, dtype, outcome) ---
  std::cout << "\n";
  TextTable lat("request latency (ms)");
  lat.set_header({"tenant", "shape", "dtype", "outcome", "count", "p50",
                  "p95", "p99", "p99 exemplar trace"});
  std::size_t latency_rows = 0;
  for (const auto& [name, snap] : mx.latencies()) {
    if (name.rfind("service.request_latency_ms{", 0) != 0) continue;
    const auto ex = snap.exemplar_at(0.99);
    const std::string tenant = label_of("tenant", name);
    lat.add_row({tenant.empty() ? "-" : tenant, label_of("shape", name),
                 label_of("dtype", name), label_of("outcome", name),
                 std::to_string(snap.count),
                 TextTable::num(snap.quantile(0.50), 3),
                 TextTable::num(snap.quantile(0.95), 3),
                 TextTable::num(snap.quantile(0.99), 3),
                 ex.trace_id != 0 ? telemetry::trace_id_hex(ex.trace_id)
                                  : "-"});
    ++latency_rows;
  }
  lat.print(std::cout);

  // --- pane 5: engine lanes + pool ---
  std::cout << "\n";
  TextTable lanes_tbl("engine lanes");
  lanes_tbl.set_header({"lane", "busy_ms", "chunks"});
  const auto lanes = gpusim::ThreadPool::global().lane_stats();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    lanes_tbl.add_row({i == 0 ? "caller" : std::to_string(i),
                       TextTable::num(lanes[i].busy_ms, 2),
                       std::to_string(lanes[i].chunks)});
  }
  lanes_tbl.print(std::cout);
  std::cout << "engine utilization " << TextTable::num(
                   100.0 * mx.gauge("engine.utilization"), 1)
            << " %, pool hit rate "
            << TextTable::num(100.0 * mx.gauge("pool.hit_rate"), 1)
            << " %, host allocs " << mx.gauge("host.alloc_count") << "\n";

  if (!om_path.empty() && svc.export_openmetrics(om_path))
    std::cout << "\nOpenMetrics snapshot -> " << om_path << "\n";
  if (!trace_path.empty() && svc.export_trace(trace_path))
    std::cout << "trace -> " << trace_path << "\n";

  ops_srv.shutdown();
  door.shutdown();
  svc.shutdown();
  ::unlink(snap.c_str());

  const int expected = (clients + (door_up ? 2 : 0)) * requests;
  const bool ok = failed.load() == 0 && solved.load() == expected &&
                  latency_rows > 0 && tenant_rows == 2 && ops_up &&
                  snapshot_ok;
  std::cout << "\nsnapshot " << (ok ? "[OK]" : "[FAIL]") << "\n";
  return ok ? 0 : 1;
}
