// tridiag_cli — one binary that drives the whole library from the shell:
// pick or load a device, synthesize or describe a workload, diagnose it,
// tune, solve, trace and report. The "kitchen sink" example.
//
//   ./tridiag_cli --m=256 --n=4096                         # tune + solve
//   ./tridiag_cli --device="GeForce GTX 280" --gen=poisson --trace
//   ./tridiag_cli --device-file=myGPU.txt --tuner=static
//   ./tridiag_cli --save-device="GeForce GTX 470" --out=profile.txt

#include <algorithm>
#include <chrono>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "net/client.hpp"
#include "common/table.hpp"
#include "cpu/batch_solver.hpp"
#include "gpusim/device_file.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "tridiag/diagnostics.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/cache.hpp"
#include "tuning/dynamic_tuner.hpp"
#include "tuning/tuners.hpp"

using namespace tda;

namespace {

int usage() {
  std::cout <<
      R"(tridiag_cli — auto-tuned multi-stage tridiagonal solver driver

workload:   --m=<systems> --n=<equations>   (default 64 x 4096)
            --gen=dominant|poisson|spline|toeplitz   --seed=<u64>
device:     --device=<registry name>        (default GeForce GTX 470)
            --device-file=<profile.txt>     load a custom device
            --list-devices                  print the registry and exit
            --save-device=<name> --out=<f>  export a registry profile
tuning:     --tuner=dynamic|static|default  (default dynamic)
            --cache=<file>                  persistent tuning cache
output:     --trace                         print the kernel timeline
            --json=<path>                   dump solve result + metrics JSON
            --cpu                           also run the CPU baseline
            --fp32                          solve in single precision
remote:     --connect=<host:port|unix:path> solve on a wire front door
            --token=<tenant token>          tenant auth for --connect
            --window=<k>                    requests in flight (default 8)
telemetry:  TDA_TRACE=<path>                write a Chrome trace (Perfetto)
            TDA_METRICS=<path>              write a metrics JSON
)";
  return 0;
}

template <typename T>
int run(const Cli& cli, gpusim::Device& dev) {
  // Telemetry: activated by TDA_TRACE / TDA_METRICS (files written on
  // scope exit) and by --json (which needs the metrics registry).
  telemetry::Telemetry tel;
  telemetry::EnvExport tel_export(tel);
  const std::string json_path = cli.get("json", "");
  if (!json_path.empty()) tel.metrics.enable();
  if (tel.any_enabled()) dev.set_telemetry(&tel);

  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 64));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 4096));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string gen = cli.get("gen", "dominant");

  tridiag::TridiagBatch<T> batch(1, 1);
  if (gen == "dominant") {
    batch = tridiag::make_diag_dominant<T>(m, n, seed);
  } else if (gen == "poisson") {
    batch = tridiag::make_poisson<T>(m, n, seed);
  } else if (gen == "spline") {
    batch = tridiag::make_spline<T>(m, n, seed);
  } else if (gen == "toeplitz") {
    batch = tridiag::make_toeplitz<T>(m, n, T{-1}, T{3}, T{-1}, seed);
  } else {
    std::cerr << "unknown generator: " << gen << "\n";
    return 1;
  }
  auto pristine = batch;

  std::cout << "device   : " << dev.spec().name << "\n";
  std::cout << "workload : " << m << " x " << n << " (" << gen << ", fp"
            << sizeof(T) * 8 << ")\n";

  // Pre-flight diagnostics.
  auto diag = tridiag::diagnose(batch);
  std::cout << "diagnose : " << tridiag::to_string(diag) << "\n";
  if (!diag.strictly_dominant && diag.dominance < 1.0) {
    std::cout << "           warning: not diagonally dominant; pivot-free "
                 "solvers may fail (consider the CPU gtsv path)\n";
  }

  // Parameter selection.
  const std::string tuner_kind = cli.get("tuner", "dynamic");
  solver::SwitchPoints points;
  if (tuner_kind == "default") {
    points = tuning::default_switch_points<T>();
  } else if (tuner_kind == "static") {
    points = tuning::static_switch_points<T>(dev.query());
  } else if (tuner_kind == "dynamic") {
    tuning::TuningCache cache;
    const std::string cache_path = cli.get("cache", "");
    if (!cache_path.empty()) cache.load(cache_path);
    tuning::DynamicTuner<T> tuner(dev, &cache);
    auto result = tuner.tune({m, n});
    points = result.points;
    std::cout << "tuning   : " << result.evaluations << " evaluations"
              << (result.from_cache ? " (cache hit)" : "") << "\n";
    if (!cache_path.empty()) cache.save(cache_path);
  } else {
    std::cerr << "unknown tuner: " << tuner_kind << "\n";
    return 1;
  }
  const std::string points_desc = solver::describe(points);
  std::cout << "points   : " << points_desc << "\n";

  // Solve.
  if (cli.has("trace")) dev.enable_trace();
  solver::GpuTridiagonalSolver<T> solver(dev, points);
  auto stats = solver.solve(batch);
  std::cout << "plan     : " << stats.plan.stage1_steps
            << " cooperative splits, " << stats.plan.stage2_steps
            << " independent splits, on-chip size "
            << stats.plan.stage3_sub_size << "\n";
  std::cout << "time     : " << stats.total_ms << " simulated ms (stage1 "
            << stats.stage1_ms << ", stage2 " << stats.stage2_ms
            << ", stage3+4 " << stats.stage3_ms << ")\n";

  const double residual = tridiag::batch_residual_inf(pristine, batch.x());
  std::cout << "residual : " << residual
            << (residual < (sizeof(T) == 4 ? 1e-3 : 1e-9) ? "  [OK]"
                                                          : "  [FAIL]")
            << "\n";

  if (cli.has("trace")) {
    std::cout << "\nkernel trace:\n";
    TextTable t;
    t.set_header({"kernel", "phase", "blocks", "threads", "ms", "mem ms",
                  "compute ms", "occupancy", "bw-hiding"});
    for (const auto& rec : dev.trace()) {
      t.add_row({rec.name, rec.label.empty() ? "-" : rec.label,
                 std::to_string(rec.blocks),
                 std::to_string(rec.threads_per_block),
                 TextTable::num(rec.stats.seconds * 1e3, 4),
                 TextTable::num(rec.stats.mem_seconds * 1e3, 4),
                 TextTable::num(rec.stats.compute_seconds * 1e3, 4),
                 TextTable::num(rec.stats.occupancy.fraction, 2),
                 TextTable::num(rec.stats.hiding_factor, 2)});
    }
    t.print(std::cout);
  }

  if (!json_path.empty()) {
    std::ostringstream js;
    js << "{\"device\":\"" << telemetry::json_escape(dev.spec().name)
       << "\",\"workload\":{\"m\":" << m << ",\"n\":" << n
       << ",\"generator\":\"" << telemetry::json_escape(gen)
       << "\",\"precision_bits\":" << sizeof(T) * 8 << "},\"points\":\""
       << telemetry::json_escape(points_desc) << "\",\"result\":{"
       << "\"total_ms\":" << telemetry::json_number(stats.total_ms)
       << ",\"stage1_ms\":" << telemetry::json_number(stats.stage1_ms)
       << ",\"stage2_ms\":" << telemetry::json_number(stats.stage2_ms)
       << ",\"stage3_ms\":" << telemetry::json_number(stats.stage3_ms)
       << ",\"kernel_launches\":" << stats.kernel_launches
       << ",\"residual\":" << telemetry::json_number(residual)
       << "},\"metrics\":" << telemetry::to_metrics_json(tel.metrics)
       << "}";
    if (telemetry::write_text_file(json_path, js.str())) {
      std::cout << "json     : wrote " << json_path << "\n";
    } else {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
  }

  if (cli.has("cpu")) {
    auto cpu_batch = pristine;
    cpu::BatchCpuSolver host(0);
    auto cpu_stats = host.solve(cpu_batch);
    std::cout << "\ncpu      : " << cpu_stats.wall_ms
              << " wall ms on this host (" << cpu_stats.threads_used
              << " threads, " << cpu_stats.failures << " failures)\n";
  }
  return residual < (sizeof(T) == 4 ? 1e-3 : 1e-9) ? 0 : 1;
}

/// --connect mode: the same workload, solved by a remote front door
/// over the wire protocol instead of the in-process solver. Requests
/// are pipelined `--window` deep; solutions land back in the batch and
/// are verified with the same residual check as the local path.
template <typename T>
int remote_run(const Cli& cli) {
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 64));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 4096));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string gen = cli.get("gen", "dominant");

  tridiag::TridiagBatch<T> batch(1, 1);
  if (gen == "dominant") {
    batch = tridiag::make_diag_dominant<T>(m, n, seed);
  } else if (gen == "poisson") {
    batch = tridiag::make_poisson<T>(m, n, seed);
  } else if (gen == "spline") {
    batch = tridiag::make_spline<T>(m, n, seed);
  } else if (gen == "toeplitz") {
    batch = tridiag::make_toeplitz<T>(m, n, T{-1}, T{3}, T{-1}, seed);
  } else {
    std::cerr << "unknown generator: " << gen << "\n";
    return 1;
  }

  const std::string spec = cli.get("connect");
  net::Client client;
  std::string err;
  if (!client.connect(spec, cli.get("token", ""), &err)) {
    std::cerr << "cannot connect to " << spec << ": " << err << "\n";
    return 1;
  }
  std::cout << "remote   : " << spec
            << (client.tenant().empty() ? std::string()
                                        : " (tenant " + client.tenant() + ")")
            << "\n";
  std::cout << "workload : " << m << " x " << n << " (" << gen << ", fp"
            << sizeof(T) * 8 << ")\n";

  const std::size_t window =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cli.get_int("window", 8)));
  const auto lane = [n](std::span<const T> s, std::size_t i) {
    return std::vector<T>(s.begin() + static_cast<std::ptrdiff_t>(i * n),
                          s.begin() + static_cast<std::ptrdiff_t>((i + 1) * n));
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t sent = 0, received = 0, solved = 0;
  double server_solve_ms = 0.0, server_wait_ms = 0.0;
  bool transport_ok = true;
  while (received < m && transport_ok) {
    while (sent < m && sent - received < window) {
      if (!client.send_solve<T>(sent + 1, lane(batch.a(), sent),
                                lane(batch.b(), sent), lane(batch.c(), sent),
                                lane(batch.d(), sent), 0.0, &err)) {
        std::cerr << "send failed: " << err << "\n";
        transport_ok = false;
        break;
      }
      ++sent;
    }
    if (!transport_ok) break;
    net::WireResult<T> r;
    if (!client.recv_result<T>(r, &err)) {
      std::cerr << "receive failed: " << err << "\n";
      transport_ok = false;
      break;
    }
    ++received;
    if (!r.ok()) {
      std::cerr << "system " << r.request_id - 1 << ": "
                << net::to_string(r.code) << " " << r.error << "\n";
      continue;
    }
    ++solved;
    server_solve_ms += r.solve_ms;
    server_wait_ms += r.wait_ms;
    auto x = batch.x();
    std::copy(r.x.begin(), r.x.end(),
              x.begin() + static_cast<std::ptrdiff_t>((r.request_id - 1) * n));
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  client.close();

  std::cout << "solved   : " << solved << " / " << m << " systems in "
            << wall_ms << " wall ms (window " << window << ")\n";
  if (solved > 0) {
    std::cout << "server   : mean solve " << server_solve_ms / double(solved)
              << " ms, mean wait " << server_wait_ms / double(solved)
              << " ms per request\n";
  }
  if (solved < m) {
    std::cout << "residual : skipped (" << m - solved
              << " unsolved)  [FAIL]\n";
    return 1;
  }
  const double residual = tridiag::batch_residual_inf(batch, batch.x());
  const bool ok = residual < (sizeof(T) == 4 ? 1e-3 : 1e-9);
  std::cout << "residual : " << residual << (ok ? "  [OK]" : "  [FAIL]")
            << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.has("help")) return usage();

  if (cli.has("connect")) {
    return cli.has("fp32") ? remote_run<float>(cli) : remote_run<double>(cli);
  }

  if (cli.has("list-devices")) {
    for (const auto& spec : gpusim::device_registry()) {
      std::cout << spec.name << "  (" << spec.sm_count << " SMs, "
                << spec.shared_mem_per_sm / 1024 << " KB shared, "
                << spec.global_bw_gb_s << " GB/s)\n";
    }
    return 0;
  }

  if (cli.has("save-device")) {
    auto spec = gpusim::device_by_name(cli.get("save-device"));
    if (!spec) {
      std::cerr << "unknown device\n";
      return 1;
    }
    const std::string out = cli.get("out", "device_profile.txt");
    if (!gpusim::save_device_profile(out, *spec)) {
      std::cerr << "cannot write " << out << "\n";
      return 1;
    }
    std::cout << "wrote " << out << "\n";
    return 0;
  }

  gpusim::DeviceSpec spec = gpusim::geforce_gtx_470();
  if (cli.has("device-file")) {
    spec = gpusim::load_device_profile(cli.get("device-file"));
  } else if (cli.has("device")) {
    auto found = gpusim::device_by_name(cli.get("device"));
    if (!found) {
      std::cerr << "unknown device: " << cli.get("device")
                << " (try --list-devices)\n";
      return 1;
    }
    spec = *found;
  }
  gpusim::Device dev(spec);

  return cli.has("fp32") ? run<float>(cli, dev) : run<double>(cli, dev);
}
