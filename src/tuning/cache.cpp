#include "tuning/cache.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tda::tuning {

namespace {
/// Serialises the read-merge-rename window of save_merged across every
/// cache instance in this process, so two solvers sharing a cache_path
/// cannot lose each other's freshly merged records. (Cross-process
/// writers still race on that window; each still produces a complete,
/// parseable file thanks to the atomic rename.)
std::mutex& file_mutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

std::string TuningCache::make_key(const std::string& device_name,
                                  std::size_t elem_bytes, std::size_t m,
                                  std::size_t n) {
  std::ostringstream os;
  os << device_name << "|fp" << elem_bytes * 8 << "|" << m << "x" << n;
  return os.str();
}

std::optional<CacheEntry> TuningCache::find(const std::string& key) const {
  std::lock_guard lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningCache::store(const std::string& key, const CacheEntry& entry) {
  std::lock_guard lk(mu_);
  entries_[key] = entry;
}

std::size_t TuningCache::size() const {
  std::lock_guard lk(mu_);
  return entries_.size();
}

void TuningCache::clear() {
  std::lock_guard lk(mu_);
  entries_.clear();
}

std::map<std::string, CacheEntry> TuningCache::snapshot() const {
  std::lock_guard lk(mu_);
  return entries_;
}

std::size_t TuningCache::parse_stream(
    std::istream& in, std::map<std::string, CacheEntry>& out) {
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // key \t stage1 \t stage3 \t thomas \t variant \t ms
    std::istringstream ls(line);
    std::string key, variant;
    CacheEntry e;
    if (!std::getline(ls, key, '\t')) continue;
    if (!(ls >> e.points.stage1_target_systems >>
          e.points.stage3_system_size >> e.points.thomas_switch >> variant >>
          e.tuned_ms)) {
      continue;
    }
    e.points.variant = (variant == "coalesced")
                           ? kernels::LoadVariant::Coalesced
                           : kernels::LoadVariant::Strided;
    out[key] = e;
    ++count;
  }
  return count;
}

bool TuningCache::write_atomic(
    const std::string& path,
    const std::map<std::string, CacheEntry>& entries) {
  // Unique temp name per call: concurrent saves to one path each write
  // their own staging file, and the renames land whole snapshots.
  static std::atomic<unsigned> counter{0};
  const std::string tmp =
      path + ".tmp" + std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "# tridiag_autotune tuning cache v1\n";
    for (const auto& [key, e] : entries) {
      out << key << '\t' << e.points.stage1_target_systems << ' '
          << e.points.stage3_system_size << ' ' << e.points.thomas_switch
          << ' ' << kernels::to_string(e.points.variant) << ' ' << e.tuned_ms
          << '\n';
    }
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::size_t TuningCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::lock_guard lk(mu_);
  return parse_stream(in, entries_);
}

bool TuningCache::save(const std::string& path) const {
  std::lock_guard lk(mu_);
  return write_atomic(path, entries_);
}

bool TuningCache::save_merged(const std::string& path) const {
  std::lock_guard file_lk(file_mutex());
  std::map<std::string, CacheEntry> merged;
  if (std::ifstream in(path); in) parse_stream(in, merged);
  {
    std::lock_guard lk(mu_);
    for (const auto& [key, e] : entries_) merged[key] = e;
  }
  return write_atomic(path, merged);
}

}  // namespace tda::tuning
