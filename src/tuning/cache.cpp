#include "tuning/cache.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/log.hpp"
#include "faults/faults.hpp"

namespace tda::tuning {

namespace {
/// Serialises the read-merge-rename window of save_merged across every
/// cache instance in this process, so two solvers sharing a cache_path
/// cannot lose each other's freshly merged records. (Cross-process
/// writers still race on that window; each still produces a complete,
/// parseable file thanks to the atomic rename.)
std::mutex& file_mutex() {
  static std::mutex mu;
  return mu;
}

// v1: bare header, no integrity check (still readable).
// v2: header carries an FNV-1a checksum of everything after the header
// line; any flipped bit rejects the whole file, falling back to
// re-tuning rather than solving with corrupted switch points.
constexpr std::string_view kHeaderV1 = "# tridiag_autotune tuning cache v1";
constexpr std::string_view kHeaderV2 =
    "# tridiag_autotune tuning cache v2 checksum=";

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Positive-integer field with explicit rejection of negatives,
/// non-numbers and fractions (istream would happily wrap "-3" into a
/// size_t).
bool parse_count(std::istream& in, std::size_t& out) {
  double v = 0.0;
  if (!(in >> v)) return false;
  if (!std::isfinite(v) || v < 1.0 || v != std::floor(v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}
}  // namespace

std::string TuningCache::make_key(const std::string& device_name,
                                  std::size_t elem_bytes, std::size_t m,
                                  std::size_t n) {
  std::ostringstream os;
  os << device_name << "|fp" << elem_bytes * 8 << "|" << m << "x" << n;
  return os.str();
}

std::optional<CacheEntry> TuningCache::find(const std::string& key) const {
  std::lock_guard lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningCache::store(const std::string& key, const CacheEntry& entry) {
  std::lock_guard lk(mu_);
  entries_[key] = entry;
}

std::size_t TuningCache::size() const {
  std::lock_guard lk(mu_);
  return entries_.size();
}

void TuningCache::clear() {
  std::lock_guard lk(mu_);
  entries_.clear();
}

std::map<std::string, CacheEntry> TuningCache::snapshot() const {
  std::lock_guard lk(mu_);
  return entries_;
}

TuningCache::ParseResult TuningCache::parse_stream(
    std::istream& in, std::map<std::string, CacheEntry>& out) {
  ParseResult result;
  std::string header;
  if (!std::getline(in, header)) {
    result.header_ok = false;  // empty/unreadable file
    return result;
  }
  std::string payload{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  if (header == kHeaderV1) {
    // Legacy file: readable, but carries no integrity check.
  } else if (header.compare(0, kHeaderV2.size(), kHeaderV2) == 0) {
    const std::string stored = header.substr(kHeaderV2.size());
    char* end = nullptr;
    const std::uint64_t want = std::strtoull(stored.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || stored.empty() ||
        want != fnv1a(payload)) {
      TDA_WARN("tuning cache: checksum mismatch — ignoring the whole "
               "file (will re-tune)");
      result.header_ok = false;
      return result;
    }
  } else {
    TDA_WARN("tuning cache: unrecognized header '"
             << header << "' — ignoring the whole file");
    result.header_ok = false;
    return result;
  }

  std::istringstream body(payload);
  std::string line;
  while (std::getline(body, line)) {
    if (line.empty() || line[0] == '#') continue;
    // key \t stage1 stage3 thomas variant layout ms
    // Records written before layout was a tuner dimension omit the
    // layout token; the token after `variant` is then the ms itself, so
    // peek at it and default those records to system-major.
    std::istringstream ls(line);
    std::string key, variant, tok;
    CacheEntry e;
    bool ok = static_cast<bool>(std::getline(ls, key, '\t')) &&
              !key.empty() &&
              parse_count(ls, e.points.stage1_target_systems) &&
              parse_count(ls, e.points.stage3_system_size) &&
              parse_count(ls, e.points.thomas_switch) &&
              static_cast<bool>(ls >> variant >> tok) &&
              (variant == "coalesced" || variant == "strided");
    if (ok) {
      if (tok == "system" || tok == "element") {
        e.points.layout = (tok == "element")
                              ? tridiag::BatchLayout::ElementMajor
                              : tridiag::BatchLayout::SystemMajor;
        ok = static_cast<bool>(ls >> e.tuned_ms);
      } else {
        char* end = nullptr;
        e.tuned_ms = std::strtod(tok.c_str(), &end);
        ok = end != nullptr && *end == '\0';
      }
      ok = ok && std::isfinite(e.tuned_ms) && e.tuned_ms >= 0.0;
    }
    if (!ok) {
      ++result.skipped;
      continue;
    }
    e.points.variant = (variant == "coalesced")
                           ? kernels::LoadVariant::Coalesced
                           : kernels::LoadVariant::Strided;
    out[key] = e;
    ++result.loaded;
  }
  if (result.skipped > 0) {
    TDA_WARN("tuning cache: skipped " << result.skipped
                                      << " malformed record(s)");
  }
  return result;
}

bool TuningCache::write_atomic(
    const std::string& path,
    const std::map<std::string, CacheEntry>& entries) {
  // Unique temp name per call: concurrent saves to one path each write
  // their own staging file, and the renames land whole snapshots.
  static std::atomic<unsigned> counter{0};
  const std::string tmp =
      path + ".tmp" + std::to_string(counter.fetch_add(1));
  std::ostringstream payload;
  for (const auto& [key, e] : entries) {
    payload << key << '\t' << e.points.stage1_target_systems << ' '
        << e.points.stage3_system_size << ' ' << e.points.thomas_switch
        << ' ' << kernels::to_string(e.points.variant) << ' '
        << tridiag::to_string(e.points.layout) << ' ' << e.tuned_ms
        << '\n';
  }
  const std::string body = payload.str();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    char checksum[17];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(fnv1a(body)));
    out << kHeaderV2 << checksum << '\n' << body;
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::size_t TuningCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string contents{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
  // Injection point: the CacheCorrupt site flips bits between disk and
  // parser, exercising the checksum rejection below.
  auto& inj = faults::FaultInjector::global();
  if (inj.fire(faults::Site::CacheCorrupt)) {
    faults::corrupt_bytes(contents, inj.config().seed, 8);
    TDA_WARN("faults: corrupted tuning-cache bytes before parsing");
  }
  std::istringstream ss(contents);
  // Parse into a scratch map: a file that fails the header/checksum
  // check must not leave a partial cache behind.
  std::map<std::string, CacheEntry> parsed;
  const ParseResult result = parse_stream(ss, parsed);
  if (!result.header_ok) return 0;
  std::lock_guard lk(mu_);
  for (auto& [key, e] : parsed) entries_[key] = e;
  return result.loaded;
}

bool TuningCache::save(const std::string& path) const {
  std::lock_guard lk(mu_);
  return write_atomic(path, entries_);
}

bool TuningCache::save_merged(const std::string& path) const {
  std::lock_guard file_lk(file_mutex());
  std::map<std::string, CacheEntry> merged;
  if (std::ifstream in(path); in) parse_stream(in, merged);
  {
    std::lock_guard lk(mu_);
    for (const auto& [key, e] : entries_) merged[key] = e;
  }
  return write_atomic(path, merged);
}

}  // namespace tda::tuning
