#include "tuning/cache.hpp"

#include <fstream>
#include <sstream>

namespace tda::tuning {

std::string TuningCache::make_key(const std::string& device_name,
                                  std::size_t elem_bytes, std::size_t m,
                                  std::size_t n) {
  std::ostringstream os;
  os << device_name << "|fp" << elem_bytes * 8 << "|" << m << "x" << n;
  return os.str();
}

std::optional<CacheEntry> TuningCache::find(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void TuningCache::store(const std::string& key, const CacheEntry& entry) {
  entries_[key] = entry;
}

std::size_t TuningCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // key \t stage1 \t stage3 \t thomas \t variant \t ms
    std::istringstream ls(line);
    std::string key, variant;
    CacheEntry e;
    if (!std::getline(ls, key, '\t')) continue;
    if (!(ls >> e.points.stage1_target_systems >>
          e.points.stage3_system_size >> e.points.thomas_switch >> variant >>
          e.tuned_ms)) {
      continue;
    }
    e.points.variant = (variant == "coalesced")
                           ? kernels::LoadVariant::Coalesced
                           : kernels::LoadVariant::Strided;
    entries_[key] = e;
    ++count;
  }
  return count;
}

bool TuningCache::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "# tridiag_autotune tuning cache v1\n";
  for (const auto& [key, e] : entries_) {
    out << key << '\t' << e.points.stage1_target_systems << ' '
        << e.points.stage3_system_size << ' ' << e.points.thomas_switch
        << ' ' << kernels::to_string(e.points.variant) << ' ' << e.tuned_ms
        << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace tda::tuning
