#pragma once
// The three parameter-selection strategies of §IV:
//
//  * default_switch_points  — machine-oblivious constants; must be safe on
//    the least capable supported device (§IV-B);
//  * static_switch_points   — derived from queryable device properties
//    only (§IV-C);
//  * DynamicTuner           — measured search seeded by the static guess
//    (§IV-D; see dynamic_tuner.hpp).

#include <algorithm>
#include <cstddef>

#include "gpusim/device.hpp"
#include "kernels/config.hpp"
#include "solver/switch_points.hpp"

namespace tda::tuning {

/// Machine-oblivious defaults (§IV-B).
///
/// * stage-3 size 256: the largest on-chip system the weakest supported
///   card can hold, so the kernel launches everywhere;
/// * Thomas switch 32: one subsystem per warp lane, "large enough that
///   each warp has systems to solve";
/// * stage-1 target 16: "most devices have between four and twenty-four
///   processors";
/// * strided loads: correct for any stride.
template <typename T>
solver::SwitchPoints default_switch_points() {
  solver::SwitchPoints sp;
  sp.stage1_target_systems = 16;
  sp.stage3_system_size = 256;
  sp.thomas_switch = 32;
  sp.variant = kernels::LoadVariant::Strided;
  return sp;
}

/// Machine-query tuning (§IV-C): uses cudaDeviceProperties-style
/// information only.
///
/// * stage-3 size: switch to the base kernel as soon as a subsystem fits
///   on chip (shared memory / registers / block-size limits);
/// * Thomas switch 64 (two warps): bank count and shared bandwidth are
///   not queryable, so the guess is warp-size based and identical on
///   every device — precisely why Fig. 6 shows it losing on newer parts;
/// * stage-1 target: one independent system per processor — the only
///   proxy available, since the bandwidth-saturation point cannot be
///   queried (§IV-C: "we must estimate based only on the number of
///   available processors").
template <typename T>
solver::SwitchPoints static_switch_points(const gpusim::DeviceQuery& q) {
  solver::SwitchPoints sp;
  const std::size_t cap = kernels::max_shared_system_size(q, sizeof(T));
  sp.stage3_system_size = std::max<std::size_t>(2, cap);
  sp.thomas_switch = static_cast<std::size_t>(2 * q.warp_size);
  sp.stage1_target_systems = static_cast<std::size_t>(q.sm_count);
  sp.variant = kernels::LoadVariant::Strided;
  return sp;
}

}  // namespace tda::tuning
