#pragma once
// Persistent store for tuned switch points, keyed by
// (device, precision, workload shape) — the paper's "save those results
// for future runs". Plain text, one record per line.
//
// Thread-safe: every member takes an internal mutex, so one cache can be
// shared by concurrent solver workers (the solve service shares a single
// cache across all its devices). Saves are atomic — contents are written
// to a temp file and renamed into place — so a reader never observes a
// half-written cache. save_merged() additionally folds in records that
// another process/instance has persisted since we loaded, keeping
// multiple writers of one cache_path from clobbering each other.

#include <cstddef>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "solver/switch_points.hpp"

namespace tda::tuning {

/// One cached tuning record.
struct CacheEntry {
  solver::SwitchPoints points;
  double tuned_ms = 0.0;  ///< best simulated time observed while tuning
};

class TuningCache {
 public:
  /// Builds the canonical cache key.
  static std::string make_key(const std::string& device_name,
                              std::size_t elem_bytes, std::size_t m,
                              std::size_t n);

  [[nodiscard]] std::optional<CacheEntry> find(const std::string& key) const;
  void store(const std::string& key, const CacheEntry& entry);
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Snapshot of every record (copy; callers need no lock discipline).
  [[nodiscard]] std::map<std::string, CacheEntry> snapshot() const;

  /// Serialisation. load() merges into the current contents and returns
  /// the number of records read (0 for a missing file). save() replaces
  /// the file atomically (temp file + rename).
  ///
  /// The on-disk format carries a version + FNV-1a checksum header; a
  /// file whose header or checksum fails verification is rejected WHOLE
  /// (no partial cache — the tuner falls back to re-tuning), while
  /// individual malformed records of an intact file are counted,
  /// log-warned and skipped. Legacy v1 files load without a checksum.
  std::size_t load(const std::string& path);
  bool save(const std::string& path) const;

  /// Atomic save that first merges records already on disk: keys we hold
  /// win, keys only the file holds are kept. This is what lets two
  /// solvers pointed at the same cache_path both persist their tunings.
  bool save_merged(const std::string& path) const;

 private:
  struct ParseResult {
    std::size_t loaded = 0;   ///< valid records stored into `out`
    std::size_t skipped = 0;  ///< malformed records dropped (log-warned)
    bool header_ok = true;    ///< false = whole file rejected
  };
  static ParseResult parse_stream(std::istream& in,
                                  std::map<std::string, CacheEntry>& out);
  static bool write_atomic(const std::string& path,
                           const std::map<std::string, CacheEntry>& entries);

  mutable std::mutex mu_;
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace tda::tuning
