#pragma once
// Persistent store for tuned switch points, keyed by
// (device, precision, workload shape) — the paper's "save those results
// for future runs". Plain text, one record per line.

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "solver/switch_points.hpp"

namespace tda::tuning {

/// One cached tuning record.
struct CacheEntry {
  solver::SwitchPoints points;
  double tuned_ms = 0.0;  ///< best simulated time observed while tuning
};

class TuningCache {
 public:
  /// Builds the canonical cache key.
  static std::string make_key(const std::string& device_name,
                              std::size_t elem_bytes, std::size_t m,
                              std::size_t n);

  [[nodiscard]] std::optional<CacheEntry> find(const std::string& key) const;
  void store(const std::string& key, const CacheEntry& entry);
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Serialisation. load() merges into the current contents and returns
  /// the number of records read (0 for a missing file).
  std::size_t load(const std::string& path);
  bool save(const std::string& path) const;

 private:
  std::map<std::string, CacheEntry> entries_;
};

}  // namespace tda::tuning
