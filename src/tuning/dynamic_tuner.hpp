#pragma once
// The dynamic self-tuner (§IV-D) and, for the ablation, an exhaustive
// search over the same space.
//
// The self-tuner prunes the search two ways, exactly as the paper argues:
//
//  1. Decoupling. {stage-2→3 size, stage-3→4 Thomas switch, load variant}
//     are tuned jointly but independently of the stage-1→2 target: the
//     first group's optimum depends on on-chip resources and strides, the
//     second only on machine fill. Cost is additive (|A| + |B|) instead
//     of multiplicative (|A| × |B|).
//
//  2. Seeded local search. Every 1-D sweep is a hill descent started from
//     the machine-query guess, which is near the hyperbolic landscape's
//     local minimum, instead of a full sweep.
//
// Every "measurement" is a simulated cost-only solver run — the tuner
// never reads the hidden DeviceSpec fields, only observed time.

#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "gpusim/launch.hpp"
#include "kernels/device_batch.hpp"
#include "solver/gpu_solver.hpp"
#include "solver/switch_points.hpp"
#include "telemetry/telemetry.hpp"
#include "tuning/cache.hpp"
#include "tuning/tuners.hpp"

namespace tda::tuning {

/// Outcome of a tuning run.
struct TuneResult {
  solver::SwitchPoints points;
  double best_ms = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;  ///< solver runs performed
  bool from_cache = false;
  bool stage1_tuned = false;  ///< false when the workload never triggers stage 1
};

template <typename T>
class DynamicTuner {
 public:
  explicit DynamicTuner(gpusim::Device& dev, TuningCache* cache = nullptr)
      : dev_(&dev), cache_(cache) {}

  /// Tunes switch points for the given workload shape.
  TuneResult tune(const solver::Workload& w) {
    telemetry::Telemetry* tel = dev_->telemetry();
    telemetry::ScopedSpan span(telemetry::tracer_of(tel), "tune", "tuner");
    span.attr("m", static_cast<double>(w.num_systems));
    span.attr("n", static_cast<double>(w.system_size));

    const std::string key = TuningCache::make_key(
        dev_->spec().name, sizeof(T), w.num_systems, w.system_size);
    if (cache_ != nullptr) {
      if (auto hit = cache_->find(key)) {
        if (tel != nullptr) tel->metrics.add("tuner.cache_hits");
        span.attr("cache", "hit");
        TuneResult r;
        r.points = hit->points;
        r.best_ms = hit->tuned_ms;
        r.from_cache = true;
        return r;
      }
    }
    if (tel != nullptr && cache_ != nullptr) {
      tel->metrics.add("tuner.cache_misses");
    }

    TuneResult r = search(w);
    if (cache_ != nullptr) {
      cache_->store(key, CacheEntry{r.points, r.best_ms});
    }
    if (tel != nullptr) tel->metrics.add("tuner.tunes");
    span.attr("evaluations", static_cast<double>(r.evaluations));
    span.attr("best_ms", r.best_ms);
    span.attr("points", solver::describe(r.points));
    return r;
  }

 private:
  /// All power-of-two values in [lo, hi].
  static std::vector<std::size_t> pow2_range(std::size_t lo,
                                             std::size_t hi) {
    std::vector<std::size_t> v;
    for (std::size_t p = 1; p <= hi; p *= 2) {
      if (p >= lo) v.push_back(p);
      if (p > hi / 2) break;
    }
    return v;
  }

  TuneResult search(const solver::Workload& w) {
    TuneResult r;
    const auto q = dev_->query();
    const solver::SwitchPoints seed = static_switch_points<T>(q);
    const std::size_t cap = kernels::max_shared_system_size(q, sizeof(T));
    TDA_REQUIRE(cap >= 2, "device cannot run the base kernel");

    // Group A is tuned on a machine-filling PROXY workload (§IV-D:
    // "a workload guaranteed to fill the machine — number of systems much
    // greater than the number of processors"), so its optimum is not
    // polluted by stage-1 starvation effects. The proxy keeps the real
    // system size up to the point where the subsystem stride saturates
    // the coalescing model ("repeat increasing the stride count — this
    // simulates solving larger systems"); beyond that, larger n adds no
    // new stride regimes, only cost.
    const std::size_t m_fill = std::max<std::size_t>(
        w.num_systems, 8 * static_cast<std::size_t>(q.sm_count));
    const std::size_t n_fill =
        std::min<std::size_t>(w.system_size, 32 * cap);
    kernels::DeviceBatch<T> fill_scratch(m_fill, n_fill);

    // Real-workload scratch for group B / final scoring.
    kernels::DeviceBatch<T> scratch(w.num_systems, w.system_size);

    telemetry::Telemetry* tel = dev_->telemetry();
    std::map<std::string, double> memo;
    auto eval_on = [&](kernels::DeviceBatch<T>& batch, const char* tag,
                       const solver::SwitchPoints& sp) {
      const std::string k = std::string(tag) + "|" + solver::describe(sp);
      if (auto it = memo.find(k); it != memo.end()) return it->second;
      // One span per candidate actually simulated (memo hits above are
      // free): the §IV-D search trajectory, inspectable in a trace.
      telemetry::ScopedSpan span(telemetry::tracer_of(tel), "tune.eval",
                                 "tuner");
      span.attr("workload", tag);
      span.attr("points", solver::describe(sp));
      solver::GpuTridiagonalSolver<T> s(*dev_, sp);
      const double ms = s.run(batch, kernels::ExecMode::CostOnly).total_ms;
      span.attr("ms", ms);
      if (tel != nullptr && tel->metrics.enabled()) {
        tel->metrics.add("tuner.evaluations");
        tel->metrics.observe("tuner.eval_ms", ms);
      }
      memo[k] = ms;
      ++r.evaluations;
      TDA_DEBUG("tune eval " << k << " -> " << ms << " ms");
      return ms;
    };
    auto evaluate_fill = [&](const solver::SwitchPoints& sp) {
      // The proxy always has enough independent systems; neutralize
      // stage 1 so group A measures pure stage-2/3/4 behaviour.
      solver::SwitchPoints p = sp;
      p.stage1_target_systems = 1;
      return eval_on(fill_scratch, "fill", p);
    };
    auto evaluate = [&](const solver::SwitchPoints& sp) {
      return eval_on(scratch, "real", sp);
    };

    // ---- group A: {stage3 size, thomas switch, variant} ----
    // Inner: best thomas/variant for a given stage-3 size, hill-descending
    // the Thomas switch from the warp-based static guess for both load
    // variants ("for the two base PCR-Thomas kernels we coded").
    auto tune_inner = [&](std::size_t s3, solver::SwitchPoints base) {
      base.stage3_system_size = s3;
      solver::SwitchPoints best = base;
      double best_ms = std::numeric_limits<double>::infinity();
      for (auto variant :
           {kernels::LoadVariant::Strided, kernels::LoadVariant::Coalesced}) {
        solver::SwitchPoints sp = base;
        sp.variant = variant;
        const auto ladder = pow2_range(1, s3);
        // start at the static guess clamped into the ladder
        std::size_t idx = 0;
        for (std::size_t i = 0; i < ladder.size(); ++i) {
          if (ladder[i] <= seed.thomas_switch) idx = i;
        }
        sp.thomas_switch = ladder[idx];
        double cur = evaluate_fill(sp);
        bool moved = true;
        while (moved) {
          moved = false;
          for (int dir : {-1, +1}) {
            const long long ni = static_cast<long long>(idx) + dir;
            if (ni < 0 || ni >= static_cast<long long>(ladder.size()))
              continue;
            solver::SwitchPoints cand = sp;
            cand.thomas_switch = ladder[static_cast<std::size_t>(ni)];
            const double ms = evaluate_fill(cand);
            if (ms < cur) {
              cur = ms;
              idx = static_cast<std::size_t>(ni);
              sp = cand;
              moved = true;
            }
          }
        }
        if (cur < best_ms) {
          best_ms = cur;
          best = sp;
        }
      }
      return std::pair{best, best_ms};
    };

    // Outer hill descent on the stage-3 size, seeded at the machine-query
    // choice (= on-chip capacity).
    const auto sizes = pow2_range(2, cap);
    std::size_t sidx = sizes.size() - 1;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (sizes[i] <= seed.stage3_system_size) sidx = i;
    }
    auto [best_sp, best_ms] = tune_inner(sizes[sidx], seed);
    bool moved = true;
    while (moved) {
      moved = false;
      for (int dir : {-1, +1}) {
        const long long ni = static_cast<long long>(sidx) + dir;
        if (ni < 0 || ni >= static_cast<long long>(sizes.size())) continue;
        auto [sp, ms] =
            tune_inner(sizes[static_cast<std::size_t>(ni)], best_sp);
        if (ms < best_ms) {
          best_ms = ms;
          best_sp = sp;
          sidx = static_cast<std::size_t>(ni);
          moved = true;
        }
      }
    }

    // Group A is done; score the selection on the REAL workload.
    best_sp.stage1_target_systems = seed.stage1_target_systems;
    best_ms = evaluate(best_sp);

    // ---- group B: stage-1 target, tuned on the real workload ----
    // Only relevant when the workload starts with fewer independent
    // systems than splitting can create; otherwise stage 1 never runs.
    // The stage-1 landscape is BIMODAL (minimal cooperative splitting vs
    // mostly-cooperative splitting are both locally optimal, separated by
    // a starved-stage-2 ridge), so a plain hill descent from the machine
    // guess can land in the wrong basin; the one-dimensional ladder is
    // only ~11 points, so scan it outright — the search stays additive,
    // which is all the decoupling argument needs.
    if (w.num_systems < seed.stage1_target_systems * 4) {
      double cur = std::numeric_limits<double>::infinity();
      for (std::size_t target : pow2_range(1, 1024)) {
        solver::SwitchPoints cand = best_sp;
        cand.stage1_target_systems = target;
        const double ms = evaluate(cand);
        if (ms < cur) {
          cur = ms;
          best_sp = cand;
        }
      }
      best_ms = cur;
      r.stage1_tuned = true;
    }

    // ---- layout: staged pipeline vs interleaved (element-major) ----
    // The element-major path has no switch points of its own (one
    // transpose-in, one single-pass Thomas, one transpose-out), so one
    // extra evaluation on the real workload answers whether the SIMD
    // gain beats the transpose cost for this (device, m, n, dtype) —
    // the same observed-time criterion as every other dimension.
    {
      solver::SwitchPoints cand = best_sp;
      cand.layout = tridiag::BatchLayout::ElementMajor;
      const double ms = evaluate(cand);
      span_note_layout(tel, best_ms, ms);
      if (ms < best_ms) {
        best_ms = ms;
        best_sp = cand;
      }
    }

    r.points = best_sp;
    r.best_ms = best_ms;
    return r;
  }

  /// Records the layout crossover the search observed (system- vs
  /// element-major ms) on the enclosing tune span's metrics.
  static void span_note_layout(telemetry::Telemetry* tel, double system_ms,
                               double element_ms) {
    if (tel == nullptr || !tel->metrics.enabled()) return;
    tel->metrics.observe("tuner.layout_system_ms", system_ms);
    tel->metrics.observe("tuner.layout_element_ms", element_ms);
    tel->metrics.add(telemetry::labeled(
        "tuner.layout_picked",
        {{"choice", element_ms < system_ms ? "element" : "system"}}));
  }

  gpusim::Device* dev_;
  TuningCache* cache_;
};

/// Exhaustive search over the full cross product of the tuning space —
/// what the decoupled search avoids. Used by the search-cost ablation.
template <typename T>
TuneResult exhaustive_tune(gpusim::Device& dev, const solver::Workload& w) {
  TuneResult r;
  const auto q = dev.query();
  const std::size_t cap = kernels::max_shared_system_size(q, sizeof(T));
  kernels::DeviceBatch<T> scratch(w.num_systems, w.system_size);

  for (std::size_t s3 = 2; s3 <= cap; s3 *= 2) {
    for (std::size_t th = 1; th <= s3; th *= 2) {
      for (auto variant : {kernels::LoadVariant::Strided,
                           kernels::LoadVariant::Coalesced}) {
        for (std::size_t t1 = 1; t1 <= 1024; t1 *= 2) {
          solver::SwitchPoints sp;
          sp.stage3_system_size = s3;
          sp.thomas_switch = th;
          sp.variant = variant;
          sp.stage1_target_systems = t1;
          solver::GpuTridiagonalSolver<T> s(dev, sp);
          const double ms =
              s.run(scratch, kernels::ExecMode::CostOnly).total_ms;
          ++r.evaluations;
          if (ms < r.best_ms) {
            r.best_ms = ms;
            r.points = sp;
          }
        }
      }
    }
  }
  // The element-major variant is a single extra point of the space (its
  // path ignores the staged switch points).
  {
    solver::SwitchPoints sp;
    sp.layout = tridiag::BatchLayout::ElementMajor;
    solver::GpuTridiagonalSolver<T> s(dev, sp);
    const double ms = s.run(scratch, kernels::ExecMode::CostOnly).total_ms;
    ++r.evaluations;
    if (ms < r.best_ms) {
      r.best_ms = ms;
      r.points = sp;
    }
  }
  return r;
}

}  // namespace tda::tuning
