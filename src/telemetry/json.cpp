#include "telemetry/json.hpp"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tda::telemetry {

namespace {
std::atomic<std::uint64_t> nonfinite_dropped_count{0};
}  // namespace

std::uint64_t nonfinite_dropped() {
  return nonfinite_dropped_count.load(std::memory_order_relaxed);
}

void note_nonfinite_dropped() {
  nonfinite_dropped_count.fetch_add(1, std::memory_order_relaxed);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    // Silently mangling NaN/Inf into a plausible number hides real
    // defects from whoever reads the export; null is honest.
    note_nonfinite_dropped();
    return "null";
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  std::ostringstream os;
  os.precision(15);
  os << value;
  return os.str();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (at_end()) return false;
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return consume_word("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return consume_word("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return consume_word("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our exporters; map them to '?').
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            out += '?';
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    const double v = std::strtod(token.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') return false;
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace tda::telemetry
