#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace tda::telemetry {

std::string to_chrome_trace(const Tracer& tracer) {
  const std::vector<SpanRecord> spans = tracer.snapshot();
  // Order: begin ascending, then longer (enclosing) spans first, then
  // shallower first — so viewers that break ties by record order still
  // nest a stage span around its same-timestamp first kernel launch.
  std::vector<std::size_t> order(spans.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (spans[a].begin_s != spans[b].begin_s)
                       return spans[a].begin_s < spans[b].begin_s;
                     const double da = spans[a].end_s - spans[a].begin_s;
                     const double db = spans[b].end_s - spans[b].begin_s;
                     if (da != db) return da > db;
                     return spans[a].depth < spans[b].depth;
                   });

  // One tid row per trace id (in first-seen span order), so a request's
  // tree renders as one coherent track; traceless spans share row 1.
  std::map<std::uint64_t, int> trace_rows;
  for (const std::size_t i : order) {
    const std::uint64_t t = spans[i].trace_id;
    if (t != 0 && trace_rows.find(t) == trace_rows.end()) {
      trace_rows.emplace(t, static_cast<int>(trace_rows.size()) + 2);
    }
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::size_t i : order) {
    const SpanRecord& sp = spans[i];
    if (!first) os << ',';
    first = false;
    const double dur_us = std::max(0.0, sp.end_s - sp.begin_s) * 1e6;
    const int tid =
        sp.trace_id != 0 ? trace_rows[sp.trace_id] : 1;
    os << "{\"name\":\"" << json_escape(sp.name) << "\",\"cat\":\""
       << json_escape(sp.category.empty() ? "tda" : sp.category)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":" << json_number(sp.begin_s * 1e6)
       << ",\"dur\":" << json_number(dur_us);
    os << ",\"args\":{\"span_id\":\"" << i << "\",\"parent_id\":\"";
    if (sp.parent != kInvalidSpan) os << sp.parent;
    os << "\",\"trace_id\":\"";
    if (sp.trace_id != 0) os << trace_id_hex(sp.trace_id);
    os << '"';
    for (const auto& [k, v] : sp.attrs) {
      os << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << '"';
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string to_metrics_json(const MetricsRegistry& metrics) {
  // Gauges and histograms serialize first (into side buffers) so that
  // any NaN/Inf they drop is already tallied when the counters section —
  // which reports the drop count — is emitted.
  std::ostringstream gs;
  bool first = true;
  for (const auto& [name, value] : metrics.gauges()) {
    if (!first) gs << ',';
    first = false;
    gs << '"' << json_escape(name) << "\":" << json_number(value);
  }
  std::ostringstream hs;
  first = true;
  for (const auto& [name, samples] : metrics.histograms()) {
    (void)samples;
    const HistogramSummary h = metrics.histogram(name);
    if (!first) hs << ',';
    first = false;
    hs << '"' << json_escape(name) << "\":{\"count\":"
       << json_number(static_cast<double>(h.count))
       << ",\"min\":" << json_number(h.min)
       << ",\"max\":" << json_number(h.max)
       << ",\"mean\":" << json_number(h.mean)
       << ",\"p50\":" << json_number(h.p50)
       << ",\"p95\":" << json_number(h.p95) << '}';
  }
  std::ostringstream ls;
  first = true;
  for (const auto& [name, snap] : metrics.latencies()) {
    if (!first) ls << ',';
    first = false;
    const LatencyExemplar ex = snap.exemplar_at(0.99);
    ls << '"' << json_escape(name) << "\":{\"count\":"
       << json_number(static_cast<double>(snap.count))
       << ",\"sum\":" << json_number(snap.sum)
       << ",\"p50\":" << json_number(snap.quantile(0.50))
       << ",\"p95\":" << json_number(snap.quantile(0.95))
       << ",\"p99\":" << json_number(snap.quantile(0.99))
       << ",\"exemplar_trace_id\":\""
       << (ex.trace_id != 0 ? trace_id_hex(ex.trace_id) : std::string())
       << "\"}";
  }

  std::ostringstream os;
  os << "{\"counters\":{";
  first = true;
  for (const auto& [name, value] : metrics.counters()) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << json_number(value);
  }
  // Process-wide serializer health: how many NaN/Inf values were
  // dropped to null instead of being exported as numbers.
  if (nonfinite_dropped() > 0) {
    if (!first) os << ',';
    os << "\"telemetry.nonfinite_dropped\":"
       << json_number(static_cast<double>(nonfinite_dropped()));
  }
  os << "},\"gauges\":{" << gs.str() << "},\"histograms\":{" << hs.str()
     << "},\"latency\":{" << ls.str() << "}}";
  return os.str();
}

namespace {

/// Metric-name charset per the OpenMetrics ABNF; dots become
/// underscores, everything else non-conforming too.
std::string om_sanitize(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 4);
  if (raw.substr(0, 4) != "tda_" && raw.substr(0, 4) != "tda.") {
    out = "tda_";
  } else if (raw.substr(0, 4) == "tda.") {
    out = "tda_";
    raw.remove_prefix(4);
  }
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string om_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Splits a labeled() key into (sanitized family, label body without
/// braces).
std::pair<std::string, std::string> split_labels(const std::string& key) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) return {om_sanitize(key), ""};
  std::string body = key.substr(brace + 1);
  if (!body.empty() && body.back() == '}') body.pop_back();
  return {om_sanitize(std::string_view(key).substr(0, brace)), body};
}

/// "{a,b}" label bodies merged with an extra label appended.
std::string merge_labels(const std::string& body,
                         const std::string& extra) {
  if (body.empty()) return extra;
  if (extra.empty()) return body;
  return body + "," + extra;
}

struct OmWriter {
  std::ostringstream os;
  std::map<std::string, char> used;  // family -> type tag

  /// Reserves `family`; on a cross-type collision appends a
  /// disambiguating suffix so the output stays parseable.
  std::string claim(std::string family, char type,
                    const char* fallback_suffix) {
    auto it = used.find(family);
    if (it != used.end() && it->second != type) {
      family += fallback_suffix;
    }
    used[family] = type;
    return family;
  }

  void sample(const std::string& name, const std::string& labels,
              double value, const std::string& exemplar = {}) {
    os << name;
    if (!labels.empty()) os << '{' << labels << '}';
    os << ' ' << om_number(value);
    if (!exemplar.empty()) os << " # " << exemplar;
    os << '\n';
  }
};

}  // namespace

std::string to_openmetrics(const MetricsRegistry& metrics) {
  OmWriter w;

  // counters -> <family>_total
  std::map<std::string, std::vector<std::pair<std::string, double>>>
      counter_fams;
  auto counters = metrics.counters();
  if (nonfinite_dropped() > 0) {
    counters["telemetry.nonfinite_dropped"] =
        static_cast<double>(nonfinite_dropped());
  }
  for (const auto& [key, value] : counters) {
    auto [fam, labels] = split_labels(key);
    counter_fams[fam].emplace_back(labels, value);
  }
  for (const auto& [fam, samples] : counter_fams) {
    const std::string name = w.claim(fam, 'c', "_count_metric");
    w.os << "# TYPE " << name << " counter\n";
    for (const auto& [labels, value] : samples) {
      w.sample(name + "_total", labels, value);
    }
  }

  // gauges
  std::map<std::string, std::vector<std::pair<std::string, double>>>
      gauge_fams;
  for (const auto& [key, value] : metrics.gauges()) {
    auto [fam, labels] = split_labels(key);
    gauge_fams[fam].emplace_back(labels, value);
  }
  for (const auto& [fam, samples] : gauge_fams) {
    const std::string name = w.claim(fam, 'g', "_value");
    w.os << "# TYPE " << name << " gauge\n";
    for (const auto& [labels, value] : samples) {
      w.sample(name, labels, value);
    }
  }

  // raw-sample histograms -> summaries (quantile labels)
  std::map<std::string, std::vector<std::string>> summary_fams;
  for (const auto& [key, samples] : metrics.histograms()) {
    (void)samples;
    auto [fam, labels] = split_labels(key);
    summary_fams[fam].push_back(key);
    (void)labels;
  }
  for (const auto& [fam, keys] : summary_fams) {
    const std::string name = w.claim(fam, 's', "_summary");
    w.os << "# TYPE " << name << " summary\n";
    for (const auto& key : keys) {
      const auto labels = split_labels(key).second;
      const HistogramSummary h = metrics.histogram(key);
      w.sample(name, merge_labels(labels, "quantile=\"0.5\""), h.p50);
      w.sample(name, merge_labels(labels, "quantile=\"0.95\""), h.p95);
      w.sample(name + "_count", labels,
               static_cast<double>(h.count));
      w.sample(name + "_sum", labels,
               h.mean * static_cast<double>(h.count));
    }
  }

  // fixed-bucket latency histograms -> real histograms with exemplars
  std::map<std::string, std::vector<std::string>> latency_fams;
  const auto latencies = metrics.latencies();
  for (const auto& [key, snap] : latencies) {
    (void)snap;
    latency_fams[split_labels(key).first].push_back(key);
  }
  const auto bounds = latency_bucket_bounds();
  for (const auto& [fam, keys] : latency_fams) {
    const std::string name = w.claim(fam, 'h', "_hist");
    w.os << "# TYPE " << name << " histogram\n";
    for (const auto& key : keys) {
      const auto labels = split_labels(key).second;
      const LatencySnapshot& snap = latencies.at(key);
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < snap.counts.size(); ++b) {
        cum += snap.counts[b];
        std::string le = "le=\"";
        le += std::isinf(bounds[b]) ? "+Inf" : om_number(bounds[b]);
        le += '"';
        std::string exemplar;
        if (snap.exemplars[b].trace_id != 0) {
          exemplar = "{trace_id=\"" +
                     trace_id_hex(snap.exemplars[b].trace_id) +
                     "\"} " + om_number(snap.exemplars[b].value);
        }
        w.sample(name + "_bucket", merge_labels(labels, le),
                 static_cast<double>(cum), exemplar);
      }
      w.sample(name + "_count", labels,
               static_cast<double>(snap.count));
      w.sample(name + "_sum", labels, snap.sum);
    }
  }

  w.os << "# EOF\n";
  return w.os.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

namespace {
std::string env_or_empty(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

std::string with_suffix(std::string path, const std::string& suffix) {
  if (path.empty() || suffix.empty()) return path;
  std::string clean;
  for (const char c : suffix) {
    clean += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) return path + "." + clean;
  return path.substr(0, dot) + "." + clean + path.substr(dot);
}
}  // namespace

std::string trace_env_path() { return env_or_empty("TDA_TRACE"); }
std::string metrics_env_path() { return env_or_empty("TDA_METRICS"); }
std::string openmetrics_env_path() {
  return env_or_empty("TDA_OPENMETRICS");
}

double metrics_interval_env() {
  const std::string v = env_or_empty("TDA_METRICS_INTERVAL");
  if (v.empty()) return 0.0;
  char* end = nullptr;
  const double s = std::strtod(v.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(s) || s <= 0.0) {
    return 0.0;
  }
  return s;
}

EnvExport::EnvExport(Telemetry& tel, std::string suffix)
    : tel_(&tel),
      trace_path_(with_suffix(trace_env_path(), suffix)),
      metrics_path_(with_suffix(metrics_env_path(), suffix)),
      openmetrics_path_(with_suffix(openmetrics_env_path(), suffix)),
      interval_s_(metrics_interval_env()) {
  if (!trace_path_.empty()) tel_->tracer.enable();
  if (!metrics_path_.empty() || !openmetrics_path_.empty()) {
    tel_->metrics.enable();
  }
  if (interval_s_ > 0.0 &&
      (!metrics_path_.empty() || !openmetrics_path_.empty())) {
    snapshot_thread_ = std::thread([this] { snapshot_loop(); });
  }
}

EnvExport::~EnvExport() {
  if (snapshot_thread_.joinable()) {
    {
      std::lock_guard lk(snap_mu_);
      snap_stop_ = true;
    }
    snap_cv_.notify_all();
    snapshot_thread_.join();
  }
  // Always write the final snapshot: a mid-run flush() must not eat
  // the counters accumulated after it (the old `flushed_` latch did
  // exactly that — metrics between the last manual flush and process
  // exit silently vanished).
  flush();
}

void EnvExport::write_metrics_files() const {
  if (!metrics_path_.empty()) {
    write_text_file(metrics_path_, to_metrics_json(tel_->metrics));
  }
  if (!openmetrics_path_.empty()) {
    write_text_file(openmetrics_path_, to_openmetrics(tel_->metrics));
  }
}

void EnvExport::snapshot_loop() {
  std::unique_lock lk(snap_mu_);
  const auto interval = std::chrono::duration<double>(interval_s_);
  while (!snap_stop_) {
    if (snap_cv_.wait_for(lk, interval, [this] { return snap_stop_; })) {
      return;  // final write happens in flush()
    }
    write_metrics_files();
  }
}

void EnvExport::flush() {
  if (!trace_path_.empty()) {
    if (write_text_file(trace_path_, to_chrome_trace(tel_->tracer))) {
      TDA_INFO("telemetry: wrote Chrome trace to " << trace_path_);
    } else {
      TDA_WARN("telemetry: cannot write trace to " << trace_path_);
    }
  }
  if (!metrics_path_.empty()) {
    if (write_text_file(metrics_path_, to_metrics_json(tel_->metrics))) {
      TDA_INFO("telemetry: wrote metrics to " << metrics_path_);
    } else {
      TDA_WARN("telemetry: cannot write metrics to " << metrics_path_);
    }
  }
  if (!openmetrics_path_.empty()) {
    if (write_text_file(openmetrics_path_,
                        to_openmetrics(tel_->metrics))) {
      TDA_INFO("telemetry: wrote OpenMetrics to " << openmetrics_path_);
    } else {
      TDA_WARN("telemetry: cannot write OpenMetrics to "
               << openmetrics_path_);
    }
  }
}

}  // namespace tda::telemetry
