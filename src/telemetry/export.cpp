#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace tda::telemetry {

std::string to_chrome_trace(const Tracer& tracer) {
  const auto& spans = tracer.spans();
  // Order: begin ascending, then longer (enclosing) spans first, then
  // shallower first — so viewers that break ties by record order still
  // nest a stage span around its same-timestamp first kernel launch.
  std::vector<std::size_t> order(spans.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (spans[a].begin_s != spans[b].begin_s)
                       return spans[a].begin_s < spans[b].begin_s;
                     const double da = spans[a].end_s - spans[a].begin_s;
                     const double db = spans[b].end_s - spans[b].begin_s;
                     if (da != db) return da > db;
                     return spans[a].depth < spans[b].depth;
                   });

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::size_t i : order) {
    const SpanRecord& sp = spans[i];
    if (!first) os << ',';
    first = false;
    const double dur_us = std::max(0.0, sp.end_s - sp.begin_s) * 1e6;
    os << "{\"name\":\"" << json_escape(sp.name) << "\",\"cat\":\""
       << json_escape(sp.category.empty() ? "tda" : sp.category)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":"
       << json_number(sp.begin_s * 1e6) << ",\"dur\":"
       << json_number(dur_us);
    if (!sp.attrs.empty()) {
      os << ",\"args\":{";
      bool afirst = true;
      for (const auto& [k, v] : sp.attrs) {
        if (!afirst) os << ',';
        afirst = false;
        os << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string to_metrics_json(const MetricsRegistry& metrics) {
  // Gauges and histograms serialize first (into side buffers) so that
  // any NaN/Inf they drop is already tallied when the counters section —
  // which reports the drop count — is emitted.
  std::ostringstream gs;
  bool first = true;
  for (const auto& [name, value] : metrics.gauges()) {
    if (!first) gs << ',';
    first = false;
    gs << '"' << json_escape(name) << "\":" << json_number(value);
  }
  std::ostringstream hs;
  first = true;
  for (const auto& [name, samples] : metrics.histograms()) {
    (void)samples;
    const HistogramSummary h = metrics.histogram(name);
    if (!first) hs << ',';
    first = false;
    hs << '"' << json_escape(name) << "\":{\"count\":"
       << json_number(static_cast<double>(h.count))
       << ",\"min\":" << json_number(h.min)
       << ",\"max\":" << json_number(h.max)
       << ",\"mean\":" << json_number(h.mean)
       << ",\"p50\":" << json_number(h.p50)
       << ",\"p95\":" << json_number(h.p95) << '}';
  }

  std::ostringstream os;
  os << "{\"counters\":{";
  first = true;
  for (const auto& [name, value] : metrics.counters()) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << json_number(value);
  }
  // Process-wide serializer health: how many NaN/Inf values were
  // dropped to null instead of being exported as numbers.
  if (nonfinite_dropped() > 0) {
    if (!first) os << ',';
    os << "\"telemetry.nonfinite_dropped\":"
       << json_number(static_cast<double>(nonfinite_dropped()));
  }
  os << "},\"gauges\":{" << gs.str() << "},\"histograms\":{" << hs.str()
     << "}}";
  return os.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

namespace {
std::string env_or_empty(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

std::string with_suffix(std::string path, const std::string& suffix) {
  if (path.empty() || suffix.empty()) return path;
  std::string clean;
  for (const char c : suffix) {
    clean += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) return path + "." + clean;
  return path.substr(0, dot) + "." + clean + path.substr(dot);
}
}  // namespace

std::string trace_env_path() { return env_or_empty("TDA_TRACE"); }
std::string metrics_env_path() { return env_or_empty("TDA_METRICS"); }

EnvExport::EnvExport(Telemetry& tel, std::string suffix)
    : tel_(&tel),
      trace_path_(with_suffix(trace_env_path(), suffix)),
      metrics_path_(with_suffix(metrics_env_path(), suffix)) {
  if (!trace_path_.empty()) tel_->tracer.enable();
  if (!metrics_path_.empty()) tel_->metrics.enable();
}

EnvExport::~EnvExport() {
  if (!flushed_) flush();
}

void EnvExport::flush() {
  flushed_ = true;
  if (!trace_path_.empty()) {
    if (write_text_file(trace_path_, to_chrome_trace(tel_->tracer))) {
      TDA_INFO("telemetry: wrote Chrome trace to " << trace_path_);
    } else {
      TDA_WARN("telemetry: cannot write trace to " << trace_path_);
    }
  }
  if (!metrics_path_.empty()) {
    if (write_text_file(metrics_path_, to_metrics_json(tel_->metrics))) {
      TDA_INFO("telemetry: wrote metrics to " << metrics_path_);
    } else {
      TDA_WARN("telemetry: cannot write metrics to " << metrics_path_);
    }
  }
}

}  // namespace tda::telemetry
