#pragma once
// Minimal JSON: escaping for the exporters and a recursive-descent
// parser so tests can round-trip the emitted Chrome-trace and metrics
// files without an external dependency.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tda::telemetry {

/// Escapes a string for embedding inside a JSON string literal
/// (without the surrounding quotes).
std::string json_escape(std::string_view s);

/// Formats a double as a JSON number (integral values without a
/// decimal point). Non-finite values serialize as `null` — never as a
/// fabricated number — and are tallied in nonfinite_dropped().
std::string json_number(double value);

/// Process-wide count of non-finite values the telemetry serializers
/// dropped to null (json_number and span-attr formatting). Exported as
/// the `telemetry.nonfinite_dropped` counter in metrics JSON.
std::uint64_t nonfinite_dropped();

/// Records one dropped non-finite value (serializer-internal).
void note_nonfinite_dropped();

/// One parsed JSON value. Object member order is preserved.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }

  /// Member lookup on objects; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document; nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace tda::telemetry
