#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace tda::telemetry {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(q * static_cast<double>(samples.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::clamp(rank, 1.0, static_cast<double>(samples.size())));
  return samples[idx - 1];
}

void MetricsRegistry::add(std::string_view name, double delta) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double sample) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name),
                        std::vector<double>{sample});
  } else {
    it->second.push_back(sample);
  }
}

double MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSummary MetricsRegistry::histogram(std::string_view name) const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) return {};
    samples = it->second;
  }
  HistogramSummary s;
  s.count = samples.size();
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile(samples, 0.50);
  s.p95 = percentile(samples, 0.95);
  return s;
}

std::map<std::string, double> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, std::vector<double>> MetricsRegistry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace tda::telemetry
