#include "telemetry/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace tda::telemetry {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(q * static_cast<double>(samples.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::clamp(rank, 1.0, static_cast<double>(samples.size())));
  return samples[idx - 1];
}

namespace {
// Log-spaced 1-2-5 bounds from 10µs to 5s plus a catch-all: wide enough
// for queue waits under backpressure, fine enough near the typical
// sub-millisecond batched solve.
constexpr std::array<double, 19> kLatencyBounds = {
    0.01, 0.02, 0.05, 0.1,  0.2,  0.5,  1.0,   2.0,   5.0,  10.0,
    20.0, 50.0, 100., 200., 500., 1e3,  2e3,   5e3,
    std::numeric_limits<double>::infinity()};

std::size_t bucket_of(double ms) {
  const auto it = std::lower_bound(kLatencyBounds.begin(),
                                   kLatencyBounds.end(), ms);
  return static_cast<std::size_t>(it - kLatencyBounds.begin());
}
}  // namespace

std::span<const double> latency_bucket_bounds() { return kLatencyBounds; }

double LatencySnapshot::quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  const double target =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t prev = cum;
    cum += counts[b];
    if (static_cast<double>(cum) < target) continue;
    const double hi = kLatencyBounds[b];
    const double lo = b == 0 ? 0.0 : kLatencyBounds[b - 1];
    if (!std::isfinite(hi)) return lo;  // overflow bucket: report bound
    const double in_bucket = static_cast<double>(counts[b]);
    if (in_bucket <= 0.0) return hi;
    const double frac =
        (target - static_cast<double>(prev)) / in_bucket;
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return kLatencyBounds[kLatencyBounds.size() - 2];
}

LatencyExemplar LatencySnapshot::exemplar_at(double q) const {
  if (count == 0 || counts.empty()) return {};
  const double cut = quantile(q);
  // Prefer the highest bucket holding samples at/above the cut; fall
  // back to the highest non-empty bucket with an exemplar.
  for (std::size_t b = counts.size(); b-- > 0;) {
    if (counts[b] == 0 || exemplars[b].trace_id == 0) continue;
    const double lo = b == 0 ? 0.0 : kLatencyBounds[b - 1];
    if (lo >= cut || exemplars[b].value >= cut) return exemplars[b];
  }
  for (std::size_t b = counts.size(); b-- > 0;) {
    if (exemplars[b].trace_id != 0) return exemplars[b];
  }
  return {};
}

std::string labeled(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string key(name);
  if (labels.size() == 0) return key;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key.append(k);
    key += "=\"";
    key.append(v);
    key += '"';
  }
  key += '}';
  return key;
}

void MetricsRegistry::add(std::string_view name, double delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double sample) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name),
                        std::vector<double>{sample});
  } else {
    it->second.push_back(sample);
  }
}

void MetricsRegistry::observe_latency(std::string_view name, double ms,
                                      std::uint64_t exemplar_trace_id) {
  if (!enabled()) return;
  if (!std::isfinite(ms)) return;
  const std::size_t b = bucket_of(ms);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  if (it == latencies_.end()) {
    LatencyHist h;
    h.counts.assign(kLatencyBounds.size(), 0);
    h.exemplars.assign(kLatencyBounds.size(), {});
    it = latencies_.emplace(std::string(name), std::move(h)).first;
  }
  LatencyHist& h = it->second;
  ++h.counts[b];
  ++h.count;
  h.sum += ms;
  if (exemplar_trace_id != 0) h.exemplars[b] = {exemplar_trace_id, ms};
}

double MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSummary MetricsRegistry::histogram(std::string_view name) const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) return {};
    samples = it->second;
  }
  HistogramSummary s;
  s.count = samples.size();
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile(samples, 0.50);
  s.p95 = percentile(samples, 0.95);
  return s;
}

LatencySnapshot MetricsRegistry::latency(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  if (it == latencies_.end()) return {};
  LatencySnapshot s;
  s.counts = it->second.counts;
  s.exemplars = it->second.exemplars;
  s.count = it->second.count;
  s.sum = it->second.sum;
  return s;
}

std::map<std::string, double> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, std::vector<double>> MetricsRegistry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

std::map<std::string, LatencySnapshot> MetricsRegistry::latencies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, LatencySnapshot> out;
  for (const auto& [name, h] : latencies_) {
    LatencySnapshot s;
    s.counts = h.counts;
    s.exemplars = h.exemplars;
    s.count = h.count;
    s.sum = h.sum;
    out.emplace(name, std::move(s));
  }
  return out;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         latencies_.empty();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  latencies_.clear();
}

}  // namespace tda::telemetry
