#pragma once
// Metrics registry: named counters, gauges, sample histograms and
// fixed-bucket latency histograms. Counters accumulate (solves, tunes,
// cache hits, kernel launches, bytes moved), gauges hold the latest
// value (probe results, lane utilization, pool hit rate), sample
// histograms keep raw samples and summarize to count/min/max/mean/
// p50/p95 — the shape of the paper's per-stage timing tables.
//
// Latency histograms are the always-on aggregation path: log-spaced
// fixed bucket bounds (so recording is O(log buckets) with zero
// allocation in steady state), keyed by labeled names built with
// labeled() — e.g. service.request_latency_ms{shape="le64",
// dtype="f64",outcome="ok"} — and each bucket keeps an *exemplar*: the
// trace id of the last request that landed there, so the p99 straggler
// bucket names a concrete trace to go look at.
//
// Thread-safe behind a single mutex; the enabled flag is atomic (it is
// read before the lock on every hot-path call and may race a toggle
// from another thread — a plain bool here is a TSan data race), so a
// disabled registry costs one relaxed load and allocates nothing.

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <initializer_list>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tda::telemetry {

/// Percentile summary of one histogram.
struct HistogramSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Nearest-rank percentile (q in [0,1]) of an unsorted sample; 0 when
/// empty. Exposed for tests.
double percentile(std::vector<double> samples, double q);

/// Upper bounds (ms) of the fixed latency buckets. The last bound is
/// +Inf, so every sample lands somewhere.
std::span<const double> latency_bucket_bounds();

/// Trace id of a request that landed in a bucket (0 = none yet).
struct LatencyExemplar {
  std::uint64_t trace_id = 0;
  double value = 0.0;
};

/// Locked copy of one latency histogram.
struct LatencySnapshot {
  std::vector<std::uint64_t> counts;     ///< per bucket, non-cumulative
  std::vector<LatencyExemplar> exemplars;  ///< per bucket
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// owning bucket; 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  /// Exemplar of the highest non-empty bucket at or above quantile q —
  /// "a p99 straggler's trace id". trace_id 0 when none recorded.
  [[nodiscard]] LatencyExemplar exemplar_at(double q) const;
};

/// Builds a labeled metric key: name + {k="v",...} with keys in the
/// given order. Exporters parse the braces back into label sets.
std::string labeled(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

class MetricsRegistry {
 public:
  void enable(bool on = true) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Adds `delta` to a counter (creating it at 0).
  void add(std::string_view name, double delta = 1.0);
  /// Sets a gauge to `value`.
  void set(std::string_view name, double value);
  /// Appends one sample to a histogram.
  void observe(std::string_view name, double sample);
  /// Records one sample (ms) into a fixed-bucket latency histogram,
  /// stamping `exemplar_trace_id` (when non-zero) on the bucket it
  /// lands in.
  void observe_latency(std::string_view name, double ms,
                       std::uint64_t exemplar_trace_id = 0);

  /// Reads a counter / gauge; 0 for names never written.
  [[nodiscard]] double counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Summarizes a histogram; all-zero for names never observed.
  [[nodiscard]] HistogramSummary histogram(std::string_view name) const;
  /// Snapshot of one latency histogram; empty counts for unknown names.
  [[nodiscard]] LatencySnapshot latency(std::string_view name) const;

  /// Snapshot accessors (copies, so callers need no lock discipline).
  [[nodiscard]] std::map<std::string, double> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  [[nodiscard]] std::map<std::string, std::vector<double>> histograms()
      const;
  [[nodiscard]] std::map<std::string, LatencySnapshot> latencies() const;

  /// True when nothing has been recorded.
  [[nodiscard]] bool empty() const;

  void clear();

 private:
  struct LatencyHist {
    std::vector<std::uint64_t> counts;
    std::vector<LatencyExemplar> exemplars;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::vector<double>, std::less<>> histograms_;
  std::map<std::string, LatencyHist, std::less<>> latencies_;
};

}  // namespace tda::telemetry
