#pragma once
// Metrics registry: named counters, gauges and histograms. Counters
// accumulate (solves, tunes, cache hits, kernel launches, bytes moved),
// gauges hold the latest value (probe results), histograms keep raw
// samples and summarize to count/min/max/mean/p50/p95 — the shape of
// the paper's per-stage timing tables.
//
// Thread-safe behind a single mutex (the CPU baseline solver is
// multi-threaded); the enabled check is taken before the lock so a
// disabled registry costs one branch and allocates nothing.

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tda::telemetry {

/// Percentile summary of one histogram.
struct HistogramSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Nearest-rank percentile (q in [0,1]) of an unsorted sample; 0 when
/// empty. Exposed for tests.
double percentile(std::vector<double> samples, double q);

class MetricsRegistry {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Adds `delta` to a counter (creating it at 0).
  void add(std::string_view name, double delta = 1.0);
  /// Sets a gauge to `value`.
  void set(std::string_view name, double value);
  /// Appends one sample to a histogram.
  void observe(std::string_view name, double sample);

  /// Reads a counter / gauge; 0 for names never written.
  [[nodiscard]] double counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Summarizes a histogram; all-zero for names never observed.
  [[nodiscard]] HistogramSummary histogram(std::string_view name) const;

  /// Snapshot accessors (copies, so callers need no lock discipline).
  [[nodiscard]] std::map<std::string, double> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  [[nodiscard]] std::map<std::string, std::vector<double>> histograms()
      const;

  /// True when nothing has been recorded.
  [[nodiscard]] bool empty() const;

  void clear();

 private:
  bool enabled_ = false;
  mutable std::mutex mu_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::vector<double>, std::less<>> histograms_;
};

}  // namespace tda::telemetry
