#include "telemetry/tracer.hpp"

#include <cmath>
#include <sstream>

#include "telemetry/json.hpp"

namespace tda::telemetry {

namespace {
std::string format_number(double value) {
  if (!std::isfinite(value)) {
    note_nonfinite_dropped();
    return "null";
  }
  // Integral values print without a decimal point (span attrs carry a
  // lot of counts: blocks, threads, steps).
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  std::ostringstream os;
  os.precision(9);
  os << value;
  return os.str();
}
}  // namespace

SpanId Tracer::begin(std::string_view name, std::string_view category) {
  if (!enabled_) return kInvalidSpan;
  SpanRecord rec;
  rec.name.assign(name);
  rec.category.assign(category);
  rec.begin_s = rec.end_s = now();
  rec.parent = stack_.empty() ? kInvalidSpan : stack_.back();
  rec.depth = static_cast<int>(stack_.size());
  spans_.push_back(std::move(rec));
  const SpanId id = spans_.size() - 1;
  stack_.push_back(id);
  return id;
}

void Tracer::end(SpanId id) {
  if (id == kInvalidSpan || id >= spans_.size()) return;
  const double ts = now();
  spans_[id].end_s = ts;
  // Unwind to the ended span, closing any descendants whose end calls
  // were skipped (e.g. an exception unwound past their ScopedSpan).
  while (!stack_.empty()) {
    const SpanId top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
    spans_[top].end_s = ts;
  }
}

SpanId Tracer::emit(std::string_view name, std::string_view category,
                    double begin_s, double end_s) {
  if (!enabled_) return kInvalidSpan;
  SpanRecord rec;
  rec.name.assign(name);
  rec.category.assign(category);
  rec.begin_s = begin_s;
  rec.end_s = end_s;
  rec.parent = stack_.empty() ? kInvalidSpan : stack_.back();
  rec.depth = static_cast<int>(stack_.size());
  spans_.push_back(std::move(rec));
  return spans_.size() - 1;
}

void Tracer::attr(SpanId id, std::string_view key, std::string_view value) {
  if (id == kInvalidSpan || id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(std::string(key), std::string(value));
}

void Tracer::attr(SpanId id, std::string_view key, double value) {
  if (id == kInvalidSpan || id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(std::string(key), format_number(value));
}

std::string Tracer::current_path() const {
  std::string path;
  for (const SpanId id : stack_) {
    if (!path.empty()) path += '/';
    path += spans_[id].name;
  }
  return path;
}

void Tracer::clear() {
  spans_.clear();
  stack_.clear();
}

}  // namespace tda::telemetry
