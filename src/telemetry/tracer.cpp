#include "telemetry/tracer.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "telemetry/json.hpp"

namespace tda::telemetry {

namespace {
std::string format_number(double value) {
  if (!std::isfinite(value)) {
    note_nonfinite_dropped();
    return "null";
  }
  // Integral values print without a decimal point (span attrs carry a
  // lot of counts: blocks, threads, steps).
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  std::ostringstream os;
  os.precision(9);
  os << value;
  return os.str();
}

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_tracer_uid{1};
}  // namespace

std::uint64_t next_trace_id() {
  return g_next_trace.fetch_add(1, std::memory_order_relaxed);
}

std::string trace_id_hex(std::uint64_t trace_id) {
  std::ostringstream os;
  os << std::hex << trace_id;
  return os.str();
}

Tracer::Tracer()
    : uid_(g_next_tracer_uid.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::ThreadState& Tracer::tls() const {
  static thread_local std::unordered_map<std::uint64_t, ThreadState>
      t_states;
  ThreadState& st = t_states[uid_];
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (st.epoch != epoch) {
    st.epoch = epoch;
    st.stack.clear();
    st.ambient = {};
  }
  return st;
}

void Tracer::set_clock(std::function<double()> clock) {
  std::lock_guard lk(mu_);
  clock_ = std::move(clock);
}

double Tracer::now() const {
  std::lock_guard lk(mu_);
  return clock_ ? clock_() : 0.0;
}

SpanId Tracer::record_locked(std::string_view name,
                             std::string_view category, double begin_s,
                             double end_s, SpanId parent,
                             std::uint64_t trace_id) {
  SpanRecord rec;
  rec.name.assign(name);
  rec.category.assign(category);
  rec.begin_s = begin_s;
  rec.end_s = end_s;
  rec.parent = parent;
  rec.trace_id = trace_id;
  rec.depth =
      parent != kInvalidSpan && parent < spans_.size()
          ? spans_[parent].depth + 1
          : 0;
  spans_.push_back(std::move(rec));
  return spans_.size() - 1;
}

SpanId Tracer::begin(std::string_view name, std::string_view category) {
  if (!enabled()) return kInvalidSpan;
  ThreadState& st = tls();
  std::lock_guard lk(mu_);
  SpanId parent;
  std::uint64_t trace;
  if (!st.stack.empty()) {
    parent = st.stack.back();
    trace = parent < spans_.size() ? spans_[parent].trace_id : 0;
  } else {
    parent = st.ambient.parent;
    trace = st.ambient.trace_id;
  }
  const double ts = clock_ ? clock_() : 0.0;
  const SpanId id =
      record_locked(name, category, ts, ts, parent, trace);
  st.stack.push_back(id);
  return id;
}

void Tracer::end(SpanId id) {
  if (id == kInvalidSpan) return;
  ThreadState& st = tls();
  std::lock_guard lk(mu_);
  if (id >= spans_.size()) return;
  const double ts = clock_ ? clock_() : 0.0;
  spans_[id].end_s = ts;
  // Unwind to the ended span, closing any descendants whose end calls
  // were skipped (e.g. an exception unwound past their ScopedSpan).
  while (!st.stack.empty()) {
    const SpanId top = st.stack.back();
    st.stack.pop_back();
    if (top == id) break;
    if (top < spans_.size()) spans_[top].end_s = ts;
  }
}

SpanId Tracer::emit(std::string_view name, std::string_view category,
                    double begin_s, double end_s) {
  if (!enabled()) return kInvalidSpan;
  ThreadState& st = tls();
  std::lock_guard lk(mu_);
  SpanId parent;
  std::uint64_t trace;
  if (!st.stack.empty()) {
    parent = st.stack.back();
    trace = parent < spans_.size() ? spans_[parent].trace_id : 0;
  } else {
    parent = st.ambient.parent;
    trace = st.ambient.trace_id;
  }
  return record_locked(name, category, begin_s, end_s, parent, trace);
}

SpanId Tracer::emit_at(std::string_view name, std::string_view category,
                       double begin_s, double end_s, TraceContext ctx) {
  if (!enabled()) return kInvalidSpan;
  std::lock_guard lk(mu_);
  return record_locked(name, category, begin_s, end_s, ctx.parent,
                       ctx.trace_id);
}

SpanId Tracer::open_at(std::string_view name, std::string_view category,
                       double begin_s, TraceContext ctx) {
  if (!enabled()) return kInvalidSpan;
  std::lock_guard lk(mu_);
  return record_locked(name, category, begin_s, begin_s, ctx.parent,
                       ctx.trace_id);
}

void Tracer::close_at(SpanId id, double end_s) {
  if (id == kInvalidSpan) return;
  std::lock_guard lk(mu_);
  if (id >= spans_.size()) return;
  spans_[id].end_s = end_s;
}

void Tracer::attr(SpanId id, std::string_view key, std::string_view value) {
  if (id == kInvalidSpan) return;
  std::lock_guard lk(mu_);
  if (id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(std::string(key), std::string(value));
}

void Tracer::attr(SpanId id, std::string_view key, double value) {
  if (id == kInvalidSpan) return;
  std::string formatted = format_number(value);
  std::lock_guard lk(mu_);
  if (id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(std::string(key), std::move(formatted));
}

TraceContext Tracer::ambient() const { return tls().ambient; }

void Tracer::set_ambient(TraceContext ctx) { tls().ambient = ctx; }

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard lk(mu_);
  return spans_;
}

std::size_t Tracer::open_spans() const { return tls().stack.size(); }

std::string Tracer::current_path() const {
  ThreadState& st = tls();
  std::lock_guard lk(mu_);
  std::string path;
  for (const SpanId id : st.stack) {
    if (id >= spans_.size()) continue;
    if (!path.empty()) path += '/';
    path += spans_[id].name;
  }
  return path;
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  spans_.clear();
  // Bumping the epoch lazily resets every thread's stack and ambient
  // context the next time that thread touches this tracer.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace tda::telemetry
