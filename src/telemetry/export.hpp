#pragma once
// Exporters: Chrome trace-event JSON (open in chrome://tracing or
// https://ui.perfetto.dev) for the span tracer, a flat JSON dump for
// the metrics registry, and an OpenMetrics/Prometheus text rendering of
// the same registry. EnvExport is the env-var gate: with
// TDA_TRACE=<path>, TDA_METRICS=<path> and/or TDA_OPENMETRICS=<path>
// set it enables the corresponding telemetry half and writes the
// file(s) when it goes out of scope; TDA_METRICS_INTERVAL=<seconds>
// additionally rewrites the metrics file(s) periodically while the
// scope lives, so a long service run can be scraped mid-flight.

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/telemetry.hpp"

namespace tda::telemetry {

/// Chrome trace-event JSON ("X" complete events, timestamps in
/// microseconds). Events are ordered so that a parent precedes its
/// children even when they share a begin timestamp. Spans carrying a
/// trace id land on a per-trace tid row and every event's args carry
/// span_id / parent_id / trace_id, so tooling can rebuild the exact
/// request tree (scripts/trace_tree_check.py does).
std::string to_chrome_trace(const Tracer& tracer);

/// Flat metrics JSON: {"counters":{..},"gauges":{..},"histograms":
/// {name:{count,min,max,mean,p50,p95}},"latency":{name:{count,sum,
/// p50,p95,p99,exemplar...}}}.
std::string to_metrics_json(const MetricsRegistry& metrics);

/// OpenMetrics text format (the Prometheus exposition format): counters
/// as <name>_total, gauges plain, sample histograms as summaries with
/// quantile labels, latency histograms as cumulative _bucket{le="..."}
/// series with trace-id exemplars, terminated by "# EOF". Metric names
/// are sanitized (dots -> underscores) and prefixed "tda_"; labeled()
/// keys contribute their label sets verbatim.
std::string to_openmetrics(const MetricsRegistry& metrics);

/// Writes `content` to `path`; false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

/// $TDA_TRACE / $TDA_METRICS / $TDA_OPENMETRICS, empty when unset.
std::string trace_env_path();
std::string metrics_env_path();
std::string openmetrics_env_path();
/// $TDA_METRICS_INTERVAL in seconds; 0 when unset/invalid.
double metrics_interval_env();

/// Env-gated export scope. `suffix` (optional) is sanitized and
/// inserted before the file extension so multi-device runs don't
/// clobber one file ("out.json" + "GTX 280" -> "out.GTX_280.json").
class EnvExport {
 public:
  explicit EnvExport(Telemetry& tel, std::string suffix = {});
  ~EnvExport();

  EnvExport(const EnvExport&) = delete;
  EnvExport& operator=(const EnvExport&) = delete;

  /// True when at least one of the env vars is set.
  [[nodiscard]] bool active() const {
    return !trace_path_.empty() || !metrics_path_.empty() ||
           !openmetrics_path_.empty();
  }
  [[nodiscard]] const std::string& trace_path() const {
    return trace_path_;
  }
  [[nodiscard]] const std::string& metrics_path() const {
    return metrics_path_;
  }
  [[nodiscard]] const std::string& openmetrics_path() const {
    return openmetrics_path_;
  }
  /// Seconds between periodic metrics snapshots (0 = disabled).
  [[nodiscard]] double snapshot_interval_s() const { return interval_s_; }

  /// Writes the export files now. Safe to call any number of times —
  /// the destructor unconditionally writes a final snapshot anyway, so
  /// a mid-run flush (admin `stats`, SIGHUP) never costs the shutdown
  /// one: the on-disk files always end reflecting the whole run.
  void flush();

 private:
  void write_metrics_files() const;
  void snapshot_loop();

  Telemetry* tel_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string openmetrics_path_;
  double interval_s_ = 0.0;

  // Periodic snapshot writer (only spawned when interval > 0 and a
  // metrics path is set).
  std::thread snapshot_thread_;
  std::mutex snap_mu_;
  std::condition_variable snap_cv_;
  bool snap_stop_ = false;
};

}  // namespace tda::telemetry
