#pragma once
// Exporters: Chrome trace-event JSON (open in chrome://tracing or
// https://ui.perfetto.dev) for the span tracer, and a flat JSON dump
// for the metrics registry. EnvExport is the env-var gate: with
// TDA_TRACE=<path> and/or TDA_METRICS=<path> set it enables the
// corresponding telemetry half and writes the file(s) when it goes out
// of scope.

#include <string>

#include "telemetry/telemetry.hpp"

namespace tda::telemetry {

/// Chrome trace-event JSON ("X" complete events, simulated-time
/// timestamps in microseconds). Events are ordered so that a parent
/// precedes its children even when they share a begin timestamp.
std::string to_chrome_trace(const Tracer& tracer);

/// Flat metrics JSON: {"counters":{..},"gauges":{..},"histograms":
/// {name:{count,min,max,mean,p50,p95}}}.
std::string to_metrics_json(const MetricsRegistry& metrics);

/// Writes `content` to `path`; false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

/// $TDA_TRACE / $TDA_METRICS, empty when unset.
std::string trace_env_path();
std::string metrics_env_path();

/// Env-gated export scope. `suffix` (optional) is sanitized and
/// inserted before the file extension so multi-device runs don't
/// clobber one file ("out.json" + "GTX 280" -> "out.GTX_280.json").
class EnvExport {
 public:
  explicit EnvExport(Telemetry& tel, std::string suffix = {});
  ~EnvExport();

  EnvExport(const EnvExport&) = delete;
  EnvExport& operator=(const EnvExport&) = delete;

  /// True when at least one of the env vars is set.
  [[nodiscard]] bool active() const {
    return !trace_path_.empty() || !metrics_path_.empty();
  }
  [[nodiscard]] const std::string& trace_path() const {
    return trace_path_;
  }
  [[nodiscard]] const std::string& metrics_path() const {
    return metrics_path_;
  }

  /// Writes the export files now (the destructor then skips them).
  void flush();

 private:
  Telemetry* tel_;
  std::string trace_path_;
  std::string metrics_path_;
  bool flushed_ = false;
};

}  // namespace tda::telemetry
