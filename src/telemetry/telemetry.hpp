#pragma once
// Telemetry session: one Tracer + one MetricsRegistry, attached to a
// gpusim::Device (Device::set_telemetry) and shared by every component
// that touches the device — solver stages, the dynamic tuner, the
// micro-benchmark probes. Both halves are disabled by default; an
// attached-but-disabled session costs one pointer test per launch and
// records nothing.

#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace tda::telemetry {

struct Telemetry {
  Tracer tracer;
  MetricsRegistry metrics;

  void enable_all() {
    tracer.enable();
    metrics.enable();
  }
  void disable_all() {
    tracer.enable(false);
    metrics.enable(false);
  }
  [[nodiscard]] bool any_enabled() const {
    return tracer.enabled() || metrics.enabled();
  }
  void clear() {
    tracer.clear();
    metrics.clear();
  }
};

/// Null-safe accessor used at span call sites:
/// `ScopedSpan s(tracer_of(tel), "solve")`.
inline Tracer* tracer_of(Telemetry* tel) {
  return tel != nullptr ? &tel->tracer : nullptr;
}

}  // namespace tda::telemetry
