#pragma once
// Span tracer — the observability substrate the paper's stage-timing
// figures (5–8) need: nestable, attributed spans over the *simulated*
// timeline (solo runs) or the wall clock (the service). A span is
// opened/closed explicitly (begin/end), by RAII (ScopedSpan), or
// emitted whole with pre-measured timestamps (emit — what
// Device::launch uses, since a launch's duration is only known after
// the cost model runs).
//
// Request-scoped tracing: every span carries a trace id. A TraceContext
// (trace id + parent span id, cheaply copyable) is minted at service
// admission — or at AutoSolver entry for in-process callers — and
// installed per thread (TraceScope). Spans opened with an empty stack
// inherit the ambient context, so a worker thread, a chunk split or a
// CPU-fallback path all parent under the originating request's root
// span even though that root was opened on another thread.
//
// Thread-safety: the span table is guarded by an internal mutex and the
// open-span stack is per (thread, tracer) — concurrent service workers
// can record into one shared tracer without external locking. The
// enabled flag is atomic so snapshot readers racing a toggle are
// well-defined.
//
// Zero overhead when disabled: begin()/emit() return kInvalidSpan and
// allocate nothing, attribute calls no-op. The time source is pluggable
// (set_clock); Device::set_telemetry wires it to the device's simulated
// timeline so spans line up with kernel-launch records.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tda::telemetry {

using SpanId = std::size_t;
inline constexpr SpanId kInvalidSpan = ~static_cast<SpanId>(0);

/// Request identity threaded through the solve path. trace_id 0 means
/// "no context"; parent is the span new work should hang under.
struct TraceContext {
  std::uint64_t trace_id = 0;
  SpanId parent = kInvalidSpan;

  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

/// Process-wide monotonically increasing trace id (never 0).
std::uint64_t next_trace_id();

/// Lower-case hex rendering of a trace id ("1a2b"); what exporters and
/// exemplars stamp on records.
std::string trace_id_hex(std::uint64_t trace_id);

/// One closed (or still-open) span.
struct SpanRecord {
  std::string name;
  std::string category;
  double begin_s = 0.0;  ///< simulated (or wall) seconds
  double end_s = 0.0;
  SpanId parent = kInvalidSpan;
  std::uint64_t trace_id = 0;  ///< request the span belongs to (0 = none)
  int depth = 0;  ///< nesting depth at open time (0 = root)
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  Tracer();

  void enable(bool on = true) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Installs the time source (seconds). Device::set_telemetry points
  /// this at the device's simulated timeline; the service points it at
  /// its wall clock; without a clock all timestamps are 0 (spans still
  /// nest correctly).
  void set_clock(std::function<double()> clock);
  [[nodiscard]] double now() const;

  /// Opens a nested span; returns kInvalidSpan when disabled. Parents
  /// at the calling thread's innermost open span, falling back to the
  /// thread's ambient TraceContext when the stack is empty.
  SpanId begin(std::string_view name, std::string_view category = {});

  /// Closes a span (and any still-open descendants on the calling
  /// thread's stack). No-op for kInvalidSpan.
  void end(SpanId id);

  /// Records a complete span with externally measured timestamps,
  /// parented at the calling thread's innermost open span (or ambient
  /// context). Returns kInvalidSpan when disabled.
  SpanId emit(std::string_view name, std::string_view category,
              double begin_s, double end_s);

  /// emit() with an explicit parent/trace — how the service stamps
  /// per-batch spans under a specific request's root regardless of
  /// which thread runs the batch.
  SpanId emit_at(std::string_view name, std::string_view category,
                 double begin_s, double end_s, TraceContext ctx);

  /// Opens a root-like span with an explicit begin timestamp and
  /// context, NOT pushed on any thread's stack. The service opens one
  /// "request" span per admission and close_at()s it when the request
  /// reaches a terminal state — possibly on another thread.
  SpanId open_at(std::string_view name, std::string_view category,
                 double begin_s, TraceContext ctx);

  /// Patches the end timestamp of an open_at() span.
  void close_at(SpanId id, double end_s);

  /// Attaches a key/value attribute to a span. Numeric overloads print
  /// integers without a decimal point. No-ops for kInvalidSpan.
  void attr(SpanId id, std::string_view key, std::string_view value);
  void attr(SpanId id, std::string_view key, double value);

  /// The calling thread's ambient trace context (install via
  /// TraceScope; returns {} when none is set).
  [[nodiscard]] TraceContext ambient() const;
  void set_ambient(TraceContext ctx);

  /// Borrowing accessor for single-threaded callers (tests, the solo
  /// benches). Concurrent recorders must use snapshot().
  [[nodiscard]] const std::vector<SpanRecord>& spans() const {
    return spans_;
  }
  /// Locked copy of the span table — safe while workers still record.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Open spans on the calling thread's stack.
  [[nodiscard]] std::size_t open_spans() const;

  /// Slash-joined names of the calling thread's open-span stack
  /// ("solve/stage1"); what Device::launch stamps on TraceRecords as
  /// the phase label.
  [[nodiscard]] std::string current_path() const;

  void clear();

 private:
  struct ThreadState {
    std::uint64_t epoch = 0;
    std::vector<SpanId> stack;
    TraceContext ambient;
  };

  /// The calling thread's state for THIS tracer (reset lazily after
  /// clear() bumps the epoch). Entries for destroyed tracers persist in
  /// the thread-local map — bounded by tracers created, all tiny.
  [[nodiscard]] ThreadState& tls() const;

  SpanId record_locked(std::string_view name, std::string_view category,
                       double begin_s, double end_s, SpanId parent,
                       std::uint64_t trace_id);

  std::atomic<bool> enabled_{false};
  const std::uint64_t uid_;
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex mu_;
  std::function<double()> clock_;  // guarded by mu_
  std::vector<SpanRecord> spans_;  // guarded by mu_
};

/// RAII span: closes on scope exit. Safe on a null tracer or a disabled
/// one — every member degrades to a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name,
             std::string_view category = {})
      : tracer_(tracer),
        id_(tracer != nullptr ? tracer->begin(name, category)
                              : kInvalidSpan) {}
  ScopedSpan(Tracer& tracer, std::string_view name,
             std::string_view category = {})
      : ScopedSpan(&tracer, name, category) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  /// Closes the span early (idempotent).
  void finish() {
    if (tracer_ != nullptr && id_ != kInvalidSpan) {
      tracer_->end(id_);
      id_ = kInvalidSpan;
    }
  }

  void attr(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr && id_ != kInvalidSpan)
      tracer_->attr(id_, key, value);
  }
  void attr(std::string_view key, double value) {
    if (tracer_ != nullptr && id_ != kInvalidSpan)
      tracer_->attr(id_, key, value);
  }

  [[nodiscard]] bool active() const { return id_ != kInvalidSpan; }
  [[nodiscard]] SpanId id() const { return id_; }

 private:
  Tracer* tracer_;
  SpanId id_;
};

/// RAII ambient-context installer: spans the calling thread opens while
/// the scope lives inherit `ctx` when their stack is empty. Restores
/// the previous ambient context on exit; null tracer no-ops.
class TraceScope {
 public:
  TraceScope(Tracer* tracer, TraceContext ctx) : tracer_(tracer) {
    if (tracer_ != nullptr) {
      prev_ = tracer_->ambient();
      tracer_->set_ambient(ctx);
    }
  }
  TraceScope(Tracer& tracer, TraceContext ctx)
      : TraceScope(&tracer, ctx) {}

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (tracer_ != nullptr) tracer_->set_ambient(prev_);
  }

 private:
  Tracer* tracer_;
  TraceContext prev_;
};

}  // namespace tda::telemetry
