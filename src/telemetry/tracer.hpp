#pragma once
// Span tracer — the observability substrate the paper's stage-timing
// figures (5–8) need: nestable, attributed spans over the *simulated*
// timeline. A span is opened/closed explicitly (begin/end), by RAII
// (ScopedSpan), or emitted whole with pre-measured timestamps (emit —
// what Device::launch uses, since a launch's duration is only known
// after the cost model runs).
//
// Zero overhead when disabled: begin()/emit() return kInvalidSpan and
// allocate nothing, attribute calls no-op. The time source is pluggable
// (set_clock); Device::set_telemetry wires it to the device's simulated
// timeline so spans line up with kernel-launch records.

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tda::telemetry {

using SpanId = std::size_t;
inline constexpr SpanId kInvalidSpan = ~static_cast<SpanId>(0);

/// One closed (or still-open) span.
struct SpanRecord {
  std::string name;
  std::string category;
  double begin_s = 0.0;  ///< simulated seconds
  double end_s = 0.0;
  SpanId parent = kInvalidSpan;
  int depth = 0;  ///< nesting depth at open time (0 = root)
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Installs the time source (seconds). Device::set_telemetry points
  /// this at the device's simulated timeline; without a clock all
  /// timestamps are 0 (spans still nest correctly).
  void set_clock(std::function<double()> clock) {
    clock_ = std::move(clock);
  }
  [[nodiscard]] double now() const { return clock_ ? clock_() : 0.0; }

  /// Opens a nested span; returns kInvalidSpan when disabled.
  SpanId begin(std::string_view name, std::string_view category = {});

  /// Closes a span (and any still-open descendants). No-op for
  /// kInvalidSpan.
  void end(SpanId id);

  /// Records a complete span with externally measured timestamps,
  /// parented at the innermost open span. Returns kInvalidSpan when
  /// disabled.
  SpanId emit(std::string_view name, std::string_view category,
              double begin_s, double end_s);

  /// Attaches a key/value attribute to a span. Numeric overloads print
  /// integers without a decimal point. No-ops for kInvalidSpan.
  void attr(SpanId id, std::string_view key, std::string_view value);
  void attr(SpanId id, std::string_view key, double value);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const {
    return spans_;
  }
  [[nodiscard]] std::size_t open_spans() const { return stack_.size(); }

  /// Slash-joined names of the open-span stack ("solve/stage1"); what
  /// Device::launch stamps on TraceRecords as the phase label.
  [[nodiscard]] std::string current_path() const;

  void clear();

 private:
  bool enabled_ = false;
  std::function<double()> clock_;
  std::vector<SpanRecord> spans_;
  std::vector<SpanId> stack_;
};

/// RAII span: closes on scope exit. Safe on a null tracer or a disabled
/// one — every member degrades to a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name,
             std::string_view category = {})
      : tracer_(tracer),
        id_(tracer != nullptr ? tracer->begin(name, category)
                              : kInvalidSpan) {}
  ScopedSpan(Tracer& tracer, std::string_view name,
             std::string_view category = {})
      : ScopedSpan(&tracer, name, category) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  /// Closes the span early (idempotent).
  void finish() {
    if (tracer_ != nullptr && id_ != kInvalidSpan) {
      tracer_->end(id_);
      id_ = kInvalidSpan;
    }
  }

  void attr(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr && id_ != kInvalidSpan)
      tracer_->attr(id_, key, value);
  }
  void attr(std::string_view key, double value) {
    if (tracer_ != nullptr && id_ != kInvalidSpan)
      tracer_->attr(id_, key, value);
  }

  [[nodiscard]] bool active() const { return id_ != kInvalidSpan; }
  [[nodiscard]] SpanId id() const { return id_; }

 private:
  Tracer* tracer_;
  SpanId id_;
};

}  // namespace tda::telemetry
