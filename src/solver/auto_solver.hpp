#pragma once
// AutoSolver — the friendly front door of the library.
//
// Owns a device, a tuning cache and the per-shape tuned switch points:
// the first solve of a new (m, n) shape triggers the §IV-D self-tuning
// run (sub-second), later solves of that shape reuse the cached result —
// exactly the deployment model the paper advocates ("save those results
// for future runs"). Handles uniform and ragged batches.

#include <cstddef>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "solver/ragged.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "tridiag/batch.hpp"
#include "tuning/cache.hpp"
#include "tuning/dynamic_tuner.hpp"

namespace tda::solver {

template <typename T>
class AutoSolver {
 public:
  /// `cache_path` (optional) persists tuning results across processes.
  ///
  /// The solver owns a telemetry session. It activates when the
  /// TDA_TRACE / TDA_METRICS env vars are set (files written on
  /// destruction) or programmatically via `telemetry().enable_all()`;
  /// otherwise it stays disabled and free. The session is attached to
  /// the device unless the caller already attached their own.
  explicit AutoSolver(gpusim::Device& dev, std::string cache_path = {})
      : dev_(&dev), cache_path_(std::move(cache_path)) {
    if (!cache_path_.empty()) cache_.load(cache_path_);
    if (dev_->telemetry() == nullptr) {
      dev_->set_telemetry(&telemetry_);
      attached_telemetry_ = true;
    }
  }

  ~AutoSolver() {
    // Merge-on-save: another solver pointed at the same cache_path may
    // have persisted entries since we loaded — keep those instead of
    // clobbering the file with only our view.
    if (!cache_path_.empty()) cache_.save_merged(cache_path_);
    if (attached_telemetry_) dev_->set_telemetry(nullptr);
  }

  AutoSolver(const AutoSolver&) = delete;
  AutoSolver& operator=(const AutoSolver&) = delete;

  /// Tuned switch points for a workload shape (tunes on first use).
  SwitchPoints points_for(const Workload& w) {
    tuning::DynamicTuner<T> tuner(*dev_, &cache_);
    auto result = tuner.tune(w);
    tunes_performed_ += result.from_cache ? 0 : 1;
    return result.points;
  }

  /// Solves a uniform batch with per-shape tuned parameters.
  SolveStats solve(tridiag::TridiagBatch<T>& batch) {
    RequestRoot root(*this, "uniform");
    const Workload w{batch.num_systems(), batch.system_size()};
    GpuTridiagonalSolver<T> solver(*dev_, points_for(w));
    return solver.solve(batch);
  }

  /// Solves a ragged batch by grouping equal-sized systems; each group
  /// is solved with its own tuned parameters. Returns the total
  /// simulated milliseconds.
  double solve(RaggedBatch<T>& batch) {
    RequestRoot root(*this, "ragged");
    double total_ms = 0.0;
    for (auto& [n, members] : batch.groups_by_size()) {
      auto group = batch.gather_group(n, members);
      total_ms += solve(group).total_ms;
      batch.scatter_group(group, members);
    }
    return total_ms;
  }

  [[nodiscard]] const tuning::TuningCache& cache() const { return cache_; }
  [[nodiscard]] std::size_t tunes_performed() const {
    return tunes_performed_;
  }
  [[nodiscard]] gpusim::Device& device() { return *dev_; }

  /// The owned telemetry session (spans + metrics of every solve/tune
  /// on this solver while enabled).
  [[nodiscard]] tda::telemetry::Telemetry& telemetry() {
    return telemetry_;
  }
  [[nodiscard]] const tda::telemetry::Telemetry& telemetry() const {
    return telemetry_;
  }

  /// Programmatic exports; false on I/O failure.
  bool export_trace(const std::string& path) const {
    return tda::telemetry::write_text_file(
        path, tda::telemetry::to_chrome_trace(telemetry_.tracer));
  }
  bool export_metrics(const std::string& path) const {
    return tda::telemetry::write_text_file(
        path, tda::telemetry::to_metrics_json(telemetry_.metrics));
  }

 private:
  /// Opens a per-call "request" root span with a fresh trace id when the
  /// calling thread is not already inside a trace (the in-process
  /// counterpart of the service's admission-time minting). Joins the
  /// ambient trace silently when one is live — a nested solve() (ragged
  /// groups) or a service-managed call never forks a second tree.
  class RequestRoot {
   public:
    RequestRoot(AutoSolver& s, const char* kind) {
      auto* tel = s.dev_->telemetry();
      if (tel == nullptr || !tel->tracer.enabled()) return;
      if (tel->tracer.ambient().valid()) return;
      tracer_ = &tel->tracer;
      prev_ = tracer_->ambient();
      tracer_->set_ambient({tda::telemetry::next_trace_id(),
                            tda::telemetry::kInvalidSpan});
      span_ = tracer_->begin("request", "solver");
      tracer_->attr(span_, "kind", kind);
    }

    ~RequestRoot() {
      if (tracer_ == nullptr) return;
      if (span_ != tda::telemetry::kInvalidSpan) tracer_->end(span_);
      tracer_->set_ambient(prev_);
    }

    RequestRoot(const RequestRoot&) = delete;
    RequestRoot& operator=(const RequestRoot&) = delete;

   private:
    tda::telemetry::Tracer* tracer_ = nullptr;
    tda::telemetry::SpanId span_ = tda::telemetry::kInvalidSpan;
    tda::telemetry::TraceContext prev_;
  };

  gpusim::Device* dev_;
  std::string cache_path_;
  tuning::TuningCache cache_;
  std::size_t tunes_performed_ = 0;
  tda::telemetry::Telemetry telemetry_;
  tda::telemetry::EnvExport env_export_{telemetry_};
  bool attached_telemetry_ = false;
};

}  // namespace tda::solver
