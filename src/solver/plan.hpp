#pragma once
// Solve-plan construction: turns (workload, switch points) into concrete
// stage step counts, implementing the workflow of paper Figure 1.

#include <cstddef>

#include "common/check.hpp"
#include "solver/switch_points.hpp"

namespace tda::solver {

/// Concrete execution plan for one workload.
struct SolvePlan {
  std::size_t stage1_steps = 0;   ///< cooperative splits (one launch each)
  std::size_t stage2_steps = 0;   ///< independent splits (single launch)
  std::size_t total_splits = 0;   ///< stage1_steps + stage2_steps
  std::size_t stage3_sub_size = 0;  ///< max subsystem size entering stage 3
  std::size_t thomas_switch = 1;
  kernels::LoadVariant variant = kernels::LoadVariant::Strided;
  /// ElementMajor replaces the staged pipeline with transpose-in →
  /// interleaved Thomas → transpose-out; the split fields above are
  /// then unused (the interleaved kernel is single-pass).
  tridiag::BatchLayout layout = tridiag::BatchLayout::SystemMajor;
};

/// Smallest k such that ceil(n / 2^k) <= limit (0 when n <= limit).
inline std::size_t splits_needed(std::size_t n, std::size_t limit) {
  TDA_REQUIRE(limit >= 1, "size limit must be positive");
  std::size_t k = 0;
  std::size_t parts = 1;
  while ((n + parts - 1) / parts > limit) {
    parts *= 2;
    ++k;
    TDA_ENSURE(k < 64, "split count overflow");
  }
  return k;
}

/// Builds the plan: split until subsystems fit the stage-3 size, running
/// the first splits cooperatively (Stage 1) while there are fewer
/// independent systems than stage1_target_systems, the rest independently
/// (Stage 2).
inline SolvePlan make_plan(const Workload& w, const SwitchPoints& sp) {
  TDA_REQUIRE(w.num_systems >= 1 && w.system_size >= 1, "empty workload");
  TDA_REQUIRE(sp.stage3_system_size >= 1, "stage3 size must be positive");
  TDA_REQUIRE(sp.thomas_switch >= 1, "thomas switch must be positive");

  SolvePlan plan;
  plan.thomas_switch = sp.thomas_switch;
  plan.variant = sp.variant;
  plan.layout = sp.layout;
  plan.total_splits = splits_needed(w.system_size, sp.stage3_system_size);

  // Stage 1 runs while independent systems < target and splits remain.
  std::size_t k1 = 0;
  std::size_t independent = w.num_systems;
  while (independent < sp.stage1_target_systems &&
         k1 < plan.total_splits) {
    independent *= 2;
    ++k1;
  }
  plan.stage1_steps = k1;
  plan.stage2_steps = plan.total_splits - k1;

  const std::size_t parts = std::size_t{1} << plan.total_splits;
  plan.stage3_sub_size = (w.system_size + parts - 1) / parts;
  return plan;
}

}  // namespace tda::solver
