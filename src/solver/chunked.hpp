#pragma once
// Adaptive batch splitting under device memory pressure
// (docs/ROBUSTNESS.md, "Resource exhaustion").
//
// A batched solve needs 9 device arrays of m*n elements
// (kernels::DeviceBatch). When that footprint exceeds the device's
// memory budget the un-chunked path throws gpusim::OutOfMemory — a
// non-retryable error. ChunkedSolver turns it into degraded-but-correct
// service: it sizes sub-batches to what the budget can hold, solves
// them sequentially through the GuardedSolver pipeline, and stitches
// solutions and per-system statuses back into the caller's batch.
//
// Sizing is adaptive rather than precomputed-once: a chunk that still
// OOMs (the budget may be shared, or the `oom` fault site may fire) is
// bisected and retried, down to a per-system floor; at the floor the
// remaining systems escalate to the pivoting CPU fallback, so every
// system always terminates with a typed SystemStatus. Infrastructure
// faults (faults::DeviceFault) and cooperative cancellation
// (SolveCancelled) propagate — chunking only absorbs OutOfMemory.

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"
#include "kernels/device_batch.hpp"
#include "solver/guards.hpp"
#include "telemetry/telemetry.hpp"
#include "tridiag/batch.hpp"

namespace tda::solver {

/// How ChunkedSolver sizes its sub-batches.
struct ChunkPolicy {
  bool enable = true;  ///< false: always one chunk (OOM still escalates)
  /// Bisection floor: chunks never shrink below this many systems; a
  /// chunk at the floor that still OOMs goes to the CPU fallback.
  std::size_t min_chunk_systems = 1;
  /// Fraction of the currently-available budget a chunk may claim.
  /// 1.0 uses everything available; smaller leaves room for neighbours
  /// on a shared device.
  double headroom = 1.0;
};

/// Observability of one chunked solve.
struct ChunkStats {
  std::size_t chunks = 0;  ///< sub-batches actually solved on the GPU
  std::size_t planned_chunk_systems = 0;  ///< initial budget-derived size
  std::size_t max_chunk_systems = 0;      ///< largest chunk that ran
  std::size_t oom_events = 0;             ///< OutOfMemory throws absorbed
  std::size_t oom_fallback_systems = 0;   ///< solved on CPU at the floor
};

template <typename T>
struct ChunkedSolveResult {
  GuardedSolveResult<T> guarded;
  ChunkStats chunking;
};

/// GuardedSolver (or the raw solver, when guards are disabled) behind a
/// budget-aware chunking loop. Non-owning: device and inner solver must
/// outlive it.
template <typename T>
class ChunkedSolver {
 public:
  ChunkedSolver(gpusim::Device& dev, GpuTridiagonalSolver<T>& inner,
                std::optional<GuardConfig> guards = GuardConfig{},
                ChunkPolicy policy = {})
      : dev_(&dev), inner_(&inner), guards_(guards), policy_(policy) {}

  [[nodiscard]] const ChunkPolicy& policy() const { return policy_; }
  void set_policy(const ChunkPolicy& policy) { policy_ = policy; }

  /// Solves every system of the batch in budget-sized chunks. batch.x()
  /// holds the solution of every system whose status is Ok or
  /// FallbackUsed. Never throws OutOfMemory; DeviceFault and
  /// SolveCancelled propagate.
  ChunkedSolveResult<T> solve(tridiag::TridiagBatch<T>& batch) {
    const std::size_t m = batch.num_systems();
    const std::size_t n = batch.system_size();
    ChunkedSolveResult<T> result;
    result.guarded.status.assign(m, SystemStatus::Ok);
    if (m == 0) return result;

    telemetry::Telemetry* tel = dev_->telemetry();
    telemetry::ScopedSpan span(telemetry::tracer_of(tel), "chunked_solve",
                               "solver");
    span.attr("m", static_cast<double>(m));
    span.attr("n", static_cast<double>(n));

    const std::size_t per_sys = kernels::DeviceBatch<T>::footprint_bytes(1, n);
    const std::size_t floor = std::max<std::size_t>(
        1, std::min(policy_.min_chunk_systems, m));
    std::size_t planned = m;
    if (policy_.enable) {
      const double avail =
          static_cast<double>(dev_->memory().available()) *
          std::clamp(policy_.headroom, 0.0, 1.0);
      const double ideal = avail / static_cast<double>(per_sys);
      planned = ideal >= static_cast<double>(m)
                    ? m
                    : static_cast<std::size_t>(ideal);
      planned = std::clamp(planned, floor, m);
    }
    result.chunking.planned_chunk_systems = planned;

    std::size_t start = 0;
    std::size_t chunk = planned;
    // Host-side staging for partial chunks, rebuilt only when the chunk
    // size changes — steady-state chunking reuses one allocation.
    tridiag::TridiagBatch<T> scratch;
    while (start < m) {
      const std::size_t take = std::min(chunk, m - start);
      try {
        solve_range(batch, start, take, result.guarded, scratch);
        ++result.chunking.chunks;
        result.chunking.max_chunk_systems =
            std::max(result.chunking.max_chunk_systems, take);
        start += take;
        // Recovered headroom may allow regrowing toward the plan.
        chunk = std::max(chunk, planned);
      } catch (const gpusim::OutOfMemory&) {
        ++result.chunking.oom_events;
        if (take <= floor) {
          // Even the floor does not fit — the budget is truly gone.
          // Degrade to the pivoting CPU path so every system still
          // terminates with a typed status.
          for (std::size_t s = start; s < start + take; ++s) {
            result.guarded.status[s] = pivoting_fallback<T>(
                batch.system(s), batch.solution(s));
          }
          result.chunking.oom_fallback_systems += take;
          start += take;
          chunk = floor;
        } else {
          chunk = std::max(floor, take / 2);
        }
      }
    }

    finalize_counts(result.guarded);
    span.attr("chunks", static_cast<double>(result.chunking.chunks));
    span.attr("oom_events",
              static_cast<double>(result.chunking.oom_events));
    if (tel != nullptr && tel->metrics.enabled()) {
      auto& mx = tel->metrics;
      mx.add("solver.chunked_solves");
      mx.add("solver.chunks",
             static_cast<double>(result.chunking.chunks));
      if (result.chunking.chunks > 1) mx.add("solver.split_solves");
      if (result.chunking.oom_events > 0) {
        mx.add("solver.chunk_oom",
               static_cast<double>(result.chunking.oom_events));
      }
      if (result.chunking.oom_fallback_systems > 0) {
        mx.add("solver.oom_fallback_systems",
               static_cast<double>(result.chunking.oom_fallback_systems));
      }
    }
    return result;
  }

 private:
  /// Solves systems [start, start+take) and merges solutions + statuses
  /// into the caller's batch/result. Throws OutOfMemory upward for the
  /// chunking loop to absorb.
  void solve_range(tridiag::TridiagBatch<T>& batch, std::size_t start,
                   std::size_t take, GuardedSolveResult<T>& into,
                   tridiag::TridiagBatch<T>& scratch) {
    if (take == batch.num_systems()) {
      merge(into, run_one(batch), 0);
      return;
    }
    const std::size_t n = batch.system_size();
    if (scratch.num_systems() != take || scratch.system_size() != n) {
      scratch = tridiag::TridiagBatch<T>(take, n);
    }
    tridiag::TridiagBatch<T>& sub = scratch;
    for (std::size_t j = 0; j < take; ++j) {
      const std::size_t src = (start + j) * n;
      const std::size_t dst = j * n;
      for (std::size_t i = 0; i < n; ++i) {
        sub.a()[dst + i] = batch.a()[src + i];
        sub.b()[dst + i] = batch.b()[src + i];
        sub.c()[dst + i] = batch.c()[src + i];
        sub.d()[dst + i] = batch.d()[src + i];
      }
    }
    const GuardedSolveResult<T> part = run_one(sub);
    for (std::size_t j = 0; j < take; ++j) {
      const std::size_t src = j * n;
      const std::size_t dst = (start + j) * n;
      const SystemStatus st = part.status[j];
      if (st == SystemStatus::Ok || st == SystemStatus::FallbackUsed) {
        for (std::size_t i = 0; i < n; ++i) {
          batch.x()[dst + i] = sub.x()[src + i];
        }
      }
    }
    merge(into, part, start);
  }

  GuardedSolveResult<T> run_one(tridiag::TridiagBatch<T>& sub) {
    if (guards_.has_value()) {
      GuardedSolver<T> guard(*inner_, *guards_);
      return guard.solve(sub);
    }
    GuardedSolveResult<T> r;
    r.status.assign(sub.num_systems(), SystemStatus::Ok);
    r.stats = inner_->solve(sub);
    return r;
  }

  /// Accumulates a chunk's result at system offset `base`. The terminal
  /// per-status counts are recomputed in finalize_counts (a fallback at
  /// the OOM floor can overwrite a chunk's status after the fact).
  static void merge(GuardedSolveResult<T>& into,
                    const GuardedSolveResult<T>& part, std::size_t base) {
    for (std::size_t j = 0; j < part.status.size(); ++j) {
      into.status[base + j] = part.status[j];
    }
    if (into.stats.kernel_launches == 0) into.stats.plan = part.stats.plan;
    into.stats.total_ms += part.stats.total_ms;
    into.stats.stage1_ms += part.stats.stage1_ms;
    into.stats.stage2_ms += part.stats.stage2_ms;
    into.stats.stage3_ms += part.stats.stage3_ms;
    into.stats.host_total_ms += part.stats.host_total_ms;
    into.stats.host_stage1_ms += part.stats.host_stage1_ms;
    into.stats.host_stage2_ms += part.stats.host_stage2_ms;
    into.stats.host_stage3_ms += part.stats.host_stage3_ms;
    into.stats.kernel_launches += part.stats.kernel_launches;
    into.prescreen_routed += part.prescreen_routed;
    into.quarantined += part.quarantined;
    into.residual_rejects += part.residual_rejects;
  }

  static void finalize_counts(GuardedSolveResult<T>& r) {
    r.gpu_solved = r.fallback_used = r.singular = r.nonfinite = 0;
    for (const SystemStatus s : r.status) {
      switch (s) {
        case SystemStatus::Ok: ++r.gpu_solved; break;
        case SystemStatus::FallbackUsed: ++r.fallback_used; break;
        case SystemStatus::Singular: ++r.singular; break;
        case SystemStatus::NonFinite: ++r.nonfinite; break;
      }
    }
  }

  gpusim::Device* dev_;
  GpuTridiagonalSolver<T>* inner_;
  std::optional<GuardConfig> guards_;
  ChunkPolicy policy_;
};

}  // namespace tda::solver
