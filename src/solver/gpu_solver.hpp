#pragma once
// The multi-stage GPU tridiagonal solver — the paper's primary
// contribution. Composes the Stage-1 cooperative splitter, the Stage-2
// independent splitter and the Stage-3/4 PCR-Thomas base kernel according
// to a SolvePlan derived from the configured switch points.
//
// Typical use:
//
//   gpusim::Device dev(gpusim::geforce_gtx_470());
//   solver::GpuTridiagonalSolver<float> solver(dev, tuned_points);
//   auto stats = solver.solve(batch);            // batch.x() now holds x
//   std::cout << stats.total_ms << " simulated ms\n";

#include <cstddef>
#include <string>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "gpusim/launch.hpp"
#include "kernels/config.hpp"
#include "kernels/device_batch.hpp"
#include "kernels/interleaved_kernels.hpp"
#include "kernels/pcr_thomas_kernel.hpp"
#include "kernels/split_kernels.hpp"
#include "solver/cancel.hpp"
#include "solver/plan.hpp"
#include "solver/switch_points.hpp"
#include "telemetry/telemetry.hpp"
#include "tridiag/batch.hpp"

namespace tda::solver {

/// Timing breakdown of one multi-stage solve. The `*_ms` fields are
/// SIMULATED milliseconds from the cost model (deterministic, identical
/// across TDA_THREADS settings); the `host_*_ms` fields are measured
/// wall-clock time the host actually spent executing each stage — what
/// bench_wall and scripts/bench_diff.py track (docs/PERFORMANCE.md).
struct SolveStats {
  SolvePlan plan;
  double total_ms = 0.0;
  double stage1_ms = 0.0;
  double stage2_ms = 0.0;
  double stage3_ms = 0.0;
  /// Layout-conversion time of the element-major path (both transposes);
  /// 0 on the system-major pipeline. stage3_ms then holds the
  /// interleaved Thomas kernel, so transpose overhead vs. compute is
  /// directly visible in the breakdown (and as per-stage spans).
  double transpose_ms = 0.0;
  double host_total_ms = 0.0;
  double host_stage1_ms = 0.0;
  double host_stage2_ms = 0.0;
  double host_stage3_ms = 0.0;
  double host_transpose_ms = 0.0;
  std::size_t kernel_launches = 0;
};

template <typename T>
class GpuTridiagonalSolver {
 public:
  GpuTridiagonalSolver(gpusim::Device& dev, SwitchPoints points)
      : dev_(&dev), points_(points) {
    validate();
  }

  [[nodiscard]] const SwitchPoints& switch_points() const { return points_; }

  void set_switch_points(SwitchPoints points) {
    points_ = points;
    validate();
  }

  /// Largest stage-3 system size this device supports for element type T.
  [[nodiscard]] std::size_t max_on_chip_size() const {
    return kernels::max_shared_system_size(dev_->query(), sizeof(T));
  }

  /// Builds the plan this solver would execute for a workload.
  [[nodiscard]] SolvePlan plan_for(const Workload& w) const {
    return make_plan(w, points_);
  }

  /// Optional cooperative cancellation: when set, run() polls the token
  /// at every stage boundary (ticking its heartbeat) and throws
  /// SolveCancelled once cancel() has been called. Not owned; nullptr
  /// detaches. The service's watchdog drives this.
  void set_cancel_token(CancelToken* token) { cancel_ = token; }
  [[nodiscard]] CancelToken* cancel_token() const { return cancel_; }

  /// Solves every system of the batch; the solution lands in batch.x().
  /// Coefficient arrays of `batch` are left untouched (work happens in a
  /// device-side copy). Returns the simulated timing breakdown. The
  /// device copy counts against the device's memory budget (throws
  /// gpusim::OutOfMemory when it does not fit — see ChunkedSolver).
  SolveStats solve(tridiag::TridiagBatch<T>& batch) {
    kernels::DeviceBatch<T> dbatch(*dev_, batch);
    SolveStats stats = run(dbatch, kernels::ExecMode::Full);
    dbatch.download(batch);
    return stats;
  }

  /// Runs the full stage pipeline on a pre-allocated device batch. With
  /// ExecMode::CostOnly the arithmetic is skipped but the simulated time
  /// is identical — this is what the self-tuner's search measures.
  SolveStats run(kernels::DeviceBatch<T>& dbatch, kernels::ExecMode mode) {
    const Workload w{dbatch.num_systems(), dbatch.system_size()};
    const SolvePlan plan = plan_for(w);
    SolveStats stats;
    stats.plan = plan;

    telemetry::Telemetry* tel = dev_->telemetry();
    telemetry::ScopedSpan solve_span(telemetry::tracer_of(tel), "solve",
                                     "solver");
    solve_span.attr("m", static_cast<double>(w.num_systems));
    solve_span.attr("n", static_cast<double>(w.system_size));
    solve_span.attr("mode", mode == kernels::ExecMode::Full ? "full"
                                                            : "cost_only");
    solve_span.attr("layout", tridiag::to_string(plan.layout));

    poll_cancel();
    WallTimer host_total;
    double stage1_bytes = 0.0, stage2_bytes = 0.0, stage3_bytes = 0.0;
    double transpose_bytes = 0.0;
    if (plan.layout == tridiag::BatchLayout::ElementMajor) {
      run_element_major(dbatch, mode, tel, stats, stage3_bytes,
                        transpose_bytes);
    } else {
      run_system_major(dbatch, plan, mode, tel, stats, stage1_bytes,
                       stage2_bytes, stage3_bytes);
    }
    stats.total_ms = stats.stage1_ms + stats.stage2_ms + stats.stage3_ms +
                     stats.transpose_ms;
    stats.host_total_ms = host_total.millis();
    solve_span.attr("total_ms", stats.total_ms);

    if (tel != nullptr && tel->metrics.enabled()) {
      auto& mx = tel->metrics;
      mx.add(mode == kernels::ExecMode::Full ? "solver.solves"
                                             : "solver.cost_only_runs");
      if (mode == kernels::ExecMode::Full) {
        mx.add(telemetry::labeled(
            "solver.layout", {{"choice", tridiag::to_string(plan.layout)}}));
      }
      mx.observe("solve.total_ms", stats.total_ms);
      const auto stage_bw = [&mx](const char* stage, double ms,
                                  double bytes) {
        if (ms <= 0.0) return;
        mx.observe(std::string("solve.") + stage + "_ms", ms);
        if (bytes > 0.0) {
          mx.observe(std::string("solve.") + stage + ".bandwidth_gb_s",
                     bytes / (ms * 1e-3) / 1e9);
        }
      };
      stage_bw("stage1", stats.stage1_ms, stage1_bytes);
      stage_bw("stage2", stats.stage2_ms, stage2_bytes);
      stage_bw("stage3", stats.stage3_ms, stage3_bytes);
      stage_bw("transpose", stats.transpose_ms, transpose_bytes);
    }
    return stats;
  }

  /// Simulated solve time (ms) for a workload shape, without real data.
  /// Allocates a shape-only device batch; prefer run(&batch, CostOnly)
  /// with a reused batch inside search loops.
  double simulate_ms(const Workload& w) {
    kernels::DeviceBatch<T> dbatch(w.num_systems, w.system_size);
    return run(dbatch, kernels::ExecMode::CostOnly).total_ms;
  }

 private:
  /// The paper's staged pipeline on the wire (system-major) layout.
  void run_system_major(kernels::DeviceBatch<T>& dbatch,
                        const SolvePlan& plan, kernels::ExecMode mode,
                        telemetry::Telemetry* tel, SolveStats& stats,
                        double& stage1_bytes, double& stage2_bytes,
                        double& stage3_bytes) {
    kernels::SplitState st;
    if (plan.stage1_steps > 0) {
      telemetry::ScopedSpan span(telemetry::tracer_of(tel), "stage1",
                                 "solver");
      WallTimer host;
      for (std::size_t i = 0; i < plan.stage1_steps; ++i) {
        poll_cancel();
        auto ks = kernels::stage1_split_step(*dev_, dbatch, st, mode);
        stats.stage1_ms += ks.seconds * 1e3;
        stage1_bytes += ks.bytes_moved;
        ++stats.kernel_launches;
      }
      stats.host_stage1_ms = host.millis();
      span.attr("steps", static_cast<double>(plan.stage1_steps));
      span.attr("ms", stats.stage1_ms);
    }
    poll_cancel();
    if (plan.stage2_steps > 0) {
      telemetry::ScopedSpan span(telemetry::tracer_of(tel), "stage2",
                                 "solver");
      WallTimer host;
      auto ks =
          kernels::stage2_split(*dev_, dbatch, st, plan.stage2_steps, mode);
      stats.stage2_ms += ks.seconds * 1e3;
      stage2_bytes += ks.bytes_moved;
      ++stats.kernel_launches;
      stats.host_stage2_ms = host.millis();
      span.attr("steps", static_cast<double>(plan.stage2_steps));
      span.attr("ms", stats.stage2_ms);
    }
    poll_cancel();
    {
      telemetry::ScopedSpan span(telemetry::tracer_of(tel), "stage3_4",
                                 "solver");
      WallTimer host;
      auto ks = kernels::pcr_thomas_stage(
          *dev_, dbatch, st, plan.thomas_switch, plan.variant, mode);
      stats.stage3_ms += ks.seconds * 1e3;
      stage3_bytes += ks.bytes_moved;
      ++stats.kernel_launches;
      stats.host_stage3_ms = host.millis();
      span.attr("thomas_switch", static_cast<double>(plan.thomas_switch));
      span.attr("variant", kernels::to_string(plan.variant));
      span.attr("ms", stats.stage3_ms);
    }
  }

  /// The interleaved pipeline: transpose to element-major, run the
  /// one-pass SIMD-lane-per-system Thomas kernel, transpose the
  /// solution back. The transposes land in stats.transpose_ms so the
  /// crossover against the staged pipeline is visible per solve; the
  /// kernel itself is accounted as stage3 (it plays the base kernel's
  /// role). The batch is re-tagged system-major on exit, so chunked
  /// solves and tuner scratch can reuse it safely.
  void run_element_major(kernels::DeviceBatch<T>& dbatch,
                         kernels::ExecMode mode, telemetry::Telemetry* tel,
                         SolveStats& stats, double& stage3_bytes,
                         double& transpose_bytes) {
    {
      telemetry::ScopedSpan span(telemetry::tracer_of(tel), "transpose_in",
                                 "solver");
      WallTimer host;
      auto ks = kernels::transpose_in_stage(*dev_, dbatch, mode);
      stats.transpose_ms += ks.seconds * 1e3;
      transpose_bytes += ks.bytes_moved;
      ++stats.kernel_launches;
      stats.host_transpose_ms += host.millis();
      span.attr("ms", ks.seconds * 1e3);
    }
    poll_cancel();
    {
      telemetry::ScopedSpan span(telemetry::tracer_of(tel),
                                 "interleaved_thomas", "solver");
      WallTimer host;
      auto ks = kernels::interleaved_thomas_stage(
          *dev_, dbatch, kernels::SplitState{}, mode);
      stats.stage3_ms += ks.seconds * 1e3;
      stage3_bytes += ks.bytes_moved;
      ++stats.kernel_launches;
      stats.host_stage3_ms = host.millis();
      span.attr("ms", stats.stage3_ms);
    }
    poll_cancel();
    {
      telemetry::ScopedSpan span(telemetry::tracer_of(tel), "transpose_out",
                                 "solver");
      WallTimer host;
      auto ks = kernels::transpose_out_stage(*dev_, dbatch, mode);
      stats.transpose_ms += ks.seconds * 1e3;
      transpose_bytes += ks.bytes_moved;
      ++stats.kernel_launches;
      stats.host_transpose_ms += host.millis();
      span.attr("ms", ks.seconds * 1e3);
    }
  }

  /// Stage-boundary cancellation poll: ticks the heartbeat, then throws
  /// if a watchdog cancelled the token.
  void poll_cancel() {
    if (cancel_ == nullptr) return;
    cancel_->beat();
    if (cancel_->cancelled()) {
      throw SolveCancelled("solve cancelled at stage boundary");
    }
  }

  void validate() const {
    TDA_REQUIRE(points_.stage1_target_systems >= 1,
                "stage1 target must be positive");
    TDA_REQUIRE(points_.thomas_switch >= 1,
                "thomas switch must be positive");
    const std::size_t cap =
        kernels::max_shared_system_size(dev_->query(), sizeof(T));
    TDA_REQUIRE(cap >= 2, "device cannot run the base kernel at all");
    TDA_REQUIRE(points_.stage3_system_size >= 1 &&
                    points_.stage3_system_size <= cap,
                "stage3 system size exceeds on-chip capacity");
  }

  gpusim::Device* dev_;
  SwitchPoints points_;
  CancelToken* cancel_ = nullptr;
};

}  // namespace tda::solver
