#pragma once
// The tunable switch points of the multi-stage solver (§III-D) and the
// workload descriptor.

#include <cstddef>
#include <string>

#include "kernels/pcr_thomas_kernel.hpp"
#include "tridiag/batch.hpp"

namespace tda::solver {

/// A workload: m independent tridiagonal systems of n equations each
/// (the paper's "m×n", e.g. 1K×1K = 1024 systems of 1024 equations).
struct Workload {
  std::size_t num_systems = 1;   ///< m
  std::size_t system_size = 1;   ///< n

  [[nodiscard]] std::size_t total_equations() const {
    return num_systems * system_size;
  }
};

/// The switch-point parameter set the tuners select.
struct SwitchPoints {
  /// Stage-1→2 switch: Stage 1 keeps cooperatively splitting until the
  /// batch holds at least this many independent systems.
  std::size_t stage1_target_systems = 16;

  /// Stage-2→3 switch: subsystems enter the shared-memory kernel once
  /// their size is at most this (must fit on chip; may be tuned smaller
  /// than capacity for occupancy — paper Fig. 5).
  std::size_t stage3_system_size = 256;

  /// Stage-3→4 switch: number of interleaved subsystems a block splits
  /// into before handing each to a Thomas thread (paper Fig. 6).
  std::size_t thomas_switch = 32;

  /// Global->shared load strategy of the base kernel (§III-A).
  kernels::LoadVariant variant = kernels::LoadVariant::Strided;

  /// Batch data layout: SystemMajor runs the multi-stage PCR pipeline
  /// on the wire layout; ElementMajor transposes the batch and runs the
  /// one-pass interleaved (SIMD-lane-per-system) Thomas kernel. The
  /// tuner learns the transpose-cost/SIMD-gain crossover per workload
  /// exactly like the other switch points.
  tridiag::BatchLayout layout = tridiag::BatchLayout::SystemMajor;
};

inline std::string describe(const SwitchPoints& sp) {
  return "stage1_target=" + std::to_string(sp.stage1_target_systems) +
         " stage3_size=" + std::to_string(sp.stage3_system_size) +
         " thomas_switch=" + std::to_string(sp.thomas_switch) +
         " variant=" + std::string(kernels::to_string(sp.variant)) +
         " layout=" + tridiag::to_string(sp.layout);
}

}  // namespace tda::solver
