#pragma once
// Cooperative cancellation for in-flight solves (docs/ROBUSTNESS.md).
//
// A CancelToken is shared between the party running a solve (the service
// worker) and the party watching it (the watchdog thread). The solver
// polls the token at stage boundaries — the natural preemption points of
// the multi-stage pipeline — and each poll also ticks a heartbeat
// counter, so a watchdog can distinguish "slow but progressing" from
// "stalled": the beat count advances with every stage the solve clears.
//
// Cancellation is cooperative and monotonic: once cancel() is called the
// next poll throws SolveCancelled, which unwinds the solve without
// touching device state (all device buffers are RAII). There is no way
// to un-cancel a token; the owner hands a fresh token to the next job.

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace tda::solver {

/// Thrown by a solve whose CancelToken was cancelled mid-flight. Not a
/// faults::DeviceFault (nothing failed — the caller asked to stop) and
/// not a ContractError (the inputs may be fine): catchers decide whether
/// the work is abandoned (deadline lapsed) or requeued.
class SolveCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Shared cancellation flag + progress heartbeat. All operations are
/// lock-free; safe to poll from the solving thread while another thread
/// cancels or reads beats.
class CancelToken {
 public:
  /// Requests cancellation; the next poll on the solving thread throws.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Ticks the heartbeat (called by every solver-side poll).
  void beat() { beats_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t beats() const {
    return beats_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> beats_{0};
};

}  // namespace tda::solver
