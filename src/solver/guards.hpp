#pragma once
// Numerical guards around the multi-stage GPU solver (docs/ROBUSTNESS.md).
//
// The paper's PCR/Thomas chain is pivot-free: it is fast and exact on
// diagonally dominant systems and silently wrong (or worse, throwing from
// a zero pivot mid-batch) outside that envelope. GuardedSolver wraps
// GpuTridiagonalSolver with the three defenses a production service
// needs, and turns "exception or garbage" into a typed per-system
// SystemStatus:
//
//   1. pre-solve screening — finiteness and diagonal-dominance
//      classification per system; non-finite systems are rejected
//      outright, zero-diagonal (or below-floor dominance) systems are
//      routed to the pivoting CPU fallback before they can poison a
//      GPU batch;
//   2. quarantine bisect — when the GPU chain still throws a numerical
//      ContractError (PCR can manufacture a zero pivot from nonzero
//      input), the batch is bisected so only the culprit systems are
//      quarantined to the CPU path and every batchmate completes;
//   3. post-solve residual check — each GPU solution is verified against
//      a relative residual tolerance; failures escalate to the CPU
//      fallback (cpu/gtsv.hpp: LU with partial pivoting).
//
// Infrastructure failures (faults::DeviceFault) are deliberately NOT
// handled here: they are retryable and the service owns retry/failover.
// Only numerical errors are quarantined.

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/strided_view.hpp"
#include "cpu/gtsv.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/batch.hpp"

namespace tda::solver {

/// Per-system outcome of a guarded solve.
enum class SystemStatus {
  Ok,            ///< GPU solution accepted
  FallbackUsed,  ///< solved correctly, but by the pivoting CPU fallback
  Singular,      ///< numerically singular; no finite solution produced
  NonFinite,     ///< input contained NaN/Inf coefficients
};

inline const char* to_string(SystemStatus s) {
  switch (s) {
    case SystemStatus::Ok: return "ok";
    case SystemStatus::FallbackUsed: return "fallback_used";
    case SystemStatus::Singular: return "singular";
    case SystemStatus::NonFinite: return "nonfinite";
  }
  return "?";
}

/// Guard policy. Defaults are the production setting: everything on.
struct GuardConfig {
  bool prescreen = true;      ///< finiteness + dominance classification
  bool postcheck = true;      ///< residual verification of GPU solutions
  bool cpu_fallback = true;   ///< escalate failures to cpu::gtsv_solve
  /// Systems whose dominance ratio min_i |b_i|/(|a_i|+|c_i|) falls below
  /// this are routed straight to the pivoting fallback. 0 keeps weakly-
  /// and non-dominant systems on the GPU (the residual check still
  /// verifies them); 1.0 requires strict dominance for the GPU path.
  double dominance_floor = 0.0;
  /// Relative residual acceptance threshold; 0 selects the automatic
  /// tolerance 1e4 * epsilon(T) (see auto_residual_tol).
  double residual_tol = 0.0;
};

/// The default residual tolerance for element type T. Generous enough
/// for legitimate weakly-dominant systems, tight enough that a PCR chain
/// that lost the solution cannot pass.
template <typename T>
[[nodiscard]] constexpr double auto_residual_tol() {
  return 1e4 * static_cast<double>(std::numeric_limits<T>::epsilon());
}

/// Pre-solve classification of one system.
enum class ScreenVerdict {
  Pass,           ///< safe for the pivot-free GPU chain
  NeedsPivoting,  ///< finite but zero-diagonal / below the dominance floor
  NonFinite,      ///< contains NaN or Inf
};

template <typename T>
struct ScreenResult {
  ScreenVerdict verdict = ScreenVerdict::Pass;
  double dominance = 0.0;  ///< min_i |b_i| / (|a_i| + |c_i|)
  bool zero_diagonal = false;
};

/// One O(n) pass over a system: finiteness, zero pivots, dominance.
template <typename T>
[[nodiscard]] ScreenResult<T> prescreen_system(
    const tridiag::SystemView<T>& sys, double dominance_floor = 0.0) {
  ScreenResult<T> r;
  r.dominance = std::numeric_limits<double>::infinity();
  const std::size_t n = sys.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double ai = i > 0 ? static_cast<double>(sys.a[i]) : 0.0;
    const double bi = static_cast<double>(sys.b[i]);
    const double ci = i + 1 < n ? static_cast<double>(sys.c[i]) : 0.0;
    const double di = static_cast<double>(sys.d[i]);
    if (!std::isfinite(ai) || !std::isfinite(bi) || !std::isfinite(ci) ||
        !std::isfinite(di)) {
      r.verdict = ScreenVerdict::NonFinite;
      return r;
    }
    if (bi == 0.0) r.zero_diagonal = true;
    const double offsum = std::abs(ai) + std::abs(ci);
    const double ratio = offsum == 0.0
                             ? std::numeric_limits<double>::infinity()
                             : std::abs(bi) / offsum;
    if (ratio < r.dominance) r.dominance = ratio;
  }
  if (r.zero_diagonal || r.dominance < dominance_floor) {
    r.verdict = ScreenVerdict::NeedsPivoting;
  }
  return r;
}

/// Relative infinity-norm residual of a candidate solution:
/// max_i |d_i - (A x)_i| / (||A||_inf * ||x||_inf + ||d||_inf).
/// Returns +inf when x contains non-finite entries.
template <typename T>
[[nodiscard]] double relative_residual(const tridiag::SystemView<T>& sys,
                                       const StridedView<T>& x) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(x.size() == n, "residual: solution size mismatch");
  double max_r = 0.0, norm_a = 0.0, norm_x = 0.0, norm_d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(x[i]);
    if (!std::isfinite(xi)) return std::numeric_limits<double>::infinity();
    const double ai = i > 0 ? static_cast<double>(sys.a[i]) : 0.0;
    const double bi = static_cast<double>(sys.b[i]);
    const double ci = i + 1 < n ? static_cast<double>(sys.c[i]) : 0.0;
    const double di = static_cast<double>(sys.d[i]);
    double ax = bi * xi;
    if (i > 0) ax += ai * static_cast<double>(x[i - 1]);
    if (i + 1 < n) ax += ci * static_cast<double>(x[i + 1]);
    max_r = std::max(max_r, std::abs(di - ax));
    norm_a = std::max(norm_a, std::abs(ai) + std::abs(bi) + std::abs(ci));
    norm_x = std::max(norm_x, std::abs(xi));
    norm_d = std::max(norm_d, std::abs(di));
  }
  const double scale = norm_a * norm_x + norm_d;
  if (scale == 0.0) return max_r == 0.0 ? 0.0 : max_r;
  return max_r / scale;
}

/// Solves one system with the pivoting CPU solver (cpu/gtsv.hpp). The
/// inputs are copied (gtsv consumes its coefficients); the solution is
/// written to x only on success. Never returns Ok: a solution produced
/// here is by definition FallbackUsed.
template <typename T>
SystemStatus pivoting_fallback(const tridiag::SystemView<T>& sys,
                               StridedView<T> x) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(x.size() == n, "fallback: solution size mismatch");
  std::vector<T> a(n), b(n), c(n), d(n), xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = sys.a[i];
    b[i] = sys.b[i];
    c[i] = sys.c[i];
    d[i] = sys.d[i];
    if (!std::isfinite(static_cast<double>(a[i])) ||
        !std::isfinite(static_cast<double>(b[i])) ||
        !std::isfinite(static_cast<double>(c[i])) ||
        !std::isfinite(static_cast<double>(d[i]))) {
      return SystemStatus::NonFinite;
    }
  }
  const bool ok = cpu::gtsv_solve(std::span<T>(a), std::span<T>(b),
                                  std::span<T>(c), std::span<T>(d),
                                  std::span<T>(xs));
  if (!ok) return SystemStatus::Singular;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(static_cast<double>(xs[i]))) {
      return SystemStatus::Singular;
    }
  }
  for (std::size_t i = 0; i < n; ++i) x[i] = xs[i];
  return SystemStatus::FallbackUsed;
}

/// Outcome of one guarded batch solve.
template <typename T>
struct GuardedSolveResult {
  SolveStats stats;  ///< aggregate GPU timing (zero when nothing ran on GPU)
  std::vector<SystemStatus> status;  ///< one entry per system
  std::size_t gpu_solved = 0;        ///< systems whose GPU result was kept
  std::size_t fallback_used = 0;
  std::size_t singular = 0;
  std::size_t nonfinite = 0;
  std::size_t prescreen_routed = 0;   ///< routed to CPU before the GPU ran
  std::size_t quarantined = 0;        ///< isolated by the bisect
  std::size_t residual_rejects = 0;   ///< GPU solutions failing the check

  [[nodiscard]] bool all_ok() const {
    for (const SystemStatus s : status) {
      if (s != SystemStatus::Ok) return false;
    }
    return true;
  }
  /// True when every system has a correct solution (Ok or FallbackUsed).
  [[nodiscard]] bool all_solved() const {
    for (const SystemStatus s : status) {
      if (s != SystemStatus::Ok && s != SystemStatus::FallbackUsed) {
        return false;
      }
    }
    return true;
  }
};

/// GpuTridiagonalSolver plus the guard pipeline. Non-owning: the inner
/// solver (and its device) must outlive the guard.
template <typename T>
class GuardedSolver {
 public:
  explicit GuardedSolver(GpuTridiagonalSolver<T>& inner, GuardConfig cfg = {})
      : inner_(&inner), cfg_(cfg) {}

  [[nodiscard]] const GuardConfig& config() const { return cfg_; }
  void set_config(const GuardConfig& cfg) { cfg_ = cfg; }

  [[nodiscard]] double residual_tol() const {
    return cfg_.residual_tol > 0.0 ? cfg_.residual_tol
                                   : auto_residual_tol<T>();
  }

  /// Solves every system of the batch, routing through the guards.
  /// batch.x() holds the solution of every system whose status is Ok or
  /// FallbackUsed; other systems' x rows are untouched. Throws only for
  /// infrastructure errors (faults::DeviceFault) — numerical failure is
  /// always reported through the per-system status.
  GuardedSolveResult<T> solve(tridiag::TridiagBatch<T>& batch) {
    const std::size_t m = batch.num_systems();
    GuardedSolveResult<T> result;
    result.status.assign(m, SystemStatus::Ok);

    std::vector<std::size_t> gpu_list;
    gpu_list.reserve(m);
    if (cfg_.prescreen) {
      for (std::size_t s = 0; s < m; ++s) {
        const auto screen =
            prescreen_system<T>(batch.system(s), cfg_.dominance_floor);
        switch (screen.verdict) {
          case ScreenVerdict::Pass:
            gpu_list.push_back(s);
            break;
          case ScreenVerdict::NonFinite:
            result.status[s] = SystemStatus::NonFinite;
            break;
          case ScreenVerdict::NeedsPivoting:
            ++result.prescreen_routed;
            result.status[s] =
                cfg_.cpu_fallback
                    ? pivoting_fallback<T>(batch.system(s),
                                           batch.solution(s))
                    : SystemStatus::Singular;
            break;
        }
      }
    } else {
      for (std::size_t s = 0; s < m; ++s) gpu_list.push_back(s);
    }

    if (!gpu_list.empty()) solve_group(batch, gpu_list, result);

    if (cfg_.postcheck) {
      const double tol = residual_tol();
      for (std::size_t s = 0; s < m; ++s) {
        if (result.status[s] != SystemStatus::Ok) continue;
        const double res =
            relative_residual<T>(batch.system(s), batch.solution(s));
        if (res <= tol) continue;
        ++result.residual_rejects;
        result.status[s] =
            cfg_.cpu_fallback
                ? pivoting_fallback<T>(batch.system(s), batch.solution(s))
                : (std::isfinite(res) ? SystemStatus::Singular
                                      : SystemStatus::NonFinite);
      }
    }

    for (std::size_t s = 0; s < m; ++s) {
      switch (result.status[s]) {
        case SystemStatus::Ok: ++result.gpu_solved; break;
        case SystemStatus::FallbackUsed: ++result.fallback_used; break;
        case SystemStatus::Singular: ++result.singular; break;
        case SystemStatus::NonFinite: ++result.nonfinite; break;
      }
    }
    return result;
  }

 private:
  /// Solves the listed systems on the GPU, bisecting on numerical
  /// ContractError so one bad system cannot take down its batchmates.
  /// Statuses of quarantined systems are written into `result`; systems
  /// solved on the GPU keep status Ok (the residual check runs later).
  void solve_group(tridiag::TridiagBatch<T>& batch,
                   std::span<const std::size_t> list,
                   GuardedSolveResult<T>& result) {
    try {
      if (list.size() == batch.num_systems()) {
        // Common case: everything passed the screen — solve in place.
        accumulate(result.stats, inner_->solve(batch));
      } else {
        tridiag::TridiagBatch<T> sub(list.size(), batch.system_size());
        pack(batch, list, sub);
        accumulate(result.stats, inner_->solve(sub));
        unpack_solutions(sub, list, batch);
      }
      return;
    } catch (const ContractError&) {
      // Numerical failure somewhere in this group — bisect.
    }
    if (list.size() == 1) {
      const std::size_t s = list.front();
      ++result.quarantined;
      result.status[s] =
          cfg_.cpu_fallback
              ? pivoting_fallback<T>(batch.system(s), batch.solution(s))
              : SystemStatus::Singular;
      return;
    }
    const std::size_t half = list.size() / 2;
    solve_group(batch, list.subspan(0, half), result);
    solve_group(batch, list.subspan(half), result);
  }

  static void accumulate(SolveStats& into, const SolveStats& part) {
    if (into.kernel_launches == 0) into.plan = part.plan;
    into.total_ms += part.total_ms;
    into.stage1_ms += part.stage1_ms;
    into.stage2_ms += part.stage2_ms;
    into.stage3_ms += part.stage3_ms;
    into.kernel_launches += part.kernel_launches;
  }

  static void pack(tridiag::TridiagBatch<T>& from,
                   std::span<const std::size_t> list,
                   tridiag::TridiagBatch<T>& to) {
    const std::size_t n = from.system_size();
    for (std::size_t j = 0; j < list.size(); ++j) {
      const std::size_t src = list[j] * n;
      const std::size_t dst = j * n;
      for (std::size_t i = 0; i < n; ++i) {
        to.a()[dst + i] = from.a()[src + i];
        to.b()[dst + i] = from.b()[src + i];
        to.c()[dst + i] = from.c()[src + i];
        to.d()[dst + i] = from.d()[src + i];
      }
    }
  }

  static void unpack_solutions(tridiag::TridiagBatch<T>& from,
                               std::span<const std::size_t> list,
                               tridiag::TridiagBatch<T>& to) {
    const std::size_t n = from.system_size();
    for (std::size_t j = 0; j < list.size(); ++j) {
      const std::size_t src = j * n;
      const std::size_t dst = list[j] * n;
      for (std::size_t i = 0; i < n; ++i) {
        to.x()[dst + i] = from.x()[src + i];
      }
    }
  }

  GpuTridiagonalSolver<T>* inner_;
  GuardConfig cfg_;
};

}  // namespace tda::solver
