#pragma once
// Ragged batches: systems of varying size in one container (CSR-style
// offsets). Real applications — ADI on non-square grids, spline channels
// of different lengths, adaptive meshes — rarely produce perfectly
// uniform batches; the solver handles them by grouping equal-sized
// systems into uniform sub-batches.

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "tridiag/batch.hpp"

namespace tda::solver {

/// Variable-size batch of tridiagonal systems. System s occupies
/// [offset(s), offset(s+1)) of the coefficient arrays.
template <typename T>
class RaggedBatch {
 public:
  /// An empty `sizes` list is allowed (zero systems): the service layer
  /// routinely materialises ragged views of whatever happens to be
  /// pending, which may be nothing.
  explicit RaggedBatch(std::vector<std::size_t> sizes)
      : sizes_(std::move(sizes)) {
    offsets_.reserve(sizes_.size() + 1);
    offsets_.push_back(0);
    for (std::size_t n : sizes_) {
      TDA_REQUIRE(n >= 1, "every system needs at least one equation");
      offsets_.push_back(offsets_.back() + n);
    }
    const std::size_t total = offsets_.back();
    a_.resize(total);
    b_.resize(total);
    c_.resize(total);
    d_.resize(total);
    x_.resize(total);
  }

  [[nodiscard]] std::size_t num_systems() const { return sizes_.size(); }
  [[nodiscard]] std::size_t total_equations() const {
    return offsets_.back();
  }
  [[nodiscard]] std::size_t system_size(std::size_t s) const {
    TDA_REQUIRE(s < sizes_.size(), "system index out of range");
    return sizes_[s];
  }
  [[nodiscard]] std::size_t offset(std::size_t s) const {
    TDA_REQUIRE(s < offsets_.size(), "offset index out of range");
    return offsets_[s];
  }

  [[nodiscard]] std::span<T> a() { return {a_.data(), a_.size()}; }
  [[nodiscard]] std::span<T> b() { return {b_.data(), b_.size()}; }
  [[nodiscard]] std::span<T> c() { return {c_.data(), c_.size()}; }
  [[nodiscard]] std::span<T> d() { return {d_.data(), d_.size()}; }
  [[nodiscard]] std::span<T> x() { return {x_.data(), x_.size()}; }
  [[nodiscard]] std::span<const T> a() const { return {a_.data(), a_.size()}; }
  [[nodiscard]] std::span<const T> b() const { return {b_.data(), b_.size()}; }
  [[nodiscard]] std::span<const T> c() const { return {c_.data(), c_.size()}; }
  [[nodiscard]] std::span<const T> d() const { return {d_.data(), d_.size()}; }
  [[nodiscard]] std::span<const T> x() const { return {x_.data(), x_.size()}; }

  /// Groups system indices by size (ascending size order).
  [[nodiscard]] std::vector<std::pair<std::size_t, std::vector<std::size_t>>>
  groups_by_size() const {
    std::vector<std::pair<std::size_t, std::vector<std::size_t>>> groups;
    std::vector<std::size_t> order(sizes_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t l, std::size_t r) {
      return sizes_[l] < sizes_[r];
    });
    for (std::size_t idx : order) {
      if (groups.empty() || groups.back().first != sizes_[idx]) {
        groups.push_back({sizes_[idx], {}});
      }
      groups.back().second.push_back(idx);
    }
    return groups;
  }

  /// Gathers one size-group into a uniform batch.
  [[nodiscard]] tridiag::TridiagBatch<T> gather_group(
      std::size_t n, const std::vector<std::size_t>& members) const {
    tridiag::TridiagBatch<T> batch(members.size(), n);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::size_t src = offsets_[members[i]];
      TDA_REQUIRE(sizes_[members[i]] == n, "group member size mismatch");
      std::copy_n(a_.data() + src, n, batch.a().data() + i * n);
      std::copy_n(b_.data() + src, n, batch.b().data() + i * n);
      std::copy_n(c_.data() + src, n, batch.c().data() + i * n);
      std::copy_n(d_.data() + src, n, batch.d().data() + i * n);
    }
    return batch;
  }

  /// Scatters a solved group's x back into this container.
  void scatter_group(const tridiag::TridiagBatch<T>& batch,
                     const std::vector<std::size_t>& members) {
    const std::size_t n = batch.system_size();
    TDA_REQUIRE(batch.num_systems() == members.size(),
                "scatter: group size mismatch");
    for (std::size_t i = 0; i < members.size(); ++i) {
      std::copy_n(batch.x().data() + i * n, n,
                  x_.data() + offsets_[members[i]]);
    }
  }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> offsets_;
  std::vector<T> a_, b_, c_, d_, x_;
};

}  // namespace tda::solver
