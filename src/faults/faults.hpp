#pragma once
// Seeded fault-injection framework — the testing backbone of the
// resilience layer (docs/ROBUSTNESS.md).
//
// A FaultInjector makes deterministic per-site decisions: decision k at
// site S under seed σ always lands the same way, independent of thread
// interleaving or wall clock, so a CI failure under TDA_FAULTS=seed=7,...
// reproduces locally from the same spec string. Sites cover the faults a
// production solver service actually sees:
//
//   * DeviceLaunch / DeviceAlloc — a kernel launch or device allocation
//     fails (throws DeviceFault, the retryable error class);
//   * DeviceOOM — a device memory reservation fails (throws
//     gpusim::OutOfMemory, the NON-retryable class: the recovery story
//     is chunking the work smaller, not retrying);
//   * WorkerStall / WorkerCrash — a service worker sleeps mid-job or dies
//     outright (WorkerCrashFault escapes its loop; the service restarts
//     the worker);
//   * CacheCorrupt — tuning-cache bytes are flipped between disk and the
//     parser (exercises the cache's header/checksum rejection);
//   * PoisonNaN / PoisonZeroPivot — a submitted system is contaminated
//     before solving (exercises the numerical guards and quarantine);
//   * NetDrop / NetCorrupt — the wire front door (src/net/) loses a
//     connection mid-stream or receives corrupted frame bytes
//     (exercises client reconnect and the decoder's reject path).
//
// The process-wide injector (FaultInjector::global()) configures itself
// from $TDA_FAULTS on first use; code under test overrides it with a
// ScopedFaultConfig. Injection points are compiled in permanently but
// cost one predictable branch when the injector is idle — and the
// device-level sites additionally require the caller to arm them
// (gpusim::Device::arm_faults), so a fault-injection env var can never
// reach code that has no recovery story (e.g. a bare solver ablation).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>

namespace tda::faults {

/// Where a fault can be injected.
enum class Site : int {
  DeviceLaunch = 0,  ///< kernel launch fails (DeviceFault)
  DeviceAlloc,       ///< device allocation fails (DeviceFault)
  DeviceOOM,         ///< device memory reservation fails (gpusim::OutOfMemory)
  WorkerStall,       ///< worker sleeps stall_ms mid-job
  WorkerCrash,       ///< worker thread dies (WorkerCrashFault)
  CacheCorrupt,      ///< tuning-cache bytes flipped before parsing
  PoisonNaN,         ///< system contaminated with NaN coefficients
  PoisonZeroPivot,   ///< system given an exactly singular leading pivot
  NetDrop,           ///< front-door connection dropped mid-stream
  NetCorrupt,        ///< received frame bytes corrupted before decoding
};
inline constexpr int kSiteCount = 10;

const char* to_string(Site s);

/// Injection rates (probability per decision) plus the shared seed.
struct FaultConfig {
  std::uint64_t seed = 1;
  double rate[kSiteCount] = {};
  double stall_ms = 2.0;  ///< sleep length of one WorkerStall

  [[nodiscard]] double& rate_of(Site s) { return rate[static_cast<int>(s)]; }
  [[nodiscard]] double rate_of(Site s) const {
    return rate[static_cast<int>(s)];
  }
  /// True when any site can fire.
  [[nodiscard]] bool any() const;
  /// Round-trippable spec string ("seed=1,launch_fail=0.05,...").
  [[nodiscard]] std::string describe() const;
};

/// Parses a TDA_FAULTS spec: comma-separated key=value pairs. Keys:
///   seed, stall_ms, launch_fail, alloc_fail, oom, worker_stall,
///   worker_crash, cache_corrupt, nan_systems, zero_pivot_systems,
///   net_drop, net_corrupt
/// Rates are clamped to [0, 1]; unknown keys and unparsable values are
/// log-warned and skipped (a typo in an env var must not take the
/// process down — this is the robustness layer).
FaultConfig parse_fault_config(const std::string& spec);

/// Transient device-side failure (launch/allocation). The service treats
/// it as retryable: retry with backoff, then fail over.
class DeviceFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A worker thread's death. Escapes worker_loop; the service's scheduler
/// detects the dead worker, requeues its in-flight job and restarts it.
class WorkerCrashFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deterministic, thread-safe fault decision source.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {}

  /// Swaps in a new config and resets all per-site counters.
  void configure(const FaultConfig& cfg);
  [[nodiscard]] FaultConfig config() const;
  /// True when any site has a nonzero rate.
  [[nodiscard]] bool enabled() const;

  /// Draws the next decision for `site`. Deterministic in
  /// (seed, site, decision index).
  bool fire(Site site);

  /// Decisions drawn / faults injected at a site since configure().
  [[nodiscard]] std::uint64_t decisions(Site site) const;
  [[nodiscard]] std::uint64_t injected(Site site) const;
  /// Faults injected across all sites.
  [[nodiscard]] std::uint64_t total_injected() const;
  void reset_counters();

  /// Throws DeviceFault when `site` (DeviceLaunch/DeviceAlloc) fires.
  void maybe_device_fault(Site site, const std::string& detail);

  /// The process-wide injector, configured from $TDA_FAULTS once.
  static FaultInjector& global();

 private:
  mutable std::mutex mu_;
  FaultConfig cfg_;
  std::uint64_t decisions_[kSiteCount] = {};
  std::uint64_t injected_[kSiteCount] = {};
};

/// RAII override of the global injector (tests, benches). Restores the
/// previous config — and zeroed counters — on destruction.
class ScopedFaultConfig {
 public:
  explicit ScopedFaultConfig(const FaultConfig& cfg)
      : saved_(FaultInjector::global().config()) {
    FaultInjector::global().configure(cfg);
  }
  ~ScopedFaultConfig() { FaultInjector::global().configure(saved_); }

  ScopedFaultConfig(const ScopedFaultConfig&) = delete;
  ScopedFaultConfig& operator=(const ScopedFaultConfig&) = delete;

 private:
  FaultConfig saved_;
};

/// Deterministically flips `flips` single bits of `bytes` (no-op when
/// empty). The CacheCorrupt site and the cache-robustness tests share
/// this so "a corrupt file" means the same thing everywhere.
void corrupt_bytes(std::string& bytes, std::uint64_t seed,
                   std::size_t flips);

/// How poison_system contaminates a system.
enum class Poison {
  NaN,       ///< quiet NaN written into b and d mid-system
  ZeroPivot  ///< b[0] = 0 with a live superdiagonal: Thomas/PCR divide by 0
};

/// Poisons one tridiagonal system in place. The result is a system the
/// pivot-free GPU chain cannot solve: guards must screen it (NonFinite /
/// route to the pivoting fallback) or quarantine must isolate it.
template <typename T>
void poison_system(std::span<T> a, std::span<T> b, std::span<T> c,
                   std::span<T> d, Poison kind) {
  const std::size_t n = b.size();
  if (n == 0) return;
  switch (kind) {
    case Poison::NaN: {
      const T nan = std::numeric_limits<T>::quiet_NaN();
      b[n / 2] = nan;
      d[n / 2] = nan;
      break;
    }
    case Poison::ZeroPivot:
      b[0] = T{0};
      if (n > 1) {
        // keep the row coupled so the system is genuinely singular-ish
        // for pivot-free elimination, not just trivially rescalable
        c[0] = T{1};
        a[1] = T{0};
      } else {
        d[0] = T{1};  // 0 * x = 1: inconsistent even for the pivoting path
      }
      break;
  }
  (void)a;
  (void)c;
}

}  // namespace tda::faults
