#include "faults/faults.hpp"

#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace tda::faults {

namespace {

/// SplitMix64 finalizer — one well-mixed 64-bit word from a counter.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from (seed, site, decision index).
double decision_uniform(std::uint64_t seed, int site, std::uint64_t index) {
  const std::uint64_t h =
      mix64(seed ^ mix64(static_cast<std::uint64_t>(site + 1)) ^
            mix64(index * 0x2545F4914F6CDD1Dull));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

struct KeyName {
  const char* key;
  Site site;
};
constexpr KeyName kRateKeys[] = {
    {"launch_fail", Site::DeviceLaunch},
    {"alloc_fail", Site::DeviceAlloc},
    {"oom", Site::DeviceOOM},
    {"worker_stall", Site::WorkerStall},
    {"worker_crash", Site::WorkerCrash},
    {"cache_corrupt", Site::CacheCorrupt},
    {"nan_systems", Site::PoisonNaN},
    {"zero_pivot_systems", Site::PoisonZeroPivot},
    {"net_drop", Site::NetDrop},
    {"net_corrupt", Site::NetCorrupt},
};

}  // namespace

const char* to_string(Site s) {
  switch (s) {
    case Site::DeviceLaunch: return "launch_fail";
    case Site::DeviceAlloc: return "alloc_fail";
    case Site::DeviceOOM: return "oom";
    case Site::WorkerStall: return "worker_stall";
    case Site::WorkerCrash: return "worker_crash";
    case Site::CacheCorrupt: return "cache_corrupt";
    case Site::PoisonNaN: return "nan_systems";
    case Site::PoisonZeroPivot: return "zero_pivot_systems";
    case Site::NetDrop: return "net_drop";
    case Site::NetCorrupt: return "net_corrupt";
  }
  return "?";
}

bool FaultConfig::any() const {
  for (const double r : rate) {
    if (r > 0.0) return true;
  }
  return false;
}

std::string FaultConfig::describe() const {
  std::ostringstream os;
  os << "seed=" << seed;
  for (const auto& [key, site] : kRateKeys) {
    if (rate_of(site) > 0.0) os << ',' << key << '=' << rate_of(site);
  }
  if (rate_of(Site::WorkerStall) > 0.0) os << ",stall_ms=" << stall_ms;
  return os.str();
}

FaultConfig parse_fault_config(const std::string& spec) {
  FaultConfig cfg;
  std::istringstream ss(spec);
  for (std::string item; std::getline(ss, item, ',');) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      TDA_WARN("faults: ignoring malformed TDA_FAULTS item '" << item
                                                              << "'");
      continue;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    const bool numeric = end != nullptr && *end == '\0' && !value.empty();
    if (!numeric) {
      TDA_WARN("faults: ignoring non-numeric TDA_FAULTS value '" << item
                                                                 << "'");
      continue;
    }
    if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(v);
      continue;
    }
    if (key == "stall_ms") {
      cfg.stall_ms = v >= 0.0 ? v : 0.0;
      continue;
    }
    bool matched = false;
    for (const auto& [name, site] : kRateKeys) {
      if (key == name) {
        double r = v;
        if (r < 0.0 || r > 1.0) {
          TDA_WARN("faults: clamping rate " << key << "=" << r
                                            << " into [0,1]");
          r = r < 0.0 ? 0.0 : 1.0;
        }
        cfg.rate_of(site) = r;
        matched = true;
        break;
      }
    }
    if (!matched) {
      TDA_WARN("faults: ignoring unknown TDA_FAULTS key '" << key << "'");
    }
  }
  return cfg;
}

void FaultInjector::configure(const FaultConfig& cfg) {
  std::lock_guard lk(mu_);
  cfg_ = cfg;
  for (int i = 0; i < kSiteCount; ++i) {
    decisions_[i] = 0;
    injected_[i] = 0;
  }
}

FaultConfig FaultInjector::config() const {
  std::lock_guard lk(mu_);
  return cfg_;
}

bool FaultInjector::enabled() const {
  std::lock_guard lk(mu_);
  return cfg_.any();
}

bool FaultInjector::fire(Site site) {
  const int i = static_cast<int>(site);
  std::lock_guard lk(mu_);
  const double rate = cfg_.rate[i];
  if (rate <= 0.0) return false;
  const std::uint64_t index = decisions_[i]++;
  const bool hit = decision_uniform(cfg_.seed, i, index) < rate;
  if (hit) ++injected_[i];
  return hit;
}

std::uint64_t FaultInjector::decisions(Site site) const {
  std::lock_guard lk(mu_);
  return decisions_[static_cast<int>(site)];
}

std::uint64_t FaultInjector::injected(Site site) const {
  std::lock_guard lk(mu_);
  return injected_[static_cast<int>(site)];
}

std::uint64_t FaultInjector::total_injected() const {
  std::lock_guard lk(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t v : injected_) total += v;
  return total;
}

void FaultInjector::reset_counters() {
  std::lock_guard lk(mu_);
  for (int i = 0; i < kSiteCount; ++i) {
    decisions_[i] = 0;
    injected_[i] = 0;
  }
}

void FaultInjector::maybe_device_fault(Site site,
                                       const std::string& detail) {
  if (!fire(site)) return;
  throw DeviceFault(std::string("injected ") + to_string(site) + " (" +
                    detail + ")");
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  static const bool initialized = [] {
    if (const char* env = std::getenv("TDA_FAULTS");
        env != nullptr && *env != '\0') {
      const FaultConfig cfg = parse_fault_config(env);
      injector.configure(cfg);
      if (cfg.any()) {
        TDA_INFO("faults: injection enabled from TDA_FAULTS ("
                 << cfg.describe() << ")");
      }
    }
    return true;
  }();
  (void)initialized;
  return injector;
}

void corrupt_bytes(std::string& bytes, std::uint64_t seed,
                   std::size_t flips) {
  if (bytes.empty()) return;
  // Finalize the seed before xoring in the flip index: nearby seeds must
  // not produce permutations of the same flip set.
  const std::uint64_t state = mix64(seed);
  for (std::size_t f = 0; f < flips; ++f) {
    const std::uint64_t h = mix64(state ^ mix64(f + 1));
    const std::size_t pos = static_cast<std::size_t>(h % bytes.size());
    const unsigned bit = static_cast<unsigned>((h >> 32) & 7u);
    bytes[pos] = static_cast<char>(
        static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
  }
}

}  // namespace tda::faults
