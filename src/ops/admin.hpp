#pragma once
// The operations control plane: a unix-domain admin socket speaking
// tiny v1 framed commands — health, ready, stats, reload, drain,
// snapshot, handoff. Framing mirrors the data-plane protocol (magic +
// version + command + length + FNV-1a-32 checksum) but with its own
// magic ("TDAO"), so a data-plane client that dials the admin socket by
// mistake is rejected at the first header. Payloads are plain text:
// key=value lines in, key=value lines (or an error message) out —
// greppable from a shell via tridiag_cli or socat, parseable by the
// restart bench. docs/OPERATIONS.md documents every command.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "net/socket.hpp"

namespace tda::ops {

inline constexpr std::uint32_t kAdminMagic = 0x4F414454;  // "TDAO"
inline constexpr std::uint16_t kAdminVersion = 1;
inline constexpr std::size_t kAdminHeaderSize = 16;
inline constexpr std::size_t kAdminMaxPayload = 1u << 20;

enum class AdminCmd : std::uint16_t {
  // requests
  Health = 1,    ///< liveness; replies "ok"
  Ready = 2,     ///< accepting traffic? "ready=1" / "ready=0" (draining)
  Stats = 3,     ///< key=value dump: counters, tenants, generation, ...
  Reload = 4,    ///< apply key=value config changes without a restart
  Drain = 5,     ///< stop accepting, finish in-flight, snapshot, exit
  Handoff = 6,   ///< fork/exec the next generation, pass the listeners
  Snapshot = 7,  ///< write a state snapshot now
  // replies
  Ok = 100,
  Err = 101,
};

const char* to_string(AdminCmd c);

struct AdminFrame {
  AdminCmd cmd = AdminCmd::Err;
  std::string payload;
};

/// Appends one framed command/reply to `out`.
void encode_admin(std::string& out, AdminCmd cmd,
                  const std::string& payload);

/// Blocking read of exactly one frame from `fd`. False on EOF, a
/// malformed header, a checksum mismatch, or an oversized payload.
bool read_admin_frame(int fd, AdminFrame* out, std::string* err);

/// One-shot client: connect to the admin socket at `path`, send `cmd`,
/// wait for the reply. Returns true iff the server answered Ok;
/// `reply` gets the reply payload either way (Err text on failure).
bool admin_request(const std::string& path, AdminCmd cmd,
                   const std::string& payload, std::string* reply,
                   std::string* err);

/// Serves the admin socket on its own thread, one command per
/// connection, handled sequentially. The handler returns {ok, payload};
/// it runs on the admin thread, so anything touching poll-thread state
/// must go through FrontDoor::post.
class AdminServer {
 public:
  using Handler =
      std::function<std::pair<bool, std::string>(AdminCmd,
                                                 const std::string&)>;

  AdminServer() = default;
  ~AdminServer() { stop(); }
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  bool start(const std::string& path, Handler handler, std::string* err);
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  net::Fd listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  Handler handler_;
  std::string path_;
};

}  // namespace tda::ops
