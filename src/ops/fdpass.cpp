#include "ops/fdpass.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace tda::ops {

bool send_fds(int sock, const std::vector<int>& fds, char tag) {
  char byte = tag;
  struct iovec iov;
  iov.iov_base = &byte;
  iov.iov_len = 1;

  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;

  std::vector<char> cbuf;
  if (!fds.empty()) {
    cbuf.resize(CMSG_SPACE(fds.size() * sizeof(int)));
    std::memset(cbuf.data(), 0, cbuf.size());
    msg.msg_control = cbuf.data();
    msg.msg_controllen = cbuf.size();
    struct cmsghdr* cm = CMSG_FIRSTHDR(&msg);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(fds.size() * sizeof(int));
    std::memcpy(CMSG_DATA(cm), fds.data(), fds.size() * sizeof(int));
  }

  while (true) {
    const ssize_t n = ::sendmsg(sock, &msg, 0);
    if (n >= 0) return n == 1;
    if (errno != EINTR) return false;
  }
}

bool recv_fds(int sock, std::size_t max_fds, std::vector<int>* fds,
              char* tag) {
  fds->clear();
  char byte = 0;
  struct iovec iov;
  iov.iov_base = &byte;
  iov.iov_len = 1;

  std::vector<char> cbuf(CMSG_SPACE(max_fds * sizeof(int)) + 1);
  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cbuf.data();
  msg.msg_controllen = cbuf.size();

  ssize_t n;
  while (true) {
    n = ::recvmsg(sock, &msg, 0);
    if (n >= 0) break;
    if (errno != EINTR) return false;
  }
  if (n != 1) return false;
  *tag = byte;

  for (struct cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
       cm = CMSG_NXTHDR(&msg, cm)) {
    if (cm->cmsg_level != SOL_SOCKET || cm->cmsg_type != SCM_RIGHTS)
      continue;
    const std::size_t bytes = cm->cmsg_len - CMSG_LEN(0);
    const std::size_t count = bytes / sizeof(int);
    std::vector<int> got(count);
    std::memcpy(got.data(), CMSG_DATA(cm), count * sizeof(int));
    for (const int fd : got) fds->push_back(fd);
  }
  if ((msg.msg_flags & MSG_CTRUNC) != 0) {
    for (const int fd : *fds) ::close(fd);
    fds->clear();
    return false;
  }
  return true;
}

}  // namespace tda::ops
