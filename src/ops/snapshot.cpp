#include "ops/snapshot.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "faults/faults.hpp"

namespace tda::ops {

namespace {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// %-escapes bytes that would break the tab/newline framing (or an
/// unescape pass): anything outside printable ASCII, '%' itself, tab,
/// space. Deterministic, so escaped output is byte-stable.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    if (c > 32 && c < 127 && c != '%') {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out.append(buf);
    }
  }
  return out;
}

bool unescape(const std::string& s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out->push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return false;
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return true;
}

/// C99 hex-float formatting: exact round trip, one canonical spelling
/// per value on a given platform — the property the byte-stability
/// test leans on.
std::string fmt_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

std::string fmt_hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_f64(const std::string& tok, double* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parse_u64(const std::string& tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_hex64(const std::string& tok, std::uint64_t* out) {
  if (tok.size() != 16) return false;
  char* end = nullptr;
  *out = std::strtoull(tok.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool fail(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
  return false;
}

}  // namespace

std::string serialize_snapshot(const ServerState& state) {
  std::string body;
  body += "meta\t" + fmt_u64(state.generation) + "\t" +
          fmt_f64(state.saved_unix_ms) + "\n";
  const auto& ds = state.dedup_stats;
  body += "stats\t" + fmt_u64(ds.inserts) + "\t" + fmt_u64(ds.hits) + "\t" +
          fmt_u64(ds.joins) + "\t" + fmt_u64(ds.evictions) + "\t" +
          fmt_u64(ds.duplicate_executions) + "\n";

  std::vector<const TenantState*> tenants;
  tenants.reserve(state.tenants.size());
  for (const auto& t : state.tenants) tenants.push_back(&t);
  std::sort(tenants.begin(), tenants.end(),
            [](const TenantState* a, const TenantState* b) {
              return a->name < b->name;
            });
  for (const TenantState* t : tenants) {
    body += "tenant\t" + escape(t->name) + "\t" + escape(t->token) + "\t" +
            fmt_f64(t->weight) + "\t" + fmt_u64(t->max_inflight) + "\t" +
            fmt_u64(t->max_inflight_bytes) + "\t" +
            fmt_f64(t->requests_per_sec) + "\t" + fmt_f64(t->burst) + "\t" +
            fmt_f64(t->default_deadline_ms) + "\t" +
            (t->disabled ? "1" : "0") + "\t" + fmt_f64(t->aimd_limit) +
            "\t" + fmt_u64(t->admitted) + "\t" + fmt_u64(t->rejected) + "\n";
  }

  std::vector<const DedupEntryState*> entries;
  entries.reserve(state.entries.size());
  for (const auto& e : state.entries) entries.push_back(&e);
  std::sort(entries.begin(), entries.end(),
            [](const DedupEntryState* a, const DedupEntryState* b) {
              if (a->tenant != b->tenant) return a->tenant < b->tenant;
              return a->key < b->key;
            });
  for (const DedupEntryState* e : entries) {
    body += "entry\t" + escape(e->tenant) + "\t" + fmt_hex64(e->key) + "\t" +
            fmt_hex64(e->payload_hash) + "\t" +
            std::to_string(e->status) + "\t" +
            (e->fallback_used ? "1" : "0") + "\t" + fmt_f64(e->solve_ms) +
            "\t" + fmt_f64(e->wait_ms) + "\t" + fmt_u64(e->batch_systems) +
            "\t" + fmt_u64(e->retries) + "\t" + fmt_u64(e->chunks) + "\t" +
            escape(e->device) + "\t" + escape(e->error) + "\t" +
            fmt_u64(e->x.size());
    for (const double v : e->x) body += "\t" + fmt_f64(v);
    body += "\n";
  }

  std::string out = kSnapshotHeader;
  out += fmt_hex64(fnv1a64(body));
  out += "\n";
  out += body;
  return out;
}

bool parse_snapshot(const std::string& bytes, ServerState* out,
                    std::string* why) {
  const std::size_t header_len = sizeof(kSnapshotHeader) - 1;
  if (bytes.size() < header_len + 17 ||
      bytes.compare(0, header_len, kSnapshotHeader) != 0) {
    return fail(why, "bad or missing snapshot header");
  }
  std::uint64_t want = 0;
  if (!parse_hex64(bytes.substr(header_len, 16), &want) ||
      bytes[header_len + 16] != '\n') {
    return fail(why, "unparsable header checksum");
  }
  const std::string body = bytes.substr(header_len + 17);
  if (fnv1a64(body) != want) return fail(why, "checksum mismatch");

  ServerState scratch;
  bool saw_meta = false;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    const auto f = split_tabs(line);
    if (f[0] == "meta") {
      if (f.size() != 3 || !parse_u64(f[1], &scratch.generation) ||
          !parse_f64(f[2], &scratch.saved_unix_ms)) {
        return fail(why, "bad meta record");
      }
      saw_meta = true;
    } else if (f[0] == "stats") {
      auto& ds = scratch.dedup_stats;
      if (f.size() != 6 || !parse_u64(f[1], &ds.inserts) ||
          !parse_u64(f[2], &ds.hits) || !parse_u64(f[3], &ds.joins) ||
          !parse_u64(f[4], &ds.evictions) ||
          !parse_u64(f[5], &ds.duplicate_executions)) {
        return fail(why, "bad stats record");
      }
    } else if (f[0] == "tenant") {
      TenantState t;
      std::uint64_t max_if = 0, max_ib = 0, adm = 0, rej = 0;
      if (f.size() != 13 || !unescape(f[1], &t.name) ||
          !unescape(f[2], &t.token) || !parse_f64(f[3], &t.weight) ||
          !parse_u64(f[4], &max_if) || !parse_u64(f[5], &max_ib) ||
          !parse_f64(f[6], &t.requests_per_sec) ||
          !parse_f64(f[7], &t.burst) ||
          !parse_f64(f[8], &t.default_deadline_ms) ||
          (f[9] != "0" && f[9] != "1") ||
          !parse_f64(f[10], &t.aimd_limit) || !parse_u64(f[11], &adm) ||
          !parse_u64(f[12], &rej)) {
        return fail(why, "bad tenant record");
      }
      t.max_inflight = static_cast<std::size_t>(max_if);
      t.max_inflight_bytes = static_cast<std::size_t>(max_ib);
      t.disabled = f[9] == "1";
      t.admitted = adm;
      t.rejected = rej;
      scratch.tenants.push_back(std::move(t));
    } else if (f[0] == "entry") {
      DedupEntryState e;
      std::uint64_t status = 0, n = 0;
      if (f.size() < 14 || !unescape(f[1], &e.tenant) ||
          !parse_hex64(f[2], &e.key) ||
          !parse_hex64(f[3], &e.payload_hash) ||
          !parse_u64(f[4], &status) || (f[5] != "0" && f[5] != "1") ||
          !parse_f64(f[6], &e.solve_ms) || !parse_f64(f[7], &e.wait_ms) ||
          !parse_u64(f[8], &e.batch_systems) ||
          !parse_u64(f[9], &e.retries) || !parse_u64(f[10], &e.chunks) ||
          !unescape(f[11], &e.device) || !unescape(f[12], &e.error) ||
          !parse_u64(f[13], &n) || f.size() != 14 + n) {
        return fail(why, "bad entry record");
      }
      e.status = static_cast<int>(status);
      e.fallback_used = f[5] == "1";
      e.x.resize(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!parse_f64(f[14 + i], &e.x[i])) {
          return fail(why, "bad entry solution value");
        }
      }
      scratch.entries.push_back(std::move(e));
    } else {
      return fail(why, "unknown record kind: " + f[0]);
    }
  }
  if (!saw_meta) return fail(why, "missing meta record");
  *out = std::move(scratch);
  return true;
}

bool save_snapshot(const std::string& path, const ServerState& state,
                   std::string* why) {
  static std::atomic<std::uint64_t> temp_counter{0};
  const std::string bytes = serialize_snapshot(state);
  const std::string tmp =
      path + ".tmp" + std::to_string(temp_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail(why, "cannot open temp file " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::remove(tmp.c_str());
      return fail(why, "short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail(why, "rename to " + path + " failed");
  }
  return true;
}

bool load_snapshot(const std::string& path, ServerState* out,
                   std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(why, "cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Same corruption hook as the tuning cache: lets tests and TDA_FAULTS
  // flip bits between disk and parser to prove whole-file rejection.
  auto& inj = faults::FaultInjector::global();
  if (inj.fire(faults::Site::CacheCorrupt)) {
    faults::corrupt_bytes(bytes, inj.config().seed, 4);
  }
  return parse_snapshot(bytes, out, why);
}

}  // namespace tda::ops
