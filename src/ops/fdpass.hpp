#pragma once
// SCM_RIGHTS file-descriptor passing over a unix-domain socket — the
// hot-restart handoff primitive: the old server generation sends its
// listening sockets (plus a one-byte tag) down the socketpair it shares
// with the generation it forked, so the new process accepts on the
// very same sockets and no client connection attempt ever sees
// ECONNREFUSED during the switch.

#include <cstddef>
#include <vector>

namespace tda::ops {

/// Sends `fds` plus the single byte `tag` over unix socket `sock`.
/// Returns false on any sendmsg failure (EINTR is retried).
bool send_fds(int sock, const std::vector<int>& fds, char tag);

/// Receives up to `max_fds` descriptors and the tag byte. On success
/// fills `fds` (possibly empty) and `tag`, returns true. On failure
/// any partially-received descriptors are closed.
bool recv_fds(int sock, std::size_t max_fds, std::vector<int>* fds,
              char* tag);

}  // namespace tda::ops
