#pragma once
// Plain-data image of everything the server must remember across a
// process boundary: tenant registry + quota state, the completed half
// of the per-tenant dedup cache (with payload hashes, so a resend under
// a reused key can be told apart from a replay), AIMD window state, and
// the dedup counters whose continuity the exactly-once gate asserts
// across generations. ops::save_snapshot/load_snapshot (snapshot.hpp)
// serialize this struct; net::FrontDoor::export_state/import_state
// convert it to and from live poll-thread state.
//
// Everything is stored dtype-erased (solutions as doubles — float
// narrows losslessly back, since every float is exactly representable
// as a double), so one snapshot format serves both instantiations.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tda::ops {

/// One tenant's full registry row: static config, live quota usage
/// counters, and the poll-thread AIMD window.
struct TenantState {
  std::string name;
  std::string token;
  double weight = 1.0;
  std::size_t max_inflight = 0;
  std::size_t max_inflight_bytes = 0;
  double requests_per_sec = 0.0;
  double burst = 0.0;
  double default_deadline_ms = 0.0;
  bool disabled = false;
  double aimd_limit = 0.0;  ///< 0 = leave the lane's window at default
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
};

/// One completed dedup entry: enough of the SolveResponse to replay the
/// exact wire reply to a reconnecting client's byte-identical resend.
struct DedupEntryState {
  std::string tenant;  ///< registry name (pointers don't survive exec)
  std::uint64_t key = 0;
  std::uint64_t payload_hash = 0;
  int status = 0;  ///< service::SolveStatus as int
  std::string error;
  std::string device;
  std::vector<double> x;
  double solve_ms = 0.0;
  double wait_ms = 0.0;
  std::uint64_t batch_systems = 0;
  std::uint64_t retries = 0;
  std::uint64_t chunks = 0;
  bool fallback_used = false;
};

/// Dedup counters persisted so "duplicate_executions == 0 across the
/// generation boundary" is checkable from the new generation alone.
struct DedupStatsState {
  std::uint64_t inserts = 0;
  std::uint64_t hits = 0;
  std::uint64_t joins = 0;
  std::uint64_t evictions = 0;
  std::uint64_t duplicate_executions = 0;
};

/// The whole snapshot. `saved_unix_ms` is data, not metadata: load
/// preserves it, so save -> load -> save is byte-stable.
struct ServerState {
  std::uint64_t generation = 1;
  double saved_unix_ms = 0.0;
  DedupStatsState dedup_stats;
  std::vector<TenantState> tenants;
  std::vector<DedupEntryState> entries;
};

}  // namespace tda::ops
