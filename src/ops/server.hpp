#pragma once
// ops::Server — the zero-downtime operations shell around a
// SolveService + FrontDoor pair (docs/OPERATIONS.md).
//
// It owns the three legs of the tentpole:
//
//   * crash-safe persistence: a background thread writes the ops
//     snapshot (tenants, quotas, AIMD windows, completed dedup entries
//     + payload hashes, dedup counters) every snapshot_interval_ms, on
//     SIGHUP, on admin `snapshot`/`drain`, and at shutdown. State is
//     exported on the front door's poll thread (via post()) but
//     serialized and written off it, so a large snapshot never stalls
//     the data plane.
//
//   * live reconfiguration: a unix-domain admin socket (admin.hpp)
//     accepts health/ready/stats/reload/drain/snapshot/handoff. Every
//     mutation of poll-thread-owned state funnels through
//     FrontDoor::post, so reconfiguration is race-free without adding
//     a single lock to the hot path.
//
//   * hot restart: `handoff` forks and execs the configured next
//     generation, passes the listening sockets over a socketpair via
//     SCM_RIGHTS (fdpass.hpp), waits for the child's ready ack, then
//     drains. Both generations accept from the same kernel queue
//     during the overlap, so no connect attempt is ever refused; the
//     snapshot the child loads makes byte-identical resends of
//     pre-restart work land as replays, not re-executions.
//
// Signals: SIGTERM requests an orderly drain (the owner's main loop
// polls should_exit()), SIGHUP requests an immediate snapshot +
// telemetry flush. Handlers only store to atomics.

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/front_door.hpp"
#include "ops/admin.hpp"
#include "ops/fdpass.hpp"
#include "ops/snapshot.hpp"
#include "ops/state.hpp"
#include "service/solve_service.hpp"
#include "telemetry/metrics.hpp"

namespace tda::ops {

namespace detail {
// Async-signal-safe flags; installed once per process.
inline std::atomic<int> g_sigterm{0};
inline std::atomic<int> g_sighup{0};
inline void on_sigterm(int) { g_sigterm.store(1, std::memory_order_relaxed); }
inline void on_sighup(int) { g_sighup.store(1, std::memory_order_relaxed); }
}  // namespace detail

struct OpsConfig {
  /// Unix path of the admin control socket. Empty = no admin server.
  std::string admin_path;
  /// Snapshot file. Empty = no persistence (drain still works).
  std::string snapshot_path;
  /// Periodic snapshot cadence; <= 0 writes only on signals, admin
  /// commands and shutdown.
  double snapshot_interval_ms = 0.0;
  /// This process's generation number (1 on cold start; a hot-restarted
  /// child runs at parent + 1).
  std::uint64_t generation = 1;
  /// Command line exec'd as the next generation on `handoff`
  /// (argv[0] = binary). The server appends --handoff-fd=<N> and
  /// --generation=<g+1>. Empty disables handoff.
  std::vector<std::string> handoff_argv;
  /// How long `handoff` waits for the child's ready ack before
  /// declaring the handoff failed.
  double handoff_ack_timeout_ms = 20'000.0;
};

/// Child-side half of the handoff: receive the listener fds sent by the
/// previous generation over `handoff_fd`. The tag byte says which
/// listeners were passed: 't' tcp, 'u' unix, 'b' both (tcp first).
/// Returns false (fds closed) on any receive error.
inline bool receive_handoff(int handoff_fd, int* tcp_fd, int* unix_fd) {
  *tcp_fd = -1;
  *unix_fd = -1;
  std::vector<int> fds;
  char tag = 0;
  if (!recv_fds(handoff_fd, 2, &fds, &tag)) return false;
  if (tag == 't' && fds.size() == 1) {
    *tcp_fd = fds[0];
    return true;
  }
  if (tag == 'u' && fds.size() == 1) {
    *unix_fd = fds[0];
    return true;
  }
  if (tag == 'b' && fds.size() == 2) {
    *tcp_fd = fds[0];
    *unix_fd = fds[1];
    return true;
  }
  for (const int fd : fds) ::close(fd);
  return false;
}

/// Child-side ready ack: call once the new generation is accepting.
/// The parent blocks its drain on this byte.
inline bool ack_handoff(int handoff_fd) {
  const char r = 'R';
  for (;;) {
    const long n = ::write(handoff_fd, &r, 1);
    if (n == 1) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

template <typename T>
class Server {
 public:
  Server(service::SolveService<T>& svc, net::FrontDoor<T>& door,
         OpsConfig cfg)
      : svc_(svc), door_(door), cfg_(std::move(cfg)) {}

  ~Server() { shutdown(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads the snapshot (if configured and present) into the front
  /// door: tenants, AIMD windows, completed dedup entries. Call before
  /// door.start(). A missing/damaged snapshot is a clean cold start —
  /// false is returned with `why` set, but the server is fine to run.
  bool load(std::string* why = nullptr) {
    if (cfg_.snapshot_path.empty()) return true;
    ServerState st;
    if (!load_snapshot(cfg_.snapshot_path, &st, why)) return false;
    door_.import_state(st);
    baseline_ = st.dedup_stats;
    loaded_ = true;
    return true;
  }

  /// Persisted-generation dedup counters (zero on cold start). Admin
  /// `stats` adds these to the live cache's, so exactly-once is
  /// checkable across the restart boundary from the new process alone.
  [[nodiscard]] const DedupStatsState& baseline() const {
    return baseline_;
  }
  [[nodiscard]] bool loaded_from_snapshot() const { return loaded_; }

  /// Starts the admin socket and the snapshot/housekeeping thread and
  /// installs the SIGTERM/SIGHUP handlers. Call after door.start().
  bool start(std::string* err) {
    struct sigaction sa = {};
    sa.sa_handler = detail::on_sigterm;
    ::sigaction(SIGTERM, &sa, nullptr);
    sa.sa_handler = detail::on_sighup;
    ::sigaction(SIGHUP, &sa, nullptr);
    if (!cfg_.admin_path.empty()) {
      const bool ok = admin_.start(
          cfg_.admin_path,
          [this](AdminCmd cmd, const std::string& payload) {
            return handle(cmd, payload);
          },
          err);
      if (!ok) return false;
    }
    stop_.store(false, std::memory_order_relaxed);
    housekeeper_ = std::thread([this] { housekeep(); });
    return true;
  }

  /// True once SIGTERM or an admin `drain` asked for an orderly exit.
  /// The owning main loop polls this, then runs its shutdown sequence.
  [[nodiscard]] bool should_exit() const {
    return exit_requested_.load(std::memory_order_relaxed) ||
           detail::g_sigterm.load(std::memory_order_relaxed) != 0;
  }

  /// True after a successful handoff: the next generation owns the
  /// listeners and the snapshot file now.
  [[nodiscard]] bool handed_off() const {
    return handed_off_.load(std::memory_order_relaxed);
  }

  /// Writes a snapshot now (state exported on the poll thread, file
  /// written on the calling thread). No-op (true) when persistence is
  /// off or the snapshot file was handed to the next generation.
  bool save_now(std::string* why = nullptr) {
    if (cfg_.snapshot_path.empty()) return true;
    if (handed_off_.load(std::memory_order_relaxed)) return true;
    ServerState st;
    st.generation = cfg_.generation;
    st.saved_unix_ms = net::unix_now_ms();
    std::promise<void> exported;
    door_.post([this, &st, &exported] {
      door_.export_state(st);
      exported.set_value();
    });
    exported.get_future().wait();
    st.dedup_stats.inserts += baseline_.inserts;
    st.dedup_stats.hits += baseline_.hits;
    st.dedup_stats.joins += baseline_.joins;
    st.dedup_stats.evictions += baseline_.evictions;
    st.dedup_stats.duplicate_executions += baseline_.duplicate_executions;
    const bool ok = save_snapshot(cfg_.snapshot_path, st, why);
    auto& metrics = svc_.telemetry().metrics;
    if (metrics.enabled()) {
      metrics.add(telemetry::labeled(
          "ops.snapshots",
          {{"generation", gen_str()}, {"result", ok ? "ok" : "fail"}}));
    }
    if (ok) {
      last_snapshot_ms_.store(net::unix_now_ms(),
                              std::memory_order_relaxed);
    }
    return ok;
  }

  /// Milliseconds since the last successful snapshot; < 0 = never.
  [[nodiscard]] double snapshot_age_ms() const {
    const double at = last_snapshot_ms_.load(std::memory_order_relaxed);
    if (at <= 0.0) return -1.0;
    return net::unix_now_ms() - at;
  }

  [[nodiscard]] double uptime_s() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - started_)
        .count();
  }

  /// Final snapshot, admin-socket teardown, telemetry flush. Safe to
  /// call before or after door.shutdown() (post() degrades to inline
  /// execution once the poll thread is gone). Idempotent.
  void shutdown() {
    if (stopped_.exchange(true)) return;
    stop_.store(true, std::memory_order_relaxed);
    if (housekeeper_.joinable()) housekeeper_.join();
    std::string why;
    (void)save_now(&why);
    admin_.stop();
    // The ordering half of the flush fix: telemetry export files are
    // rewritten as part of every orderly exit path, not just object
    // destruction — a SIGTERM'd process leaves current numbers behind.
    svc_.flush_exports();
  }

 private:
  [[nodiscard]] std::string gen_str() const {
    return std::to_string(cfg_.generation);
  }

  /// Admin dispatch — runs on the admin thread. Anything touching
  /// poll-thread state goes through door_.post with a future.
  std::pair<bool, std::string> handle(AdminCmd cmd,
                                      const std::string& payload) {
    auto& metrics = svc_.telemetry().metrics;
    if (metrics.enabled()) {
      metrics.add(telemetry::labeled(
          "ops.admin_commands",
          {{"generation", gen_str()}, {"cmd", to_string(cmd)}}));
    }
    switch (cmd) {
      case AdminCmd::Health:
        return {true, "ok\n"};
      case AdminCmd::Ready: {
        const bool ready = !door_.draining() && !should_exit();
        return {true, std::string("ready=") + (ready ? "1" : "0") + "\n"};
      }
      case AdminCmd::Stats:
        return {true, stats_text()};
      case AdminCmd::Reload:
        return reload(payload);
      case AdminCmd::Snapshot: {
        std::string why;
        if (!save_now(&why)) return {false, "snapshot failed: " + why};
        return {true, "snapshot=ok\n"};
      }
      case AdminCmd::Drain:
        exit_requested_.store(true, std::memory_order_relaxed);
        return {true, "draining=1\n"};
      case AdminCmd::Handoff:
        return handoff();
      case AdminCmd::Ok:
      case AdminCmd::Err:
        break;
    }
    return {false, "unknown command"};
  }

  std::string stats_text() {
    const net::FrontDoorCounters c = door_.counters();
    std::ostringstream out;
    out << "generation=" << cfg_.generation << "\n";
    out << "pid=" << ::getpid() << "\n";
    out << "uptime_s=" << uptime_s() << "\n";
    const double age = snapshot_age_ms();
    out << "snapshot_age_ms=" << age << "\n";
    out << "loaded_from_snapshot=" << (loaded_ ? 1 : 0) << "\n";
    out << "draining=" << (door_.draining() ? 1 : 0) << "\n";
    out << "net.connections=" << c.connections << "\n";
    out << "net.responses_sent=" << c.responses_sent << "\n";
    out << "net.requests_admitted=" << c.requests_admitted << "\n";
    out << "net.requests_rejected=" << c.requests_rejected << "\n";
    out << "net.dedup_hits=" << c.dedup_hits + baseline_.hits << "\n";
    out << "net.dedup_joins=" << c.dedup_joins + baseline_.joins << "\n";
    // The exactly-once proof line: live cache + persisted baseline.
    out << "net.duplicate_executions="
        << c.duplicate_executions + baseline_.duplicate_executions
        << "\n";
    out << "net.key_reuse=" << c.key_reuse << "\n";
    out << "net.deadline_skew_clamped=" << c.deadline_skew_clamped
        << "\n";
    for (const auto& row : door_.tenants().configs()) {
      const std::string p = "tenant." + row.cfg.name + ".";
      out << p << "requests_per_sec=" << row.cfg.requests_per_sec << "\n";
      out << p << "weight=" << row.cfg.weight << "\n";
      out << p << "max_inflight=" << row.cfg.max_inflight << "\n";
      out << p << "max_inflight_bytes=" << row.cfg.max_inflight_bytes
          << "\n";
      out << p << "default_deadline_ms=" << row.cfg.default_deadline_ms
          << "\n";
      out << p << "disabled=" << (row.disabled ? 1 : 0) << "\n";
      out << p << "admitted=" << row.admitted << "\n";
      out << p << "rejected=" << row.rejected << "\n";
    }
    return out.str();
  }

  /// `reload` grammar: one key=value per line. `tenant=NAME` opens a
  /// tenant scope; subsequent tenant keys (token, weight, max_inflight,
  /// max_inflight_bytes, requests_per_sec, burst, default_deadline_ms,
  /// disabled) apply to it — an unknown NAME is registered fresh.
  /// Global keys: service.default_deadline_ms, engine_threads,
  /// codel_target_ms, codel_interval_ms, aimd_min, aimd_backoff,
  /// max_clock_skew_ms, snapshot_interval_ms. Everything is parsed
  /// first; application runs on the poll thread, so a connection never
  /// observes a half-applied tenant row.
  std::pair<bool, std::string> reload(const std::string& payload) {
    std::vector<std::pair<std::string, std::string>> kvs;
    std::istringstream in(payload);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) {
        return {false, "bad line (want key=value): " + line};
      }
      kvs.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
    if (kvs.empty()) return {false, "empty reload"};

    std::promise<std::pair<bool, std::string>> done;
    auto fut = done.get_future();
    door_.post([this, kvs = std::move(kvs), &done] {
      done.set_value(apply_reload(kvs));
    });
    return fut.get();
  }

  /// Runs on the poll thread.
  std::pair<bool, std::string> apply_reload(
      const std::vector<std::pair<std::string, std::string>>& kvs) {
    net::TenantRegistry& reg = door_.tenants();
    std::string tenant;  // current scope; empty = global
    std::size_t applied = 0;
    for (const auto& [key, val] : kvs) {
      char* end = nullptr;
      const double num = std::strtod(val.c_str(), &end);
      const bool numeric = end != nullptr && *end == '\0' && !val.empty();
      if (key == "tenant") {
        tenant = val;
        if (reg.find(tenant) == nullptr) {
          net::TenantConfig fresh;
          fresh.name = tenant;
          reg.add(fresh);
        }
        continue;
      }
      if (!tenant.empty()) {
        net::Tenant* t = reg.find(tenant);
        if (t == nullptr) return {false, "no tenant " + tenant};
        net::TenantConfig cfg = t->cfg;
        if (key == "token") {
          cfg.token = val;
        } else if (!numeric) {
          return {false, "non-numeric value for " + key + ": " + val};
        } else if (key == "weight") {
          cfg.weight = num;
        } else if (key == "max_inflight") {
          cfg.max_inflight = static_cast<std::size_t>(num);
        } else if (key == "max_inflight_bytes") {
          cfg.max_inflight_bytes = static_cast<std::size_t>(num);
        } else if (key == "requests_per_sec") {
          cfg.requests_per_sec = num;
          cfg.burst = 0.0;  // re-derive the bucket depth from the rate
        } else if (key == "burst") {
          cfg.burst = num;
        } else if (key == "default_deadline_ms") {
          cfg.default_deadline_ms = num;
        } else if (key == "disabled") {
          reg.disable(tenant, num != 0.0);
          ++applied;
          continue;
        } else {
          return {false, "unknown tenant key: " + key};
        }
        if (!reg.update(tenant, cfg)) {
          return {false, "update failed for " + tenant};
        }
        ++applied;
        continue;
      }
      if (!numeric) {
        return {false, "non-numeric value for " + key + ": " + val};
      }
      if (key == "service.default_deadline_ms") {
        svc_.set_default_deadline_ms(num);
      } else if (key == "engine_threads") {
        svc_.resize_engine_threads(static_cast<int>(num));
      } else if (key == "codel_target_ms") {
        door_.config_mutable().codel_target_ms = num;
      } else if (key == "codel_interval_ms") {
        door_.config_mutable().codel_interval_ms = num;
      } else if (key == "aimd_min") {
        door_.config_mutable().aimd_min = num;
      } else if (key == "aimd_backoff") {
        door_.config_mutable().aimd_backoff = num;
      } else if (key == "max_clock_skew_ms") {
        door_.config_mutable().max_clock_skew_ms = num;
      } else if (key == "snapshot_interval_ms") {
        snapshot_interval_override_ms_.store(num,
                                             std::memory_order_relaxed);
      } else {
        return {false, "unknown key: " + key};
      }
      ++applied;
    }
    return {true, "applied=" + std::to_string(applied) + "\n"};
  }

  /// Hot restart, parent side. Snapshot -> socketpair -> fork/exec the
  /// next generation -> SCM_RIGHTS the listeners -> await its ready
  /// ack -> disown the snapshot file and unix path -> request drain.
  std::pair<bool, std::string> handoff() {
    if (cfg_.handoff_argv.empty()) {
      return {false, "handoff not configured"};
    }
    std::string why;
    if (!save_now(&why)) return {false, "pre-handoff snapshot: " + why};

    int sp[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
      return {false, "socketpair failed"};
    }
    std::vector<std::string> argv = cfg_.handoff_argv;
    argv.push_back("--handoff-fd=" + std::to_string(sp[1]));
    argv.push_back("--generation=" +
                   std::to_string(cfg_.generation + 1));
    // Built before fork: between fork and exec only async-signal-safe
    // calls are allowed in a threaded process (no allocation).
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (auto& a : argv) cargv.push_back(a.data());
    cargv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sp[0]);
      ::close(sp[1]);
      return {false, "fork failed"};
    }
    if (pid == 0) {
      // Child: keep sp[1] across exec (socketpair fds have no
      // CLOEXEC); drop the parent's end.
      ::close(sp[0]);
      ::execv(cargv[0], cargv.data());
      ::_exit(127);  // exec failed; the parent times out on the ack
    }
    ::close(sp[1]);
    const int tcp_fd = door_.tcp_listener_fd();
    const int unix_fd = door_.unix_listener_fd();
    std::vector<int> fds;
    char tag = 0;
    if (tcp_fd >= 0 && unix_fd >= 0) {
      fds = {tcp_fd, unix_fd};
      tag = 'b';
    } else if (tcp_fd >= 0) {
      fds = {tcp_fd};
      tag = 't';
    } else if (unix_fd >= 0) {
      fds = {unix_fd};
      tag = 'u';
    } else {
      ::close(sp[0]);
      return {false, "no listeners to hand off"};
    }
    if (!send_fds(sp[0], fds, tag)) {
      ::close(sp[0]);
      return {false, "sending listeners failed"};
    }
    if (!await_ack(sp[0])) {
      ::close(sp[0]);
      return {false, "next generation never acked"};
    }
    ::close(sp[0]);
    // From here the child owns the unix path and the snapshot file:
    // our drain must neither unlink the one nor overwrite the other.
    door_.suppress_unlink();
    handed_off_.store(true, std::memory_order_relaxed);
    exit_requested_.store(true, std::memory_order_relaxed);
    return {true, "pid=" + std::to_string(pid) + "\n"};
  }

  bool await_ack(int fd) {
    const int timeout =
        static_cast<int>(cfg_.handoff_ack_timeout_ms < 1.0
                             ? 1
                             : cfg_.handoff_ack_timeout_ms);
    struct pollfd p = {fd, POLLIN, 0};
    if (::poll(&p, 1, timeout) <= 0) return false;
    char b = 0;
    return ::read(fd, &b, 1) == 1 && b == 'R';
  }

  /// Snapshot cadence + signal handling + ops gauges, off every hot
  /// path. 100ms tick.
  void housekeep() {
    double last_periodic_ms = 0.0;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (detail::g_sighup.exchange(0, std::memory_order_relaxed) != 0) {
        std::string why;
        (void)save_now(&why);
        svc_.flush_exports();
      }
      const double override_ms =
          snapshot_interval_override_ms_.load(std::memory_order_relaxed);
      const double interval = override_ms > 0.0
                                  ? override_ms
                                  : cfg_.snapshot_interval_ms;
      if (interval > 0.0) {
        const double now = net::unix_now_ms();
        if (now - last_periodic_ms >= interval) {
          last_periodic_ms = now;
          std::string why;
          (void)save_now(&why);
        }
      }
      auto& metrics = svc_.telemetry().metrics;
      if (metrics.enabled()) {
        const auto labels = [this](const char* name) {
          return telemetry::labeled(name, {{"generation", gen_str()}});
        };
        metrics.set(labels("ops.uptime_s"), uptime_s());
        const double age = snapshot_age_ms();
        if (age >= 0.0) {
          metrics.set(labels("ops.snapshot_age_s"), age / 1000.0);
        }
      }
    }
  }

  service::SolveService<T>& svc_;
  net::FrontDoor<T>& door_;
  OpsConfig cfg_;

  AdminServer admin_;
  std::thread housekeeper_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> exit_requested_{false};
  std::atomic<bool> handed_off_{false};
  std::atomic<double> last_snapshot_ms_{0.0};
  std::atomic<double> snapshot_interval_override_ms_{0.0};
  DedupStatsState baseline_;
  bool loaded_ = false;
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

}  // namespace tda::ops
