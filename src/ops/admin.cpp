#include "ops/admin.hpp"

#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace tda::ops {

namespace {

std::uint32_t fnv1a32(const char* data, std::size_t len,
                      std::uint32_t h = 2166136261u) {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

/// Blocking full read; false on EOF/error.
bool read_exact(int fd, char* buf, std::size_t len) {
  while (len > 0) {
    const long n = net::read_some(fd, buf, len);
    if (n <= 0) return false;
    buf += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool fail(std::string* err, const char* msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

const char* to_string(AdminCmd c) {
  switch (c) {
    case AdminCmd::Health: return "health";
    case AdminCmd::Ready: return "ready";
    case AdminCmd::Stats: return "stats";
    case AdminCmd::Reload: return "reload";
    case AdminCmd::Drain: return "drain";
    case AdminCmd::Handoff: return "handoff";
    case AdminCmd::Snapshot: return "snapshot";
    case AdminCmd::Ok: return "ok";
    case AdminCmd::Err: return "err";
  }
  return "unknown";
}

void encode_admin(std::string& out, AdminCmd cmd,
                  const std::string& payload) {
  const std::size_t at = out.size();
  put_u32(out, kAdminMagic);
  put_u16(out, kAdminVersion);
  put_u16(out, static_cast<std::uint16_t>(cmd));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, 0);  // checksum, patched below
  out += payload;
  std::uint32_t sum = fnv1a32(out.data() + at, 12);
  sum = fnv1a32(payload.data(), payload.size(), sum);
  std::string patched;
  put_u32(patched, sum);
  out.replace(at + 12, 4, patched);
}

bool read_admin_frame(int fd, AdminFrame* out, std::string* err) {
  char header[kAdminHeaderSize];
  if (!read_exact(fd, header, sizeof(header)))
    return fail(err, "admin: short header read");
  if (get_u32(header) != kAdminMagic) return fail(err, "admin: bad magic");
  if (get_u16(header + 4) != kAdminVersion)
    return fail(err, "admin: unsupported version");
  const std::uint16_t cmd = get_u16(header + 6);
  const std::uint32_t len = get_u32(header + 8);
  const std::uint32_t want = get_u32(header + 12);
  if (len > kAdminMaxPayload) return fail(err, "admin: oversized payload");
  std::string payload(len, '\0');
  if (len > 0 && !read_exact(fd, payload.data(), len))
    return fail(err, "admin: short payload read");
  std::uint32_t sum = fnv1a32(header, 12);
  sum = fnv1a32(payload.data(), payload.size(), sum);
  if (sum != want) return fail(err, "admin: checksum mismatch");
  out->cmd = static_cast<AdminCmd>(cmd);
  out->payload = std::move(payload);
  return true;
}

bool admin_request(const std::string& path, AdminCmd cmd,
                   const std::string& payload, std::string* reply,
                   std::string* err) {
  net::Endpoint ep;
  ep.is_unix = true;
  ep.path = path;
  net::Fd fd = net::connect_endpoint(ep, err);
  if (!fd.valid()) return false;
  std::string out;
  encode_admin(out, cmd, payload);
  if (!net::write_all(fd.get(), out.data(), out.size()))
    return fail(err, "admin: send failed");
  AdminFrame resp;
  if (!read_admin_frame(fd.get(), &resp, err)) return false;
  if (reply != nullptr) *reply = resp.payload;
  return resp.cmd == AdminCmd::Ok;
}

bool AdminServer::start(const std::string& path, Handler handler,
                        std::string* err) {
  if (running_.load()) return fail(err, "admin: already running");
  net::Endpoint ep;
  ep.is_unix = true;
  ep.path = path;
  listener_ = net::listen_endpoint(ep, 16, err);
  if (!listener_.valid()) return false;
  path_ = path;
  handler_ = std::move(handler);
  running_.store(true);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void AdminServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  listener_.reset();
  if (!path_.empty()) ::unlink(path_.c_str());
}

void AdminServer::loop() {
  while (running_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listener_.get();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, 50);
    if (rc <= 0) continue;
    net::Fd conn(::accept(listener_.get(), nullptr, nullptr));
    if (!conn.valid()) continue;
    AdminFrame frame;
    std::string err;
    std::string out;
    if (!read_admin_frame(conn.get(), &frame, &err)) {
      encode_admin(out, AdminCmd::Err, err);
      (void)net::write_all(conn.get(), out.data(), out.size());
      continue;
    }
    std::pair<bool, std::string> result{false, "no handler"};
    if (handler_) result = handler_(frame.cmd, frame.payload);
    encode_admin(out, result.first ? AdminCmd::Ok : AdminCmd::Err,
                 result.second);
    (void)net::write_all(conn.get(), out.data(), out.size());
  }
}

}  // namespace tda::ops
