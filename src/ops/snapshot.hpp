#pragma once
// Versioned, checksummed, crash-safe serialization of ops::ServerState
// — the same discipline as the v2 tuning cache: a header line carrying
// a 64-bit FNV-1a checksum of everything after it, whole-file rejection
// on any version/checksum/parse failure (a damaged snapshot falls back
// to cold start, never to a half-restored registry), and atomic
// replacement via unique temp file + rename so a crash mid-write leaves
// the previous snapshot intact.
//
// The format is line-based text: doubles are printed as C99 hex floats
// (%a), which round-trip exactly and make save -> load -> save
// byte-stable; strings are %-escaped; tenants and dedup entries are
// written in sorted order so serialization is a pure function of the
// state. docs/OPERATIONS.md documents the grammar.

#include <string>

#include "ops/state.hpp"

namespace tda::ops {

/// Header prefix of the current snapshot format. The 16 hex digits
/// after "checksum=" are FNV-1a-64 over every byte after the header
/// line's newline.
inline constexpr char kSnapshotHeader[] =
    "# tridiag_ops snapshot v1 checksum=";

/// Serializes `state` to the exact bytes save_snapshot would write
/// (header included). Exposed for the byte-stability property test.
std::string serialize_snapshot(const ServerState& state);

/// Parses snapshot bytes. Returns true and fills `out` only when the
/// header, checksum and every record parse; any damage rejects the
/// whole file and leaves `out` untouched. `why` (optional) gets a
/// one-line diagnostic on failure.
bool parse_snapshot(const std::string& bytes, ServerState* out,
                    std::string* why = nullptr);

/// Writes atomically: serialize to `path + ".tmp<N>"`, rename over
/// `path`. Returns false (and removes the temp) when any step fails.
bool save_snapshot(const std::string& path, const ServerState& state,
                   std::string* why = nullptr);

/// Loads `path`. A missing file, a short read, or any parse/checksum
/// failure returns false with `out` untouched — the caller cold-starts.
/// The faults::Site::CacheCorrupt hook (TDA_FAULTS cache_corrupt=...)
/// can flip bits between disk and the parser, same as the tuning cache.
bool load_snapshot(const std::string& path, ServerState* out,
                   std::string* why = nullptr);

}  // namespace tda::ops
