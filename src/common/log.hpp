#pragma once
// Tiny leveled logger. The dynamic tuner logs its search trajectory at
// Debug level; benches run with Info. Controlled by TDA_LOG env var
// (error|warn|info|debug) or programmatically.

#include <sstream>
#include <string>

namespace tda {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Returns the process-wide log level (initialized from $TDA_LOG once).
LogLevel log_level();

/// Overrides the process-wide log level.
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace tda

#define TDA_LOG(level, streamexpr)                                    \
  do {                                                                \
    if (static_cast<int>(level) <=                                    \
        static_cast<int>(::tda::log_level())) {                       \
      std::ostringstream tda_log_os;                                  \
      tda_log_os << streamexpr;                                       \
      ::tda::detail::log_emit(level, tda_log_os.str());               \
    }                                                                 \
  } while (0)

#define TDA_INFO(streamexpr) TDA_LOG(::tda::LogLevel::Info, streamexpr)
#define TDA_WARN(streamexpr) TDA_LOG(::tda::LogLevel::Warn, streamexpr)
#define TDA_DEBUG(streamexpr) TDA_LOG(::tda::LogLevel::Debug, streamexpr)
