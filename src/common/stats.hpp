#pragma once
// Small numeric statistics used by verification and benchmark reporting.

#include <cstddef>
#include <span>
#include <vector>

namespace tda {

/// Summary statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
};

/// Computes count/min/max/mean/stddev. Empty input yields a zero Summary.
Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Geometric mean; requires all-positive input, 0 for empty input.
double geomean(std::span<const double> xs);

/// Median (averages the two central elements for even sizes).
double median(std::vector<double> xs);

/// max_i |a[i] - b[i]| ; spans must be equal length.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// max_i |a[i] - b[i]| / max(1, max_i |b[i]|) — scale-invariant error.
double rel_error(std::span<const double> a, std::span<const double> b);

}  // namespace tda
