#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tda {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    TDA_REQUIRE(x > 0.0, "geomean requires positive values");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  TDA_REQUIRE(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double rel_error(std::span<const double> a, std::span<const double> b) {
  TDA_REQUIRE(a.size() == b.size(), "rel_error: size mismatch");
  double scale = 1.0;
  for (double x : b) scale = std::max(scale, std::abs(x));
  return max_abs_diff(a, b) / scale;
}

}  // namespace tda
