#pragma once
// Process-wide host allocation counter (docs/PERFORMANCE.md).
//
// Every AlignedBuffer (re)allocation and every BufferPool miss ticks it,
// so benches can report allocation churn per solve and the engine tests
// can prove that pooled steady state performs zero host allocations.

#include <atomic>
#include <cstdint>

namespace tda {

inline std::atomic<std::uint64_t>& host_alloc_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Host buffer allocations since process start.
inline std::uint64_t host_alloc_count() {
  return host_alloc_counter().load(std::memory_order_relaxed);
}

inline void note_host_alloc() {
  host_alloc_counter().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace tda
