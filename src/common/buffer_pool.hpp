#pragma once
// Pooled host-buffer allocator (docs/PERFORMANCE.md).
//
// The service hot path used to pay malloc + zero-fill for the 9·m·n
// device-batch arrays of EVERY coalesced solve. The pool keeps released
// buffers on free-lists keyed by size class (bytes rounded up to 4 KiB),
// so repeated flushes of the same shape reuse one warm slab instead.
//
// Scope: the pool replaces only the HOST allocation underneath
// device-side buffers. Device *budget* accounting is unchanged — a
// kernels::DeviceBatch still claims its logical 9·m·n·sizeof(T)
// footprint through gpusim::MemoryTracker before acquiring its slab, so
// OOM/chunking behavior is byte-for-byte what it was (ROBUSTNESS.md).
//
// Pooled memory is returned dirty by design (re-zeroing would restore
// the churn this kills); acquirers that need cleared memory clear it
// themselves. TDA_POOL_POISON=1 fills every acquired block with 0xFF
// (a NaN pattern for float/double) so tests can prove the solve
// pipeline fully overwrites what it reads. TDA_POOL_MAX bounds cached
// bytes (k/m/g suffixes; default 512m; 0 disables pooling entirely).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace tda {

class BufferPool;

/// RAII handle to one pooled allocation: returns the memory to its pool
/// on destruction. Movable, not copyable; a default-constructed handle
/// owns nothing. The pool must outlive its blocks (the global pool is
/// immortal).
class PoolBlock {
 public:
  PoolBlock() = default;
  ~PoolBlock() { reset(); }

  PoolBlock(PoolBlock&& other) noexcept
      : pool_(other.pool_), data_(other.data_), capacity_(other.capacity_) {
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  PoolBlock& operator=(PoolBlock&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.pool_ = nullptr;
      other.data_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }
  PoolBlock(const PoolBlock&) = delete;
  PoolBlock& operator=(const PoolBlock&) = delete;

  [[nodiscard]] std::byte* data() const { return data_; }
  /// Usable bytes (the size class, >= the requested size).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] explicit operator bool() const { return data_ != nullptr; }

  void reset();

 private:
  friend class BufferPool;
  PoolBlock(BufferPool* pool, std::byte* data, std::size_t capacity)
      : pool_(pool), data_(data), capacity_(capacity) {}

  BufferPool* pool_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Thread-safe free-list allocator keyed by size class.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;       ///< served from a free-list
    std::uint64_t misses = 0;     ///< fresh aligned_alloc
    std::uint64_t releases = 0;
    std::uint64_t evictions = 0;  ///< freed on release (cache full)
    std::size_t cached_bytes = 0;
    std::size_t cached_buffers = 0;
    std::size_t outstanding_bytes = 0;  ///< live PoolBlock capacity
  };

  /// The process-wide pool (TDA_POOL_MAX / TDA_POOL_POISON configured;
  /// intentionally immortal so teardown order cannot strand blocks).
  static BufferPool& global();

  explicit BufferPool(std::size_t max_cached_bytes = kDefaultMaxCachedBytes);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A 64-byte-aligned block of at least `bytes` (contents dirty unless
  /// poison is on). bytes == 0 returns an empty handle.
  PoolBlock acquire(std::size_t bytes);

  /// Frees every cached buffer.
  void trim();

  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Caps cached (idle) bytes; 0 disables caching (every release frees).
  void set_max_cached_bytes(std::size_t bytes);
  [[nodiscard]] std::size_t max_cached_bytes() const;

  /// Fill acquired blocks with 0xFF (test instrumentation).
  void set_poison(bool on);
  [[nodiscard]] bool poison() const;

  /// Size class of a request: bytes rounded up to a 4 KiB multiple.
  [[nodiscard]] static std::size_t size_class(std::size_t bytes);

  static constexpr std::size_t kDefaultMaxCachedBytes =
      std::size_t{512} * 1024 * 1024;

 private:
  friend class PoolBlock;
  void release(std::byte* data, std::size_t capacity);

  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::vector<std::byte*>> free_;
  std::size_t max_cached_bytes_;
  bool poison_ = false;
  Stats stats_;
};

}  // namespace tda
