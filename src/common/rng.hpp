#pragma once
// Deterministic, fast pseudo-random generation for workload synthesis.
//
// We use xoshiro256++ seeded through SplitMix64 so every generator, test and
// benchmark is reproducible from a single 64-bit seed, independent of the
// standard library implementation.

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace tda {

/// SplitMix64 — used to expand a user seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator (Blackman & Vigna). Satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcd) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    TDA_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be positive.
  std::uint64_t below(std::uint64_t n) noexcept {
    TDA_ASSERT(n > 0);
    // Floating-point scaling; bias is < 2^-53 * n, irrelevant for
    // workload synthesis.
    return std::min(n - 1, static_cast<std::uint64_t>(
                               uniform() * static_cast<double>(n)));
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    TDA_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Random sign: +1 or -1.
  double sign() noexcept { return ((*this)() & 1) ? 1.0 : -1.0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace tda
