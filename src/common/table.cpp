#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace tda {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty())
    TDA_REQUIRE(row.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size())
        os << std::string(width[i] - row[i].size() + 2, ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < width.size(); ++i)
      total += width[i] + (i + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace tda
