#include "common/cli.hpp"

#include <cstdlib>

namespace tda {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_.emplace_back(arg.substr(2), "1");
      } else {
        flags_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  for (const auto& [k, v] : flags_)
    if (k == key) return v;
  return fallback;
}

long long Cli::get_int(const std::string& key, long long fallback) const {
  for (const auto& [k, v] : flags_)
    if (k == key) return std::strtoll(v.c_str(), nullptr, 10);
  return fallback;
}

double Cli::get_double(const std::string& key, double fallback) const {
  for (const auto& [k, v] : flags_)
    if (k == key) return std::strtod(v.c_str(), nullptr);
  return fallback;
}

bool Cli::has(const std::string& key) const {
  for (const auto& [k, v] : flags_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

}  // namespace tda
