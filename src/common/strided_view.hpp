#pragma once
// Strided views over coefficient arrays.
//
// PCR splitting never physically reorders data: after k splits a subsystem
// is the set of equations {offset, offset+stride, offset+2*stride, ...}.
// StridedView captures exactly that (offset is folded into the pointer), and
// split() produces the even/odd children — including the uneven ⌈n/2⌉/⌊n/2⌋
// split for odd sizes, which is what lets the solver handle arbitrary n.

#include <cstddef>
#include <utility>

#include "common/check.hpp"

namespace tda {

/// Non-owning strided view: element i lives at data[i * stride].
template <typename T>
class StridedView {
 public:
  StridedView() = default;
  StridedView(T* data, std::size_t count, std::size_t stride)
      : data_(data), count_(count), stride_(stride) {
    TDA_REQUIRE(stride >= 1, "stride must be positive");
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] T* data() const noexcept { return data_; }

  [[nodiscard]] T& operator[](std::size_t i) const {
    TDA_ASSERT(i < count_);
    return data_[i * stride_];
  }

  /// Children after one PCR split: (even elements, odd elements).
  /// even has ⌈n/2⌉ elements, odd has ⌊n/2⌋; both double the stride.
  [[nodiscard]] std::pair<StridedView, StridedView> split() const {
    TDA_REQUIRE(count_ >= 2, "cannot split a view with fewer than 2 elements");
    StridedView even(data_, (count_ + 1) / 2, stride_ * 2);
    StridedView odd(data_ + stride_, count_ / 2, stride_ * 2);
    return {even, odd};
  }

  /// View of the j-th of 2^k interleaved subsystems after k splits.
  [[nodiscard]] StridedView subsystem(std::size_t k, std::size_t j) const {
    std::size_t parts = std::size_t{1} << k;
    TDA_REQUIRE(j < parts, "subsystem index out of range");
    // Element i of subsystem j is original element j + i*parts.
    std::size_t cnt = (count_ > j) ? (count_ - j + parts - 1) / parts : 0;
    return StridedView(data_ + j * stride_, cnt, stride_ * parts);
  }

  /// Rebind to const.
  [[nodiscard]] StridedView<const T> as_const() const noexcept {
    return StridedView<const T>(data_, count_, stride_);
  }

 private:
  T* data_ = nullptr;
  std::size_t count_ = 0;
  std::size_t stride_ = 1;
};

}  // namespace tda
