#pragma once
// Plain-text table and CSV rendering for benchmark harnesses.
//
// Every figure/table reproduction prints (a) a human-readable aligned table
// and (b) optionally a CSV block that downstream plotting can consume.

#include <iosfwd>
#include <string>
#include <vector>

namespace tda {

/// Column-aligned text table with an optional title and CSV emission.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; resets nothing else.
  void set_header(std::vector<std::string> header);

  /// Appends a pre-formatted row (cells as strings).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 3);
  /// Convenience: integer cell.
  static std::string num(long long v);

  /// Renders the aligned table.
  void print(std::ostream& os) const;

  /// Renders as CSV (header + rows, comma separated, no quoting of commas —
  /// callers must not put commas in cells).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tda
