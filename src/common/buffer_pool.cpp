#include "common/buffer_pool.hpp"

#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "common/alloc_stats.hpp"
#include "common/aligned_buffer.hpp"

namespace tda {

namespace {

/// Local copy of gpusim::parse_mem_bytes' grammar (kept dependency-free:
/// common sits below gpusim). Returns 0 for empty/malformed input.
std::size_t parse_pool_bytes(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || v < 0.0) return 0;
  double scale = 1.0;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k': case 'K': scale = 1024.0; break;
      case 'm': case 'M': scale = 1024.0 * 1024.0; break;
      case 'g': case 'G': scale = 1024.0 * 1024.0 * 1024.0; break;
      default: return 0;
    }
    if (end[1] != '\0') return 0;
  }
  return static_cast<std::size_t>(v * scale);
}

}  // namespace

void PoolBlock::reset() {
  if (pool_ != nullptr) pool_->release(data_, capacity_);
  pool_ = nullptr;
  data_ = nullptr;
  capacity_ = 0;
}

BufferPool& BufferPool::global() {
  static BufferPool* pool = [] {
    auto* p = new BufferPool();
    if (const char* env = std::getenv("TDA_POOL_MAX");
        env != nullptr && *env != '\0') {
      p->set_max_cached_bytes(parse_pool_bytes(env));
    }
    if (const char* env = std::getenv("TDA_POOL_POISON");
        env != nullptr && *env != '\0' && std::string(env) != "0") {
      p->set_poison(true);
    }
    return p;
  }();
  return *pool;
}

BufferPool::BufferPool(std::size_t max_cached_bytes)
    : max_cached_bytes_(max_cached_bytes) {}

BufferPool::~BufferPool() { trim(); }

std::size_t BufferPool::size_class(std::size_t bytes) {
  constexpr std::size_t kClass = 4096;
  if (bytes == 0) return 0;
  return (bytes + kClass - 1) / kClass * kClass;
}

PoolBlock BufferPool::acquire(std::size_t bytes) {
  if (bytes == 0) return {};
  const std::size_t cls = size_class(bytes);
  std::byte* data = nullptr;
  bool fill_poison = false;
  {
    std::lock_guard lk(mu_);
    ++stats_.acquires;
    auto it = free_.find(cls);
    if (it != free_.end() && !it->second.empty()) {
      data = it->second.back();
      it->second.pop_back();
      stats_.cached_bytes -= cls;
      --stats_.cached_buffers;
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
    stats_.outstanding_bytes += cls;
    fill_poison = poison_;
  }
  if (data == nullptr) {
    void* p = std::aligned_alloc(kCacheLineBytes, cls);
    if (p == nullptr) throw std::bad_alloc{};
    note_host_alloc();
    data = static_cast<std::byte*>(p);
  }
  if (fill_poison) std::memset(data, 0xFF, cls);
  return PoolBlock(this, data, cls);
}

void BufferPool::release(std::byte* data, std::size_t capacity) {
  if (data == nullptr) return;
  {
    std::lock_guard lk(mu_);
    ++stats_.releases;
    stats_.outstanding_bytes -= capacity;
    if (stats_.cached_bytes + capacity <= max_cached_bytes_) {
      free_[capacity].push_back(data);
      stats_.cached_bytes += capacity;
      ++stats_.cached_buffers;
      return;
    }
    ++stats_.evictions;
  }
  std::free(data);
}

void BufferPool::trim() {
  std::unordered_map<std::size_t, std::vector<std::byte*>> doomed;
  {
    std::lock_guard lk(mu_);
    doomed.swap(free_);
    stats_.cached_bytes = 0;
    stats_.cached_buffers = 0;
  }
  for (auto& [cls, list] : doomed) {
    for (std::byte* p : list) std::free(p);
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

void BufferPool::reset_stats() {
  std::lock_guard lk(mu_);
  const std::size_t cached_bytes = stats_.cached_bytes;
  const std::size_t cached_buffers = stats_.cached_buffers;
  const std::size_t outstanding = stats_.outstanding_bytes;
  stats_ = Stats{};
  stats_.cached_bytes = cached_bytes;
  stats_.cached_buffers = cached_buffers;
  stats_.outstanding_bytes = outstanding;
}

void BufferPool::set_max_cached_bytes(std::size_t bytes) {
  {
    std::lock_guard lk(mu_);
    max_cached_bytes_ = bytes;
  }
  if (bytes == 0) trim();
}

std::size_t BufferPool::max_cached_bytes() const {
  std::lock_guard lk(mu_);
  return max_cached_bytes_;
}

void BufferPool::set_poison(bool on) {
  std::lock_guard lk(mu_);
  poison_ = on;
}

bool BufferPool::poison() const {
  std::lock_guard lk(mu_);
  return poison_;
}

}  // namespace tda
