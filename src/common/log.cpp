#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>

namespace tda {

namespace {
std::atomic<int> g_level{-1};

LogLevel level_from_env() {
  const char* env = std::getenv("TDA_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Warn;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(level_from_env());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  // Monotonic seconds since the first emission; pinned at first use so
  // the prefix reads as "time into this run".
  static const auto t0 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Format the whole line first and write it under a mutex: concurrent
  // emitters (the CPU baseline solver is multi-threaded) must not
  // interleave partial lines.
  std::ostringstream line;
  line << "[tda:" << level_name(level) << " +" << std::fixed
       << std::setprecision(3) << secs << "s] " << msg << '\n';
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << line.str();
}
}  // namespace detail

}  // namespace tda
