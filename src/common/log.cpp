#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace tda {

namespace {
std::atomic<int> g_level{-1};

LogLevel level_from_env() {
  const char* env = std::getenv("TDA_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Warn;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(level_from_env());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::cerr << "[tda:" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace tda
