#pragma once
// Minimal --key=value command-line parsing for examples and benches.

#include <string>
#include <vector>

namespace tda {

/// Parses flags of the form --key=value or bare --flag (value "1").
/// Unknown positional arguments are kept in `positional`.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Returns the flag value or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tda
