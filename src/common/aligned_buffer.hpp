#pragma once
// Cache-line aligned, value-initialized numeric buffer.
//
// The solver moves large coefficient arrays; 64-byte alignment keeps the
// CPU reference paths vectorizable and mirrors the alignment guarantees of
// cudaMalloc that the simulated kernels assume.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

#include "common/alloc_stats.hpp"
#include "common/check.hpp"

namespace tda {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, 64-byte-aligned array of trivially copyable T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer is for plain numeric data");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { resize(count); }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    std::copy(other.begin(), other.end(), begin());
  }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      resize(other.size_);
      std::copy(other.begin(), other.end(), begin());
    }
    return *this;
  }
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ~AlignedBuffer() { release(); }

  /// Reallocates to `count` elements, zero-initialized. Contents are NOT
  /// preserved (the solver always refills buffers after resizing).
  void resize(std::size_t count) {
    release();
    if (count == 0) return;
    void* p = std::aligned_alloc(
        kCacheLineBytes,
        round_up(count * sizeof(T), kCacheLineBytes));
    if (p == nullptr) throw std::bad_alloc{};
    note_host_alloc();
    data_ = static_cast<T*>(p);
    size_ = count;
    for (std::size_t i = 0; i < size_; ++i) data_[i] = T{};
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  [[nodiscard]] T& operator[](std::size_t i) {
    TDA_ASSERT(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    TDA_ASSERT(i < size_);
    return data_[i];
  }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

 private:
  static std::size_t round_up(std::size_t v, std::size_t m) {
    return (v + m - 1) / m * m;
  }
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace tda
