#pragma once
// Wall-clock timer used by CPU-side measured benchmarks (GPU timings come
// from the simulator's cost model instead).

#include <chrono>

namespace tda {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction/reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  /// Elapsed milliseconds since construction/reset.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tda
