#pragma once
// Lightweight contract checking for the whole library.
//
// TDA_REQUIRE  — precondition check, always on, throws tda::ContractError.
// TDA_ENSURE   — postcondition/invariant check, always on.
// TDA_ASSERT   — debug-only internal sanity check (compiled out in NDEBUG).
//
// We throw instead of aborting so tests can assert on violations and so a
// long tuning run can report which configuration was illegal.

#include <sstream>
#include <stdexcept>
#include <string>

namespace tda {

/// Error thrown when a TDA_REQUIRE/TDA_ENSURE contract is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace tda

#define TDA_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::tda::detail::contract_fail("precondition", #expr, __FILE__,         \
                                   __LINE__, (msg));                        \
  } while (0)

#define TDA_ENSURE(expr, msg)                                               \
  do {                                                                      \
    if (!(expr))                                                            \
      ::tda::detail::contract_fail("invariant", #expr, __FILE__, __LINE__,  \
                                   (msg));                                  \
  } while (0)

#ifdef NDEBUG
#define TDA_ASSERT(expr) ((void)0)
#else
#define TDA_ASSERT(expr)                                                    \
  do {                                                                      \
    if (!(expr))                                                            \
      ::tda::detail::contract_fail("assertion", #expr, __FILE__, __LINE__,  \
                                   std::string{});                          \
  } while (0)
#endif
