#pragma once
// Sequential tridiagonal LU solver with partial pivoting — the algorithm
// behind LAPACK's ?gtsv, which is what the Intel MKL solver the paper
// benchmarks against runs. Pivoting introduces a second superdiagonal of
// fill-in but makes the solver robust on systems that are not diagonally
// dominant (where Thomas/PCR pivots can vanish).

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace tda::cpu {

/// Solves one tridiagonal system with LU + partial pivoting.
///
/// Inputs follow the library convention: a (sub-diagonal, a[0] unused),
/// b (diagonal), c (super-diagonal, c[n-1] unused), d (right-hand side).
/// All spans have length n. Coefficients are consumed destructively; the
/// solution is written to x (which may alias d). Returns false when the
/// matrix is numerically singular (zero pivot after pivoting).
template <typename T>
bool gtsv_solve(std::span<T> a, std::span<T> b, std::span<T> c,
                std::span<T> d, std::span<T> x) {
  const std::size_t n = b.size();
  TDA_REQUIRE(a.size() == n && c.size() == n && d.size() == n &&
                  x.size() == n,
              "gtsv: span size mismatch");
  if (n == 0) return true;
  if (n == 1) {
    if (b[0] == T{0}) return false;
    x[0] = d[0] / b[0];
    return true;
  }

  // Second superdiagonal created by row swaps.
  std::vector<T> c2(n, T{0});

  // Forward elimination with row-wise partial pivoting.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (std::abs(static_cast<double>(b[i])) >=
        std::abs(static_cast<double>(a[i + 1]))) {
      // No swap.
      if (b[i] == T{0}) return false;
      const T f = a[i + 1] / b[i];
      b[i + 1] -= f * c[i];
      if (i + 2 < n) c2[i] = T{0};
      d[i + 1] -= f * d[i];
    } else {
      // Swap rows i and i+1.
      const T f = b[i] / a[i + 1];
      // Row i becomes old row i+1; row i+1 becomes the update.
      b[i] = a[i + 1];
      const T tmp_c = c[i];
      c[i] = b[i + 1];
      b[i + 1] = tmp_c - f * b[i + 1];
      if (i + 2 < n) {
        c2[i] = c[i + 1];
        c[i + 1] = -f * c[i + 1];
      }
      const T tmp_d = d[i];
      d[i] = d[i + 1];
      d[i + 1] = tmp_d - f * d[i + 1];
    }
  }
  if (b[n - 1] == T{0}) return false;

  // Back substitution with the (up to) two superdiagonals.
  x[n - 1] = d[n - 1] / b[n - 1];
  if (n >= 2) {
    x[n - 2] = (d[n - 2] - c[n - 2] * x[n - 1]) / b[n - 2];
  }
  for (std::size_t i = n - 2; i-- > 0;) {
    x[i] = (d[i] - c[i] * x[i + 1] - c2[i] * x[i + 2]) / b[i];
  }
  return true;
}

/// Flops per equation of a gtsv solve (cost accounting).
inline double gtsv_flops_per_eq() { return 10.0; }

}  // namespace tda::cpu
