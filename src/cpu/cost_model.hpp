#pragma once
// Analytic model of the paper's CPU baseline platform (3.4 GHz Intel Core
// i5 dual-core running the sequential MKL gtsv solver, OpenMP over
// systems). Fig. 8's CPU column is reproduced from this model so that
// both sides of the comparison live in one consistent simulated-time
// framework (DESIGN.md §2); the measured wall-clock of BatchCpuSolver on
// the build host is reported alongside for reference.

#include <cstddef>

namespace tda::cpu {

/// CPU platform description for the cost model.
struct CpuSpec {
  const char* name = "cpu";
  int cores = 1;
  /// Effective streaming bandwidth (GB/s) achieved by the sequential
  /// gtsv solver on one thread — well below DRAM peak because the LU
  /// sweep is dependency-bound.
  double eff_bw_single_gb_s = 1.0;
  /// Combined effective bandwidth with one solver thread per core.
  double eff_bw_multi_gb_s = 2.0;
  /// Traffic per equation in units of coefficient elements: 4 reads
  /// (a,b,c,d) + 1 write (x) + pivot/fill overhead.
  double values_per_eq = 6.5;
};

/// The paper's baseline: Intel Core i5 dual-core, 3.4 GHz, MKL
/// 10.2.5.035. Bandwidth constants are calibrated to the two CPU anchor
/// timings of Fig. 8 (10.7 ms for 1K×1K two-threaded, 34 ms for 1×2M
/// single-threaded, fp32) and then frozen.
inline CpuSpec paper_core_i5() {
  CpuSpec s;
  s.name = "Intel Core i5 dual-core 3.4 GHz (MKL model)";
  s.cores = 2;
  s.eff_bw_single_gb_s = 1.53;
  s.eff_bw_multi_gb_s = 2.43;
  s.values_per_eq = 6.5;
  return s;
}

/// Modeled solve time in milliseconds for m systems of n equations with
/// `elem_bytes`-wide elements. Uses the multi-thread bandwidth when the
/// batch has system-level parallelism (m > 1), matching the paper's
/// OpenMP setup.
inline double mkl_model_ms(const CpuSpec& spec, std::size_t m,
                           std::size_t n, std::size_t elem_bytes) {
  const double bytes = static_cast<double>(m) * static_cast<double>(n) *
                       spec.values_per_eq *
                       static_cast<double>(elem_bytes);
  const double bw =
      (m > 1 ? spec.eff_bw_multi_gb_s : spec.eff_bw_single_gb_s) * 1e9;
  return bytes / bw * 1e3;
}

}  // namespace tda::cpu
