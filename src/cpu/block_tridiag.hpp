#pragma once
// Block-tridiagonal solver — the other half of the paper's §VII "next
// challenge ... high-performance blocked tridiagonal solvers".
//
// Systems of the form
//
//   B_0 X_0 + C_0 X_1                      = D_0
//   A_i X_{i-1} + B_i X_i + C_i X_{i+1}    = D_i      0 < i < n-1
//   A_{n-1} X_{n-2} + B_{n-1} X_{n-1}      = D_{n-1}
//
// where A/B/C are dense k×k blocks and D/X are k-vectors, arise from
// coupled PDE systems and vector-valued ADI sweeps. The solver is block
// Thomas (block LU without block pivoting, with partial pivoting INSIDE
// each diagonal block factorization — the standard compromise):
//
//   forward:  B'_i = B_i - A_i (B'_{i-1})^{-1} C_{i-1}
//             D'_i = D_i - A_i (B'_{i-1})^{-1} D'_{i-1}
//   backward: X_i  = (B'_i)^{-1} (D'_i - C_i X_{i+1})
//
// applied through small dense LU kernels (SmallLU).

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace tda::cpu {

/// In-place dense LU factorization with partial pivoting for small k×k
/// blocks (row-major), plus solve/apply helpers.
template <typename T>
class SmallLU {
 public:
  /// Factors `a` (k×k row-major, destroyed). Returns false if singular.
  bool factor(std::span<T> a, std::size_t k) {
    TDA_REQUIRE(a.size() == k * k, "SmallLU: bad span size");
    k_ = k;
    lu_.assign(a.begin(), a.end());
    piv_.resize(k);
    for (std::size_t col = 0; col < k; ++col) {
      std::size_t p = col;
      double best = std::abs(static_cast<double>(lu_[col * k + col]));
      for (std::size_t r = col + 1; r < k; ++r) {
        const double v = std::abs(static_cast<double>(lu_[r * k + col]));
        if (v > best) {
          best = v;
          p = r;
        }
      }
      if (best == 0.0) return false;
      piv_[col] = p;
      if (p != col) {
        for (std::size_t j = 0; j < k; ++j) {
          std::swap(lu_[col * k + j], lu_[p * k + j]);
        }
      }
      const T d = lu_[col * k + col];
      for (std::size_t r = col + 1; r < k; ++r) {
        const T f = lu_[r * k + col] / d;
        lu_[r * k + col] = f;
        for (std::size_t j = col + 1; j < k; ++j) {
          lu_[r * k + j] -= f * lu_[col * k + j];
        }
      }
    }
    return true;
  }

  /// Solves LU x = b in place (b has k entries).
  void solve_vec(std::span<T> b) const {
    TDA_REQUIRE(b.size() == k_, "SmallLU: bad rhs size");
    for (std::size_t col = 0; col < k_; ++col) {
      if (piv_[col] != col) std::swap(b[col], b[piv_[col]]);
      for (std::size_t r = col + 1; r < k_; ++r) {
        b[r] -= lu_[r * k_ + col] * b[col];
      }
    }
    for (std::size_t r = k_; r-- > 0;) {
      for (std::size_t j = r + 1; j < k_; ++j) {
        b[r] -= lu_[r * k_ + j] * b[j];
      }
      b[r] /= lu_[r * k_ + r];
    }
  }

  /// Solves LU X = B for a k×k right-hand side (row-major, in place).
  void solve_mat(std::span<T> bmat) const {
    TDA_REQUIRE(bmat.size() == k_ * k_, "SmallLU: bad matrix size");
    // Column by column.
    std::vector<T> col(k_);
    for (std::size_t c = 0; c < k_; ++c) {
      for (std::size_t r = 0; r < k_; ++r) col[r] = bmat[r * k_ + c];
      solve_vec(col);
      for (std::size_t r = 0; r < k_; ++r) bmat[r * k_ + c] = col[r];
    }
  }

 private:
  std::size_t k_ = 0;
  std::vector<T> lu_;
  std::vector<std::size_t> piv_;
};

/// Owning block-tridiagonal system: n block-rows of k×k blocks.
/// Blocks are row-major; a[0] and c[n-1] are ignored by convention.
template <typename T>
struct BlockTridiagSystem {
  std::size_t n = 0;  ///< number of block rows
  std::size_t k = 0;  ///< block dimension
  std::vector<T> a, b, c;  ///< n·k·k each
  std::vector<T> d;        ///< n·k

  BlockTridiagSystem(std::size_t block_rows, std::size_t block_dim)
      : n(block_rows), k(block_dim) {
    TDA_REQUIRE(n >= 1 && k >= 1, "empty block system");
    a.assign(n * k * k, T{});
    b.assign(n * k * k, T{});
    c.assign(n * k * k, T{});
    d.assign(n * k, T{});
  }

  [[nodiscard]] std::span<T> A(std::size_t i) {
    return {a.data() + i * k * k, k * k};
  }
  [[nodiscard]] std::span<T> B(std::size_t i) {
    return {b.data() + i * k * k, k * k};
  }
  [[nodiscard]] std::span<T> C(std::size_t i) {
    return {c.data() + i * k * k, k * k};
  }
  [[nodiscard]] std::span<T> D(std::size_t i) {
    return {d.data() + i * k, k};
  }
  [[nodiscard]] std::span<const T> A(std::size_t i) const {
    return {a.data() + i * k * k, k * k};
  }
  [[nodiscard]] std::span<const T> B(std::size_t i) const {
    return {b.data() + i * k * k, k * k};
  }
  [[nodiscard]] std::span<const T> C(std::size_t i) const {
    return {c.data() + i * k * k, k * k};
  }
  [[nodiscard]] std::span<const T> D(std::size_t i) const {
    return {d.data() + i * k, k};
  }
};

namespace detail {
/// out -= M * N for k×k row-major blocks.
template <typename T>
void gemm_sub(std::span<T> out, std::span<const T> m, std::span<const T> nn,
              std::size_t k) {
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      T acc{};
      for (std::size_t t = 0; t < k; ++t) {
        acc += m[r * k + t] * nn[t * k + c];
      }
      out[r * k + c] -= acc;
    }
  }
}

/// out -= M * v for a k×k block and k-vector.
template <typename T>
void gemv_sub(std::span<T> out, std::span<const T> m, std::span<const T> v,
              std::size_t k) {
  for (std::size_t r = 0; r < k; ++r) {
    T acc{};
    for (std::size_t t = 0; t < k; ++t) acc += m[r * k + t] * v[t];
    out[r] -= acc;
  }
}
}  // namespace detail

/// Solves a block-tridiagonal system with block Thomas. The system is
/// consumed destructively; the solution (n·k values) is written to x.
/// Returns false when a diagonal block becomes singular (block pivoting
/// would be required — not provided; block-diagonally-dominant systems
/// are always safe).
template <typename T>
bool block_thomas_solve(BlockTridiagSystem<T>& sys, std::span<T> x) {
  const std::size_t n = sys.n;
  const std::size_t k = sys.k;
  TDA_REQUIRE(x.size() == n * k, "block solve: solution size mismatch");

  SmallLU<T> lu;
  std::vector<T> tmp_mat(k * k);
  std::vector<T> tmp_vec(k);

  // Forward elimination: after step i, C(i) holds (B'_i)^{-1} C_i and
  // D(i) holds (B'_i)^{-1} D'_i.
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) {
      // B_i -= A_i * C~_{i-1};  D_i -= A_i * D~_{i-1}
      detail::gemm_sub<T>(sys.B(i), sys.A(i), sys.C(i - 1), k);
      detail::gemv_sub<T>(sys.D(i), sys.A(i), sys.D(i - 1), k);
    }
    std::vector<T> bcopy(sys.B(i).begin(), sys.B(i).end());
    if (!lu.factor(std::span<T>(bcopy), k)) return false;
    if (i + 1 < n) lu.solve_mat(sys.C(i));
    lu.solve_vec(sys.D(i));
  }

  // Back substitution: X_i = D~_i - C~_i X_{i+1}.
  for (std::size_t i = n; i-- > 0;) {
    std::span<T> xi(x.data() + i * k, k);
    std::copy(sys.D(i).begin(), sys.D(i).end(), xi.begin());
    if (i + 1 < n) {
      detail::gemv_sub<T>(xi, sys.C(i),
                          std::span<const T>(x.data() + (i + 1) * k, k), k);
    }
  }
  return true;
}

/// Max-norm residual of a candidate solution against a PRISTINE system
/// (pass a copy that was not consumed by the solver).
template <typename T>
double block_residual_inf(const BlockTridiagSystem<T>& sys,
                          std::span<const T> x) {
  const std::size_t n = sys.n;
  const std::size_t k = sys.k;
  TDA_REQUIRE(x.size() == n * k, "block residual: size mismatch");
  double worst = 0.0, scale = 1.0;
  std::vector<double> acc(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < k; ++r) {
      acc[r] = -static_cast<double>(sys.D(i)[r]);
    }
    auto accumulate = [&](std::span<const T> block,
                          std::span<const T> vec) {
      for (std::size_t r = 0; r < k; ++r) {
        for (std::size_t t = 0; t < k; ++t) {
          acc[r] += static_cast<double>(block[r * k + t]) *
                    static_cast<double>(vec[t]);
        }
      }
    };
    accumulate(sys.B(i), std::span<const T>(x.data() + i * k, k));
    if (i > 0) {
      accumulate(sys.A(i), std::span<const T>(x.data() + (i - 1) * k, k));
    }
    if (i + 1 < n) {
      accumulate(sys.C(i), std::span<const T>(x.data() + (i + 1) * k, k));
    }
    for (std::size_t r = 0; r < k; ++r) {
      worst = std::max(worst, std::abs(acc[r]));
      scale = std::max(scale, std::abs(static_cast<double>(sys.D(i)[r])));
    }
  }
  return worst / scale;
}

}  // namespace tda::cpu
