#pragma once
// General banded LU solver with partial pivoting (LAPACK ?gbsv-style) and
// a pentadiagonal convenience wrapper — the paper's §VII names "optimized
// banded solvers" as the next challenge beyond tridiagonal; this provides
// the reference CPU implementation the library builds on.
//
// Storage follows LAPACK band convention: a matrix with kl subdiagonals
// and ku superdiagonals is stored column-major in an (2kl+ku+1) x n
// array; entry (i, j) lives at row kl+ku+i-j of column j. The extra kl
// rows hold the fill-in produced by row pivoting.

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace tda::cpu {

/// Column-major banded matrix with pivoting headroom.
template <typename T>
class BandedMatrix {
 public:
  BandedMatrix(std::size_t n, std::size_t kl, std::size_t ku)
      : n_(n), kl_(kl), ku_(ku), ldab_(2 * kl + ku + 1),
        ab_(ldab_ * n, T{}) {
    TDA_REQUIRE(n >= 1, "banded matrix needs at least one row");
    TDA_REQUIRE(kl < n && ku < n, "bandwidths must be below n");
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t lower_bandwidth() const { return kl_; }
  [[nodiscard]] std::size_t upper_bandwidth() const { return ku_; }

  /// True when (i, j) falls inside the logical band.
  [[nodiscard]] bool in_band(std::size_t i, std::size_t j) const {
    const auto di = static_cast<std::ptrdiff_t>(i);
    const auto dj = static_cast<std::ptrdiff_t>(j);
    return di - dj <= static_cast<std::ptrdiff_t>(kl_) &&
           dj - di <= static_cast<std::ptrdiff_t>(ku_);
  }

  /// Mutable access to in-band entries (pivot fill rows included: the
  /// working band reaches ku_ + kl_ above the diagonal internally).
  [[nodiscard]] T& at(std::size_t i, std::size_t j) {
    TDA_ASSERT(i < n_ && j < n_);
    const auto row = static_cast<std::ptrdiff_t>(kl_ + ku_) +
                     static_cast<std::ptrdiff_t>(i) -
                     static_cast<std::ptrdiff_t>(j);
    TDA_ASSERT(row >= static_cast<std::ptrdiff_t>(0) &&
               row < static_cast<std::ptrdiff_t>(ldab_));
    return ab_[static_cast<std::size_t>(row) + j * ldab_];
  }
  [[nodiscard]] const T& at(std::size_t i, std::size_t j) const {
    return const_cast<BandedMatrix*>(this)->at(i, j);
  }

  /// Whether (i, j) lies inside the WORKING band (logical band plus the
  /// kl rows of pivot fill above).
  [[nodiscard]] bool in_working_band(std::size_t i, std::size_t j) const {
    const auto di = static_cast<std::ptrdiff_t>(i);
    const auto dj = static_cast<std::ptrdiff_t>(j);
    return di - dj <= static_cast<std::ptrdiff_t>(kl_) &&
           dj - di <= static_cast<std::ptrdiff_t>(ku_ + kl_);
  }

 private:
  std::size_t n_, kl_, ku_, ldab_;
  std::vector<T> ab_;
};

/// Solves A x = d for a banded A using LU with row partial pivoting.
/// A is consumed destructively. x may alias d. Returns false on a
/// numerically singular matrix.
template <typename T>
bool gbsv_solve(BandedMatrix<T>& A, std::span<const T> d, std::span<T> x) {
  const std::size_t n = A.size();
  const std::size_t kl = A.lower_bandwidth();
  const std::size_t ku = A.upper_bandwidth();
  TDA_REQUIRE(d.size() == n && x.size() == n, "gbsv: size mismatch");

  std::vector<T> rhs(d.begin(), d.end());

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting within the kl rows below the diagonal.
    std::size_t piv = k;
    double best = std::abs(static_cast<double>(A.at(k, k)));
    const std::size_t last_row = std::min(n - 1, k + kl);
    for (std::size_t r = k + 1; r <= last_row; ++r) {
      const double v = std::abs(static_cast<double>(A.at(r, k)));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best == 0.0) return false;
    const std::size_t last_col = std::min(n - 1, k + ku + kl);
    if (piv != k) {
      // Both rows' entries over [k, k+ku+kl] lie inside their working
      // bands (piv <= k+kl, so j-piv <= ku+kl and j >= piv-kl hold).
      for (std::size_t j = k; j <= last_col; ++j) {
        std::swap(A.at(k, j), A.at(piv, j));
      }
      std::swap(rhs[k], rhs[piv]);
    }

    const T pivval = A.at(k, k);
    for (std::size_t r = k + 1; r <= last_row; ++r) {
      const T f = A.at(r, k) / pivval;
      if (f == T{0}) continue;
      A.at(r, k) = T{0};
      for (std::size_t j = k + 1; j <= last_col; ++j) {
        A.at(r, j) -= f * A.at(k, j);
      }
      rhs[r] -= f * rhs[k];
    }
  }

  // Back substitution over the (widened) upper band.
  for (std::size_t i = n; i-- > 0;) {
    T acc = rhs[i];
    const std::size_t last_col = std::min(n - 1, i + ku + kl);
    for (std::size_t j = i + 1; j <= last_col; ++j) {
      acc -= A.at(i, j) * x[j];
    }
    const T pivval = A.at(i, i);
    if (pivval == T{0}) return false;
    x[i] = acc / pivval;
  }
  return true;
}

/// Pentadiagonal convenience: diagonals a2 (i,i-2), a1 (i,i-1), b (i,i),
/// c1 (i,i+1), c2 (i,i+2); all spans length n with out-of-range leading/
/// trailing entries ignored. Solves into x.
template <typename T>
bool penta_solve(std::span<const T> a2, std::span<const T> a1,
                 std::span<const T> b, std::span<const T> c1,
                 std::span<const T> c2, std::span<const T> d,
                 std::span<T> x) {
  const std::size_t n = b.size();
  TDA_REQUIRE(a2.size() == n && a1.size() == n && c1.size() == n &&
                  c2.size() == n && d.size() == n && x.size() == n,
              "penta: size mismatch");
  TDA_REQUIRE(n >= 3, "penta solver needs n >= 3");
  BandedMatrix<T> A(n, 2, 2);
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= 2) A.at(i, i - 2) = a2[i];
    if (i >= 1) A.at(i, i - 1) = a1[i];
    A.at(i, i) = b[i];
    if (i + 1 < n) A.at(i, i + 1) = c1[i];
    if (i + 2 < n) A.at(i, i + 2) = c2[i];
  }
  return gbsv_solve(A, d, x);
}

}  // namespace tda::cpu
