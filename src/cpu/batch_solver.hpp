#pragma once
// CPU batch driver: the MKL-style baseline of paper Fig. 8.
//
// Mirrors the paper's setup: "when solving many systems, we use a
// two-threaded implementation on two CPU cores with each thread executing
// a MKL solver. For solving a single system ... we use a single thread,
// since the MKL solver is sequential." Each system is solved by one
// thread running the sequential gtsv (LU + partial pivoting) solver.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "cpu/gtsv.hpp"
#include "tridiag/batch.hpp"

namespace tda::cpu {

/// Result of a batch solve.
struct CpuSolveStats {
  double wall_ms = 0.0;      ///< measured wall-clock on the host machine
  std::size_t failures = 0;  ///< systems with singular matrices
  int threads_used = 1;
};

/// Thread-parallel batch tridiagonal solver (system-level parallelism).
class BatchCpuSolver {
 public:
  /// `num_threads` <= 0 selects the paper's configuration: 2 threads for
  /// many systems, 1 for a single system.
  explicit BatchCpuSolver(int num_threads = 0) : threads_(num_threads) {}

  /// Solves every system of `batch` (coefficients preserved; the solve
  /// works on per-thread copies), writing solutions to batch.x().
  template <typename T>
  CpuSolveStats solve(tridiag::TridiagBatch<T>& batch) const {
    const std::size_t m = batch.num_systems();
    const std::size_t n = batch.system_size();
    int nthreads = threads_;
    if (nthreads <= 0) nthreads = (m > 1) ? 2 : 1;
    nthreads = static_cast<int>(
        std::min<std::size_t>(m, static_cast<std::size_t>(nthreads)));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> failures{0};
    WallTimer timer;

    auto worker = [&] {
      std::vector<T> a(n), b(n), c(n), d(n);
      for (;;) {
        const std::size_t s = next.fetch_add(1);
        if (s >= m) break;
        const std::size_t off = s * n;
        std::copy_n(batch.a().data() + off, n, a.data());
        std::copy_n(batch.b().data() + off, n, b.data());
        std::copy_n(batch.c().data() + off, n, c.data());
        std::copy_n(batch.d().data() + off, n, d.data());
        std::span<T> x(batch.x().data() + off, n);
        if (!gtsv_solve<T>(a, b, c, d, x)) {
          failures.fetch_add(1);
        }
      }
    };

    if (nthreads <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(nthreads);
      for (int t = 0; t < nthreads; ++t) pool.emplace_back(worker);
      for (auto& th : pool) th.join();
    }

    CpuSolveStats st;
    st.wall_ms = timer.millis();
    st.failures = failures.load();
    st.threads_used = nthreads;
    return st;
  }

 private:
  int threads_;
};

}  // namespace tda::cpu
