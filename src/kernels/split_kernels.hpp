#pragma once
// Global-memory splitting kernels (paper Stages 1 and 2).
//
// Both stages perform PCR steps with doubling shifts over the original
// contiguous arrays; neither reorders data, so subsystems stay interleaved
// and accesses stay coalesced until strides grow. They differ in launch
// structure and therefore cost:
//
//  * Stage 1 (cooperative split): ONE split per kernel launch. The grid
//    covers all equations with many small blocks, so even a single system
//    saturates the memory system — but every split pays a kernel-launch
//    (grid synchronization) overhead. Used while there are too few
//    independent systems to keep the machine busy.
//
//  * Stage 2 (independent split): each block owns one current subsystem
//    and performs ALL remaining splits in one launch with cheap block-
//    level syncs. Parallelism equals the number of independent
//    subsystems, and accesses inherit the subsystem stride at entry.

#include <algorithm>
#include <cstddef>

#include "common/check.hpp"
#include "gpusim/launch.hpp"
#include "kernels/config.hpp"
#include "kernels/device_batch.hpp"
#include "tridiag/pcr.hpp"

namespace tda::kernels {

/// Tracks how many split steps a batch has undergone. After `splits`
/// steps every original system consists of 2^splits independent
/// interleaved subsystems.
struct SplitState {
  std::size_t splits = 0;

  [[nodiscard]] std::size_t parts() const { return std::size_t{1} << splits; }
  /// Size of the largest subsystem of an original system of size n.
  [[nodiscard]] std::size_t max_sub_size(std::size_t n) const {
    return (n + parts() - 1) / parts();
  }
};

/// Flops per equation of one PCR step (warp instructions, incl. address
/// arithmetic and shared/global moves).
inline constexpr double kPcrStepWarpInsts = 16.0;
/// Global traffic per equation per split step, in coefficient values:
/// 12 reads (self + both neighbour windows, 4 arrays — uncached on these
/// parts, so the overlapping windows hit DRAM separately) + 4 writes.
inline constexpr double kPcrStepValuesPerEq = 16.0;

/// Stage 1: one cooperative split of every system in the batch (one
/// kernel launch; the caller loops). Advances `st` by one split.
template <typename T>
gpusim::KernelStats stage1_split_step(gpusim::Device& dev,
                                      DeviceBatch<T>& batch, SplitState& st,
                                      ExecMode mode = ExecMode::Full) {
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::size_t shift = st.parts();  // global-index shift of this step
  TDA_REQUIRE(shift < n, "system is already fully decoupled");

  const int threads = 256;
  const std::size_t total = m * n;
  gpusim::LaunchConfig cfg;
  cfg.blocks = (total + threads - 1) / threads;
  cfg.blocks = std::min<std::size_t>(
      cfg.blocks, static_cast<std::size_t>(dev.spec().max_grid_blocks));
  cfg.threads_per_block = threads;
  cfg.shared_bytes = 0;
  cfg.regs_per_thread = split_kernel_regs_per_thread(dev.query());

  const std::size_t chunk = (total + cfg.blocks - 1) / cfg.blocks;
  auto stats = dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    const std::size_t g0 = ctx.block_index() * chunk;
    const std::size_t g1 = std::min(total, g0 + chunk);
    if (g0 >= g1) return;
    // Work through every system this chunk overlaps.
    for (std::size_t s = g0 / n; s * n < g1 && s < m; ++s) {
      const std::size_t lo = (g0 > s * n) ? g0 - s * n : 0;
      const std::size_t hi = std::min(n, g1 - s * n);
      if (lo >= hi) continue;
      if (mode == ExecMode::Full) {
        auto src = batch.cur_system_const(s);
        auto dst = batch.alt_system(s);
        tridiag::pcr_step_range(src, dst, shift, lo, hi);
      }

      const double len = static_cast<double>(hi - lo);
      // Grid-wide synchronization penalty: every Stage-1 split is a
      // dependent full-array pass bounded by coop_sync_efficiency of
      // peak bandwidth.
      ctx.charge_global(kPcrStepValuesPerEq * len * sizeof(T) /
                            ctx.device().coop_sync_efficiency,
                        1, sizeof(T));
      ctx.charge_phase(ctx.threads(),
                       std::ceil(len / ctx.threads()),
                       kPcrStepWarpInsts);
    }
  }, "stage1_coop_split");
  batch.swap_buffers();
  ++st.splits;
  return stats;
}

/// Stage 2: every current subsystem gets its own block, which performs
/// `steps` further splits in a single launch. Advances `st` by `steps`.
template <typename T>
gpusim::KernelStats stage2_split(gpusim::Device& dev, DeviceBatch<T>& batch,
                                 SplitState& st, std::size_t steps,
                                 ExecMode mode = ExecMode::Full) {
  TDA_REQUIRE(steps >= 1, "stage 2 must perform at least one step");
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::size_t entry_parts = st.parts();
  const std::size_t entry_stride = entry_parts;
  TDA_REQUIRE((entry_parts << steps) <= n,
              "stage 2 would split below one equation per subsystem");

  gpusim::LaunchConfig cfg;
  cfg.blocks = m * entry_parts;
  cfg.threads_per_block = 256;
  cfg.shared_bytes = 0;
  cfg.regs_per_thread = split_kernel_regs_per_thread(dev.query());

  auto stats = dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    const std::size_t s = ctx.block_index() / entry_parts;
    const std::size_t p = ctx.block_index() % entry_parts;
    // Ping-pong locally: the block's subsystem is disjoint from every
    // other block's, so flipping buffers per step is hazard-free.
    tridiag::SystemView<T> views[2] = {
        batch.cur_system(s).subsystem(st.splits, p),
        batch.alt_system(s).subsystem(st.splits, p)};
    int cur = 0;
    const std::size_t len = views[0].size();
    for (std::size_t t = 0; t < steps; ++t) {
      const std::size_t shift = std::size_t{1} << t;  // subsystem-local
      if (mode == ExecMode::Full) {
        tridiag::pcr_step(
            tridiag::SystemView<const T>{
                views[cur].a.as_const(), views[cur].b.as_const(),
                views[cur].c.as_const(), views[cur].d.as_const()},
            views[1 - cur], shift);
      }
      cur = 1 - cur;

      const double dlen = static_cast<double>(len);
      ctx.charge_global(kPcrStepValuesPerEq * dlen * sizeof(T),
                        entry_stride, sizeof(T));
      ctx.charge_phase(ctx.threads(), std::ceil(dlen / ctx.threads()),
                       kPcrStepWarpInsts);
      if (t + 1 < steps) ctx.sync();
    }
  }, "stage2_independent_split");
  if (steps % 2 == 1) batch.swap_buffers();
  st.splits += steps;
  return stats;
}

}  // namespace tda::kernels
