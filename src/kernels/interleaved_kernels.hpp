#pragma once
// Element-major (interleaved) kernel variants: one lane per SYSTEM.
//
// In element-major layout all m systems' i-th elements are adjacent
// ([i*m + s]), so the Thomas recurrence — strictly serial DOWN a system
// — becomes embarrassingly parallel ACROSS systems with stride-1 memory:
// one simulated GPU thread (and one host SIMD lane) per system walks the
// forward/backward sweeps over contiguous rows. This is the cuThomasBatch
// interleaved solver / OMEGA's VecLength vector-batched Thomas, grafted
// onto the paper's auto-tuning: whether the two transposes pay for the
// single-pass solve is a tuner decision (src/tuning/dynamic_tuner.hpp).
//
// Pipeline (reusing DeviceBatch's ping-pong slab — no extra device
// memory beyond the batch's existing footprint):
//
//   transpose_in   cur (system-major) → alt (element-major), swap
//   thomas         in-place on cur; x staged element-major in alt.d
//   transpose_out  alt.d → x (system-major)
//
// Every stage decomposes into blocks owning DISJOINT output regions
// (tiles, or column strips of systems), so there are no cross-block
// hazards and execution is bitwise deterministic at every TDA_THREADS
// and every TDA_SIMD_WIDTH: per-system arithmetic is elementwise
// independent, so the strip width is a pure scheduling/vectorization
// knob that cannot change a single result bit.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>

#include "common/check.hpp"
#include "gpusim/launch.hpp"
#include "kernels/config.hpp"
#include "kernels/device_batch.hpp"
#include "kernels/simd.hpp"
#include "kernels/split_kernels.hpp"
#include "tridiag/batch.hpp"

namespace tda::kernels {

/// Systems per simulated block of the interleaved kernels: one thread
/// per system, 256 threads per block (the cuThomasBatch geometry; six
/// such blocks fill a Fermi SM to full occupancy, which the bandwidth
/// model rewards). This is a property of the SIMULATED launch — fixed,
/// so the cost model and every tuner decision derived from it are
/// identical on every build host — while TDA_SIMD_WIDTH
/// (simd_strip_width) only strip-mines the HOST traversal inside a
/// block and cannot change a charge or a bit.
inline constexpr std::size_t kInterleavedBlockSystems = 256;

/// Warp instructions per equation of the interleaved Thomas sweep:
/// ~5 flops forward + ~2 backward + address arithmetic. One pass — this
/// is the compute advantage over the multi-step PCR pipeline.
inline constexpr double kInterleavedThomasWarpInstsPerEq = 9.0;
/// Dependent-latency depth per equation of the forward sweep (division
/// plus the multiply-adds feeding it) and the backward sweep.
inline constexpr double kInterleavedFwdDepPerEq = 7.0;
inline constexpr double kInterleavedBwdDepPerEq = 3.0;
/// Global values moved per equation by the interleaved Thomas: forward
/// reads a,b,c,d and rewrites c,d (6), backward re-reads c,d and writes
/// x (3) — all stride-1 across systems.
inline constexpr double kInterleavedThomasValuesPerEq = 9.0;
/// Values moved per equation by one tile-transpose pass over `lanes`
/// arrays: each element is read once and written once.
inline constexpr double kTransposeValuesPerElem = 2.0;

/// Simulated shared tile side of the transpose kernel on a device: the
/// largest power-of-two tile (≤ kTransposeTile, ≥ 8) whose staged tile
/// fits in HALF the SM's shared memory, so at least two blocks stay
/// resident even on shared-starved devices (the GeForce 8800's 16 KB
/// would make a 64² double tile unlaunchable outright).
inline std::size_t transpose_tile(const gpusim::DeviceSpec& spec,
                                  std::size_t elem_bytes) {
  std::size_t tile = tridiag::kTransposeTile;
  while (tile > 8 && tile * tile * elem_bytes > spec.shared_mem_per_sm / 2) {
    tile /= 2;
  }
  return tile;
}

/// Shared-memory tile bytes of the transpose kernel (one tile staged
/// on-chip so both the load and the store sides stay coalesced).
inline std::size_t transpose_shared_bytes(const gpusim::DeviceSpec& spec,
                                          std::size_t elem_bytes) {
  const std::size_t tile = transpose_tile(spec, elem_bytes);
  return tile * tile * elem_bytes;
}

namespace detail {

/// Shared launch skeleton of the transpose stages: grid over
/// kTransposeTile² tiles of an R×C row-major source (blocks loop over
/// tiles when the grid is clamped), transposing `lanes` pairs of
/// src→dst arrays with dst[c*R + r] = src[r*C + c].
template <typename T, std::size_t N>
gpusim::KernelStats transpose_launch(gpusim::Device& dev, std::size_t rows,
                                     std::size_t cols,
                                     const std::array<const T*, N>& src,
                                     const std::array<T*, N>& dst,
                                     ExecMode mode, const char* name) {
  const std::size_t tile = transpose_tile(dev.spec(), sizeof(T));
  const std::size_t tiles_r = (rows + tile - 1) / tile;
  const std::size_t tiles_c = (cols + tile - 1) / tile;
  const std::size_t tiles = tiles_r * tiles_c;

  gpusim::LaunchConfig cfg;
  cfg.blocks = std::min<std::size_t>(
      tiles, static_cast<std::size_t>(dev.spec().max_grid_blocks));
  cfg.threads_per_block = static_cast<int>(std::min<std::size_t>(
      tile * 8, static_cast<std::size_t>(dev.spec().max_threads_per_block)));
  cfg.shared_bytes = tile * tile * sizeof(T);
  cfg.regs_per_thread = split_kernel_regs_per_thread(dev.query());

  return dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    for (std::size_t t = ctx.block_index(); t < tiles; t += cfg.blocks) {
      const std::size_t r0 = (t / tiles_c) * tile;
      const std::size_t c0 = (t % tiles_c) * tile;
      const std::size_t r1 = std::min(rows, r0 + tile);
      const std::size_t c1 = std::min(cols, c0 + tile);
      const double elems = static_cast<double>(r1 - r0) *
                           static_cast<double>(c1 - c0) *
                           static_cast<double>(N);
      if (mode == ExecMode::Full) {
        // Column-outer order: the inner loop STORES contiguously into
        // dst (and gather-loads the strided side), which vectorizes —
        // the host-side analogue of the coalesced shared-staged store.
        for (std::size_t k = 0; k < N; ++k) {
          for (std::size_t c = c0; c < c1; ++c) {
            TDA_SIMD_LOOP
            for (std::size_t r = r0; r < r1; ++r) {
              dst[k][c * rows + r] = src[k][r * cols + c];
            }
          }
        }
      }
      // Tile staged through shared memory: both global sides coalesced;
      // the on-chip shuffle is a short conflict-prone phase.
      ctx.charge_global(kTransposeValuesPerElem * elems * sizeof(T), 1,
                        sizeof(T));
      ctx.charge_phase(ctx.threads(),
                       std::ceil(elems / ctx.threads()), 2.0, 2.0, 1.0);
      ctx.sync();
    }
  }, name);
}

}  // namespace detail

/// Transposes the four CURRENT coefficient lanes from system-major
/// (m×n) into the alternate buffer as element-major (n×m), flips the
/// ping-pong parity and tags the batch ElementMajor.
template <typename T>
gpusim::KernelStats transpose_in_stage(gpusim::Device& dev,
                                       DeviceBatch<T>& batch,
                                       ExecMode mode = ExecMode::Full) {
  TDA_REQUIRE(batch.layout() == tridiag::BatchLayout::SystemMajor,
              "transpose_in: batch is already element-major");
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::array<const T*, 4> src{
      batch.cur_lane(0).data(), batch.cur_lane(1).data(),
      batch.cur_lane(2).data(), batch.cur_lane(3).data()};
  const std::array<T*, 4> dst{
      batch.alt_lane(0).data(), batch.alt_lane(1).data(),
      batch.alt_lane(2).data(), batch.alt_lane(3).data()};
  auto stats =
      detail::transpose_launch<T, 4>(dev, m, n, src, dst, mode,
                                     "interleaved_transpose_in");
  batch.swap_buffers();
  batch.set_layout(tridiag::BatchLayout::ElementMajor);
  return stats;
}

/// Transposes the element-major solution staged in the ALTERNATE d lane
/// (written by interleaved_thomas_stage) back into the batch's x array
/// in system-major order, and tags the batch SystemMajor again so a
/// reused DeviceBatch is always observed in the wire layout.
template <typename T>
gpusim::KernelStats transpose_out_stage(gpusim::Device& dev,
                                        DeviceBatch<T>& batch,
                                        ExecMode mode = ExecMode::Full) {
  TDA_REQUIRE(batch.layout() == tridiag::BatchLayout::ElementMajor,
              "transpose_out: batch is not element-major");
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::array<const T*, 1> src{batch.alt_lane(3).data()};
  const std::array<T*, 1> dst{batch.x().data()};
  auto stats =
      detail::transpose_launch<T, 1>(dev, n, m, src, dst, mode,
                                     "interleaved_transpose_out");
  batch.set_layout(tridiag::BatchLayout::SystemMajor);
  return stats;
}

/// Solves every current subsystem of an element-major batch with one
/// Thomas lane per system. Blocks own disjoint strips of
/// kInterleavedBlockSystems adjacent systems; the host walks each strip
/// in sub-strips of simd_strip_width<T>() whose inner loops run
/// stride-1 across systems, so they vectorize with no intrinsics
/// (TDA_SIMD_LOOP is only a hint). With a non-trivial SplitState each
/// system consists of st.parts() interleaved subsystems (rows p,
/// p+parts, ...), which the strip sweeps one after another — the
/// composition the interleaved-PCR ablation variant uses; the
/// production path passes the default (no splits, one sweep).
/// The forward sweep rewrites the current c/d lanes in place; the
/// solution is written element-major into the ALTERNATE d lane, where
/// transpose_out_stage picks it up.
template <typename T>
gpusim::KernelStats interleaved_thomas_stage(gpusim::Device& dev,
                                             DeviceBatch<T>& batch,
                                             const SplitState& st = {},
                                             ExecMode mode = ExecMode::Full) {
  TDA_REQUIRE(batch.layout() == tridiag::BatchLayout::ElementMajor,
              "interleaved Thomas needs an element-major batch");
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::size_t parts = st.parts();
  const std::size_t width = kInterleavedBlockSystems;
  const std::size_t vec = simd_strip_width<T>();
  const std::size_t strips = (m + width - 1) / width;
  const auto& spec = dev.spec();

  gpusim::LaunchConfig cfg;
  cfg.blocks = std::min<std::size_t>(
      strips, static_cast<std::size_t>(spec.max_grid_blocks));
  cfg.threads_per_block = static_cast<int>(std::min<std::size_t>(
      width, static_cast<std::size_t>(spec.max_threads_per_block)));
  cfg.shared_bytes = 0;
  cfg.regs_per_thread = split_kernel_regs_per_thread(dev.query());

  T* const a = batch.cur_lane(0).data();
  T* const b = batch.cur_lane(1).data();
  T* const c = batch.cur_lane(2).data();
  T* const d = batch.cur_lane(3).data();
  T* const x = batch.alt_lane(3).data();

  auto stats = dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    for (std::size_t strip = ctx.block_index(); strip < strips;
         strip += cfg.blocks) {
      const std::size_t s0 = strip * width;
      const std::size_t s1 = std::min(m, s0 + width);
      const std::size_t w = s1 - s0;

      if (mode == ExecMode::Full) {
        unsigned bad = 0;
        // Host strip-mining: sub-strips of `vec` systems keep one
        // hardware vector's worth of rows hot while the sweeps walk n.
        for (std::size_t v0 = s0; v0 < s1; v0 += vec) {
          const std::size_t v1 = std::min(s1, v0 + vec);
          for (std::size_t p = 0; p < parts && p < n; ++p) {
            // Subsystem p of every system in the sub-strip: rows p,
            // p+parts, ... — `len` of them. Row t of lane k is
            // k[(p+t*parts)*m+s]: consecutive s are consecutive
            // addresses, so every inner loop is a contiguous vector op.
            // Divisions by a zero pivot are masked to 1 (never fed
            // back) and flagged instead of computed, keeping the loop
            // select-only and ubsan-clean.
            const std::size_t len = (n - p + parts - 1) / parts;
            {
              const std::size_t row = p * m;
              TDA_SIMD_LOOP
              for (std::size_t s = v0; s < v1; ++s) {
                const T denom = b[row + s];
                const unsigned zero = denom == T{0} ? 1u : 0u;
                bad |= zero;
                const T inv = T{1} / (zero != 0u ? T{1} : denom);
                c[row + s] = c[row + s] * inv;
                d[row + s] = d[row + s] * inv;
              }
            }
            for (std::size_t t = 1; t < len; ++t) {
              const std::size_t row = (p + t * parts) * m;
              const std::size_t prev = row - parts * m;
              const bool keep_c = t + 1 < len;
              TDA_SIMD_LOOP
              for (std::size_t s = v0; s < v1; ++s) {
                const T denom = b[row + s] - a[row + s] * c[prev + s];
                const unsigned zero = denom == T{0} ? 1u : 0u;
                bad |= zero;
                const T inv = T{1} / (zero != 0u ? T{1} : denom);
                if (keep_c) c[row + s] = c[row + s] * inv;
                d[row + s] = (d[row + s] - a[row + s] * d[prev + s]) * inv;
              }
            }
            // Back substitution into the alternate d lane (element-major
            // x).
            {
              const std::size_t last = (p + (len - 1) * parts) * m;
              TDA_SIMD_LOOP
              for (std::size_t s = v0; s < v1; ++s) {
                x[last + s] = d[last + s];
              }
            }
            for (std::size_t t = len - 1; t-- > 0;) {
              const std::size_t row = (p + t * parts) * m;
              const std::size_t next = row + parts * m;
              TDA_SIMD_LOOP
              for (std::size_t s = v0; s < v1; ++s) {
                x[row + s] = d[row + s] - c[row + s] * x[next + s];
              }
            }
          }
        }
        TDA_ENSURE(bad == 0u, "interleaved Thomas kernel hit a zero pivot");
      }

      // Every row is touched exactly once regardless of `parts`.
      const double eqs = static_cast<double>(n);
      const double vals = kInterleavedThomasValuesPerEq * eqs *
                          static_cast<double>(w) * sizeof(T);
      ctx.charge_global(vals, 1, sizeof(T));
      // Two dependent chains covering n equations each, one thread per
      // system (subsystems of one system run back to back on the same
      // lane, so the chain length is n rows either way).
      ctx.charge_phase(static_cast<int>(w), eqs,
                       kInterleavedThomasWarpInstsPerEq * 2.0 / 3.0, 1.0,
                       kInterleavedFwdDepPerEq);
      ctx.charge_phase(static_cast<int>(w), eqs,
                       kInterleavedThomasWarpInstsPerEq / 3.0, 1.0,
                       kInterleavedBwdDepPerEq);
    }
  }, "interleaved_thomas");
  return stats;
}

/// Element-major PCR: each block performs `steps` splits on its strip of
/// systems entirely block-locally (neighbour rows i±shift of a system
/// live in the block's own columns), ping-ponging between the two slab
/// buffers. Exists as the second interleaved variant for the kernel
/// ablation — the production element-major path uses the single-pass
/// Thomas above, but the ablation keeps every kernel family honest.
template <typename T>
gpusim::KernelStats interleaved_pcr_stage(gpusim::Device& dev,
                                          DeviceBatch<T>& batch,
                                          SplitState& st, std::size_t steps,
                                          ExecMode mode = ExecMode::Full) {
  TDA_REQUIRE(batch.layout() == tridiag::BatchLayout::ElementMajor,
              "interleaved PCR needs an element-major batch");
  TDA_REQUIRE(steps >= 1, "interleaved PCR must perform at least one step");
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  TDA_REQUIRE((st.parts() << steps) <= n,
              "split would go below one equation per subsystem");
  const std::size_t width = kInterleavedBlockSystems;
  const std::size_t strips = (m + width - 1) / width;
  const auto& spec = dev.spec();

  gpusim::LaunchConfig cfg;
  cfg.blocks = std::min<std::size_t>(
      strips, static_cast<std::size_t>(spec.max_grid_blocks));
  cfg.threads_per_block = static_cast<int>(std::min<std::size_t>(
      width, static_cast<std::size_t>(spec.max_threads_per_block)));
  cfg.shared_bytes = 0;
  cfg.regs_per_thread = split_kernel_regs_per_thread(dev.query());

  std::array<T*, 4> bufs[2] = {
      {batch.cur_lane(0).data(), batch.cur_lane(1).data(),
       batch.cur_lane(2).data(), batch.cur_lane(3).data()},
      {batch.alt_lane(0).data(), batch.alt_lane(1).data(),
       batch.alt_lane(2).data(), batch.alt_lane(3).data()}};

  auto stats = dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    for (std::size_t strip = ctx.block_index(); strip < strips;
         strip += cfg.blocks) {
      const std::size_t s0 = strip * width;
      const std::size_t s1 = std::min(m, s0 + width);
      const std::size_t w = s1 - s0;
      int cur = 0;
      for (std::size_t t = 0; t < steps; ++t) {
        const std::size_t shift = st.parts() << t;  // rows, not elements
        if (mode == ExecMode::Full) {
          const T* a = bufs[cur][0];
          const T* b = bufs[cur][1];
          const T* c = bufs[cur][2];
          const T* d = bufs[cur][3];
          T* na = bufs[1 - cur][0];
          T* nb = bufs[1 - cur][1];
          T* nc = bufs[1 - cur][2];
          T* nd = bufs[1 - cur][3];
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t row = i * m;
            const bool has_lo = i >= shift;
            const bool has_hi = i + shift < n;
            const std::size_t lo = has_lo ? row - shift * m : 0;
            const std::size_t hi = has_hi ? row + shift * m : 0;
            TDA_SIMD_LOOP
            for (std::size_t s = s0; s < s1; ++s) {
              const T alpha =
                  has_lo ? -a[row + s] / b[lo + s] : T{0};
              const T beta = has_hi ? -c[row + s] / b[hi + s] : T{0};
              nb[row + s] = b[row + s] +
                            (has_lo ? alpha * c[lo + s] : T{0}) +
                            (has_hi ? beta * a[hi + s] : T{0});
              nd[row + s] = d[row + s] +
                            (has_lo ? alpha * d[lo + s] : T{0}) +
                            (has_hi ? beta * d[hi + s] : T{0});
              na[row + s] = has_lo ? alpha * a[lo + s] : T{0};
              nc[row + s] = has_hi ? beta * c[hi + s] : T{0};
            }
          }
        }
        cur = 1 - cur;
        const double dn = static_cast<double>(n) * static_cast<double>(w);
        ctx.charge_global(kPcrStepValuesPerEq * dn * sizeof(T), 1,
                          sizeof(T));
        ctx.charge_phase(static_cast<int>(w),
                         static_cast<double>(n), kPcrStepWarpInsts);
        if (t + 1 < steps) ctx.sync();
      }
    }
  }, "interleaved_pcr_split");
  if (steps % 2 == 1) batch.swap_buffers();
  st.splits += steps;
  return stats;
}

}  // namespace tda::kernels
