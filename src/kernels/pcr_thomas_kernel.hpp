#pragma once
// Stage 3+4: the hybrid PCR-Thomas shared-memory kernel (the paper's base
// kernel, §III-A).
//
// Each block fetches one subsystem from global into shared memory, keeps
// splitting it with PCR (block-local syncs) until it holds at least
// `thomas_switch` interleaved subsystems, then lets every thread solve one
// subsystem serially with the Thomas algorithm, and writes the unknowns
// back.
//
// Two load variants exist because stage-2 output is interleaved with
// stride 2^splits:
//  * Strided — each block gathers exactly its own subsystem. The gather
//    is uncoalesced: the memory system moves whole segments, and with S
//    subsystems per segment each segment is fetched by S different blocks
//    (inflation min(S, segment/elem)). All later work stays in shared.
//  * Coalesced — each block streams a contiguous window (every byte
//    fetched exactly once, inflation 1) but the window holds fragments of
//    S subsystems, so each PCR step leaks boundary accesses to global
//    memory (≈ 2 per fragment per array). Wins at small S, loses at
//    large S; the crossover is device-dependent (segment size), which is
//    why the self-tuner probes it (§IV-D).
//
// Both variants execute identical arithmetic in the simulator; only their
// charged access patterns differ (DESIGN.md §5).

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/check.hpp"
#include "gpusim/launch.hpp"
#include "kernels/config.hpp"
#include "kernels/device_batch.hpp"
#include "kernels/split_kernels.hpp"
#include "tridiag/hybrid.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/thomas.hpp"

namespace tda::kernels {

/// Global->shared load strategy of the base kernel.
enum class LoadVariant { Strided, Coalesced };

inline const char* to_string(LoadVariant v) {
  return v == LoadVariant::Strided ? "strided" : "coalesced";
}

/// Warp instructions per equation of one shared-memory PCR step
/// (arithmetic + shared traffic).
inline constexpr double kSharedPcrWarpInsts = 16.0;
/// Dependent-latency depth of one shared PCR step (division + the chain
/// of multiply-adds feeding it).
inline constexpr double kSharedPcrDepPerStep = 6.0;
/// Warp instructions per equation of the per-thread Thomas phase.
inline constexpr double kThomasWarpInstsPerEq = 10.0;
/// Dependent-latency depth per Thomas equation: each element of the
/// forward sweep waits on a division plus the multiply-adds feeding it,
/// then the backward sweep repeats the dependence — roughly ten
/// instruction latencies per equation, serially per thread.
inline constexpr double kThomasDepPerEq = 10.0;

/// Solves every current subsystem of `batch` on-chip and writes the
/// solution into the batch's x array.
///
/// `thomas_switch` — the stage-3→4 switch point: the number of
/// interleaved subsystems a block creates before handing each to a
/// Thomas thread (paper Fig. 6 sweeps this).
template <typename T>
gpusim::KernelStats pcr_thomas_stage(gpusim::Device& dev,
                                     DeviceBatch<T>& batch,
                                     const SplitState& st,
                                     std::size_t thomas_switch,
                                     LoadVariant variant,
                                     ExecMode mode = ExecMode::Full) {
  TDA_REQUIRE(thomas_switch >= 1, "thomas_switch must be >= 1");
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::size_t parts = st.parts();
  const std::size_t stride = parts;  // global element stride of subsystems
  const std::size_t n_sub = st.max_sub_size(n);
  const auto& spec = dev.spec();

  gpusim::LaunchConfig cfg;
  cfg.blocks = m * parts;
  cfg.threads_per_block = static_cast<int>(
      std::min<std::size_t>(n_sub, spec.max_threads_per_block));
  cfg.threads_per_block = std::max(cfg.threads_per_block, 1);
  cfg.shared_bytes = pcr_thomas_shared_bytes(n_sub, sizeof(T));
  cfg.regs_per_thread = pcr_thomas_regs_per_thread(dev.query());

  auto stats = dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    const std::size_t s = ctx.block_index() / parts;
    const std::size_t p = ctx.block_index() % parts;
    auto gsub = batch.cur_system(s).subsystem(st.splits, p);
    auto gx = batch.solution(s).subsystem(st.splits, p);
    const std::size_t len = gsub.size();
    if (len == 0) return;

    // --- shared memory working set: a,b,c,d + x ---
    auto sa = ctx.shared_alloc<T>(n_sub);
    auto sb = ctx.shared_alloc<T>(n_sub);
    auto sc = ctx.shared_alloc<T>(n_sub);
    auto sd = ctx.shared_alloc<T>(n_sub);
    auto sx = ctx.shared_alloc<T>(n_sub);
    // Register staging for the PCR steps: on the real device every thread
    // holds its equation's next coefficients in registers between the two
    // syncs of a step; the simulator models that register file with a
    // host-side buffer (its capacity is enforced through regs_per_thread
    // in the launch configuration, not through the shared budget). The
    // buffer comes from the lane's bump arena — one warm slab per worker
    // thread instead of four heap allocations per block.
    auto ra = ctx.scratch_alloc<T>(n_sub);
    auto rb = ctx.scratch_alloc<T>(n_sub);
    auto rc = ctx.scratch_alloc<T>(n_sub);
    auto rd = ctx.scratch_alloc<T>(n_sub);

    // --- load ---
    if (mode == ExecMode::Full) {
      for (std::size_t i = 0; i < len; ++i) {
        sa[i] = gsub.a[i];
        sb[i] = gsub.b[i];
        sc[i] = gsub.c[i];
        sd[i] = gsub.d[i];
      }
    }
    const double bytes_loaded = 4.0 * static_cast<double>(len) * sizeof(T);
    if (variant == LoadVariant::Strided) {
      ctx.charge_global(bytes_loaded, stride, sizeof(T));
    } else {
      ctx.charge_global(bytes_loaded, 1, sizeof(T));
    }
    ctx.sync();

    // --- stage 3: PCR splits in shared memory (register-staged) ---
    tridiag::SystemView<T> shared_view{
        tda::StridedView<T>(sa.data(), len, 1),
        tda::StridedView<T>(sb.data(), len, 1),
        tda::StridedView<T>(sc.data(), len, 1),
        tda::StridedView<T>(sd.data(), len, 1)};
    tridiag::SystemView<T> reg_view{
        tda::StridedView<T>(ra.data(), len, 1),
        tda::StridedView<T>(rb.data(), len, 1),
        tda::StridedView<T>(rc.data(), len, 1),
        tda::StridedView<T>(rd.data(), len, 1)};
    const std::size_t j = tridiag::pcr_thomas_split_steps(len, thomas_switch);
    for (std::size_t t = 0; t < j; ++t) {
      if (mode == ExecMode::Full) {
        // compute into registers ...
        tridiag::pcr_step(
            tridiag::SystemView<const T>{
                shared_view.a.as_const(), shared_view.b.as_const(),
                shared_view.c.as_const(), shared_view.d.as_const()},
            reg_view, std::size_t{1} << t);
        // ... sync, write back to shared, sync (the two charged syncs).
        for (std::size_t i = 0; i < len; ++i) {
          shared_view.a[i] = reg_view.a[i];
          shared_view.b[i] = reg_view.b[i];
          shared_view.c[i] = reg_view.c[i];
          shared_view.d[i] = reg_view.d[i];
        }
      }
      ctx.charge_phase(static_cast<int>(std::min<std::size_t>(
                           len, ctx.threads())),
                       std::ceil(static_cast<double>(len) / ctx.threads()),
                       kSharedPcrWarpInsts, 1.0, kSharedPcrDepPerStep);
      if (variant == LoadVariant::Coalesced && stride > 1) {
        // Window-boundary leakage: ~2 out-of-window elements per fragment
        // per coefficient array, serviced by whole-segment transactions.
        ctx.charge_global(8.0 * static_cast<double>(stride) * sizeof(T),
                          stride, sizeof(T));
      }
      ctx.sync();
      ctx.sync();
    }

    // --- stage 4: one Thomas thread per interleaved subsystem ---
    const std::size_t thomas_parts = std::min(std::size_t{1} << j, len);
    if (mode == ExecMode::Full) {
      for (std::size_t q = 0; q < thomas_parts; ++q) {
        auto sub = shared_view.subsystem(j, q);
        if (sub.size() == 0) continue;
        auto xshared =
            tda::StridedView<T>(sx.data(), len, 1).subsystem(j, q);
        const bool ok = tridiag::thomas_solve_inplace(sub, xshared);
        TDA_ENSURE(ok, "PCR-Thomas kernel hit a zero pivot");
      }
    }
    const double eqs_per_thread = std::ceil(
        static_cast<double>(len) / static_cast<double>(thomas_parts));
    ctx.charge_phase(static_cast<int>(thomas_parts), eqs_per_thread,
                     kThomasWarpInstsPerEq, 1.0, kThomasDepPerEq);
    ctx.sync();

    // --- write back ---
    if (mode == ExecMode::Full) {
      for (std::size_t i = 0; i < len; ++i) gx[i] = sx[i];
    }
    ctx.charge_global(static_cast<double>(len) * sizeof(T), stride,
                      sizeof(T));
    if (variant == LoadVariant::Coalesced && stride > 1) {
      ctx.charge_global(8.0 * static_cast<double>(stride) * sizeof(T),
                        stride, sizeof(T));
    }
  }, variant == LoadVariant::Strided ? "pcr_thomas_strided"
                                     : "pcr_thomas_coalesced");
  return stats;
}

}  // namespace tda::kernels
