#pragma once
// Kernel launch-configuration helpers that depend ONLY on queryable device
// properties — the static machine-query tuner is allowed to call these
// (in a real toolchain the register footprint comes from the compiler and
// everything else from cudaDeviceProperties).

#include <cstddef>

#include "gpusim/device.hpp"

namespace tda::kernels {

/// Kernel execution fidelity. Full runs the real arithmetic; CostOnly
/// records the identical cost events (they are data-independent) while
/// skipping the math — used by the self-tuner's search, whose only
/// observable is simulated time.
enum class ExecMode { Full, CostOnly };

/// Register footprint per thread of the PCR-Thomas shared-memory kernel.
/// Older architectures compile this kernel fatter (32 regs) than Fermi-
/// class parts (20) — the compiler reports this, so it is "queryable".
inline int pcr_thomas_regs_per_thread(const gpusim::DeviceQuery& q) {
  return q.thread_procs_per_sm >= 32 ? 20 : 32;
}

/// Register footprint of the global splitting kernels (lean).
inline int split_kernel_regs_per_thread(const gpusim::DeviceQuery&) {
  return 16;
}

/// Shared-memory working set of the PCR-Thomas kernel for a system of
/// `n` equations: 4 coefficient arrays plus the solution. The PCR steps
/// stage their new coefficients in REGISTERS (each thread holds its
/// equation's next a,b,c,d between the two __syncthreads of a step) —
/// which is exactly why the kernel's register footprint is fat enough to
/// bound occupancy on the older parts.
inline std::size_t pcr_thomas_shared_bytes(std::size_t n,
                                           std::size_t elem_bytes) {
  return 5 * n * elem_bytes;
}

/// Largest power-of-two system size the PCR-Thomas kernel can solve on
/// chip: limited by shared memory, the thread-per-equation block size and
/// the register file. This is the machine-query estimate of the paper's
/// 256 / 512 / 1024 (fp32) per-device maxima.
inline std::size_t max_shared_system_size(const gpusim::DeviceQuery& q,
                                          std::size_t elem_bytes) {
  const int regs = pcr_thomas_regs_per_thread(q);
  std::size_t best = 0;
  for (std::size_t n = 2;; n *= 2) {
    const bool fits_shared =
        pcr_thomas_shared_bytes(n, elem_bytes) <= q.shared_mem_per_sm;
    const bool fits_threads =
        n <= static_cast<std::size_t>(q.max_threads_per_block);
    const bool fits_regs =
        n * static_cast<std::size_t>(regs) <=
        static_cast<std::size_t>(q.registers_per_sm);
    if (fits_shared && fits_threads && fits_regs) {
      best = n;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace tda::kernels
