#pragma once
// Device-resident batch: the coefficient arrays a multi-stage solve works
// on, double-buffered for PCR's read-old/write-new steps.
//
// "Upload" copies a host TridiagBatch into the ping buffer; each split
// step reads the current buffer and writes the other, then swap() flips
// parity. The solution array x is single-buffered. download() copies x
// back into a host batch.
//
// Storage is ONE slab from the process BufferPool (9 segments: the 8
// double-buffered coefficient arrays plus x, each 64-byte aligned), so
// repeated service flushes of one shape reuse a warm slab instead of
// paying malloc + zero-fill per solve (docs/PERFORMANCE.md). Pooled
// memory arrives dirty: the upload path overwrites the ping buffer and
// the stage pipeline fully writes the pong buffer and x before reading
// them, which the TDA_POOL_POISON regression tests pin down. The
// shape-only (cost-only) constructor still zero-fills — tuning batches
// are off the hot path and must stay numerically inert. Device *budget*
// accounting is unchanged: tracked batches claim footprint_bytes()
// through the device's MemoryTracker before acquiring the slab.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <utility>

#include "common/buffer_pool.hpp"
#include "common/check.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/batch.hpp"

namespace tda::kernels {

using tridiag::SystemView;
using tridiag::TridiagBatch;

template <typename T>
class DeviceBatch {
 public:
  /// Shape-only batch (zero coefficients) — used for cost-only tuning
  /// runs, where only sizes and access patterns matter. The all-zero
  /// diagonal would break real arithmetic; set b to 1 so a cost-only
  /// batch is also numerically inert if accidentally executed fully.
  DeviceBatch(std::size_t num_systems, std::size_t system_size)
      : m_(num_systems), n_(system_size) {
    TDA_REQUIRE(m_ >= 1 && n_ >= 1, "empty batch");
    allocate();
    make_inert();
  }

  explicit DeviceBatch(const TridiagBatch<T>& host)
      : m_(host.num_systems()), n_(host.system_size()) {
    allocate();
    upload(host);
  }

  /// Tracked shape-only batch: reserves its footprint against `dev`'s
  /// memory budget before touching any buffer (throws gpusim::OutOfMemory
  /// without allocating when the budget cannot cover it).
  DeviceBatch(gpusim::Device& dev, std::size_t num_systems,
              std::size_t system_size)
      : m_(num_systems), n_(system_size) {
    TDA_REQUIRE(m_ >= 1 && n_ >= 1, "empty batch");
    mem_ = dev.mem_reserve(footprint_bytes(m_, n_), "device batch");
    allocate();
    make_inert();
  }

  /// Tracked upload of a host batch (see above).
  DeviceBatch(gpusim::Device& dev, const TridiagBatch<T>& host)
      : m_(host.num_systems()), n_(host.system_size()) {
    mem_ = dev.mem_reserve(footprint_bytes(m_, n_), "device batch");
    allocate();
    upload(host);
  }

  /// Device-resident bytes of an (m, n) batch: 8 double-buffered
  /// coefficient arrays plus x, each m*n elements.
  [[nodiscard]] static constexpr std::size_t footprint_bytes(
      std::size_t num_systems, std::size_t system_size) {
    return 9 * num_systems * system_size * sizeof(T);
  }

  [[nodiscard]] std::size_t num_systems() const { return m_; }
  [[nodiscard]] std::size_t system_size() const { return n_; }
  [[nodiscard]] std::size_t total_equations() const { return m_ * n_; }

  /// Layout of the CURRENT coefficient buffer. upload() always leaves
  /// system-major data (the host wire layout); the interleaved pipeline
  /// flips this to ElementMajor after its transpose-in stage and back
  /// after transpose-out, so a reused batch (chunked solves, tuner
  /// scratch) is always observed system-major between runs.
  [[nodiscard]] tridiag::BatchLayout layout() const { return layout_; }
  void set_layout(tridiag::BatchLayout l) { layout_ = l; }

  /// Raw lane k (0=a 1=b 2=c 3=d) of the current / alternate buffer —
  /// the interleaved kernels index lanes directly instead of through
  /// per-system views, since in element-major layout a "system" is a
  /// stride-m column.
  [[nodiscard]] std::span<T> cur_lane(int k) {
    TDA_REQUIRE(k >= 0 && k < 4, "lane index out of range");
    return {arr_[cur_ * 4 + k], m_ * n_};
  }
  [[nodiscard]] std::span<T> alt_lane(int k) {
    TDA_REQUIRE(k >= 0 && k < 4, "lane index out of range");
    return {arr_[(1 - cur_) * 4 + k], m_ * n_};
  }

  /// Current (source) coefficient view of system s; stride 1.
  [[nodiscard]] SystemView<T> cur_system(std::size_t s) {
    return view_of(cur_, s);
  }
  /// Alternate (destination) coefficient view of system s.
  [[nodiscard]] SystemView<T> alt_system(std::size_t s) {
    return view_of(1 - cur_, s);
  }
  /// Const view of the current coefficients of system s.
  [[nodiscard]] SystemView<const T> cur_system_const(std::size_t s) const {
    TDA_REQUIRE(s < m_, "system index out of range");
    const std::size_t off = s * n_;
    const T* const* arr = arr_ + cur_ * 4;
    return SystemView<const T>{StridedView<const T>(arr[0] + off, n_, 1),
                               StridedView<const T>(arr[1] + off, n_, 1),
                               StridedView<const T>(arr[2] + off, n_, 1),
                               StridedView<const T>(arr[3] + off, n_, 1)};
  }

  /// Solution view of system s.
  [[nodiscard]] StridedView<T> solution(std::size_t s) {
    TDA_REQUIRE(s < m_, "system index out of range");
    return StridedView<T>(arr_[8] + s * n_, n_, 1);
  }
  [[nodiscard]] std::span<T> x() { return {arr_[8], m_ * n_}; }
  [[nodiscard]] std::span<const T> x() const { return {arr_[8], m_ * n_}; }

  /// Flips the ping-pong parity after a split step.
  void swap_buffers() { cur_ = 1 - cur_; }

  /// Copies the solution into `host.x()`.
  void download(TridiagBatch<T>& host) const {
    TDA_REQUIRE(host.num_systems() == m_ && host.system_size() == n_,
                "download: shape mismatch");
    std::copy(arr_[8], arr_[8] + m_ * n_, host.x().begin());
  }

 private:
  void upload(const TridiagBatch<T>& host) {
    TDA_REQUIRE(host.layout() == tridiag::BatchLayout::SystemMajor,
                "upload expects a system-major host batch");
    layout_ = tridiag::BatchLayout::SystemMajor;
    std::copy(host.a().begin(), host.a().end(), arr_[0]);
    std::copy(host.b().begin(), host.b().end(), arr_[1]);
    std::copy(host.c().begin(), host.c().end(), arr_[2]);
    std::copy(host.d().begin(), host.d().end(), arr_[3]);
  }

  /// Carves the pooled slab into 9 cache-line-aligned segments:
  /// [a0 b0 c0 d0 a1 b1 c1 d1 x].
  void allocate() {
    const std::size_t seg_bytes =
        (m_ * n_ * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
        kCacheLineBytes;
    slab_ = BufferPool::global().acquire(9 * seg_bytes);
    const std::size_t seg_elems = seg_bytes / sizeof(T);
    T* base = reinterpret_cast<T*>(slab_.data());
    for (int k = 0; k < 9; ++k) arr_[k] = base + k * seg_elems;
  }

  /// Zero everything, then a unit diagonal (shape-only batches).
  void make_inert() {
    std::memset(slab_.data(), 0, slab_.capacity());
    std::fill(arr_[1], arr_[1] + m_ * n_, T{1});
  }

  [[nodiscard]] SystemView<T> view_of(int which, std::size_t s) {
    TDA_REQUIRE(s < m_, "system index out of range");
    const std::size_t off = s * n_;
    T* const* arr = arr_ + which * 4;
    return SystemView<T>{StridedView<T>(arr[0] + off, n_, 1),
                         StridedView<T>(arr[1] + off, n_, 1),
                         StridedView<T>(arr[2] + off, n_, 1),
                         StridedView<T>(arr[3] + off, n_, 1)};
  }

  std::size_t m_;
  std::size_t n_;
  int cur_ = 0;
  tridiag::BatchLayout layout_ = tridiag::BatchLayout::SystemMajor;
  gpusim::MemoryReservation mem_;  ///< empty for untracked (tuning) batches
  tda::PoolBlock slab_;
  T* arr_[9] = {};  ///< a0 b0 c0 d0 a1 b1 c1 d1 x
};

}  // namespace tda::kernels
