#pragma once
// Device-resident batch: the coefficient arrays a multi-stage solve works
// on, double-buffered for PCR's read-old/write-new steps.
//
// "Upload" copies a host TridiagBatch into the ping buffer; each split
// step reads the current buffer and writes the other, then swap() flips
// parity. The solution array x is single-buffered. download() copies x
// back into a host batch.

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/batch.hpp"

namespace tda::kernels {

using tridiag::SystemView;
using tridiag::TridiagBatch;

template <typename T>
class DeviceBatch {
 public:
  /// Shape-only batch (zero coefficients) — used for cost-only tuning
  /// runs, where only sizes and access patterns matter. The all-zero
  /// diagonal would break real arithmetic; set b to 1 so a cost-only
  /// batch is also numerically inert if accidentally executed fully.
  DeviceBatch(std::size_t num_systems, std::size_t system_size)
      : m_(num_systems), n_(system_size) {
    TDA_REQUIRE(m_ >= 1 && n_ >= 1, "empty batch");
    allocate();
    for (auto& v : b_[0]) v = T{1};
  }

  explicit DeviceBatch(const TridiagBatch<T>& host)
      : m_(host.num_systems()), n_(host.system_size()) {
    allocate();
    upload(host);
  }

  /// Tracked shape-only batch: reserves its footprint against `dev`'s
  /// memory budget before touching any buffer (throws gpusim::OutOfMemory
  /// without allocating when the budget cannot cover it).
  DeviceBatch(gpusim::Device& dev, std::size_t num_systems,
              std::size_t system_size)
      : m_(num_systems), n_(system_size) {
    TDA_REQUIRE(m_ >= 1 && n_ >= 1, "empty batch");
    mem_ = dev.mem_reserve(footprint_bytes(m_, n_), "device batch");
    allocate();
    for (auto& v : b_[0]) v = T{1};
  }

  /// Tracked upload of a host batch (see above).
  DeviceBatch(gpusim::Device& dev, const TridiagBatch<T>& host)
      : m_(host.num_systems()), n_(host.system_size()) {
    mem_ = dev.mem_reserve(footprint_bytes(m_, n_), "device batch");
    allocate();
    upload(host);
  }

  /// Device-resident bytes of an (m, n) batch: 8 double-buffered
  /// coefficient arrays plus x, each m*n elements.
  [[nodiscard]] static constexpr std::size_t footprint_bytes(
      std::size_t num_systems, std::size_t system_size) {
    return 9 * num_systems * system_size * sizeof(T);
  }

  [[nodiscard]] std::size_t num_systems() const { return m_; }
  [[nodiscard]] std::size_t system_size() const { return n_; }
  [[nodiscard]] std::size_t total_equations() const { return m_ * n_; }

  /// Current (source) coefficient view of system s; stride 1.
  [[nodiscard]] SystemView<T> cur_system(std::size_t s) {
    return view_of(cur_, s);
  }
  /// Alternate (destination) coefficient view of system s.
  [[nodiscard]] SystemView<T> alt_system(std::size_t s) {
    return view_of(1 - cur_, s);
  }
  /// Const view of the current coefficients of system s.
  [[nodiscard]] SystemView<const T> cur_system_const(std::size_t s) const {
    const std::size_t off = s * n_;
    TDA_REQUIRE(s < m_, "system index out of range");
    return SystemView<const T>{
        StridedView<const T>(a_[cur_].data() + off, n_, 1),
        StridedView<const T>(b_[cur_].data() + off, n_, 1),
        StridedView<const T>(c_[cur_].data() + off, n_, 1),
        StridedView<const T>(d_[cur_].data() + off, n_, 1)};
  }

  /// Solution view of system s.
  [[nodiscard]] StridedView<T> solution(std::size_t s) {
    TDA_REQUIRE(s < m_, "system index out of range");
    return StridedView<T>(x_.data() + s * n_, n_, 1);
  }
  [[nodiscard]] std::span<T> x() { return x_.span(); }
  [[nodiscard]] std::span<const T> x() const { return x_.span(); }

  /// Flips the ping-pong parity after a split step.
  void swap_buffers() { cur_ = 1 - cur_; }

  /// Copies the solution into `host.x()`.
  void download(TridiagBatch<T>& host) const {
    TDA_REQUIRE(host.num_systems() == m_ && host.system_size() == n_,
                "download: shape mismatch");
    std::copy(x_.begin(), x_.end(), host.x().begin());
  }

 private:
  void upload(const TridiagBatch<T>& host) {
    std::copy(host.a().begin(), host.a().end(), a_[0].begin());
    std::copy(host.b().begin(), host.b().end(), b_[0].begin());
    std::copy(host.c().begin(), host.c().end(), c_[0].begin());
    std::copy(host.d().begin(), host.d().end(), d_[0].begin());
  }

  void allocate() {
    const std::size_t total = m_ * n_;
    for (auto* buf : {&a_[0], &b_[0], &c_[0], &d_[0], &a_[1], &b_[1],
                      &c_[1], &d_[1]}) {
      buf->resize(total);
    }
    x_.resize(total);
  }

  [[nodiscard]] SystemView<T> view_of(int which, std::size_t s) {
    TDA_REQUIRE(s < m_, "system index out of range");
    const std::size_t off = s * n_;
    return SystemView<T>{StridedView<T>(a_[which].data() + off, n_, 1),
                         StridedView<T>(b_[which].data() + off, n_, 1),
                         StridedView<T>(c_[which].data() + off, n_, 1),
                         StridedView<T>(d_[which].data() + off, n_, 1)};
  }

  std::size_t m_;
  std::size_t n_;
  int cur_ = 0;
  gpusim::MemoryReservation mem_;  ///< empty for untracked (tuning) batches
  AlignedBuffer<T> a_[2], b_[2], c_[2], d_[2];
  AlignedBuffer<T> x_;
};

}  // namespace tda::kernels
