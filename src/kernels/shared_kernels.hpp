#pragma once
// Baseline shared-memory kernels for whole systems that fit on chip:
//
//  * pure PCR        — log n steps, O(n log n) work, n threads busy
//  * CR              — 2·log n steps, O(n) work, thread count halves each
//                      step, power-of-two strides cause bank conflicts
//  * CR-PCR hybrid   — Zhang et al. (PPoPP 2010), the prior-art hybrid
//
// These exist to reproduce the paper's §III-A comparison: the PCR-Thomas
// hybrid matches CR-PCR in single precision and beats it in double.
// One block per system; the batch must not have been split.

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/check.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory_model.hpp"
#include "kernels/config.hpp"
#include "kernels/device_batch.hpp"
#include "tridiag/cr.hpp"
#include "tridiag/pcr.hpp"

namespace tda::kernels {

/// Shared working set of the pure-PCR kernel (a,b,c,d + x; steps stage
/// their new coefficients in registers, as in the PCR-Thomas kernel).
inline std::size_t pure_pcr_shared_bytes(std::size_t n,
                                         std::size_t elem_bytes) {
  return 5 * n * elem_bytes;
}

/// Shared working set of the CR kernels (in-place a,b,c,d + x).
inline std::size_t cr_shared_bytes(std::size_t n, std::size_t elem_bytes) {
  return 5 * n * elem_bytes;
}

/// Pure PCR: split until every equation stands alone, then x = d/b.
template <typename T>
gpusim::KernelStats pure_pcr_kernel(gpusim::Device& dev,
                                    DeviceBatch<T>& batch) {
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const auto& spec = dev.spec();

  gpusim::LaunchConfig cfg;
  cfg.blocks = m;
  cfg.threads_per_block = static_cast<int>(
      std::min<std::size_t>(n, spec.max_threads_per_block));
  cfg.shared_bytes = pure_pcr_shared_bytes(n, sizeof(T));
  cfg.regs_per_thread = pcr_thomas_regs_per_thread(dev.query());

  return dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    const std::size_t s = ctx.block_index();
    auto g = batch.cur_system(s);
    auto gx = batch.solution(s);

    auto sa = ctx.shared_alloc<T>(n);
    auto sb = ctx.shared_alloc<T>(n);
    auto sc = ctx.shared_alloc<T>(n);
    auto sd = ctx.shared_alloc<T>(n);
    auto sx = ctx.shared_alloc<T>(n);
    (void)sx;
    // Register staging from the lane's bump arena (see pcr_thomas_kernel).
    auto ra = ctx.scratch_alloc<T>(n);
    auto rb = ctx.scratch_alloc<T>(n);
    auto rc = ctx.scratch_alloc<T>(n);
    auto rd = ctx.scratch_alloc<T>(n);
    for (std::size_t i = 0; i < n; ++i) {
      sa[i] = g.a[i];
      sb[i] = g.b[i];
      sc[i] = g.c[i];
      sd[i] = g.d[i];
    }
    ctx.charge_global(4.0 * n * sizeof(T), 1, sizeof(T));
    ctx.sync();

    tridiag::SystemView<T> shared_view{tda::StridedView<T>(sa.data(), n, 1),
                                       tda::StridedView<T>(sb.data(), n, 1),
                                       tda::StridedView<T>(sc.data(), n, 1),
                                       tda::StridedView<T>(sd.data(), n, 1)};
    tridiag::SystemView<T> reg_view{tda::StridedView<T>(ra.data(), n, 1),
                                    tda::StridedView<T>(rb.data(), n, 1),
                                    tda::StridedView<T>(rc.data(), n, 1),
                                    tda::StridedView<T>(rd.data(), n, 1)};
    for (std::size_t shift = 1; shift < n; shift *= 2) {
      tridiag::pcr_step(
          tridiag::SystemView<const T>{
              shared_view.a.as_const(), shared_view.b.as_const(),
              shared_view.c.as_const(), shared_view.d.as_const()},
          reg_view, shift);
      for (std::size_t i = 0; i < n; ++i) {
        shared_view.a[i] = reg_view.a[i];
        shared_view.b[i] = reg_view.b[i];
        shared_view.c[i] = reg_view.c[i];
        shared_view.d[i] = reg_view.d[i];
      }
      ctx.charge_phase(
          static_cast<int>(std::min<std::size_t>(n, ctx.threads())),
          std::ceil(static_cast<double>(n) / ctx.threads()),
          kSharedPcrWarpInsts);
      ctx.sync();
      ctx.sync();
    }
    for (std::size_t i = 0; i < n; ++i)
      gx[i] = shared_view.d[i] / shared_view.b[i];
    ctx.charge_phase(
        static_cast<int>(std::min<std::size_t>(n, ctx.threads())),
        std::ceil(static_cast<double>(n) / ctx.threads()), 2.0);
    ctx.charge_global(static_cast<double>(n) * sizeof(T), 1, sizeof(T));
  }, "pure_pcr");
}

/// Cyclic reduction kernel. Models the classic power-of-two-stride bank
/// conflicts (a naive, non-padded CR — what Göddeke & Strzodka's
/// bank-conflict-free variant improves on).
template <typename T>
gpusim::KernelStats cr_kernel(gpusim::Device& dev, DeviceBatch<T>& batch) {
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const auto& spec = dev.spec();

  gpusim::LaunchConfig cfg;
  cfg.blocks = m;
  // One thread per equation (the surplus half helps the coalesced load
  // and keeps occupancy up; CR levels use progressively fewer).
  cfg.threads_per_block = static_cast<int>(
      std::min<std::size_t>(std::max<std::size_t>(1, n),
                            spec.max_threads_per_block));
  cfg.shared_bytes = cr_shared_bytes(n, sizeof(T));
  cfg.regs_per_thread = pcr_thomas_regs_per_thread(dev.query());

  return dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    const std::size_t s = ctx.block_index();
    auto g = batch.cur_system(s);
    auto gx = batch.solution(s);

    auto sa = ctx.shared_alloc<T>(n);
    auto sb = ctx.shared_alloc<T>(n);
    auto sc = ctx.shared_alloc<T>(n);
    auto sd = ctx.shared_alloc<T>(n);
    auto sx = ctx.shared_alloc<T>(n);
    for (std::size_t i = 0; i < n; ++i) {
      sa[i] = g.a[i];
      sb[i] = g.b[i];
      sc[i] = g.c[i];
      sd[i] = g.d[i];
    }
    ctx.charge_global(4.0 * n * sizeof(T), 1, sizeof(T));
    ctx.sync();

    tridiag::SystemView<T> sys{tda::StridedView<T>(sa.data(), n, 1),
                               tda::StridedView<T>(sb.data(), n, 1),
                               tda::StridedView<T>(sc.data(), n, 1),
                               tda::StridedView<T>(sd.data(), n, 1)};
    auto xv = tda::StridedView<T>(sx.data(), n, 1);

    // Forward reduction, one sync per level; active threads halve.
    std::size_t smax = 1;
    while (smax < n) smax *= 2;
    for (std::size_t st = 1; st < n; st *= 2) {
      std::size_t active = 0;
      for (std::size_t i = 2 * st - 1; i < n; i += 2 * st) {
        tridiag::cr_forward_update(sys, i, st);
        ++active;
      }
      const double conflict =
          gpusim::bank_conflict_factor(spec, 2 * st, sizeof(T));
      // Arithmetic is conflict-free; only the ~8 strided shared accesses
      // replay.
      ctx.charge_phase(static_cast<int>(std::max<std::size_t>(1, active)),
                       1.0, 6.0, 1.0, 4.0);
      ctx.charge_phase(static_cast<int>(std::max<std::size_t>(1, active)),
                       1.0, 8.0, conflict, 2.0);
      ctx.sync();
    }
    // Back substitution.
    for (std::size_t st = smax; st >= 1; st /= 2) {
      std::size_t active = 0;
      for (std::size_t i = st - 1; i < n; i += 2 * st) {
        T acc = sys.d[i];
        if (i >= st) acc -= sys.a[i] * xv[i - st];
        if (i + st < n) acc -= sys.c[i] * xv[i + st];
        xv[i] = acc / sys.b[i];
        ++active;
      }
      const double conflict =
          gpusim::bank_conflict_factor(spec, 2 * st, sizeof(T));
      ctx.charge_phase(static_cast<int>(std::max<std::size_t>(1, active)),
                       1.0, 3.0, 1.0, 2.0);
      ctx.charge_phase(static_cast<int>(std::max<std::size_t>(1, active)),
                       1.0, 5.0, conflict, 1.0);
      ctx.sync();
      if (st == 1) break;
    }
    for (std::size_t i = 0; i < n; ++i) gx[i] = sx[i];
    ctx.charge_global(static_cast<double>(n) * sizeof(T), 1, sizeof(T));
  }, "cr");
}

/// CR-PCR hybrid kernel (Zhang et al.): CR-reduce to `pcr_threshold`
/// equations, PCR the reduced system, CR back-substitute.
template <typename T>
gpusim::KernelStats cr_pcr_kernel(gpusim::Device& dev, DeviceBatch<T>& batch,
                                  std::size_t pcr_threshold) {
  TDA_REQUIRE(pcr_threshold >= 1, "threshold must be >= 1");
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  const auto& spec = dev.spec();

  gpusim::LaunchConfig cfg;
  cfg.blocks = m;
  // One thread per equation, as in cr_kernel.
  cfg.threads_per_block = static_cast<int>(std::min<std::size_t>(
      std::max<std::size_t>({std::size_t{32}, n, pcr_threshold}),
      spec.max_threads_per_block));
  // CR arrays + PCR double buffer for the reduced system.
  cfg.shared_bytes =
      cr_shared_bytes(n, sizeof(T)) + 8 * pcr_threshold * sizeof(T);
  cfg.regs_per_thread = pcr_thomas_regs_per_thread(dev.query());

  return dev.launch(cfg, [&](gpusim::BlockContext& ctx) {
    const std::size_t s = ctx.block_index();
    auto g = batch.cur_system(s);
    auto gx = batch.solution(s);

    auto sa = ctx.shared_alloc<T>(n);
    auto sb = ctx.shared_alloc<T>(n);
    auto sc = ctx.shared_alloc<T>(n);
    auto sd = ctx.shared_alloc<T>(n);
    auto sx = ctx.shared_alloc<T>(n);
    for (std::size_t i = 0; i < n; ++i) {
      sa[i] = g.a[i];
      sb[i] = g.b[i];
      sc[i] = g.c[i];
      sd[i] = g.d[i];
    }
    ctx.charge_global(4.0 * n * sizeof(T), 1, sizeof(T));
    ctx.sync();

    tridiag::SystemView<T> sys{tda::StridedView<T>(sa.data(), n, 1),
                               tda::StridedView<T>(sb.data(), n, 1),
                               tda::StridedView<T>(sc.data(), n, 1),
                               tda::StridedView<T>(sd.data(), n, 1)};
    auto xv = tda::StridedView<T>(sx.data(), n, 1);

    // CR forward (charging per level) mirroring tridiag::cr_pcr_solve.
    std::size_t stride = 1;
    std::size_t active_count = n;
    while (active_count > pcr_threshold && active_count >= 2) {
      std::size_t active = 0;
      for (std::size_t i = 2 * stride - 1; i < n; i += 2 * stride) {
        tridiag::cr_forward_update(sys, i, stride);
        ++active;
      }
      const double conflict =
          gpusim::bank_conflict_factor(spec, 2 * stride, sizeof(T));
      ctx.charge_phase(static_cast<int>(std::max<std::size_t>(1, active)),
                       1.0, 6.0, 1.0, 4.0);
      ctx.charge_phase(static_cast<int>(std::max<std::size_t>(1, active)),
                       1.0, 8.0, conflict, 2.0);
      ctx.sync();
      stride *= 2;
      const std::size_t start = stride - 1;
      active_count = (n > start) ? (n - start + stride - 1) / stride : 0;
    }

    if (stride == 1) {
      // System already small: pure PCR on the whole thing.
      auto ta = ctx.shared_alloc<T>(n > pcr_threshold ? n : pcr_threshold);
      auto tb = ctx.shared_alloc<T>(n > pcr_threshold ? n : pcr_threshold);
      auto tc = ctx.shared_alloc<T>(n > pcr_threshold ? n : pcr_threshold);
      auto td = ctx.shared_alloc<T>(n > pcr_threshold ? n : pcr_threshold);
      (void)ta;
      tridiag::SystemView<T> scratch{
          tda::StridedView<T>(ta.data(), n, 1),
          tda::StridedView<T>(tb.data(), n, 1),
          tda::StridedView<T>(tc.data(), n, 1),
          tda::StridedView<T>(td.data(), n, 1)};
      tridiag::pcr_solve(sys, scratch, xv);
      const double steps =
          static_cast<double>(tridiag::pcr_steps_to_decouple(n));
      ctx.charge_phase(static_cast<int>(std::min<std::size_t>(
                           n, ctx.threads())),
                       steps, kSharedPcrWarpInsts);
    } else {
      const std::size_t start = stride - 1;
      if (start < n && active_count > 0) {
        tridiag::SystemView<T> red{
            tda::StridedView<T>(&sys.a[start], active_count, stride),
            tda::StridedView<T>(&sys.b[start], active_count, stride),
            tda::StridedView<T>(&sys.c[start], active_count, stride),
            tda::StridedView<T>(&sys.d[start], active_count, stride)};
        auto ta = ctx.shared_alloc<T>(active_count);
        auto tb = ctx.shared_alloc<T>(active_count);
        auto tc = ctx.shared_alloc<T>(active_count);
        auto td = ctx.shared_alloc<T>(active_count);
        tridiag::SystemView<T> scratch{
            tda::StridedView<T>(ta.data(), active_count, 1),
            tda::StridedView<T>(tb.data(), active_count, 1),
            tda::StridedView<T>(tc.data(), active_count, 1),
            tda::StridedView<T>(td.data(), active_count, 1)};
        tda::StridedView<T> xr(&xv[start], active_count, stride);
        tridiag::pcr_solve(red, scratch, xr);
        const double steps = static_cast<double>(
            tridiag::pcr_steps_to_decouple(active_count));
        ctx.charge_phase(static_cast<int>(active_count), steps,
                         kSharedPcrWarpInsts);
      }
      // CR back substitution.
      for (std::size_t lvl = stride / 2; lvl >= 1; lvl /= 2) {
        std::size_t active = 0;
        for (std::size_t i = lvl - 1; i < n; i += 2 * lvl) {
          T acc = sys.d[i];
          if (i >= lvl) acc -= sys.a[i] * xv[i - lvl];
          if (i + lvl < n) acc -= sys.c[i] * xv[i + lvl];
          xv[i] = acc / sys.b[i];
          ++active;
        }
        const double conflict =
            gpusim::bank_conflict_factor(spec, 2 * lvl, sizeof(T));
        ctx.charge_phase(static_cast<int>(std::max<std::size_t>(1, active)),
                         1.0, 3.0, 1.0, 2.0);
        ctx.charge_phase(static_cast<int>(std::max<std::size_t>(1, active)),
                         1.0, 5.0, conflict, 1.0);
        ctx.sync();
        if (lvl == 1) break;
      }
    }
    for (std::size_t i = 0; i < n; ++i) gx[i] = xv[i];
    ctx.charge_global(static_cast<double>(n) * sizeof(T), 1, sizeof(T));
  }, "cr_pcr");
}

}  // namespace tda::kernels
