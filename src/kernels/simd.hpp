#pragma once
// Portable fixed-width SIMD abstraction for the interleaved kernels.
//
// The element-major kernels put one SIMD lane per system: every inner
// loop runs stride-1 across a strip of adjacent systems with no
// cross-iteration dependence, which any modern compiler auto-vectorizes
// at -O3. Correctness therefore requires NO intrinsics — the strip loops
// are plain scalar C++ — while the strip width below controls how many
// systems one simulated GPU block (and one host vector pass) owns.
//
// TDA_SIMD_WIDTH (env) overrides the strip width in systems (clamped to
// a power of two in [1, 1024]); unset/0 picks a default sized to a few
// hardware vectors of T. The choice is a pure performance knob: every
// system's arithmetic is independent and elementwise, so the solution is
// bitwise identical at every strip width and every TDA_THREADS count.

#include <cstddef>
#include <cstdlib>

namespace tda::kernels {

/// Hardware vector width in bytes the build can use. Detected from the
/// compiler's target features; the fallback (16) matches SSE2/NEON,
/// which baseline x86-64 and aarch64 both guarantee.
inline constexpr std::size_t simd_vector_bytes() {
#if defined(__AVX512F__)
  return 64;
#elif defined(__AVX2__) || defined(__AVX__)
  return 32;
#else
  return 16;  // SSE2 (x86-64 baseline) / NEON (aarch64 baseline)
#endif
}

/// SIMD lanes of element type T in one hardware vector.
template <typename T>
inline constexpr std::size_t simd_lanes() {
  constexpr std::size_t lanes = simd_vector_bytes() / sizeof(T);
  return lanes >= 1 ? lanes : 1;
}

/// Strip width (systems per block) of the interleaved kernels:
/// $TDA_SIMD_WIDTH when set and valid, else 4 hardware vectors — wide
/// enough to amortize the serial Thomas recurrence over full vector
/// issues, narrow enough that a strip's working rows stay cache-warm.
template <typename T>
inline std::size_t simd_strip_width() {
  static const std::size_t from_env = [] {
    if (const char* env = std::getenv("TDA_SIMD_WIDTH");
        env != nullptr && *env != '\0') {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024) {
        // Round down to a power of two so strips tile block grids evenly.
        std::size_t p = 1;
        while (p * 2 <= static_cast<std::size_t>(v)) p *= 2;
        return p;
      }
    }
    return std::size_t{0};
  }();
  if (from_env != 0) return from_env;
  return 4 * simd_lanes<T>();
}

}  // namespace tda::kernels

/// Hint that a strip loop has no loop-carried dependence. The loops are
/// correct without it; it only helps the vectorizer past the aliasing
/// analysis (the a/b/c/d lanes come from one slab).
#if defined(__clang__)
#define TDA_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define TDA_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define TDA_SIMD_LOOP
#endif
