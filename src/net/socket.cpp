#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace tda::net {

namespace {

void set_err(std::string* err, const char* what) {
  if (err != nullptr) {
    *err = std::string(what) + ": " + std::strerror(errno);
  }
}

bool fill_inet(const Endpoint& ep, sockaddr_in& sa, std::string* err) {
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(ep.port);
  const std::string host =
      (ep.host.empty() || ep.host == "localhost") ? "127.0.0.1" : ep.host;
  if (host == "*" || host == "0.0.0.0") {
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    if (err != nullptr) *err = "unresolvable host '" + host + "'";
    return false;
  }
  return true;
}

bool fill_unix(const Endpoint& ep, sockaddr_un& sa, std::string* err) {
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  if (ep.path.size() >= sizeof(sa.sun_path)) {
    if (err != nullptr) *err = "unix path too long: " + ep.path;
    return false;
  }
  std::memcpy(sa.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return true;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Endpoint::describe() const {
  if (is_unix) return "unix:" + path;
  return (host.empty() ? "127.0.0.1" : host) + ":" + std::to_string(port);
}

std::optional<Endpoint> parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.path = spec.substr(5);
    if (ep.path.empty()) return std::nullopt;
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    return std::nullopt;
  }
  ep.host = spec.substr(0, colon);
  const std::string port_s = spec.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
    return std::nullopt;
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

Fd listen_endpoint(const Endpoint& ep, int backlog, std::string* err) {
  Fd fd(::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_err(err, "socket");
    return {};
  }
  if (ep.is_unix) {
    sockaddr_un sa;
    if (!fill_unix(ep, sa, err)) return {};
    ::unlink(ep.path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      set_err(err, "bind");
      return {};
    }
  } else {
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa;
    if (!fill_inet(ep, sa, err)) return {};
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      set_err(err, "bind");
      return {};
    }
  }
  if (::listen(fd.get(), backlog) != 0) {
    set_err(err, "listen");
    return {};
  }
  return fd;
}

Fd connect_endpoint(const Endpoint& ep, std::string* err) {
  Fd fd(::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_err(err, "socket");
    return {};
  }
  int rc;
  if (ep.is_unix) {
    sockaddr_un sa;
    if (!fill_unix(ep, sa, err)) return {};
    do {
      rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa),
                     sizeof(sa));
    } while (rc != 0 && errno == EINTR);
  } else {
    sockaddr_in sa;
    if (!fill_inet(ep, sa, err)) return {};
    do {
      rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa),
                     sizeof(sa));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  if (rc != 0) {
    set_err(err, "connect");
    return {};
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in sa;
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return 0;
  }
  return ntohs(sa.sin_port);
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

long read_some(int fd, char* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

long write_some(int fd, const char* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

bool write_all(int fd, const char* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const long n = write_some(fd, buf + done, len - done);
    if (n == -2) {
      // Blocking fd expected here; EAGAIN means someone made it
      // nonblocking — spin via poll-free retry is wrong, so fail.
      return false;
    }
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace tda::net
