#include "net/client.hpp"

namespace tda::net {

bool Client::connect(const std::string& spec, const std::string& token,
                     std::string* err) {
  close();
  const auto ep = parse_endpoint(spec);
  if (!ep) {
    if (err != nullptr) *err = "bad endpoint spec: " + spec;
    return false;
  }
  fd_ = connect_endpoint(*ep, err);
  if (!fd_.valid()) return false;
  rbuf_.clear();
  tenant_.clear();
  if (token.empty()) return true;

  std::string hello;
  encode_hello(hello, token);
  if (!send_bytes(hello, err)) return false;
  FrameType type{};
  std::uint64_t rid = 0;
  std::string payload;
  if (!next_frame(type, rid, payload, err)) return false;
  if (type == FrameType::HelloOk) {
    const auto ok = parse_hello_ok(payload);
    if (!ok) {
      if (err != nullptr) *err = "unparsable HelloOk";
      close_fd();
      return false;
    }
    tenant_ = ok->tenant;
    return true;
  }
  if (type == FrameType::SolveErr) {
    const auto e = parse_solve_err(payload);
    if (err != nullptr) {
      *err = e ? "auth rejected: " + e->message : "auth rejected";
    }
  } else if (err != nullptr) {
    *err = "unexpected handshake frame";
  }
  close_fd();
  return false;
}

void Client::close() {
  if (!fd_.valid()) return;
  std::string bye;
  encode_goodbye(bye);
  (void)write_all(fd_.get(), bye.data(), bye.size());
  close_fd();
}

void Client::close_fd() {
  fd_.reset();
  rbuf_.clear();
}

bool Client::send_bytes(const std::string& bytes, std::string* err) {
  if (!fd_.valid()) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  if (!write_all(fd_.get(), bytes.data(), bytes.size())) {
    if (err != nullptr) *err = "send failed (connection lost)";
    close_fd();
    return false;
  }
  return true;
}

bool Client::next_frame(FrameType& type, std::uint64_t& request_id,
                        std::string& payload, std::string* err) {
  if (!fd_.valid()) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  char tmp[16384];
  for (;;) {
    const DecodeResult r = decode_frame(rbuf_, kAbsoluteMaxPayload);
    if (r.status == DecodeStatus::Ok) {
      type = r.frame.type;
      request_id = r.frame.request_id;
      payload.assign(r.frame.payload);
      rbuf_.erase(0, r.consumed);
      return true;
    }
    if (r.status == DecodeStatus::Corrupt) {
      if (err != nullptr) {
        *err = std::string("corrupt frame from server: ") + r.error;
      }
      close_fd();
      return false;
    }
    const long n = read_some(fd_.get(), tmp, sizeof(tmp));
    if (n == 0) {
      if (err != nullptr) *err = "connection closed by server";
      close_fd();
      return false;
    }
    if (n < 0 && n != -2) {
      if (err != nullptr) *err = "read failed (connection lost)";
      close_fd();
      return false;
    }
    if (n > 0) rbuf_.append(tmp, static_cast<std::size_t>(n));
    // n == -2 (EAGAIN) cannot happen on a blocking socket; loop anyway.
  }
}

}  // namespace tda::net
