#include "net/client.hpp"

#include <chrono>
#include <random>
#include <thread>

namespace tda::net {

namespace {

std::uint64_t splitmix64(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

bool Client::connect(const std::string& spec, const std::string& token,
                     std::string* err) {
  close();
  spec_ = spec;
  token_ = token;
  outstanding_.clear();
  prev_backoff_ms_ = 0.0;
  return do_connect(err);
}

bool Client::do_connect(std::string* err) {
  const auto ep = parse_endpoint(spec_);
  if (!ep) {
    if (err != nullptr) *err = "bad endpoint spec: " + spec_;
    return false;
  }
  fd_ = connect_endpoint(*ep, err);
  if (!fd_.valid()) return false;
  rbuf_.clear();
  tenant_.clear();
  wire_version_ = kVersion;
  if (token_.empty()) return true;

  std::string hello;
  // The wall-clock stamp lets the server estimate this connection's
  // clock skew and clamp implausible absolute deadlines
  // (docs/OPERATIONS.md); a server predating it ignores the extra f64.
  encode_hello(hello, token_, kMaxVersion, unix_now_ms());
  if (!send_bytes(hello, err)) return false;
  FrameType type{};
  std::uint64_t rid = 0;
  std::string payload;
  if (!next_frame(type, rid, payload, err)) return false;
  if (type == FrameType::HelloOk) {
    const auto ok = parse_hello_ok(payload);
    if (!ok) {
      if (err != nullptr) *err = "unparsable HelloOk";
      close_fd();
      return false;
    }
    tenant_ = ok->tenant;
    // A legacy server leaves the slot 0 → v1.
    wire_version_ = ok->negotiated_version >= kVersion2 ? kVersion2
                                                        : kVersion;
    return true;
  }
  if (type == FrameType::SolveErr) {
    const auto e = parse_solve_err(payload);
    if (err != nullptr) {
      *err = e ? "auth rejected: " + e->message : "auth rejected";
    }
  } else if (err != nullptr) {
    *err = "unexpected handshake frame";
  }
  close_fd();
  return false;
}

std::uint64_t Client::mint_key() {
  if (key_nonce_ == 0) {
    std::random_device rd;
    key_nonce_ = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    if (key_nonce_ == 0) key_nonce_ = 1;
  }
  return key_nonce_ ^ ++key_counter_;
}

double Client::next_backoff_ms() {
  // Decorrelated jitter: sleep = min(cap, uniform(base, prev * 3)).
  // Independent streams desynchronize even clients that failed on the
  // same instant, so a reconnect wave spreads instead of stampeding.
  if (jitter_state_ == 0) jitter_state_ = retry_.seed | 1;
  const double lo = retry_.base_backoff_ms;
  const double hi = prev_backoff_ms_ * 3.0 > lo ? prev_backoff_ms_ * 3.0
                                                : lo;
  const double u =
      static_cast<double>(splitmix64(jitter_state_) >> 11) * 0x1.0p-53;
  double sleep = lo + u * (hi - lo);
  if (sleep > retry_.max_backoff_ms) sleep = retry_.max_backoff_ms;
  prev_backoff_ms_ = sleep;
  return sleep;
}

bool Client::recover(std::string* err) {
  if (retry_.max_attempts <= 0) return false;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(next_backoff_ms()));
    std::string connect_err;
    if (!do_connect(&connect_err)) continue;
    ++stats_.reconnects;
    // Resend everything unanswered, byte-identical: same request ids,
    // same idempotency keys, same absolute deadlines.
    bool all_sent = true;
    for (const auto& [rid, bytes] : outstanding_) {
      if (!send_bytes(bytes, nullptr)) {
        all_sent = false;
        break;
      }
      ++stats_.resends;
    }
    if (all_sent) {
      prev_backoff_ms_ = 0.0;
      return true;
    }
  }
  ++stats_.gave_up;
  if (err != nullptr) *err = "recovery exhausted retry attempts";
  return false;
}

bool Client::send_tracked(std::uint64_t request_id, std::string bytes,
                          std::string* err) {
  if (retry_.max_attempts > 0) {
    outstanding_[request_id] = bytes;
    if (send_bytes(bytes, err)) return true;
    // recover() resends the whole outstanding window, including this
    // frame — success means it is on the wire.
    if (recover(err)) return true;
    outstanding_.erase(request_id);
    return false;
  }
  return send_bytes(bytes, err);
}

void Client::close() {
  if (!fd_.valid()) return;
  std::string bye;
  encode_goodbye(bye);
  (void)write_all(fd_.get(), bye.data(), bye.size());
  close_fd();
}

void Client::close_fd() {
  fd_.reset();
  rbuf_.clear();
}

bool Client::send_bytes(const std::string& bytes, std::string* err) {
  if (!fd_.valid()) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  if (!write_all(fd_.get(), bytes.data(), bytes.size())) {
    if (err != nullptr) *err = "send failed (connection lost)";
    close_fd();
    return false;
  }
  return true;
}

bool Client::next_frame(FrameType& type, std::uint64_t& request_id,
                        std::string& payload, std::string* err) {
  if (!fd_.valid()) {
    if (err != nullptr) *err = "not connected";
    return false;
  }
  char tmp[16384];
  for (;;) {
    const DecodeResult r = decode_frame(rbuf_, kAbsoluteMaxPayload);
    if (r.status == DecodeStatus::Ok) {
      type = r.frame.type;
      request_id = r.frame.request_id;
      payload.assign(r.frame.payload);
      rbuf_.erase(0, r.consumed);
      return true;
    }
    if (r.status == DecodeStatus::Corrupt) {
      if (err != nullptr) {
        *err = std::string("corrupt frame from server: ") + r.error;
      }
      close_fd();
      return false;
    }
    const long n = read_some(fd_.get(), tmp, sizeof(tmp));
    if (n == 0) {
      if (err != nullptr) *err = "connection closed by server";
      close_fd();
      return false;
    }
    if (n < 0 && n != -2) {
      if (err != nullptr) *err = "read failed (connection lost)";
      close_fd();
      return false;
    }
    if (n > 0) rbuf_.append(tmp, static_cast<std::size_t>(n));
    // n == -2 (EAGAIN) cannot happen on a blocking socket; loop anyway.
  }
}

}  // namespace tda::net
