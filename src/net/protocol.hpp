#pragma once
// Wire protocol of the solver front door (docs/NET.md).
//
// Frames are length-prefixed little-endian binary with a fixed 24-byte
// header:
//
//   offset  size  field
//        0     4  magic        0x50414454 ("TDAP")
//        4     2  version      1 or 2 (negotiated per connection)
//        6     2  type         FrameType
//        8     8  request_id   caller-chosen correlation id
//       16     4  payload_len  bytes following the header
//       20     4  checksum     FNV-1a-32 over header[0,20) + payload
//
// Version negotiation rides the handshake: Hello carries the client's
// highest supported version in the (formerly reserved) u16 after the
// token length, HelloOk echoes the negotiated version in the same
// slot. Legacy peers wrote 0 there, so 0 parses as "v1". Control
// frames (Hello/HelloOk/Goodbye) always use header version 1 so the
// handshake itself predates the negotiation it performs; only Solve
// (and the responses to a v2 Solve) use header version 2.
//
// v2 Solve payloads extend v1 with an absolute wall-clock deadline
// (milliseconds since the unix epoch; 0 = none) and a client-minted
// idempotency key (0 = none) that lets the server deduplicate
// reconnect-and-resend retries instead of re-executing them.
//
// The checksum makes corruption detectable rather than merely unlikely
// to parse: every FNV-1a step s' = (s ^ byte) * prime is a bijection of
// the 32-bit state, so any single flipped byte in the covered range
// always lands on a different checksum — the fuzz harness leans on that
// to assert "no mutated frame is ever accepted".
//
// decode_frame is strictly bounds-checked and allocation-free: it
// either needs more bytes, yields a view into the caller's buffer, or
// rejects the stream as corrupt (at which point the connection is
// unrecoverable — framing is lost). Payload parsers (parse_solve, ...)
// validate exact lengths before allocating anything.
//
// Dtype width is carried per Solve frame (4 = f32, 8 = f64); a server
// instantiated for one T rejects the other with ErrorCode::Dtype
// instead of guessing.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tda::net {

inline constexpr std::uint32_t kMagic = 0x50414454u;  // "TDAP" on the wire
inline constexpr std::uint16_t kVersion = 1;
/// Highest protocol version this build speaks (see negotiation notes
/// above). decode_frame accepts headers in [1, kMaxVersion].
inline constexpr std::uint16_t kVersion2 = 2;
inline constexpr std::uint16_t kMaxVersion = kVersion2;
inline constexpr std::size_t kHeaderSize = 24;
/// Hard ceiling a decoder enforces even when the caller passes a larger
/// limit — no payload_len may imply a buffer this large.
inline constexpr std::size_t kAbsoluteMaxPayload =
    std::size_t{1} << 30;  // 1 GiB

enum class FrameType : std::uint16_t {
  Hello = 1,    ///< client -> server: tenant auth token
  HelloOk = 2,  ///< server -> client: resolved tenant name
  Solve = 3,    ///< client -> server: one tridiagonal system
  SolveOk = 4,  ///< server -> client: solution
  SolveErr = 5, ///< server -> client: typed rejection / failure
  Goodbye = 6,  ///< either way: orderly close (empty payload)
};

/// Typed error codes carried by SolveErr frames.
enum class ErrorCode : std::uint16_t {
  None = 0,
  BadFrame = 1,      ///< malformed/corrupt frame; connection closes after
  AuthRequired = 2,  ///< Solve before a successful Hello
  AuthFailed = 3,    ///< Hello token matched no tenant
  Dtype = 4,         ///< dtype width does not match the server's T
  TooLarge = 5,      ///< n exceeds the server's per-request limit
  QuotaInflight = 6, ///< tenant at max in-flight systems
  QuotaBytes = 7,    ///< tenant at max in-flight decoded bytes
  QuotaRate = 8,     ///< tenant over requests_per_sec
  Draining = 9,      ///< server is draining; request not accepted
  Rejected = 10,     ///< service admission refused (queue/memory)
  Shed = 11,         ///< evicted by service backpressure
  TimedOut = 12,     ///< deadline lapsed before/while solving
  Failed = 13,       ///< the solve itself failed
  Singular = 14,     ///< system is numerically singular
  NonFinite = 15,    ///< system carried NaN/Inf coefficients
  Internal = 16,     ///< anything else
  DeadlineExpired = 17,  ///< absolute deadline already lapsed on arrival
  KeyReuse = 18,     ///< idempotency key reused for a different payload
};

/// Version the server agrees to speak given a Hello advertisement.
/// Legacy clients wrote 0 in the slot; both 0 and 1 negotiate to v1,
/// anything newer clamps to the highest version this build knows.
[[nodiscard]] constexpr std::uint16_t negotiate_version(
    std::uint16_t advertised) {
  if (advertised <= kVersion) return kVersion;
  return advertised < kMaxVersion ? advertised : kMaxVersion;
}

/// Wall-clock "now" as milliseconds since the unix epoch — the time
/// base of v2 absolute deadlines. Both ends of a connection are
/// assumed clock-synced to well under typical deadline budgets.
double unix_now_ms();

const char* to_string(FrameType t);
const char* to_string(ErrorCode c);

/// FNV-1a-32 over `bytes` continuing from `state` (pass the offset
/// basis for a fresh hash). Exposed for tests.
std::uint32_t fnv1a32(std::string_view bytes,
                      std::uint32_t state = 0x811C9DC5u);

/// FNV-1a-64 of `bytes` — the payload fingerprint stored per
/// idempotency key, so a key reused for a *different* system is
/// rejected (ErrorCode::KeyReuse) instead of silently replayed, and the
/// fingerprint survives a restart inside the ops snapshot.
std::uint64_t fnv1a64(std::string_view bytes);

/// One decoded frame: a non-owning view into the receive buffer.
struct FrameView {
  FrameType type = FrameType::Goodbye;
  std::uint16_t version = kVersion;  ///< header version the peer sent
  std::uint64_t request_id = 0;
  std::string_view payload;
};

enum class DecodeStatus {
  NeedMore,  ///< buffer holds a frame prefix; read more bytes
  Ok,        ///< `frame` is valid; drop `consumed` bytes from the buffer
  Corrupt,   ///< framing is broken; close the connection
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::NeedMore;
  std::size_t consumed = 0;   ///< valid only when status == Ok
  FrameView frame;            ///< valid only when status == Ok
  const char* error = "";     ///< reason when status == Corrupt
};

/// Decodes the first frame of `buf` without allocating. `max_payload`
/// caps payload_len (clamped to kAbsoluteMaxPayload); anything larger
/// is Corrupt — the decoder never asks the caller to buffer unbounded
/// bytes on the say-so of an unauthenticated length field.
DecodeResult decode_frame(std::string_view buf, std::size_t max_payload);

// --- payload shapes -----------------------------------------------------

struct HelloFrame {
  std::string token;
  /// Highest protocol version the client speaks; 0 = legacy v1 client
  /// that predates negotiation.
  std::uint16_t advertised_version = 0;
  /// Client wall clock (unix ms) when the Hello was sent; rides an
  /// optional trailing f64 so legacy frames (without it) still parse.
  /// 0 / absent = client did not stamp one.
  double client_unix_ms = 0.0;
  bool has_timestamp = false;
};

struct HelloOkFrame {
  std::string tenant;
  /// Version the server agreed to; 0 = legacy v1 server.
  std::uint16_t negotiated_version = 0;
  /// Server wall clock (unix ms) when the HelloOk was sent — same
  /// optional trailing f64 as HelloFrame, letting the client estimate
  /// the clock offset from its own send/receive times.
  double server_unix_ms = 0.0;
  bool has_timestamp = false;
};

/// Solve payload, v1: u8 dtype_size, u8+u16 reserved, u32 n,
/// f64 deadline_ms (relative budget), then diagonals a,b,c and rhs d —
/// 4*n values of dtype_size bytes each.
///
/// v2 inserts f64 deadline_unix_ms (absolute, ms since unix epoch;
/// replaces the relative field) and u64 idem_key between the deadline
/// and the diagonals.
template <typename T>
struct SolveFrame {
  std::uint32_t n = 0;
  std::uint16_t version = kVersion;  ///< wire version this parsed from
  double deadline_ms = 0.0;       ///< v1 relative budget (0 = none)
  double deadline_unix_ms = 0.0;  ///< v2 absolute deadline (0 = none)
  std::uint64_t idem_key = 0;     ///< v2 idempotency key (0 = none)
  std::vector<T> a, b, c, d;
};

/// SolveOk payload: u8 dtype_size, u8 flags (bit0 = fallback_used),
/// u16 reserved, u32 n, u64 trace_id, f64 solve_ms, f64 wait_ms, then
/// n solution values.
template <typename T>
struct SolveOkFrame {
  std::uint32_t n = 0;
  std::uint64_t trace_id = 0;
  double solve_ms = 0.0;
  double wait_ms = 0.0;
  bool fallback_used = false;
  std::vector<T> x;
};

struct SolveErrFrame {
  ErrorCode code = ErrorCode::None;
  std::string message;
};

// --- encoders (append a complete frame to `out`) ------------------------

/// `client_unix_ms` != 0 appends the optional timestamp (see
/// HelloFrame) that lets the server estimate this connection's clock
/// skew and clamp implausible absolute deadlines.
void encode_hello(std::string& out, std::string_view token,
                  std::uint16_t advertised_version = kMaxVersion,
                  double client_unix_ms = 0.0);
void encode_hello_ok(std::string& out, std::string_view tenant,
                     std::uint16_t negotiated_version = 0,
                     double server_unix_ms = 0.0);
void encode_goodbye(std::string& out);
void encode_solve_err(std::string& out, std::uint64_t request_id,
                      ErrorCode code, std::string_view message,
                      std::uint16_t wire_version = kVersion);

template <typename T>
void encode_solve(std::string& out, std::uint64_t request_id,
                  const std::vector<T>& a, const std::vector<T>& b,
                  const std::vector<T>& c, const std::vector<T>& d,
                  double deadline_ms);

/// v2 Solve: absolute unix-epoch deadline (0 = none) + idempotency key
/// (0 = none). The frame header carries version 2.
template <typename T>
void encode_solve_v2(std::string& out, std::uint64_t request_id,
                     const std::vector<T>& a, const std::vector<T>& b,
                     const std::vector<T>& c, const std::vector<T>& d,
                     double deadline_unix_ms, std::uint64_t idem_key);

template <typename T>
void encode_solve_ok(std::string& out, std::uint64_t request_id,
                     const std::vector<T>& x, std::uint64_t trace_id,
                     double solve_ms, double wait_ms, bool fallback_used,
                     std::uint16_t wire_version = kVersion);

// --- payload parsers (nullopt on any shape violation) -------------------

std::optional<HelloFrame> parse_hello(std::string_view payload);
std::optional<HelloOkFrame> parse_hello_ok(std::string_view payload);
std::optional<SolveErrFrame> parse_solve_err(std::string_view payload);

/// Peeks the dtype width of a Solve payload (0 when too short).
std::uint8_t solve_dtype(std::string_view payload);

/// Parses a Solve payload at the given wire version (taken from the
/// frame header). The one-argument form parses v1 — existing callers
/// and tests keep their meaning.
template <typename T>
std::optional<SolveFrame<T>> parse_solve(std::string_view payload,
                                         std::uint16_t version);

template <typename T>
std::optional<SolveFrame<T>> parse_solve(std::string_view payload) {
  return parse_solve<T>(payload, kVersion);
}

template <typename T>
std::optional<SolveOkFrame<T>> parse_solve_ok(std::string_view payload);

/// Per-request decoded-payload bytes a Solve of size n pins on the
/// server (the four diagonals) — what tenant byte quotas account.
template <typename T>
[[nodiscard]] constexpr std::size_t solve_bytes(std::size_t n) {
  return 4 * n * sizeof(T);
}

}  // namespace tda::net
