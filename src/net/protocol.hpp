#pragma once
// Wire protocol of the solver front door (docs/NET.md).
//
// Frames are length-prefixed little-endian binary with a fixed 24-byte
// header:
//
//   offset  size  field
//        0     4  magic        0x50414454 ("TDAP")
//        4     2  version      1
//        6     2  type         FrameType
//        8     8  request_id   caller-chosen correlation id
//       16     4  payload_len  bytes following the header
//       20     4  checksum     FNV-1a-32 over header[0,20) + payload
//
// The checksum makes corruption detectable rather than merely unlikely
// to parse: every FNV-1a step s' = (s ^ byte) * prime is a bijection of
// the 32-bit state, so any single flipped byte in the covered range
// always lands on a different checksum — the fuzz harness leans on that
// to assert "no mutated frame is ever accepted".
//
// decode_frame is strictly bounds-checked and allocation-free: it
// either needs more bytes, yields a view into the caller's buffer, or
// rejects the stream as corrupt (at which point the connection is
// unrecoverable — framing is lost). Payload parsers (parse_solve, ...)
// validate exact lengths before allocating anything.
//
// Dtype width is carried per Solve frame (4 = f32, 8 = f64); a server
// instantiated for one T rejects the other with ErrorCode::Dtype
// instead of guessing.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tda::net {

inline constexpr std::uint32_t kMagic = 0x50414454u;  // "TDAP" on the wire
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Hard ceiling a decoder enforces even when the caller passes a larger
/// limit — no payload_len may imply a buffer this large.
inline constexpr std::size_t kAbsoluteMaxPayload =
    std::size_t{1} << 30;  // 1 GiB

enum class FrameType : std::uint16_t {
  Hello = 1,    ///< client -> server: tenant auth token
  HelloOk = 2,  ///< server -> client: resolved tenant name
  Solve = 3,    ///< client -> server: one tridiagonal system
  SolveOk = 4,  ///< server -> client: solution
  SolveErr = 5, ///< server -> client: typed rejection / failure
  Goodbye = 6,  ///< either way: orderly close (empty payload)
};

/// Typed error codes carried by SolveErr frames.
enum class ErrorCode : std::uint16_t {
  None = 0,
  BadFrame = 1,      ///< malformed/corrupt frame; connection closes after
  AuthRequired = 2,  ///< Solve before a successful Hello
  AuthFailed = 3,    ///< Hello token matched no tenant
  Dtype = 4,         ///< dtype width does not match the server's T
  TooLarge = 5,      ///< n exceeds the server's per-request limit
  QuotaInflight = 6, ///< tenant at max in-flight systems
  QuotaBytes = 7,    ///< tenant at max in-flight decoded bytes
  QuotaRate = 8,     ///< tenant over requests_per_sec
  Draining = 9,      ///< server is draining; request not accepted
  Rejected = 10,     ///< service admission refused (queue/memory)
  Shed = 11,         ///< evicted by service backpressure
  TimedOut = 12,     ///< deadline lapsed before/while solving
  Failed = 13,       ///< the solve itself failed
  Singular = 14,     ///< system is numerically singular
  NonFinite = 15,    ///< system carried NaN/Inf coefficients
  Internal = 16,     ///< anything else
};

const char* to_string(FrameType t);
const char* to_string(ErrorCode c);

/// FNV-1a-32 over `bytes` continuing from `state` (pass the offset
/// basis for a fresh hash). Exposed for tests.
std::uint32_t fnv1a32(std::string_view bytes,
                      std::uint32_t state = 0x811C9DC5u);

/// One decoded frame: a non-owning view into the receive buffer.
struct FrameView {
  FrameType type = FrameType::Goodbye;
  std::uint64_t request_id = 0;
  std::string_view payload;
};

enum class DecodeStatus {
  NeedMore,  ///< buffer holds a frame prefix; read more bytes
  Ok,        ///< `frame` is valid; drop `consumed` bytes from the buffer
  Corrupt,   ///< framing is broken; close the connection
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::NeedMore;
  std::size_t consumed = 0;   ///< valid only when status == Ok
  FrameView frame;            ///< valid only when status == Ok
  const char* error = "";     ///< reason when status == Corrupt
};

/// Decodes the first frame of `buf` without allocating. `max_payload`
/// caps payload_len (clamped to kAbsoluteMaxPayload); anything larger
/// is Corrupt — the decoder never asks the caller to buffer unbounded
/// bytes on the say-so of an unauthenticated length field.
DecodeResult decode_frame(std::string_view buf, std::size_t max_payload);

// --- payload shapes -----------------------------------------------------

struct HelloFrame {
  std::string token;
};

struct HelloOkFrame {
  std::string tenant;
};

/// Solve payload: u8 dtype_size, u8+u16 reserved, u32 n, f64 deadline_ms,
/// then diagonals a,b,c and rhs d — 4*n values of dtype_size bytes each.
template <typename T>
struct SolveFrame {
  std::uint32_t n = 0;
  double deadline_ms = 0.0;
  std::vector<T> a, b, c, d;
};

/// SolveOk payload: u8 dtype_size, u8 flags (bit0 = fallback_used),
/// u16 reserved, u32 n, u64 trace_id, f64 solve_ms, f64 wait_ms, then
/// n solution values.
template <typename T>
struct SolveOkFrame {
  std::uint32_t n = 0;
  std::uint64_t trace_id = 0;
  double solve_ms = 0.0;
  double wait_ms = 0.0;
  bool fallback_used = false;
  std::vector<T> x;
};

struct SolveErrFrame {
  ErrorCode code = ErrorCode::None;
  std::string message;
};

// --- encoders (append a complete frame to `out`) ------------------------

void encode_hello(std::string& out, std::string_view token);
void encode_hello_ok(std::string& out, std::string_view tenant);
void encode_goodbye(std::string& out);
void encode_solve_err(std::string& out, std::uint64_t request_id,
                      ErrorCode code, std::string_view message);

template <typename T>
void encode_solve(std::string& out, std::uint64_t request_id,
                  const std::vector<T>& a, const std::vector<T>& b,
                  const std::vector<T>& c, const std::vector<T>& d,
                  double deadline_ms);

template <typename T>
void encode_solve_ok(std::string& out, std::uint64_t request_id,
                     const std::vector<T>& x, std::uint64_t trace_id,
                     double solve_ms, double wait_ms, bool fallback_used);

// --- payload parsers (nullopt on any shape violation) -------------------

std::optional<HelloFrame> parse_hello(std::string_view payload);
std::optional<HelloOkFrame> parse_hello_ok(std::string_view payload);
std::optional<SolveErrFrame> parse_solve_err(std::string_view payload);

/// Peeks the dtype width of a Solve payload (0 when too short).
std::uint8_t solve_dtype(std::string_view payload);

template <typename T>
std::optional<SolveFrame<T>> parse_solve(std::string_view payload);

template <typename T>
std::optional<SolveOkFrame<T>> parse_solve_ok(std::string_view payload);

/// Per-request decoded-payload bytes a Solve of size n pins on the
/// server (the four diagonals) — what tenant byte quotas account.
template <typename T>
[[nodiscard]] constexpr std::size_t solve_bytes(std::size_t n) {
  return 4 * n * sizeof(T);
}

}  // namespace tda::net
