#include "net/tenant.hpp"

namespace tda::net {

const char* to_string(Admission a) {
  switch (a) {
    case Admission::Ok: return "ok";
    case Admission::QuotaInflight: return "quota_inflight";
    case Admission::QuotaBytes: return "quota_bytes";
    case Admission::QuotaRate: return "quota_rate";
  }
  return "?";
}

void TenantRegistry::add(TenantConfig cfg) {
  if (cfg.weight < 0.01) cfg.weight = 0.01;
  if (cfg.burst <= 0.0) {
    cfg.burst = cfg.requests_per_sec > 4.0 ? cfg.requests_per_sec / 4.0
                                           : 1.0;
  }
  auto t = std::make_unique<Tenant>();
  t->cfg = std::move(cfg);
  t->bucket = TokenBucket(t->cfg.requests_per_sec, t->cfg.burst);
  std::lock_guard lk(mu_);
  tenants_.push_back(std::move(t));
}

Tenant* TenantRegistry::authenticate(const std::string& token) {
  std::lock_guard lk(mu_);
  for (auto& t : tenants_) {
    if (!t->disabled && t->cfg.token == token) return t.get();
  }
  return nullptr;
}

Admission TenantRegistry::admit(Tenant& t, std::size_t systems,
                                std::size_t bytes, double now_s) {
  std::lock_guard lk(mu_);
  // Check every quota before charging any: an all-or-nothing verdict
  // keeps partial charges from leaking when the last check fails.
  if (t.disabled) {
    ++t.rejected;
    return Admission::QuotaRate;
  }
  if (t.cfg.max_inflight > 0 &&
      t.inflight_systems + systems > t.cfg.max_inflight) {
    ++t.rejected;
    return Admission::QuotaInflight;
  }
  if (t.cfg.max_inflight_bytes > 0 &&
      t.inflight_bytes + bytes > t.cfg.max_inflight_bytes) {
    ++t.rejected;
    return Admission::QuotaBytes;
  }
  if (!t.bucket.try_take(now_s)) {
    ++t.rejected;
    return Admission::QuotaRate;
  }
  t.inflight_systems += systems;
  t.inflight_bytes += bytes;
  ++t.admitted;
  return Admission::Ok;
}

void TenantRegistry::release(Tenant& t, std::size_t systems,
                             std::size_t bytes) {
  std::lock_guard lk(mu_);
  t.inflight_systems -= systems <= t.inflight_systems
                            ? systems
                            : t.inflight_systems;
  t.inflight_bytes -= bytes <= t.inflight_bytes ? bytes
                                                : t.inflight_bytes;
}

std::vector<TenantRegistry::Usage> TenantRegistry::usage() const {
  std::lock_guard lk(mu_);
  std::vector<Usage> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    out.push_back(Usage{t->cfg.name, t->cfg.weight, t->inflight_systems,
                        t->inflight_bytes, t->admitted, t->rejected});
  }
  return out;
}

std::size_t TenantRegistry::size() const {
  std::lock_guard lk(mu_);
  return tenants_.size();
}

Tenant* TenantRegistry::find(const std::string& name) {
  std::lock_guard lk(mu_);
  for (auto& t : tenants_) {
    if (t->cfg.name == name) return t.get();
  }
  return nullptr;
}

bool TenantRegistry::update(const std::string& name,
                            const TenantConfig& cfg) {
  std::lock_guard lk(mu_);
  for (auto& t : tenants_) {
    if (t->cfg.name != name) continue;
    TenantConfig next = cfg;
    next.name = name;  // the name is the identity; it never changes
    if (next.weight < 0.01) next.weight = 0.01;
    if (next.burst <= 0.0) {
      next.burst = next.requests_per_sec > 4.0
                       ? next.requests_per_sec / 4.0
                       : 1.0;
    }
    const bool rate_changed =
        next.requests_per_sec != t->cfg.requests_per_sec ||
        next.burst != t->cfg.burst;
    t->cfg = std::move(next);
    if (rate_changed)
      t->bucket = TokenBucket(t->cfg.requests_per_sec, t->cfg.burst);
    return true;
  }
  return false;
}

bool TenantRegistry::disable(const std::string& name, bool disabled) {
  std::lock_guard lk(mu_);
  for (auto& t : tenants_) {
    if (t->cfg.name != name) continue;
    t->disabled = disabled;
    return true;
  }
  return false;
}

std::vector<TenantRegistry::ConfigRow> TenantRegistry::configs() const {
  std::lock_guard lk(mu_);
  std::vector<ConfigRow> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    out.push_back(ConfigRow{t->cfg, t->disabled, t->admitted, t->rejected});
  }
  return out;
}

}  // namespace tda::net
