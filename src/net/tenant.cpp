#include "net/tenant.hpp"

namespace tda::net {

const char* to_string(Admission a) {
  switch (a) {
    case Admission::Ok: return "ok";
    case Admission::QuotaInflight: return "quota_inflight";
    case Admission::QuotaBytes: return "quota_bytes";
    case Admission::QuotaRate: return "quota_rate";
  }
  return "?";
}

void TenantRegistry::add(TenantConfig cfg) {
  if (cfg.weight < 0.01) cfg.weight = 0.01;
  if (cfg.burst <= 0.0) {
    cfg.burst = cfg.requests_per_sec > 4.0 ? cfg.requests_per_sec / 4.0
                                           : 1.0;
  }
  auto t = std::make_unique<Tenant>();
  t->cfg = std::move(cfg);
  t->bucket = TokenBucket(t->cfg.requests_per_sec, t->cfg.burst);
  std::lock_guard lk(mu_);
  tenants_.push_back(std::move(t));
}

Tenant* TenantRegistry::authenticate(const std::string& token) {
  std::lock_guard lk(mu_);
  for (auto& t : tenants_) {
    if (t->cfg.token == token) return t.get();
  }
  return nullptr;
}

Admission TenantRegistry::admit(Tenant& t, std::size_t systems,
                                std::size_t bytes, double now_s) {
  std::lock_guard lk(mu_);
  // Check every quota before charging any: an all-or-nothing verdict
  // keeps partial charges from leaking when the last check fails.
  if (t.cfg.max_inflight > 0 &&
      t.inflight_systems + systems > t.cfg.max_inflight) {
    ++t.rejected;
    return Admission::QuotaInflight;
  }
  if (t.cfg.max_inflight_bytes > 0 &&
      t.inflight_bytes + bytes > t.cfg.max_inflight_bytes) {
    ++t.rejected;
    return Admission::QuotaBytes;
  }
  if (!t.bucket.try_take(now_s)) {
    ++t.rejected;
    return Admission::QuotaRate;
  }
  t.inflight_systems += systems;
  t.inflight_bytes += bytes;
  ++t.admitted;
  return Admission::Ok;
}

void TenantRegistry::release(Tenant& t, std::size_t systems,
                             std::size_t bytes) {
  std::lock_guard lk(mu_);
  t.inflight_systems -= systems <= t.inflight_systems
                            ? systems
                            : t.inflight_systems;
  t.inflight_bytes -= bytes <= t.inflight_bytes ? bytes
                                                : t.inflight_bytes;
}

std::vector<TenantRegistry::Usage> TenantRegistry::usage() const {
  std::lock_guard lk(mu_);
  std::vector<Usage> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    out.push_back(Usage{t->cfg.name, t->cfg.weight, t->inflight_systems,
                        t->inflight_bytes, t->admitted, t->rejected});
  }
  return out;
}

std::size_t TenantRegistry::size() const {
  std::lock_guard lk(mu_);
  return tenants_.size();
}

}  // namespace tda::net
