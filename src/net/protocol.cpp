#include "net/protocol.hpp"

#include <chrono>
#include <cstring>

namespace tda::net {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

template <typename T>
void put_values(std::string& out, const std::vector<T>& v) {
  const std::size_t bytes = v.size() * sizeof(T);
  const std::size_t at = out.size();
  out.resize(at + bytes);
  if (bytes > 0) std::memcpy(out.data() + at, v.data(), bytes);
}

std::uint16_t get_u16(std::string_view b, std::size_t at) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(b[at]) |
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(b[at + 1]))
       << 8));
}

std::uint32_t get_u32(std::string_view b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint8_t>(b[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<std::uint8_t>(b[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

double get_f64(std::string_view b, std::size_t at) {
  const std::uint64_t bits = get_u64(b, at);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

template <typename T>
std::vector<T> get_values(std::string_view b, std::size_t at,
                          std::size_t count) {
  std::vector<T> out(count);
  if (count > 0) std::memcpy(out.data(), b.data() + at, count * sizeof(T));
  return out;
}

/// Appends a header + payload with the checksum patched in. The header
/// is built first with checksum 0, then the hash runs over the first 20
/// header bytes and the payload.
void append_frame(std::string& out, FrameType type,
                  std::uint64_t request_id, std::string_view payload,
                  std::uint16_t version = kVersion) {
  const std::size_t head = out.size();
  put_u32(out, kMagic);
  put_u16(out, version);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t sum = fnv1a32(std::string_view(out).substr(head, 20));
  sum = fnv1a32(payload, sum);
  put_u32(out, sum);
  out.append(payload);
}

bool known_type(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(FrameType::Hello) &&
         t <= static_cast<std::uint16_t>(FrameType::Goodbye);
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "hello";
    case FrameType::HelloOk: return "hello_ok";
    case FrameType::Solve: return "solve";
    case FrameType::SolveOk: return "solve_ok";
    case FrameType::SolveErr: return "solve_err";
    case FrameType::Goodbye: return "goodbye";
  }
  return "?";
}

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::None: return "none";
    case ErrorCode::BadFrame: return "bad_frame";
    case ErrorCode::AuthRequired: return "auth_required";
    case ErrorCode::AuthFailed: return "auth_failed";
    case ErrorCode::Dtype: return "dtype";
    case ErrorCode::TooLarge: return "too_large";
    case ErrorCode::QuotaInflight: return "quota_inflight";
    case ErrorCode::QuotaBytes: return "quota_bytes";
    case ErrorCode::QuotaRate: return "quota_rate";
    case ErrorCode::Draining: return "draining";
    case ErrorCode::Rejected: return "rejected";
    case ErrorCode::Shed: return "shed";
    case ErrorCode::TimedOut: return "timed_out";
    case ErrorCode::Failed: return "failed";
    case ErrorCode::Singular: return "singular";
    case ErrorCode::NonFinite: return "nonfinite";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::DeadlineExpired: return "deadline_expired";
    case ErrorCode::KeyReuse: return "key_reuse";
  }
  return "?";
}

double unix_now_ms() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

std::uint32_t fnv1a32(std::string_view bytes, std::uint32_t state) {
  for (const char c : bytes) {
    state ^= static_cast<std::uint8_t>(c);
    state *= 0x01000193u;
  }
  return state;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

DecodeResult decode_frame(std::string_view buf, std::size_t max_payload) {
  DecodeResult r;
  if (buf.size() < kHeaderSize) {
    // Reject a hopeless prefix early: a wrong magic can never grow into
    // a valid frame, and flagging it now keeps a garbage-spewing peer
    // from pinning buffer space while we "wait for more".
    if (!buf.empty() && buf.size() >= 4 && get_u32(buf, 0) != kMagic) {
      r.status = DecodeStatus::Corrupt;
      r.error = "bad magic";
      return r;
    }
    r.status = DecodeStatus::NeedMore;
    return r;
  }
  if (get_u32(buf, 0) != kMagic) {
    r.status = DecodeStatus::Corrupt;
    r.error = "bad magic";
    return r;
  }
  const std::uint16_t version = get_u16(buf, 4);
  if (version < kVersion || version > kMaxVersion) {
    r.status = DecodeStatus::Corrupt;
    r.error = "unsupported version";
    return r;
  }
  const std::uint16_t type = get_u16(buf, 6);
  if (!known_type(type)) {
    r.status = DecodeStatus::Corrupt;
    r.error = "unknown frame type";
    return r;
  }
  const std::size_t payload_len = get_u32(buf, 16);
  const std::size_t cap = max_payload < kAbsoluteMaxPayload
                              ? max_payload
                              : kAbsoluteMaxPayload;
  if (payload_len > cap) {
    r.status = DecodeStatus::Corrupt;
    r.error = "payload too large";
    return r;
  }
  if (buf.size() < kHeaderSize + payload_len) {
    r.status = DecodeStatus::NeedMore;
    return r;
  }
  const std::string_view payload = buf.substr(kHeaderSize, payload_len);
  std::uint32_t sum = fnv1a32(buf.substr(0, 20));
  sum = fnv1a32(payload, sum);
  if (sum != get_u32(buf, 20)) {
    r.status = DecodeStatus::Corrupt;
    r.error = "checksum mismatch";
    return r;
  }
  r.status = DecodeStatus::Ok;
  r.consumed = kHeaderSize + payload_len;
  r.frame.type = static_cast<FrameType>(type);
  r.frame.version = version;
  r.frame.request_id = get_u64(buf, 8);
  r.frame.payload = payload;
  return r;
}

void encode_hello(std::string& out, std::string_view token,
                  std::uint16_t advertised_version,
                  double client_unix_ms) {
  std::string payload;
  put_u16(payload, static_cast<std::uint16_t>(token.size()));
  put_u16(payload, advertised_version);
  payload.append(token);
  if (client_unix_ms != 0.0) put_f64(payload, client_unix_ms);
  append_frame(out, FrameType::Hello, 0, payload);
}

void encode_hello_ok(std::string& out, std::string_view tenant,
                     std::uint16_t negotiated_version,
                     double server_unix_ms) {
  std::string payload;
  put_u16(payload, static_cast<std::uint16_t>(tenant.size()));
  put_u16(payload, negotiated_version);
  payload.append(tenant);
  if (server_unix_ms != 0.0) put_f64(payload, server_unix_ms);
  append_frame(out, FrameType::HelloOk, 0, payload);
}

void encode_goodbye(std::string& out) {
  append_frame(out, FrameType::Goodbye, 0, {});
}

void encode_solve_err(std::string& out, std::uint64_t request_id,
                      ErrorCode code, std::string_view message,
                      std::uint16_t wire_version) {
  std::string payload;
  put_u16(payload, static_cast<std::uint16_t>(code));
  put_u16(payload, 0);
  put_u32(payload, static_cast<std::uint32_t>(message.size()));
  payload.append(message);
  append_frame(out, FrameType::SolveErr, request_id, payload, wire_version);
}

template <typename T>
void encode_solve(std::string& out, std::uint64_t request_id,
                  const std::vector<T>& a, const std::vector<T>& b,
                  const std::vector<T>& c, const std::vector<T>& d,
                  double deadline_ms) {
  std::string payload;
  payload.reserve(16 + 4 * b.size() * sizeof(T));
  payload.push_back(static_cast<char>(sizeof(T)));
  payload.push_back(0);
  put_u16(payload, 0);
  put_u32(payload, static_cast<std::uint32_t>(b.size()));
  put_f64(payload, deadline_ms);
  put_values(payload, a);
  put_values(payload, b);
  put_values(payload, c);
  put_values(payload, d);
  append_frame(out, FrameType::Solve, request_id, payload);
}

template <typename T>
void encode_solve_v2(std::string& out, std::uint64_t request_id,
                     const std::vector<T>& a, const std::vector<T>& b,
                     const std::vector<T>& c, const std::vector<T>& d,
                     double deadline_unix_ms, std::uint64_t idem_key) {
  std::string payload;
  payload.reserve(24 + 4 * b.size() * sizeof(T));
  payload.push_back(static_cast<char>(sizeof(T)));
  payload.push_back(0);
  put_u16(payload, 0);
  put_u32(payload, static_cast<std::uint32_t>(b.size()));
  put_f64(payload, deadline_unix_ms);
  put_u64(payload, idem_key);
  put_values(payload, a);
  put_values(payload, b);
  put_values(payload, c);
  put_values(payload, d);
  append_frame(out, FrameType::Solve, request_id, payload, kVersion2);
}

template <typename T>
void encode_solve_ok(std::string& out, std::uint64_t request_id,
                     const std::vector<T>& x, std::uint64_t trace_id,
                     double solve_ms, double wait_ms, bool fallback_used,
                     std::uint16_t wire_version) {
  std::string payload;
  payload.reserve(32 + x.size() * sizeof(T));
  payload.push_back(static_cast<char>(sizeof(T)));
  payload.push_back(fallback_used ? 1 : 0);
  put_u16(payload, 0);
  put_u32(payload, static_cast<std::uint32_t>(x.size()));
  put_u64(payload, trace_id);
  put_f64(payload, solve_ms);
  put_f64(payload, wait_ms);
  put_values(payload, x);
  append_frame(out, FrameType::SolveOk, request_id, payload, wire_version);
}

std::optional<HelloFrame> parse_hello(std::string_view payload) {
  if (payload.size() < 4) return std::nullopt;
  const std::size_t len = get_u16(payload, 0);
  // Exactly the base shape, or base + the optional trailing f64
  // timestamp; anything else is malformed.
  if (payload.size() != 4 + len && payload.size() != 4 + len + 8)
    return std::nullopt;
  HelloFrame f;
  f.advertised_version = get_u16(payload, 2);
  f.token.assign(payload.substr(4, len));
  if (payload.size() == 4 + len + 8) {
    f.client_unix_ms = get_f64(payload, 4 + len);
    f.has_timestamp = true;
  }
  return f;
}

std::optional<HelloOkFrame> parse_hello_ok(std::string_view payload) {
  if (payload.size() < 4) return std::nullopt;
  const std::size_t len = get_u16(payload, 0);
  if (payload.size() != 4 + len && payload.size() != 4 + len + 8)
    return std::nullopt;
  HelloOkFrame f;
  f.negotiated_version = get_u16(payload, 2);
  f.tenant.assign(payload.substr(4, len));
  if (payload.size() == 4 + len + 8) {
    f.server_unix_ms = get_f64(payload, 4 + len);
    f.has_timestamp = true;
  }
  return f;
}

std::optional<SolveErrFrame> parse_solve_err(std::string_view payload) {
  if (payload.size() < 8) return std::nullopt;
  const std::size_t len = get_u32(payload, 4);
  if (payload.size() != 8 + len) return std::nullopt;
  SolveErrFrame f;
  f.code = static_cast<ErrorCode>(get_u16(payload, 0));
  f.message.assign(payload.substr(8, len));
  return f;
}

std::uint8_t solve_dtype(std::string_view payload) {
  if (payload.empty()) return 0;
  return static_cast<std::uint8_t>(payload[0]);
}

template <typename T>
std::optional<SolveFrame<T>> parse_solve(std::string_view payload,
                                         std::uint16_t version) {
  if (version < kVersion || version > kMaxVersion) return std::nullopt;
  const std::size_t prefix = version >= kVersion2 ? 24 : 16;
  if (payload.size() < prefix) return std::nullopt;
  if (static_cast<std::uint8_t>(payload[0]) != sizeof(T))
    return std::nullopt;
  const std::uint32_t n = get_u32(payload, 4);
  if (n == 0) return std::nullopt;
  const std::size_t want =
      prefix + 4 * static_cast<std::size_t>(n) * sizeof(T);
  if (payload.size() != want) return std::nullopt;
  SolveFrame<T> f;
  f.n = n;
  f.version = version;
  if (version >= kVersion2) {
    f.deadline_unix_ms = get_f64(payload, 8);
    f.idem_key = get_u64(payload, 16);
  } else {
    f.deadline_ms = get_f64(payload, 8);
  }
  std::size_t at = prefix;
  const std::size_t stride = static_cast<std::size_t>(n) * sizeof(T);
  f.a = get_values<T>(payload, at, n);
  at += stride;
  f.b = get_values<T>(payload, at, n);
  at += stride;
  f.c = get_values<T>(payload, at, n);
  at += stride;
  f.d = get_values<T>(payload, at, n);
  return f;
}

template <typename T>
std::optional<SolveOkFrame<T>> parse_solve_ok(std::string_view payload) {
  if (payload.size() < 32) return std::nullopt;
  if (static_cast<std::uint8_t>(payload[0]) != sizeof(T))
    return std::nullopt;
  const std::uint32_t n = get_u32(payload, 4);
  const std::size_t want = 32 + static_cast<std::size_t>(n) * sizeof(T);
  if (payload.size() != want) return std::nullopt;
  SolveOkFrame<T> f;
  f.n = n;
  f.fallback_used = (static_cast<std::uint8_t>(payload[1]) & 1u) != 0;
  f.trace_id = get_u64(payload, 8);
  f.solve_ms = get_f64(payload, 16);
  f.wait_ms = get_f64(payload, 24);
  f.x = get_values<T>(payload, 32, n);
  return f;
}

template void encode_solve<float>(std::string&, std::uint64_t,
                                  const std::vector<float>&,
                                  const std::vector<float>&,
                                  const std::vector<float>&,
                                  const std::vector<float>&, double);
template void encode_solve<double>(std::string&, std::uint64_t,
                                   const std::vector<double>&,
                                   const std::vector<double>&,
                                   const std::vector<double>&,
                                   const std::vector<double>&, double);
template void encode_solve_v2<float>(std::string&, std::uint64_t,
                                     const std::vector<float>&,
                                     const std::vector<float>&,
                                     const std::vector<float>&,
                                     const std::vector<float>&, double,
                                     std::uint64_t);
template void encode_solve_v2<double>(std::string&, std::uint64_t,
                                      const std::vector<double>&,
                                      const std::vector<double>&,
                                      const std::vector<double>&,
                                      const std::vector<double>&, double,
                                      std::uint64_t);
template void encode_solve_ok<float>(std::string&, std::uint64_t,
                                     const std::vector<float>&,
                                     std::uint64_t, double, double, bool,
                                     std::uint16_t);
template void encode_solve_ok<double>(std::string&, std::uint64_t,
                                      const std::vector<double>&,
                                      std::uint64_t, double, double, bool,
                                      std::uint16_t);
template std::optional<SolveFrame<float>> parse_solve<float>(
    std::string_view, std::uint16_t);
template std::optional<SolveFrame<double>> parse_solve<double>(
    std::string_view, std::uint16_t);
template std::optional<SolveOkFrame<float>> parse_solve_ok<float>(
    std::string_view);
template std::optional<SolveOkFrame<double>> parse_solve_ok<double>(
    std::string_view);

}  // namespace tda::net
