#pragma once
// FrontDoor — the wire-protocol server in front of SolveService
// (docs/NET.md).
//
// One poll-based event thread owns every connection: it accepts from a
// TCP and/or unix-domain listener, reads frames into per-connection
// buffers, authenticates tenants (Hello), enforces tenant quotas at
// admission with typed SolveErr rejects, and queues admitted requests
// into per-tenant deficit-round-robin lanes. The pump drains lanes into
// SolveService::submit (callback form) while the service-side in-flight
// window has room; the service's own shape-bucketed coalescer then
// merges same-shape systems across tenants into single ragged solves.
//
// Completions arrive on service worker threads. The callback encodes
// the response, parks it on a mutex-guarded queue and writes one byte
// to the wake pipe — it never touches the service or the poll thread's
// state, so the service-mutex -> completions-mutex lock order is the
// only one that exists. The poll thread swaps the queue out under the
// lock and does all socket work unlocked.
//
// Flow control:
//   * slow consumers: a connection whose write buffer passes
//     write_buffer_limit stops being read (POLLIN off) until it drains
//     below half the limit — one stalled reader cannot balloon memory
//     or starve the loop;
//   * idle timeout: a connection with no traffic and nothing in flight
//     for idle_timeout_ms is closed;
//   * drain: begin_drain() stops accepting connections, answers new
//     Solve frames with ErrorCode::Draining, lets everything already
//     admitted finish through the service, flushes write buffers, says
//     Goodbye and only then lets shutdown() return — a client
//     mid-stream at drain time gets its completed response or a typed
//     Draining frame, never a silent close.
//
// Faults (TDA_FAULTS): net_drop closes a connection mid-read; bytes
// read while net_corrupt fires are bit-flipped before decoding, which
// the checksum turns into a BadFrame reject + close. Both are counted.
//
// Reliability layer (protocol v2, docs/ROBUSTNESS.md):
//   * deadlines: v2 Solve frames carry an absolute unix-epoch deadline
//     (v1 relative budgets and per-tenant defaults are folded into the
//     same absolute form at arrival). Expired-on-arrival requests are
//     rejected with DeadlineExpired before admission; requests whose
//     deadline lapses while parked in a lane are rejected at the pump,
//     before any device dispatch. What survives enters the service with
//     its remaining relative budget.
//   * idempotency: keyed Solves run through a per-tenant dedup cache.
//     A resend of a completed request replays the cached result; a
//     resend of one still executing parks as a waiter on it. The device
//     never executes the same (tenant, key) twice while the entry
//     lives — net.duplicate_executions counts violations (stays 0).
//   * overload: a CoDel-style queue-age check sheds from lanes whose
//     head sojourn stays above codel_target_ms for a full
//     codel_interval_ms (then at increasing frequency), and a per-
//     tenant AIMD window throttles how many of a tenant's requests may
//     be in the service at once — sheds and timeouts shrink it
//     multiplicatively, completions grow it back. Together they keep
//     goodput from collapsing when offered load is a multiple of
//     capacity.

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "faults/faults.hpp"
#include "net/dedup.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/tenant.hpp"
#include "ops/state.hpp"
#include "service/solve_service.hpp"
#include "telemetry/metrics.hpp"

namespace tda::net {

struct FrontDoorConfig {
  /// TCP listen spec ("127.0.0.1:0" for an ephemeral port); empty = no
  /// TCP listener.
  std::string tcp;
  /// Unix-domain socket path; empty = no unix listener. At least one
  /// listener must be configured.
  std::string unix_path;

  /// Per-request equation cap (ErrorCode::TooLarge beyond it).
  std::size_t max_systems = std::size_t{1} << 22;
  /// Decoder payload cap; larger length prefixes are Corrupt.
  std::size_t max_payload_bytes = std::size_t{256} << 20;
  /// Write-buffer high-water mark: past it the connection stops being
  /// read until the buffer drains below half of it.
  std::size_t write_buffer_limit = std::size_t{4} << 20;
  /// Close connections idle (no traffic, nothing in flight) this long.
  /// 0 disables.
  double idle_timeout_ms = 0.0;
  /// Systems submitted into the service and not yet completed; the DRR
  /// pump stops at this window so lanes (where fairness is decided)
  /// stay the queueing point instead of the service's FIFO buckets.
  std::size_t max_service_inflight = 256;
  /// DRR quantum in equations per weight unit per round.
  double drr_quantum = 1024.0;
  /// Refuse Solve frames from connections that never authenticated.
  bool require_auth = true;
  /// Poll timeout (ms) — the cadence of idle/timeout housekeeping.
  double poll_interval_ms = 10.0;
  /// During drain, force-close connections whose write buffers have not
  /// flushed after this long (a consumer that stopped reading cannot
  /// hold shutdown hostage). Completion callbacks are always awaited.
  double drain_flush_timeout_ms = 5000.0;

  /// Idempotency dedup cache bounds (per-tenant keys, shared caps).
  DedupConfig dedup;
  /// CoDel queue-age shedding: head sojourn above target for a full
  /// interval starts dropping. codel_target_ms <= 0 disables.
  double codel_target_ms = 5.0;
  double codel_interval_ms = 100.0;
  /// AIMD per-tenant concurrency window over the service in-flight
  /// budget. false = every lane may fill the whole window.
  bool aimd_enabled = true;
  double aimd_min = 1.0;      ///< window floor (requests)
  double aimd_backoff = 0.7;  ///< multiplicative decrease factor

  /// Clock-skew guard (docs/OPERATIONS.md): a Hello that carries the
  /// client's wall clock yields a per-connection skew estimate
  /// (arrival time minus client stamp, so it overestimates by one-way
  /// latency — the threshold absorbs that). When |skew| exceeds this,
  /// the connection's *absolute* v2 deadlines are untrusted and
  /// replaced with the tenant's default budget instead of rejecting
  /// everything as expired (or accepting everything forever).
  /// <= 0 disables the clamp.
  double max_clock_skew_ms = 2000.0;

  /// Listener fds inherited from a previous server generation over the
  /// hot-restart handoff socket (docs/OPERATIONS.md). >= 0 adopts the
  /// fd instead of binding `tcp` / `unix_path` — both generations then
  /// share one kernel accept queue, so no connect is ever refused
  /// during the switchover.
  int inherited_tcp_fd = -1;
  int inherited_unix_fd = -1;
};

/// Monotonic counters of the front door (snapshot via counters()).
struct FrontDoorCounters {
  std::uint64_t connections = 0;      ///< accepted
  std::uint64_t closed = 0;           ///< closed (any reason)
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bad_frames = 0;       ///< corrupt/unparsable frames
  std::uint64_t auth_failures = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_rejected = 0; ///< typed rejects incl. quota/drain
  std::uint64_t responses_sent = 0;
  std::uint64_t backpressure_pauses = 0;
  std::uint64_t idle_closes = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_corruptions = 0;
  std::uint64_t dedup_hits = 0;       ///< resends served from cache
  std::uint64_t dedup_joins = 0;      ///< resends parked on in-flight work
  std::uint64_t dedup_evictions = 0;  ///< cache TTL/cap evictions
  std::uint64_t duplicate_executions = 0;  ///< keyed work executed twice
                                           ///< (exactly-once proof: 0)
  std::uint64_t deadline_expired_arrival = 0;  ///< expired before admission
  std::uint64_t deadline_expired_queued = 0;   ///< expired in a lane
  std::uint64_t shed_codel = 0;       ///< queue-age sheds
  std::uint64_t aimd_throttles = 0;   ///< pump passes blocked by a window
  std::uint64_t key_reuse = 0;        ///< idem key reused, different payload
  std::uint64_t deadline_skew_clamped = 0;  ///< absolute deadlines replaced
                                            ///< on skewed connections
};

template <typename T>
class FrontDoor {
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

 public:
  FrontDoor(service::SolveService<T>& svc, FrontDoorConfig cfg)
      : svc_(svc),
        cfg_(std::move(cfg)),
        lanes_(cfg_.drr_quantum),
        dedup_(cfg_.dedup) {}

  ~FrontDoor() { shutdown(); }

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Registers a tenant. Call before start().
  void add_tenant(TenantConfig cfg) { tenants_.add(std::move(cfg)); }

  [[nodiscard]] TenantRegistry& tenants() { return tenants_; }

  /// Opens the listeners and starts the poll thread. False (with *err
  /// set) when no listener could be opened.
  bool start(std::string* err) {
    if (running_) return true;
    if (cfg_.tcp.empty() && cfg_.unix_path.empty() &&
        cfg_.inherited_tcp_fd < 0 && cfg_.inherited_unix_fd < 0) {
      if (err != nullptr) *err = "front door has no listener configured";
      return false;
    }
    if (cfg_.inherited_tcp_fd >= 0) {
      // Hot restart: adopt the previous generation's listener instead
      // of binding — both generations then accept from one queue.
      tcp_listener_ = Fd(cfg_.inherited_tcp_fd);
      tcp_port_ = bound_port(tcp_listener_.get());
      set_nonblocking(tcp_listener_.get());
    } else if (!cfg_.tcp.empty()) {
      const auto ep = parse_endpoint(cfg_.tcp);
      if (!ep || ep->is_unix) {
        if (err != nullptr) *err = "bad tcp listen spec: " + cfg_.tcp;
        return false;
      }
      tcp_listener_ = listen_endpoint(*ep, 64, err);
      if (!tcp_listener_.valid()) return false;
      tcp_port_ = bound_port(tcp_listener_.get());
      set_nonblocking(tcp_listener_.get());
    }
    if (cfg_.inherited_unix_fd >= 0) {
      // Adopting means *not* re-binding cfg_.unix_path — the path on
      // disk already names this very socket; unlinking it here (as
      // listen_endpoint would) would cut off the shared accept queue.
      unix_listener_ = Fd(cfg_.inherited_unix_fd);
      set_nonblocking(unix_listener_.get());
    } else if (!cfg_.unix_path.empty()) {
      Endpoint ep;
      ep.is_unix = true;
      ep.path = cfg_.unix_path;
      unix_listener_ = listen_endpoint(ep, 64, err);
      if (!unix_listener_.valid()) return false;
      set_nonblocking(unix_listener_.get());
    }
    if (!cfg_.require_auth && anon_ == nullptr) {
      // Unauthenticated connections still need a lane and accounting;
      // the token starts with a NUL so no wire Hello can match it.
      TenantConfig anon;
      anon.name = "anon";
      anon.token = std::string("\0anon", 5);
      tenants_.add(anon);
      anon_ = tenants_.authenticate(anon.token);
    }
    int fds[2];
    if (::pipe(fds) != 0) {
      if (err != nullptr) *err = "wake pipe failed";
      return false;
    }
    wake_rd_ = Fd(fds[0]);
    wake_wr_ = Fd(fds[1]);
    set_nonblocking(wake_rd_.get());
    set_nonblocking(wake_wr_.get());
    {
      // post() reads running_ under tasks_mu_ from the admin thread.
      std::lock_guard lk(tasks_mu_);
      running_ = true;
    }
    thread_ = std::thread([this] { loop(); });
    return true;
  }

  /// The TCP port actually bound (resolves an ephemeral ":0" spec).
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  /// Starts the graceful drain without waiting: stops accepting, new
  /// Solve frames answer Draining, admitted work keeps flowing.
  void begin_drain() {
    draining_.store(true, std::memory_order_relaxed);
    wake();
  }

  /// Drains and stops: waits for every admitted request's completion to
  /// be delivered (or its connection's flush window to lapse), closes
  /// all sockets and joins the poll thread. Idempotent.
  void shutdown() {
    if (!running_) return;
    begin_drain();
    if (thread_.joinable()) thread_.join();
    {
      std::lock_guard lk(tasks_mu_);
      running_ = false;
    }
    // Tasks that slipped in after the loop exited still get answered —
    // a promise parked on one must never deadlock a clean shutdown.
    run_tasks();
    tcp_listener_.reset();
    unix_listener_.reset();
    wake_rd_.reset();
    wake_wr_.reset();
    if (!cfg_.unix_path.empty() && unlink_on_shutdown_) {
      ::unlink(cfg_.unix_path.c_str());
    }
  }

  [[nodiscard]] FrontDoorCounters counters() const {
    std::lock_guard lk(counters_mu_);
    return counters_;
  }

  /// Admitted-but-unanswered systems inside the service window.
  [[nodiscard]] std::size_t service_inflight() const {
    return service_inflight_.load(std::memory_order_relaxed);
  }

  // --- zero-downtime operations surface (src/ops, docs/OPERATIONS.md) ---

  /// Runs `fn` on the poll thread at its next iteration. This is the
  /// only way code off the poll thread may touch poll-thread-owned
  /// state (dedup cache, lanes, AIMD windows, connections): the admin
  /// socket and the snapshot writer both funnel through here. Tasks
  /// posted after shutdown() has joined the thread run inline on the
  /// caller (the poll thread is gone, so there is nothing to race).
  void post(std::function<void()> fn) {
    bool inline_run = false;
    {
      std::lock_guard lk(tasks_mu_);
      if (running_) {
        tasks_.push_back(std::move(fn));
      } else {
        inline_run = true;  // no poll thread, so nothing to race
      }
    }
    if (inline_run) {
      fn();
      return;
    }
    wake();
  }

  /// Copies everything restart-persistent into `out`: tenant registry
  /// rows (config + usage + AIMD window) and the completed dedup
  /// entries with their payload hashes. Poll-thread state is read
  /// directly, so call this *on* the poll thread (via post()) while
  /// running, or from the owning thread after shutdown.
  void export_state(ops::ServerState& out) {
    out.tenants.clear();
    out.entries.clear();
    for (const auto& row : tenants_.configs()) {
      ops::TenantState ts;
      ts.name = row.cfg.name;
      ts.token = row.cfg.token;
      ts.weight = row.cfg.weight;
      ts.max_inflight = row.cfg.max_inflight;
      ts.max_inflight_bytes = row.cfg.max_inflight_bytes;
      ts.requests_per_sec = row.cfg.requests_per_sec;
      ts.burst = row.cfg.burst;
      ts.default_deadline_ms = row.cfg.default_deadline_ms;
      ts.disabled = row.disabled;
      ts.admitted = row.admitted;
      ts.rejected = row.rejected;
      Tenant* t = tenants_.find(row.cfg.name);
      if (t != nullptr) ts.aimd_limit = t->aimd_limit;
      out.tenants.push_back(std::move(ts));
    }
    // Dedup keys are scoped by Tenant* — map each back to its name so
    // the next generation (different addresses) can re-scope them.
    std::map<std::uint64_t, std::string> names;
    for (const auto& ts : out.tenants) {
      names[tenant_id(tenants_.find(ts.name))] = ts.name;
    }
    dedup_.for_each_completed([&](std::uint64_t tid, std::uint64_t key,
                                  std::uint64_t payload_hash,
                                  const service::SolveResponse<T>& resp,
                                  std::size_t /*bytes*/) {
      auto it = names.find(tid);
      if (it == names.end()) return;  // anon or dead-tenant entry
      ops::DedupEntryState e;
      e.tenant = it->second;
      e.key = key;
      e.payload_hash = payload_hash;
      e.status = static_cast<int>(resp.status);
      e.error = resp.error;
      e.device = resp.device;
      e.x.assign(resp.x.begin(), resp.x.end());
      e.solve_ms = resp.solve_ms;
      e.wait_ms = resp.wait_ms;
      e.batch_systems = resp.batch_systems;
      e.retries = resp.retries;
      e.chunks = resp.chunks;
      e.fallback_used = resp.fallback_used;
      out.entries.push_back(std::move(e));
    });
    const DedupStats& s = dedup_.stats();
    out.dedup_stats.inserts = s.inserts;
    out.dedup_stats.hits = s.hits;
    out.dedup_stats.joins = s.joins;
    out.dedup_stats.evictions = s.evictions;
    out.dedup_stats.duplicate_executions = s.duplicate_executions;
  }

  /// Rebuilds live state from a snapshot: tenants are added or updated
  /// in place (never removed — pointers must stay stable), AIMD windows
  /// restored, and completed dedup entries seeded so a byte-identical
  /// resend of pre-restart work replays instead of re-executing. Call
  /// before start() — it touches poll-thread state without the thread.
  void import_state(const ops::ServerState& st) {
    for (const auto& ts : st.tenants) {
      TenantConfig cfg;
      cfg.name = ts.name;
      cfg.token = ts.token;
      cfg.weight = ts.weight;
      cfg.max_inflight = ts.max_inflight;
      cfg.max_inflight_bytes = ts.max_inflight_bytes;
      cfg.requests_per_sec = ts.requests_per_sec;
      cfg.burst = ts.burst;
      cfg.default_deadline_ms = ts.default_deadline_ms;
      if (tenants_.find(ts.name) == nullptr) {
        tenants_.add(cfg);
      } else {
        tenants_.update(ts.name, cfg);
      }
      tenants_.disable(ts.name, ts.disabled);
      Tenant* t = tenants_.find(ts.name);
      if (t != nullptr) {
        t->aimd_limit = ts.aimd_limit;
        t->admitted = ts.admitted;
        t->rejected = ts.rejected;
      }
    }
    for (const auto& e : st.entries) {
      Tenant* t = tenants_.find(e.tenant);
      if (t == nullptr) continue;
      service::SolveResponse<T> resp;
      resp.status = static_cast<service::SolveStatus>(e.status);
      resp.error = e.error;
      resp.device = e.device;
      resp.x.assign(e.x.begin(), e.x.end());
      resp.solve_ms = e.solve_ms;
      resp.wait_ms = e.wait_ms;
      resp.batch_systems = e.batch_systems;
      resp.retries = e.retries;
      resp.chunks = e.chunks;
      resp.fallback_used = e.fallback_used;
      const std::size_t bytes = resp.x.size() * sizeof(T) + 128;
      dedup_.seed_completed(tenant_id(t), e.key, e.payload_hash,
                            std::move(resp), bytes, mono_ms());
    }
    sync_dedup_counters();
  }

  /// Raw listener fds, for SCM_RIGHTS handoff to the next generation
  /// (sendmsg duplicates them into the receiver, so this generation
  /// keeps accepting until its own drain closes its copies). -1 = no
  /// such listener.
  [[nodiscard]] int tcp_listener_fd() const { return tcp_listener_.get(); }
  [[nodiscard]] int unix_listener_fd() const {
    return unix_listener_.get();
  }

  /// After a handoff the unix socket path belongs to the *next*
  /// generation — this generation's shutdown must not unlink it out
  /// from under the shared listener.
  void suppress_unlink() { unlink_on_shutdown_ = false; }

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Live-tunable knobs (CoDel target/interval, AIMD floor/backoff,
  /// clock-skew threshold...). The poll thread reads cfg_ locklessly,
  /// so mutate ONLY from the poll thread — i.e. inside a post()ed
  /// closure. Listener/path fields must not change after start().
  [[nodiscard]] FrontDoorConfig& config_mutable() { return cfg_; }

 private:
  struct Conn {
    Fd fd;
    std::uint64_t id = 0;
    std::string rbuf, wbuf;
    Tenant* tenant = nullptr;
    TimePoint last_rx{};
    std::size_t inflight = 0;  ///< admitted requests not yet answered
    std::uint16_t wire_version = kVersion;  ///< negotiated via Hello
    double skew_ms = 0.0;      ///< server clock minus client clock (est.)
    bool skew_known = false;   ///< Hello carried a client timestamp
    bool paused = false;       ///< POLLIN off (write-buffer high water)
    bool closing = false;      ///< flush wbuf, then close
  };

  /// A request admitted past quotas, parked in its tenant's DRR lane.
  struct Queued {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    Tenant* tenant = nullptr;
    std::size_t bytes = 0;
    double deadline_unix_ms = 0.0;  ///< absolute; 0 = none
    std::uint64_t idem_key = 0;     ///< 0 = unkeyed
    double enqueue_s = 0.0;         ///< now_s() at lane entry (CoDel)
    SolveFrame<T> frame;
  };

  /// A completed response on its way from a worker callback to the poll
  /// thread, which encodes it per recipient (the original requester may
  /// have dedup waiters on other connections, each with its own
  /// negotiated wire version).
  struct Done {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    Tenant* tenant = nullptr;
    std::size_t systems = 0;
    std::size_t bytes = 0;
    std::uint64_t idem_key = 0;
    service::SolveResponse<T> resp;
  };

  void wake() {
    if (wake_wr_.valid()) {
      const char b = 1;
      (void)::write(wake_wr_.get(), &b, 1);
    }
  }

  /// Executes every posted closure. Runs on the poll thread while it
  /// lives; shutdown() calls it once more after the join for stragglers.
  void run_tasks() {
    std::vector<std::function<void()>> batch;
    {
      std::lock_guard lk(tasks_mu_);
      batch.swap(tasks_);
    }
    for (auto& fn : batch) fn();
  }

  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  void count(std::uint64_t FrontDoorCounters::* field,
             std::uint64_t delta = 1) {
    std::lock_guard lk(counters_mu_);
    counters_.*field += delta;
  }

  telemetry::MetricsRegistry& metrics() {
    return svc_.telemetry().metrics;
  }

  void send_frame(Conn& conn, std::string bytes) {
    count(&FrontDoorCounters::frames_tx);
    count(&FrontDoorCounters::bytes_tx, bytes.size());
    if (metrics().enabled()) {
      metrics().add("net.frames_tx");
      metrics().add("net.bytes_tx", static_cast<double>(bytes.size()));
    }
    conn.wbuf.append(bytes);
    maybe_pause(conn);
  }

  void send_err(Conn& conn, std::uint64_t request_id, ErrorCode code,
                std::string_view msg) {
    std::string out;
    encode_solve_err(out, request_id, code, msg);
    send_frame(conn, std::move(out));
  }

  void reject(Conn& conn, std::uint64_t request_id, ErrorCode code,
              std::string_view msg) {
    count(&FrontDoorCounters::requests_rejected);
    if (metrics().enabled()) {
      const std::string tenant =
          conn.tenant != nullptr ? conn.tenant->cfg.name : "-";
      metrics().add(telemetry::labeled(
          "net.rejects",
          {{"tenant", tenant}, {"reason", to_string(code)}}));
    }
    send_err(conn, request_id, code, msg);
  }

  void maybe_pause(Conn& conn) {
    if (!conn.paused && conn.wbuf.size() > cfg_.write_buffer_limit) {
      conn.paused = true;
      count(&FrontDoorCounters::backpressure_pauses);
      if (metrics().enabled()) metrics().add("net.backpressure_pauses");
    }
  }

  void maybe_resume(Conn& conn) {
    if (conn.paused && conn.wbuf.size() < cfg_.write_buffer_limit / 2) {
      conn.paused = false;
    }
  }

  void close_conn(std::uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    // Requests still parked in lanes die with the connection; their
    // quota charge is returned. Requests already inside the service
    // complete later — delivery just finds the connection gone and
    // drops the bytes (the charge is returned on delivery as always).
    lanes_.drop_if(
        [id](const Queued& q) { return q.conn_id == id; },
        [this](const Queued& q) {
          tenants_.release(*q.tenant, 1, q.bytes);
          // A keyed request dying in a lane un-tracks its key; parked
          // waiters get a typed error instead of waiting forever.
          abort_dedup(q.tenant, q.idem_key, ErrorCode::Internal,
                      "original request aborted with its connection");
        });
    conns_.erase(it);
    count(&FrontDoorCounters::closed);
    if (metrics().enabled()) {
      metrics().set("net.connections_now",
                    static_cast<double>(conns_.size()));
    }
  }

  void accept_from(Fd& listener) {
    if (!listener.valid()) return;
    for (;;) {
      const int fd = ::accept(listener.get(), nullptr, nullptr);
      if (fd < 0) return;
      if (draining_.load(std::memory_order_relaxed)) {
        // Too late: an orderly Goodbye tells the client why.
        std::string out;
        encode_goodbye(out);
        (void)write_all(fd, out.data(), out.size());
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      Conn conn;
      conn.fd = Fd(fd);
      conn.id = next_conn_id_++;
      conn.last_rx = Clock::now();
      count(&FrontDoorCounters::connections);
      if (metrics().enabled()) {
        metrics().add("net.connections");
        metrics().set("net.connections_now",
                      static_cast<double>(conns_.size() + 1));
      }
      conns_.emplace(conn.id, std::move(conn));
    }
  }

  void handle_hello(Conn& conn, const FrameView& frame) {
    const auto hello = parse_hello(frame.payload);
    if (!hello) {
      bad_frame(conn, "unparsable hello");
      return;
    }
    Tenant* t = tenants_.authenticate(hello->token);
    if (t == nullptr) {
      count(&FrontDoorCounters::auth_failures);
      if (metrics().enabled()) metrics().add("net.auth_failed");
      send_err(conn, frame.request_id, ErrorCode::AuthFailed,
               "unknown tenant token");
      conn.closing = true;
      return;
    }
    conn.tenant = t;
    conn.wire_version = negotiate_version(hello->advertised_version);
    if (hello->has_timestamp) {
      // Arrival minus the client's send stamp = clock skew plus one-way
      // network delay; the clamp threshold is orders of magnitude above
      // sane RTTs, so the delay term is noise.
      conn.skew_ms = unix_now_ms() - hello->client_unix_ms;
      conn.skew_known = true;
    }
    std::string out;
    encode_hello_ok(out, t->cfg.name, conn.wire_version, unix_now_ms());
    send_frame(conn, std::move(out));
  }

  static std::uint64_t tenant_id(const Tenant* t) {
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(t));
  }

  [[nodiscard]] double mono_ms() const { return now_s() * 1000.0; }

  /// Replays a finished response to a parked dedup waiter (charged no
  /// quota — it never went through admission).
  void answer_waiter(const typename DedupCache<
                         service::SolveResponse<T>>::Waiter& w,
                     const service::SolveResponse<T>& resp) {
    auto it = conns_.find(w.conn_id);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    if (conn.inflight > 0) --conn.inflight;
    std::string out;
    encode_response(w.request_id, resp, out, conn.wire_version);
    send_frame(conn, std::move(out));
  }

  /// Drops a keyed entry without caching and answers its waiters with a
  /// typed error (used when the original dies before producing a
  /// cacheable result: lane drop, expired deadline, shed, quota).
  void abort_dedup(Tenant* tenant, std::uint64_t idem_key, ErrorCode code,
                   std::string_view msg) {
    if (idem_key == 0) return;
    const auto waiters = dedup_.abandon(tenant_id(tenant), idem_key);
    for (const auto& w : waiters) {
      auto it = conns_.find(w.conn_id);
      if (it == conns_.end()) continue;
      if (it->second.inflight > 0) --it->second.inflight;
      send_err(it->second, w.request_id, code, msg);
    }
    sync_dedup_counters();
  }

  void sync_dedup_counters() {
    const DedupStats& s = dedup_.stats();
    std::lock_guard lk(counters_mu_);
    counters_.dedup_hits = s.hits;
    counters_.dedup_joins = s.joins;
    counters_.dedup_evictions = s.evictions;
    counters_.duplicate_executions = s.duplicate_executions;
    counters_.key_reuse = s.mismatches;
  }

  void handle_solve(Conn& conn, const FrameView& frame) {
    Tenant* tenant = conn.tenant != nullptr ? conn.tenant : anon_;
    if (tenant == nullptr) {
      reject(conn, frame.request_id, ErrorCode::AuthRequired,
             "hello first");
      return;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      reject(conn, frame.request_id, ErrorCode::Draining,
             "server is draining");
      return;
    }
    const std::uint8_t width = solve_dtype(frame.payload);
    if (width != 0 && width != sizeof(T)) {
      reject(conn, frame.request_id, ErrorCode::Dtype,
             sizeof(T) == 4 ? "server dtype is f32" : "server dtype is f64");
      return;
    }
    auto solve = parse_solve<T>(frame.payload, frame.version);
    if (!solve) {
      bad_frame(conn, "unparsable solve payload");
      return;
    }
    if (solve->n > cfg_.max_systems) {
      reject(conn, frame.request_id, ErrorCode::TooLarge,
             "n exceeds server limit");
      return;
    }

    // Clock-skew guard: a connection whose Hello stamp put its clock
    // more than max_clock_skew_ms from ours cannot be trusted to mint
    // absolute deadlines — an hour-slow client would have every request
    // "expire" on arrival, an hour-fast one would never expire. Its
    // absolute deadline is discarded so the tenant's default relative
    // budget applies below (relative budgets don't care about skew).
    if (cfg_.max_clock_skew_ms > 0.0 && conn.skew_known &&
        solve->deadline_unix_ms > 0.0 &&
        std::abs(conn.skew_ms) > cfg_.max_clock_skew_ms) {
      solve->deadline_unix_ms = 0.0;
      count(&FrontDoorCounters::deadline_skew_clamped);
      if (metrics().enabled()) {
        metrics().add(telemetry::labeled(
            "net.deadline_skew_clamped", {{"tenant", tenant->cfg.name}}));
      }
    }

    // Fold every deadline form into one absolute unix-epoch instant:
    // v2 frames carry it directly, v1 budgets are anchored at arrival,
    // and a frame with no deadline inherits the tenant's default.
    double deadline_unix = solve->deadline_unix_ms;
    if (deadline_unix <= 0.0 && solve->deadline_ms > 0.0) {
      deadline_unix = unix_now_ms() + solve->deadline_ms;
    }
    if (deadline_unix <= 0.0 && tenant->cfg.default_deadline_ms > 0.0) {
      deadline_unix = unix_now_ms() + tenant->cfg.default_deadline_ms;
    }

    // Idempotent resends never reach admission: a completed original
    // replays from the cache, an in-flight one adopts this request as
    // a waiter. Both paths touch no quota and no device.
    const std::uint64_t tid = tenant_id(tenant);
    if (solve->idem_key != 0) {
      using State =
          typename DedupCache<service::SolveResponse<T>>::State;
      // The payload fingerprint rides the dedup entry (and the ops
      // snapshot): a resend must be byte-identical to its original, so
      // a reused key with a different payload is a client bug answered
      // with KeyReuse, never a silent wrong replay.
      const std::uint64_t payload_hash = fnv1a64(frame.payload);
      const State state =
          dedup_.begin(tid, solve->idem_key, payload_hash, mono_ms());
      if (state == State::Mismatch) {
        sync_dedup_counters();
        reject(conn, frame.request_id, ErrorCode::KeyReuse,
               "idempotency key reused for a different payload");
        return;
      }
      if (state == State::Completed) {
        const auto* cached = dedup_.lookup(tid, solve->idem_key);
        sync_dedup_counters();
        if (metrics().enabled()) {
          metrics().add(telemetry::labeled(
              "net.dedup_hits", {{"tenant", tenant->cfg.name}}));
        }
        std::string out;
        encode_response(frame.request_id, *cached, out,
                        conn.wire_version);
        send_frame(conn, std::move(out));
        return;
      }
      if (state == State::InFlight) {
        dedup_.add_waiter(tid, solve->idem_key,
                          {conn.id, frame.request_id});
        sync_dedup_counters();
        if (metrics().enabled()) {
          metrics().add(telemetry::labeled(
              "net.dedup_joins", {{"tenant", tenant->cfg.name}}));
        }
        ++conn.inflight;  // a response will be replayed on completion
        return;
      }
      sync_dedup_counters();
    }

    // Expired on arrival: typed reject before any quota charge or
    // device dispatch. The fresh dedup entry (if any) is abandoned so
    // a later retry with more budget may legitimately execute.
    if (deadline_unix > 0.0 && unix_now_ms() >= deadline_unix) {
      abort_dedup(tenant, solve->idem_key, ErrorCode::DeadlineExpired,
                  "deadline expired before admission");
      count(&FrontDoorCounters::deadline_expired_arrival);
      if (metrics().enabled()) {
        metrics().add(telemetry::labeled(
            "net.deadline_expired",
            {{"tenant", tenant->cfg.name}, {"where", "arrival"}}));
      }
      reject(conn, frame.request_id, ErrorCode::DeadlineExpired,
             "deadline expired before admission");
      return;
    }

    const std::size_t bytes = solve_bytes<T>(solve->n);
    const Admission verdict = tenants_.admit(*tenant, 1, bytes, now_s());
    if (verdict != Admission::Ok) {
      abort_dedup(tenant, solve->idem_key, ErrorCode::Rejected,
                  "original request rejected at admission");
      const ErrorCode code =
          verdict == Admission::QuotaInflight ? ErrorCode::QuotaInflight
          : verdict == Admission::QuotaBytes  ? ErrorCode::QuotaBytes
                                              : ErrorCode::QuotaRate;
      reject(conn, frame.request_id, code, to_string(verdict));
      return;
    }
    count(&FrontDoorCounters::requests_admitted);
    inflight_bytes_ += bytes;
    if (metrics().enabled()) {
      metrics().add(telemetry::labeled("net.requests",
                                       {{"tenant", tenant->cfg.name}}));
      metrics().set("net.inflight_bytes_now",
                    static_cast<double>(inflight_bytes_));
    }
    Queued q;
    q.conn_id = conn.id;
    q.request_id = frame.request_id;
    q.tenant = tenant;
    q.bytes = bytes;
    q.deadline_unix_ms = deadline_unix;
    q.idem_key = solve->idem_key;
    q.enqueue_s = now_s();
    q.frame = std::move(*solve);
    const double cost = static_cast<double>(q.frame.n);
    ++conn.inflight;
    lanes_.enqueue(tenant, std::move(q), cost);
  }

  void bad_frame(Conn& conn, std::string_view why) {
    count(&FrontDoorCounters::bad_frames);
    if (metrics().enabled()) metrics().add("net.bad_frames");
    send_err(conn, 0, ErrorCode::BadFrame, why);
    conn.closing = true;
  }

  void handle_frame(Conn& conn, const FrameView& frame) {
    count(&FrontDoorCounters::frames_rx);
    if (metrics().enabled()) metrics().add("net.frames_rx");
    switch (frame.type) {
      case FrameType::Hello:
        handle_hello(conn, frame);
        return;
      case FrameType::Solve:
        handle_solve(conn, frame);
        return;
      case FrameType::Goodbye:
        conn.closing = true;
        return;
      case FrameType::HelloOk:
      case FrameType::SolveOk:
      case FrameType::SolveErr:
        bad_frame(conn, "server-only frame from client");
        return;
    }
    bad_frame(conn, "unknown frame type");
  }

  /// Reads everything available from a connection; returns false when
  /// the connection should be closed (EOF, error, injected drop, or a
  /// corrupt stream).
  bool read_conn(Conn& conn) {
    auto& inj = faults::FaultInjector::global();
    char tmp[16384];
    for (;;) {
      const long n = read_some(conn.fd.get(), tmp, sizeof(tmp));
      if (n == -2) break;    // drained
      if (n <= 0) return false;
      conn.last_rx = Clock::now();
      count(&FrontDoorCounters::bytes_rx,
            static_cast<std::uint64_t>(n));
      if (metrics().enabled()) {
        metrics().add("net.bytes_rx", static_cast<double>(n));
      }
      if (inj.fire(faults::Site::NetDrop)) {
        count(&FrontDoorCounters::injected_drops);
        if (metrics().enabled()) metrics().add("net.faults.drop");
        return false;
      }
      std::string chunk(tmp, static_cast<std::size_t>(n));
      if (inj.fire(faults::Site::NetCorrupt)) {
        count(&FrontDoorCounters::injected_corruptions);
        if (metrics().enabled()) metrics().add("net.faults.corrupt");
        faults::corrupt_bytes(chunk, inj.config().seed ^ conn.id, 3);
      }
      conn.rbuf.append(chunk);
      if (static_cast<std::size_t>(n) < sizeof(tmp)) break;
    }
    while (!conn.closing) {
      const DecodeResult r =
          decode_frame(conn.rbuf, cfg_.max_payload_bytes);
      if (r.status == DecodeStatus::NeedMore) break;
      if (r.status == DecodeStatus::Corrupt) {
        bad_frame(conn, r.error);
        break;
      }
      handle_frame(conn, r.frame);
      conn.rbuf.erase(0, r.consumed);
    }
    return true;
  }

  /// Flushes a connection's write buffer; false = close it.
  bool write_conn(Conn& conn) {
    while (!conn.wbuf.empty()) {
      const long n =
          write_some(conn.fd.get(), conn.wbuf.data(), conn.wbuf.size());
      if (n == -2) break;  // kernel buffer full; POLLOUT will retry
      if (n < 0) return false;
      conn.wbuf.erase(0, static_cast<std::size_t>(n));
    }
    maybe_resume(conn);
    if (conn.closing && conn.wbuf.empty()) return false;
    return true;
  }

  /// Answers a dequeued-but-not-submitted request with a typed error,
  /// returning its quota charge and aborting its dedup tracking.
  void reject_queued(Queued& q, ErrorCode code, std::string_view msg) {
    tenants_.release(*q.tenant, 1, q.bytes);
    inflight_bytes_ -= q.bytes <= inflight_bytes_ ? q.bytes
                                                  : inflight_bytes_;
    abort_dedup(q.tenant, q.idem_key, code, msg);
    auto it = conns_.find(q.conn_id);
    if (it == conns_.end()) return;
    if (it->second.inflight > 0) --it->second.inflight;
    count(&FrontDoorCounters::requests_rejected);
    if (metrics().enabled()) {
      metrics().add(telemetry::labeled(
          "net.rejects",
          {{"tenant", q.tenant->cfg.name}, {"reason", to_string(code)}}));
    }
    send_err(it->second, q.request_id, code, msg);
  }

  [[nodiscard]] double aimd_limit_of(Tenant* t) const {
    return t->aimd_limit > 0.0
               ? t->aimd_limit
               : static_cast<double>(cfg_.max_service_inflight);
  }

  /// Multiplicative decrease on a congestion signal (shed / timeout /
  /// CoDel drop).
  void aimd_congested(Tenant* t) {
    if (!cfg_.aimd_enabled) return;
    t->aimd_limit =
        std::max(cfg_.aimd_min, aimd_limit_of(t) * cfg_.aimd_backoff);
    if (metrics().enabled()) {
      metrics().set(telemetry::labeled("net.aimd_limit",
                                       {{"tenant", t->cfg.name}}),
                    t->aimd_limit);
    }
  }

  /// Additive increase (~ +1 per window's worth of completions).
  void aimd_completed(Tenant* t) {
    if (!cfg_.aimd_enabled) return;
    const double limit = aimd_limit_of(t);
    t->aimd_limit = std::min(
        static_cast<double>(cfg_.max_service_inflight), limit + 1.0 / limit);
  }

  /// CoDel: returns true when this dequeue should shed instead of
  /// serve. Head sojourn under target resets the episode; staying
  /// above it for a full interval starts dropping, then drops pace at
  /// interval / sqrt(count) while the queue stays bad.
  bool codel_should_drop(Tenant* t, double sojourn_ms, double now) {
    if (cfg_.codel_target_ms <= 0.0) return false;
    if (sojourn_ms < cfg_.codel_target_ms) {
      t->codel_first_above_s = 0.0;
      t->codel_dropping = false;
      return false;
    }
    const double interval_s = cfg_.codel_interval_ms / 1000.0;
    if (t->codel_first_above_s == 0.0) {
      t->codel_first_above_s = now;
      return false;
    }
    if (!t->codel_dropping) {
      if (now - t->codel_first_above_s < interval_s) return false;
      t->codel_dropping = true;
      t->codel_drop_count = 1;
      t->codel_drop_next_s = now + interval_s;
      return true;
    }
    if (now >= t->codel_drop_next_s) {
      ++t->codel_drop_count;
      t->codel_drop_next_s =
          now + interval_s /
                    std::sqrt(static_cast<double>(t->codel_drop_count));
      return true;
    }
    return false;
  }

  /// Moves lane heads into the service while the in-flight window has
  /// room. Lanes whose tenant is at its AIMD window pass their turn;
  /// dequeued heads whose deadline lapsed in the lane or whose queue
  /// age trips CoDel are answered with a typed error right here —
  /// before any device dispatch. The completion callback runs on a
  /// worker thread (or inline for admission rejects): it parks the
  /// response and wakes the poll loop — nothing else.
  void pump() {
    while (service_inflight_.load(std::memory_order_relaxed) <
           cfg_.max_service_inflight) {
      Queued q;
      const bool got =
          cfg_.aimd_enabled
              ? lanes_.dequeue_if(q,
                                  [this](Tenant* t) {
                                    return t->inflight_service <
                                           aimd_limit_of(t);
                                  })
              : lanes_.dequeue(q);
      if (!got) {
        if (cfg_.aimd_enabled && !lanes_.empty()) {
          count(&FrontDoorCounters::aimd_throttles);
          if (metrics().enabled()) metrics().add("net.aimd_throttles");
        }
        break;
      }
      const double now = now_s();
      if (q.deadline_unix_ms > 0.0 &&
          unix_now_ms() >= q.deadline_unix_ms) {
        count(&FrontDoorCounters::deadline_expired_queued);
        if (metrics().enabled()) {
          metrics().add(telemetry::labeled(
              "net.deadline_expired",
              {{"tenant", q.tenant->cfg.name}, {"where", "queued"}}));
        }
        reject_queued(q, ErrorCode::DeadlineExpired,
                      "deadline expired in queue");
        continue;
      }
      const double sojourn_ms = (now - q.enqueue_s) * 1000.0;
      if (codel_should_drop(q.tenant, sojourn_ms, now)) {
        count(&FrontDoorCounters::shed_codel);
        if (metrics().enabled()) {
          metrics().add(telemetry::labeled(
              "net.shed_codel", {{"tenant", q.tenant->cfg.name}}));
        }
        aimd_congested(q.tenant);
        reject_queued(q, ErrorCode::Shed, "shed: queue age over target");
        continue;
      }
      service_inflight_.fetch_add(1, std::memory_order_relaxed);
      q.tenant->inflight_service += 1.0;
      if (q.idem_key != 0) {
        // The exactly-once proof point: a keyed request enters the
        // device path at most once while its entry is tracked.
        const std::uint64_t prior =
            dedup_.mark_executed(tenant_id(q.tenant), q.idem_key);
        if (prior > 0) {
          sync_dedup_counters();
          if (metrics().enabled()) {
            metrics().add("net.duplicate_executions");
          }
        }
      }
      service::SolveRequest<T> req;
      req.a = std::move(q.frame.a);
      req.b = std::move(q.frame.b);
      req.c = std::move(q.frame.c);
      req.d = std::move(q.frame.d);
      // Remaining budget, re-derived from the absolute deadline at
      // submit time: lane wait has already been spent.
      if (q.deadline_unix_ms > 0.0) {
        req.deadline_ms = q.deadline_unix_ms - unix_now_ms();
        if (req.deadline_ms < 0.01) req.deadline_ms = 0.01;
      }
      if (q.tenant != nullptr) req.tenant = q.tenant->cfg.name;
      const std::uint64_t conn_id = q.conn_id;
      const std::uint64_t request_id = q.request_id;
      Tenant* tenant = q.tenant;
      const std::size_t bytes = q.bytes;
      const std::uint64_t idem_key = q.idem_key;
      svc_.submit(std::move(req),
                  [this, conn_id, request_id, tenant, bytes,
                   idem_key](service::SolveResponse<T> resp) {
                    Done d;
                    d.conn_id = conn_id;
                    d.request_id = request_id;
                    d.tenant = tenant;
                    d.systems = 1;
                    d.bytes = bytes;
                    d.idem_key = idem_key;
                    d.resp = std::move(resp);
                    {
                      std::lock_guard lk(done_mu_);
                      done_.push_back(std::move(d));
                    }
                    wake();
                  });
    }
  }

  void encode_response(std::uint64_t request_id,
                       const service::SolveResponse<T>& resp,
                       std::string& out,
                       std::uint16_t wire_version = kVersion) {
    using service::SolveStatus;
    switch (resp.status) {
      case SolveStatus::Ok:
        encode_solve_ok(out, request_id, resp.x, resp.trace_id,
                        resp.solve_ms, resp.wait_ms, resp.fallback_used,
                        wire_version);
        return;
      case SolveStatus::Rejected:
        // A service-side reject during our drain IS the drain from the
        // client's point of view.
        encode_solve_err(out, request_id,
                         draining_.load(std::memory_order_relaxed)
                             ? ErrorCode::Draining
                             : ErrorCode::Rejected,
                         resp.error.empty() ? "service rejected"
                                            : resp.error,
                         wire_version);
        return;
      case SolveStatus::Shed:
        encode_solve_err(out, request_id, ErrorCode::Shed,
                         "shed by backpressure", wire_version);
        return;
      case SolveStatus::TimedOut:
        encode_solve_err(out, request_id, ErrorCode::TimedOut,
                         "deadline lapsed", wire_version);
        return;
      case SolveStatus::Failed:
        encode_solve_err(out, request_id, ErrorCode::Failed, resp.error,
                         wire_version);
        return;
      case SolveStatus::Singular:
        encode_solve_err(out, request_id, ErrorCode::Singular,
                         resp.error, wire_version);
        return;
      case SolveStatus::NonFinite:
        encode_solve_err(out, request_id, ErrorCode::NonFinite,
                         resp.error, wire_version);
        return;
    }
    encode_solve_err(out, request_id, ErrorCode::Internal,
                     "unknown status", wire_version);
  }

  /// Delivers parked completions into write buffers, settles dedup
  /// entries and feeds the AIMD windows.
  void drain_done() {
    using service::SolveStatus;
    std::vector<Done> batch;
    {
      std::lock_guard lk(done_mu_);
      batch.swap(done_);
    }
    for (auto& d : batch) {
      service_inflight_.fetch_sub(d.systems, std::memory_order_relaxed);
      if (d.tenant != nullptr) {
        tenants_.release(*d.tenant, d.systems, d.bytes);
        if (d.tenant->inflight_service >= 1.0) {
          d.tenant->inflight_service -= 1.0;
        }
        // Congestion signals shrink the tenant's window; anything that
        // actually ran to a verdict grows it back.
        if (d.resp.status == SolveStatus::Shed ||
            d.resp.status == SolveStatus::TimedOut ||
            d.resp.status == SolveStatus::Rejected) {
          aimd_congested(d.tenant);
        } else {
          aimd_completed(d.tenant);
        }
      }
      inflight_bytes_ -= d.bytes <= inflight_bytes_ ? d.bytes
                                                    : inflight_bytes_;
      // (saturating: a mismatch here would mean double delivery)
      count(&FrontDoorCounters::responses_sent);
      if (metrics().enabled()) {
        metrics().add("net.responses");
        metrics().set("net.inflight_bytes_now",
                      static_cast<double>(inflight_bytes_));
      }
      std::vector<typename DedupCache<service::SolveResponse<T>>::Waiter>
          waiters;
      if (d.idem_key != 0) {
        waiters = dedup_.take_waiters(tenant_id(d.tenant), d.idem_key);
      }
      auto it = conns_.find(d.conn_id);
      if (it != conns_.end()) {  // original connection still here
        Conn& conn = it->second;
        if (conn.inflight > 0) --conn.inflight;
        std::string out;
        encode_response(d.request_id, d.resp, out, conn.wire_version);
        send_frame(conn, std::move(out));
      }
      for (const auto& w : waiters) answer_waiter(w, d.resp);
      if (d.idem_key != 0) {
        // Deterministic verdicts are cached so a late resend replays
        // them; retryable outcomes un-track the key — the client's
        // retry is a fresh attempt and may legitimately re-execute.
        const bool cacheable = d.resp.status == SolveStatus::Ok ||
                               d.resp.status == SolveStatus::Failed ||
                               d.resp.status == SolveStatus::Singular ||
                               d.resp.status == SolveStatus::NonFinite;
        const std::uint64_t tid = tenant_id(d.tenant);
        if (cacheable) {
          const std::size_t retained =
              d.resp.x.size() * sizeof(T) + 128;
          dedup_.complete(tid, d.idem_key, std::move(d.resp), retained,
                          mono_ms());
        } else {
          dedup_.abandon(tid, d.idem_key);
        }
        sync_dedup_counters();
        if (metrics().enabled()) {
          metrics().set("net.dedup_bytes_now",
                        static_cast<double>(dedup_.stats().bytes));
        }
      }
    }
  }

  void sweep_idle(TimePoint now) {
    if (cfg_.idle_timeout_ms <= 0.0) return;
    const auto limit = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(cfg_.idle_timeout_ms));
    std::vector<std::uint64_t> victims;
    for (auto& [id, conn] : conns_) {
      if (conn.inflight == 0 && conn.wbuf.empty() &&
          now - conn.last_rx > limit) {
        victims.push_back(id);
      }
    }
    for (const auto id : victims) {
      count(&FrontDoorCounters::idle_closes);
      if (metrics().enabled()) metrics().add("net.idle_closed");
      close_conn(id);
    }
  }

  void loop() {
    TimePoint drain_started{};
    for (;;) {
      const bool draining = draining_.load(std::memory_order_relaxed);
      if (draining && drain_started == TimePoint{}) {
        drain_started = Clock::now();
        tcp_listener_.reset();
        unix_listener_.reset();
      }

      run_tasks();
      drain_done();
      pump();

      if (draining) {
        const bool callbacks_pending =
            service_inflight_.load(std::memory_order_relaxed) > 0 ||
            !lanes_.empty();
        bool flushing = false;
        for (auto& [id, conn] : conns_) {
          if (!conn.wbuf.empty()) flushing = true;
        }
        const bool flush_expired =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      drain_started)
                .count() > cfg_.drain_flush_timeout_ms;
        if (!callbacks_pending && (!flushing || flush_expired)) {
          // Every response is out (or its consumer has forfeited its
          // flush window): say Goodbye and stop.
          for (auto& [id, conn] : conns_) {
            std::string out;
            encode_goodbye(out);
            conn.wbuf.append(out);
            (void)write_conn(conn);
          }
          const std::size_t remaining = conns_.size();
          conns_.clear();
          count(&FrontDoorCounters::closed, remaining);
          return;
        }
      }

      std::vector<pollfd> fds;
      std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = infra)
      const auto add_fd = [&](int fd, short events, std::uint64_t id) {
        fds.push_back(pollfd{fd, events, 0});
        fd_conn.push_back(id);
      };
      add_fd(wake_rd_.get(), POLLIN, 0);
      if (tcp_listener_.valid()) add_fd(tcp_listener_.get(), POLLIN, 0);
      if (unix_listener_.valid())
        add_fd(unix_listener_.get(), POLLIN, 0);
      for (auto& [id, conn] : conns_) {
        short events = 0;
        if (!conn.paused && !conn.closing) events |= POLLIN;
        if (!conn.wbuf.empty()) events |= POLLOUT;
        if (events == 0) events = POLLERR;
        add_fd(conn.fd.get(), events, id);
      }

      const int timeout =
          static_cast<int>(cfg_.poll_interval_ms < 1.0
                               ? 1
                               : cfg_.poll_interval_ms);
      (void)::poll(fds.data(), fds.size(), timeout);

      // Drain the wake pipe.
      if ((fds[0].revents & POLLIN) != 0) {
        char sink[256];
        while (::read(wake_rd_.get(), sink, sizeof(sink)) > 0) {
        }
      }
      accept_from(tcp_listener_);
      accept_from(unix_listener_);

      std::vector<std::uint64_t> dead;
      for (std::size_t i = 0; i < fds.size(); ++i) {
        const std::uint64_t id = fd_conn[i];
        if (id == 0) continue;
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        Conn& conn = it->second;
        bool alive = true;
        if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (fds[i].revents & POLLIN) == 0) {
          // Half-close with pending output still flushes below; a hard
          // error drops the connection.
          if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) alive = false;
        }
        if (alive && (fds[i].revents & POLLIN) != 0) {
          alive = read_conn(conn);
        }
        if (alive && ((fds[i].revents & POLLOUT) != 0 || conn.closing)) {
          alive = write_conn(conn);
        }
        if (!alive) dead.push_back(id);
      }
      for (const auto id : dead) close_conn(id);
      sweep_idle(Clock::now());
    }
  }

  service::SolveService<T>& svc_;
  FrontDoorConfig cfg_;
  TenantRegistry tenants_;

  Fd tcp_listener_, unix_listener_, wake_rd_, wake_wr_;
  std::uint16_t tcp_port_ = 0;
  bool running_ = false;
  std::thread thread_;
  std::atomic<bool> draining_{false};
  const TimePoint epoch_ = Clock::now();

  // --- poll-thread-owned state ---
  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_id_ = 1;
  DrrScheduler<Queued> lanes_;
  DedupCache<service::SolveResponse<T>> dedup_;
  Tenant* anon_ = nullptr;  ///< implicit tenant when require_auth is off
  std::size_t inflight_bytes_ = 0;

  // --- shared with worker callbacks ---
  std::atomic<std::size_t> service_inflight_{0};
  std::mutex done_mu_;
  std::vector<Done> done_;

  // --- ops surface (admin / snapshot threads -> poll thread) ---
  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
  bool unlink_on_shutdown_ = true;  ///< false after a listener handoff

  mutable std::mutex counters_mu_;
  FrontDoorCounters counters_;
};

}  // namespace tda::net
