#pragma once
// Seeded network-chaos proxy (docs/ROBUSTNESS.md).
//
// Sits between a net::Client and a FrontDoor as a byte relay and
// misbehaves on purpose: latency spikes, partial writes (a frame
// delivered in two installments with a pause in between), mid-frame
// resets (a prefix of a chunk is forwarded, then both sides are torn
// down — the receiver is left holding half a frame), and outright
// connection drops. Every decision comes from a splitmix64 stream
// seeded per (proxy seed, connection, direction), so a failing run
// replays exactly.
//
// The proxy is deliberately dumb — it never parses frames. Chaos that
// happens to land on a frame boundary is indistinguishable from a
// benign close; chaos that lands inside one exercises the decoder's
// NeedMore/Corrupt paths and the client's reconnect + idempotent
// resend machinery. The exactly-once bench (`bench_service --chaos`)
// drives correctness assertions through it.
//
// Threading: one accept thread plus two relay threads per connection
// (blocking I/O). stop() shuts every socket down and joins everything,
// so the proxy is safe to run under TSan.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace tda::net {

struct ChaosConfig {
  std::uint64_t seed = 1;     ///< replayable decision stream
  double drop_rate = 0.0;     ///< P(chunk): close both sides, chunk lost
  double reset_rate = 0.0;    ///< P(chunk): forward a partial prefix,
                              ///< then close — a mid-frame tear
  double latency_rate = 0.0;  ///< P(chunk): stall before forwarding
  double latency_ms = 5.0;    ///< stall duration
  double partial_rate = 0.0;  ///< P(chunk): deliver in two installments
  double partial_delay_ms = 0.5;  ///< pause between the installments
  std::size_t max_chunk = 16 << 10;  ///< relay read size
};

struct ChaosCounters {
  std::uint64_t connections = 0;
  std::uint64_t drops = 0;
  std::uint64_t resets = 0;
  std::uint64_t latency_injections = 0;
  std::uint64_t partial_writes = 0;
  std::uint64_t bytes_up = 0;    ///< client -> server
  std::uint64_t bytes_down = 0;  ///< server -> client
};

class ChaosProxy {
 public:
  ChaosProxy(std::string listen_spec, std::string upstream_spec,
             ChaosConfig cfg)
      : listen_spec_(std::move(listen_spec)),
        upstream_spec_(std::move(upstream_spec)),
        cfg_(cfg) {}

  ~ChaosProxy() { stop(); }
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool start(std::string* err) {
    auto lep = parse_endpoint(listen_spec_);
    auto uep = parse_endpoint(upstream_spec_);
    if (!lep || !uep) {
      if (err) *err = "chaos proxy: bad endpoint spec";
      return false;
    }
    upstream_ = *uep;
    listener_ = listen_endpoint(*lep, 64, err);
    if (!listener_.valid()) return false;
    tcp_port_ = lep->is_unix ? 0 : bound_port(listener_.get());
    stop_.store(false, std::memory_order_relaxed);
    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
  }

  void stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (listener_.valid()) {
      ::shutdown(listener_.get(), SHUT_RDWR);
      listener_.reset();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& link : links_) link->tear_down();
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads.swap(threads_);
    }
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
    std::lock_guard<std::mutex> lock(mu_);
    links_.clear();
  }

  /// Chaos on/off at runtime (off = transparent relay). The bench
  /// measures its clean baseline and its chaos phase through the same
  /// proxy so the relay overhead cancels out of the comparison.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  [[nodiscard]] ChaosCounters counters() const {
    ChaosCounters c;
    c.connections = connections_.load(std::memory_order_relaxed);
    c.drops = drops_.load(std::memory_order_relaxed);
    c.resets = resets_.load(std::memory_order_relaxed);
    c.latency_injections = latency_.load(std::memory_order_relaxed);
    c.partial_writes = partials_.load(std::memory_order_relaxed);
    c.bytes_up = bytes_up_.load(std::memory_order_relaxed);
    c.bytes_down = bytes_down_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  /// One proxied connection: the accepted (downstream) fd and its
  /// upstream pair. tear_down() shuts both so relay threads unblock.
  struct Link {
    Fd down;
    Fd up;
    std::atomic<bool> dead{false};

    void tear_down() {
      if (!dead.exchange(true, std::memory_order_relaxed)) {
        if (down.valid()) ::shutdown(down.get(), SHUT_RDWR);
        if (up.valid()) ::shutdown(up.get(), SHUT_RDWR);
      }
    }
  };

  static std::uint64_t splitmix64(std::uint64_t& s) {
    s += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  static double uniform01(std::uint64_t& s) {
    return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  }

  void accept_loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      const int fd = ::accept(listener_.get(), nullptr, nullptr);
      if (fd < 0) {
        if (stop_.load(std::memory_order_relaxed)) return;
        continue;
      }
      std::string err;
      Fd up = connect_endpoint(upstream_, &err);
      if (!up.valid()) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
        continue;
      }
      auto link = std::make_shared<Link>();
      link->down = Fd(fd);
      link->up = std::move(up);
      const std::uint64_t conn_id =
          connections_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      links_.push_back(link);
      threads_.emplace_back([this, link, conn_id] {
        relay(*link, link->down.get(), link->up.get(),
              cfg_.seed ^ (conn_id * 2 + 1), &bytes_up_);
        link->tear_down();
      });
      threads_.emplace_back([this, link, conn_id] {
        relay(*link, link->up.get(), link->down.get(),
              cfg_.seed ^ (conn_id * 2 + 2), &bytes_down_);
        link->tear_down();
      });
    }
  }

  void relay(Link& link, int from, int to, std::uint64_t rng,
             std::atomic<std::uint64_t>* bytes) {
    std::vector<char> buf(cfg_.max_chunk);
    while (!stop_.load(std::memory_order_relaxed) &&
           !link.dead.load(std::memory_order_relaxed)) {
      const long got = read_some(from, buf.data(), buf.size());
      if (got <= 0) return;  // EOF or error: peer (or tear_down) closed
      const auto len = static_cast<std::size_t>(got);
      if (enabled_.load(std::memory_order_relaxed)) {
        if (uniform01(rng) < cfg_.drop_rate) {
          drops_.fetch_add(1, std::memory_order_relaxed);
          link.tear_down();
          return;
        }
        if (uniform01(rng) < cfg_.reset_rate) {
          // Mid-frame tear: forward part of the chunk, then kill the
          // connection. len == 1 still forwards 1 byte then dies, which
          // is the worst case (a lone header byte).
          resets_.fetch_add(1, std::memory_order_relaxed);
          const std::size_t cut = 1 + splitmix64(rng) % len;
          write_all(to, buf.data(), cut);
          link.tear_down();
          return;
        }
        if (uniform01(rng) < cfg_.latency_rate) {
          latency_.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(cfg_.latency_ms));
        }
        if (len > 1 && uniform01(rng) < cfg_.partial_rate) {
          partials_.fetch_add(1, std::memory_order_relaxed);
          const std::size_t cut = 1 + splitmix64(rng) % (len - 1);
          if (!write_all(to, buf.data(), cut)) return;
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              cfg_.partial_delay_ms));
          if (!write_all(to, buf.data() + cut, len - cut)) return;
          bytes->fetch_add(len, std::memory_order_relaxed);
          continue;
        }
      }
      if (!write_all(to, buf.data(), len)) return;
      bytes->fetch_add(len, std::memory_order_relaxed);
    }
  }

  std::string listen_spec_;
  std::string upstream_spec_;
  ChaosConfig cfg_;
  Endpoint upstream_;
  Fd listener_;
  std::uint16_t tcp_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> enabled_{true};

  std::mutex mu_;
  std::vector<std::shared_ptr<Link>> links_;
  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> latency_{0};
  std::atomic<std::uint64_t> partials_{0};
  std::atomic<std::uint64_t> bytes_up_{0};
  std::atomic<std::uint64_t> bytes_down_{0};
};

}  // namespace tda::net
