#pragma once
// Multi-tenant admission + fair queueing for the front door
// (docs/NET.md).
//
// A TenantRegistry owns the configured tenants. Each carries a bearer
// token (auth), quotas enforced at admission — in-flight systems,
// in-flight decoded payload bytes, and a token-bucket requests/sec
// limit — and a scheduling weight. Admission is all-or-nothing with a
// typed verdict so the front door can answer a rejected Solve with the
// exact quota it tripped.
//
// Fair queueing is deficit round-robin over per-tenant lanes: each
// round an active lane earns quantum * weight deficit (in equations),
// and dequeues requests while its head's cost (n equations) fits. DRR
// gives weighted max-min fairness with O(1) work per dequeue, and
// because it sits *in front of* SolveService's shape-bucketed
// coalescer, requests of the same n from different tenants still merge
// into one ragged solve — isolation happens at admission order, not by
// partitioning batches.
//
// Thread-safety: the registry locks internally. Admission runs on the
// front door's poll thread while releases arrive from service worker
// callbacks, so every counter mutation takes the mutex. The DRR lanes
// themselves are owned (and only touched) by the poll thread.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tda::net {

struct TenantConfig {
  std::string name;
  std::string token;
  /// DRR weight (relative share of service bandwidth); min 0.01.
  double weight = 1.0;
  /// Max systems admitted but not yet answered. 0 = unlimited.
  std::size_t max_inflight = 0;
  /// Max decoded payload bytes admitted but not yet answered.
  /// 0 = unlimited.
  std::size_t max_inflight_bytes = 0;
  /// Sustained request rate (token bucket). 0 = unlimited.
  double requests_per_sec = 0.0;
  /// Bucket depth; <= 0 defaults to max(1, requests_per_sec / 4).
  double burst = 0.0;
  /// Relative deadline applied when a Solve frame carries none
  /// (v1 deadline_ms == 0 or v2 deadline_unix_ms == 0). 0 = no default;
  /// the service's own default_deadline_ms then applies.
  double default_deadline_ms = 0.0;
};

/// Typed admission verdict — maps 1:1 onto SolveErr codes.
enum class Admission {
  Ok,
  QuotaInflight,
  QuotaBytes,
  QuotaRate,
};

const char* to_string(Admission a);

/// Continuous-refill token bucket. Time is an explicit seconds value so
/// tests drive it deterministically.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Takes one token at time `now_s`; false when the bucket is dry.
  /// A zero-rate bucket always admits (the quota is "unlimited").
  bool try_take(double now_s) {
    if (rate_ <= 0.0) return true;
    if (now_s > last_s_) {
      tokens_ += (now_s - last_s_) * rate_;
      if (tokens_ > burst_) tokens_ = burst_;
      last_s_ = now_s;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_s_ = 0.0;
};

/// One configured tenant plus its live accounting.
struct Tenant {
  TenantConfig cfg;
  TokenBucket bucket;

  // --- live state (guarded by the registry mutex) ---
  std::size_t inflight_systems = 0;
  std::size_t inflight_bytes = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// Removal tombstone: a disabled tenant fails authenticate() and
  /// admit() but its Tenant* stays valid — lane entries and connections
  /// hold the pointer, so removal must never free it.
  bool disabled = false;

  // --- DRR lane state (poll-thread-owned, not under the mutex) ---
  double deficit = 0.0;

  // --- overload-protection state (poll-thread-owned) ----------------
  // AIMD concurrency limiter: how many of this tenant's systems may be
  // inside the service at once. Successful completions grow the window
  // additively (~ +1 per window's worth of successes); sheds and
  // timeouts cut it multiplicatively. See FrontDoor::pump.
  double aimd_limit = 0.0;      ///< 0 = uninitialized (set on first use)
  double inflight_service = 0.0;  ///< systems submitted, not yet done

  // CoDel queue-age state: tracks how long this lane's head sojourn has
  // continuously exceeded the target, and paces drops while it does.
  double codel_first_above_s = 0.0;  ///< 0 = not currently above target
  double codel_drop_next_s = 0.0;    ///< next scheduled drop time
  std::uint64_t codel_drop_count = 0;  ///< drops in the current episode
  bool codel_dropping = false;
};

class TenantRegistry {
 public:
  /// Registers a tenant (weight clamped to >= 0.01, burst defaulted).
  /// Later add() with a duplicate token wins on lookup order — don't.
  void add(TenantConfig cfg);

  /// Token -> tenant; nullptr when no tenant matches. The pointer stays
  /// valid for the registry's lifetime (tenants are never removed).
  [[nodiscard]] Tenant* authenticate(const std::string& token);

  /// Admits one request of `systems`/`bytes` at time `now_s`, charging
  /// the quotas on success. All-or-nothing.
  Admission admit(Tenant& t, std::size_t systems, std::size_t bytes,
                  double now_s);

  /// Returns an admitted request's charge (on completion delivery, or
  /// when a queued lane entry dies with its connection).
  void release(Tenant& t, std::size_t systems, std::size_t bytes);

  /// Snapshot of one tenant's live accounting.
  struct Usage {
    std::string name;
    double weight = 1.0;
    std::size_t inflight_systems = 0;
    std::size_t inflight_bytes = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };
  [[nodiscard]] std::vector<Usage> usage() const;

  [[nodiscard]] std::size_t size() const;

  // --- live-reconfiguration surface (ops admin socket / snapshots) ---

  /// Name -> tenant; nullptr when unknown. Same pointer-stability
  /// contract as authenticate().
  [[nodiscard]] Tenant* find(const std::string& name);

  /// Updates an existing tenant's config in place — quotas, token,
  /// weight, default deadline — rebuilding the token bucket when the
  /// rate/burst changed. Live usage counters and the Tenant* survive.
  /// False when no tenant has that name.
  bool update(const std::string& name, const TenantConfig& cfg);

  /// Tombstones a tenant: authenticate() stops matching it and admit()
  /// rejects, but queued/in-flight work and the pointer stay valid.
  /// False when unknown. enable() reverses it.
  bool disable(const std::string& name, bool disabled = true);

  /// Copies of every tenant's config plus its disabled flag and usage
  /// counters — what the ops snapshot persists.
  struct ConfigRow {
    TenantConfig cfg;
    bool disabled = false;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };
  [[nodiscard]] std::vector<ConfigRow> configs() const;

 private:
  mutable std::mutex mu_;
  // Stable addresses: Tenant* handles live in connections and lane
  // entries across the registry's whole life.
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

/// Deficit round-robin over per-tenant lanes of opaque items. The front
/// door instantiates it with its queued-request type; tests drive it
/// with ints. Single-threaded (poll-loop-owned).
template <typename Item>
class DrrScheduler {
 public:
  explicit DrrScheduler(double quantum) : quantum_(quantum) {}

  void enqueue(Tenant* t, Item item, double cost) {
    Lane& lane = lane_of(t);
    lane.items.push_back({std::move(item), cost});
    total_ += 1;
  }

  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] std::size_t size() const { return total_; }

  /// Dequeues the next item under DRR order; false when idle. A lane
  /// earns quantum * weight once per round-robin visit and serves while
  /// its deficit covers the head's cost; an expensive head simply waits
  /// more rounds, it never underpays. Consecutive dequeue() calls keep
  /// serving the same lane until its deficit runs out (classic DRR
  /// "serve the quantum through").
  bool dequeue(Item& out) {
    if (total_ == 0) return false;
    // Each full sweep tops every non-empty lane up by one quantum, so a
    // head of cost C is served within ceil(C / (quantum * weight))
    // sweeps. The cap is a defensive bound for absurd cost/quantum
    // ratios; past it, the head of the next non-empty lane is served
    // regardless so the scheduler can never wedge.
    constexpr int kMaxSweeps = 1 << 14;
    for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
      for (std::size_t step = 0; step < lanes_.size(); ++step) {
        Lane& lane = lanes_[cursor_ % lanes_.size()];
        if (lane.items.empty()) {
          lane.tenant->deficit = 0.0;
          lane.charged_this_visit = false;
          ++cursor_;
          continue;
        }
        if (!lane.charged_this_visit) {
          lane.tenant->deficit += quantum_ * lane.tenant->cfg.weight;
          lane.charged_this_visit = true;
        }
        if (lane.tenant->deficit >= lane.items.front().cost) {
          return serve(lane, out);
        }
        lane.charged_this_visit = false;
        ++cursor_;
      }
    }
    for (std::size_t step = 0; step < lanes_.size(); ++step) {
      Lane& lane = lanes_[cursor_ % lanes_.size()];
      if (!lane.items.empty()) return serve(lane, out);
      ++cursor_;
    }
    return false;  // unreachable while total_ > 0; defensive
  }

  /// dequeue() restricted to lanes whose tenant satisfies `eligible`
  /// — the front door's AIMD limiter parks a lane at its concurrency
  /// window without losing its queue position. An ineligible lane
  /// passes its turn uncharged (deficit untouched), so when it becomes
  /// eligible again it resumes exactly where DRR left it. Returns false
  /// when every queued lane is ineligible or the scheduler is idle.
  template <typename Eligible>
  bool dequeue_if(Item& out, Eligible eligible) {
    if (total_ == 0) return false;
    constexpr int kMaxSweeps = 1 << 14;
    bool any_eligible = false;
    for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
      any_eligible = false;
      for (std::size_t step = 0; step < lanes_.size(); ++step) {
        Lane& lane = lanes_[cursor_ % lanes_.size()];
        if (lane.items.empty()) {
          lane.tenant->deficit = 0.0;
          lane.charged_this_visit = false;
          ++cursor_;
          continue;
        }
        if (!eligible(lane.tenant)) {
          lane.charged_this_visit = false;
          ++cursor_;
          continue;
        }
        any_eligible = true;
        if (!lane.charged_this_visit) {
          lane.tenant->deficit += quantum_ * lane.tenant->cfg.weight;
          lane.charged_this_visit = true;
        }
        if (lane.tenant->deficit >= lane.items.front().cost) {
          return serve(lane, out);
        }
        lane.charged_this_visit = false;
        ++cursor_;
      }
      if (!any_eligible) return false;
    }
    for (std::size_t step = 0; step < lanes_.size(); ++step) {
      Lane& lane = lanes_[cursor_ % lanes_.size()];
      if (!lane.items.empty() && eligible(lane.tenant))
        return serve(lane, out);
      ++cursor_;
    }
    return false;
  }

  /// Drops every queued item satisfying `pred`, calling `on_drop` for
  /// each (used when a connection dies with requests still queued).
  template <typename Pred, typename OnDrop>
  void drop_if(Pred pred, OnDrop on_drop) {
    for (Lane& lane : lanes_) {
      for (auto it = lane.items.begin(); it != lane.items.end();) {
        if (pred(it->item)) {
          on_drop(it->item);
          it = lane.items.erase(it);
          total_ -= 1;
        } else {
          ++it;
        }
      }
    }
  }

 private:
  struct Entry {
    Item item;
    double cost = 0.0;
  };
  struct Lane {
    Tenant* tenant = nullptr;
    std::deque<Entry> items;
    bool charged_this_visit = false;
  };

  /// Pops `lane`'s head into `out`, charging its deficit. The cursor
  /// stays on a lane that still has deficit and items (it may serve
  /// again next call); an emptied lane resets and passes the turn.
  bool serve(Lane& lane, Item& out) {
    out = std::move(lane.items.front().item);
    lane.tenant->deficit -= lane.items.front().cost;
    lane.items.pop_front();
    total_ -= 1;
    if (lane.items.empty()) {
      lane.tenant->deficit = 0.0;
      lane.charged_this_visit = false;
      ++cursor_;
    }
    return true;
  }

  Lane& lane_of(Tenant* t) {
    for (Lane& lane : lanes_) {
      if (lane.tenant == t) return lane;
    }
    lanes_.push_back(Lane{t, {}, false});
    return lanes_.back();
  }

  double quantum_;
  std::vector<Lane> lanes_;
  std::size_t cursor_ = 0;
  std::size_t total_ = 0;
};

}  // namespace tda::net
