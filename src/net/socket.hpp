#pragma once
// Thin POSIX socket helpers for the front door and client: an RAII fd,
// endpoint-spec parsing ("host:port" or "unix:/path"), and
// listen/connect that hide the sockaddr plumbing. Linux-only, like the
// rest of the repo's toolchain assumptions; everything returns errors
// by value (no exceptions) because a refused connection is an expected
// runtime event, not a programming error.

#include <cstdint>
#include <optional>
#include <string>

namespace tda::net {

/// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor (idempotent).
  void reset();
  /// Gives up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// A parsed listen/connect target.
struct Endpoint {
  bool is_unix = false;
  std::string host;         ///< numeric IPv4 or "localhost" (TCP)
  std::uint16_t port = 0;   ///< 0 = ephemeral when listening (TCP)
  std::string path;         ///< filesystem path (unix)

  [[nodiscard]] std::string describe() const;
};

/// Parses "host:port" or "unix:/path"; nullopt when malformed.
std::optional<Endpoint> parse_endpoint(const std::string& spec);

/// Binds + listens. Unix paths are unlinked first so a stale socket
/// file from a crashed run cannot block the bind. On failure the fd is
/// invalid and *err (when non-null) explains why.
Fd listen_endpoint(const Endpoint& ep, int backlog, std::string* err);

/// Blocking connect. On failure the fd is invalid and *err explains.
Fd connect_endpoint(const Endpoint& ep, std::string* err);

/// The port a listening TCP socket actually bound (resolves port 0).
std::uint16_t bound_port(int fd);

/// O_NONBLOCK on/off; returns false on fcntl failure.
bool set_nonblocking(int fd, bool on = true);

/// read()/write() wrappers that retry EINTR. read_some returns bytes
/// read, 0 on orderly EOF, -1 on error, -2 on EAGAIN (nonblocking).
long read_some(int fd, char* buf, std::size_t cap);
long write_some(int fd, const char* buf, std::size_t len);

/// Writes all of `buf` on a blocking fd; false on any error/EOF.
bool write_all(int fd, const char* buf, std::size_t len);

}  // namespace tda::net
