#pragma once
// Per-tenant idempotency dedup cache (docs/NET.md, docs/ROBUSTNESS.md).
//
// A v2 client mints an idempotency key per logical request and reuses
// it verbatim when it resends after a reconnect. The front door runs
// every keyed Solve through this cache so a resend whose original is
// still executing joins it as a waiter, and a resend whose original
// already finished gets the cached result — the device never executes
// the same key twice. Entries are scoped (tenant, key): one tenant can
// never observe another tenant's cached solution, even on key collision.
//
// The cache is bounded two ways: completed entries expire after a TTL,
// and total retained result bytes are capped with oldest-completed-first
// eviction. An evicted key that is resent re-executes (correct, just no
// longer deduplicated); `evictions` makes that visible.
//
// Single-threaded by design — the front door's poll thread owns it, the
// same way it owns the DRR lanes. No locks.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace tda::net {

struct DedupConfig {
  double ttl_ms = 30'000.0;          ///< completed-entry lifetime
  std::size_t max_bytes = 16 << 20;  ///< cap on retained result bytes
  std::size_t max_entries = 4096;    ///< cap on total entries
};

struct DedupStats {
  std::uint64_t inserts = 0;      ///< fresh keys that began tracking
  std::uint64_t hits = 0;         ///< resends served from a completed entry
  std::uint64_t joins = 0;        ///< resends attached to an in-flight entry
  std::uint64_t evictions = 0;    ///< completed entries dropped (TTL or cap)
  std::uint64_t duplicate_executions = 0;  ///< executions of an already-
                                           ///< executed key (must stay 0)
  std::uint64_t mismatches = 0;   ///< key reused for a different payload
  std::size_t bytes = 0;          ///< retained result bytes right now
  std::size_t entries = 0;        ///< live entries right now
};

/// Resp is whatever the owner wants replayed to a duplicate requester
/// (the front door stores the full solve response). Waiter identifies a
/// parked duplicate request awaiting the in-flight original.
template <typename Resp>
class DedupCache {
 public:
  struct Waiter {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
  };

  enum class State {
    Fresh,     ///< never seen; caller should execute (entry now in-flight)
    InFlight,  ///< original still executing; park as a waiter
    Completed, ///< result cached; replay it
    Mismatch,  ///< key known but for a *different* payload — reject
  };

  explicit DedupCache(DedupConfig cfg = {}) : cfg_(cfg) {}

  /// Looks up (tenant, key) and inserts an in-flight entry on a miss.
  /// `payload_hash` fingerprints the request bytes: a resend must be
  /// byte-identical to its original, so a known key whose stored hash
  /// differs returns Mismatch (the front door answers KeyReuse) — a
  /// client bug must not be laundered into a silent wrong replay.
  State begin(std::uint64_t tenant_id, std::uint64_t key,
              std::uint64_t payload_hash, double now_ms) {
    sweep(now_ms);
    auto [it, inserted] = entries_.try_emplace(Key{tenant_id, key});
    if (inserted) {
      ++stats_.inserts;
      it->second.payload_hash = payload_hash;
      stats_.entries = entries_.size();
      return State::Fresh;
    }
    if (it->second.payload_hash != payload_hash) {
      ++stats_.mismatches;
      return State::Mismatch;
    }
    if (it->second.completed) {
      ++stats_.hits;
      return State::Completed;
    }
    ++stats_.joins;
    return State::InFlight;
  }

  /// Parks a duplicate request on the in-flight entry.
  void add_waiter(std::uint64_t tenant_id, std::uint64_t key, Waiter w) {
    auto it = entries_.find(Key{tenant_id, key});
    if (it != entries_.end() && !it->second.completed)
      it->second.waiters.push_back(w);
  }

  /// Records that the key's work was actually submitted for execution.
  /// Returns the number of *prior* executions — any nonzero return is a
  /// dedup bug and is tallied in duplicate_executions.
  std::uint64_t mark_executed(std::uint64_t tenant_id, std::uint64_t key) {
    auto it = entries_.find(Key{tenant_id, key});
    if (it == entries_.end()) return 0;
    const std::uint64_t prior = it->second.executions++;
    if (prior > 0) ++stats_.duplicate_executions;
    return prior;
  }

  /// Detaches and returns the waiters parked on (tenant, key) without
  /// changing the entry's state — the owner encodes the response for
  /// each recipient first, then calls complete() or abandon().
  std::vector<Waiter> take_waiters(std::uint64_t tenant_id,
                                   std::uint64_t key) {
    auto it = entries_.find(Key{tenant_id, key});
    if (it == entries_.end()) return {};
    std::vector<Waiter> waiters = std::move(it->second.waiters);
    it->second.waiters.clear();
    return waiters;
  }

  /// Transitions in-flight → completed and returns the parked waiters
  /// (the caller replays `resp` to each). `bytes` is the retained size
  /// charged against the cap.
  std::vector<Waiter> complete(std::uint64_t tenant_id, std::uint64_t key,
                               Resp resp, std::size_t bytes,
                               double now_ms) {
    auto it = entries_.find(Key{tenant_id, key});
    if (it == entries_.end()) return {};
    Entry& e = it->second;
    std::vector<Waiter> waiters = std::move(e.waiters);
    e.waiters.clear();
    e.resp = std::move(resp);
    e.bytes = bytes;
    e.completed = true;
    e.completed_at_ms = now_ms;
    stats_.bytes += bytes;
    fifo_.push_back(it->first);
    shrink_to_caps();
    stats_.entries = entries_.size();
    return waiters;
  }

  /// Drops a tracked key without caching anything — used when admission
  /// rejects the request or the outcome is retryable (shed/timeout), so
  /// a client retry legitimately re-executes. Returns the waiters that
  /// were parked on it (they receive the same terminal error).
  std::vector<Waiter> abandon(std::uint64_t tenant_id, std::uint64_t key) {
    auto it = entries_.find(Key{tenant_id, key});
    if (it == entries_.end()) return {};
    std::vector<Waiter> waiters = std::move(it->second.waiters);
    if (it->second.completed) stats_.bytes -= it->second.bytes;
    entries_.erase(it);
    stats_.entries = entries_.size();
    return waiters;
  }

  /// Completed result for (tenant, key), or nullptr.
  const Resp* lookup(std::uint64_t tenant_id, std::uint64_t key) const {
    auto it = entries_.find(Key{tenant_id, key});
    if (it == entries_.end() || !it->second.completed) return nullptr;
    return &it->second.resp;
  }

  /// Expires completed entries older than the TTL.
  void sweep(double now_ms) {
    while (!fifo_.empty()) {
      auto it = entries_.find(fifo_.front());
      if (it == entries_.end() || !it->second.completed) {
        fifo_.pop_front();  // stale fifo ref (abandoned/evicted earlier)
        continue;
      }
      if (now_ms - it->second.completed_at_ms < cfg_.ttl_ms) break;
      evict(it);
    }
    stats_.entries = entries_.size();
  }

  /// Visits every completed entry (snapshot export). `fn` receives
  /// (tenant_id, key, payload_hash, resp, bytes). Iteration order is
  /// unspecified; the snapshot writer sorts.
  template <typename Fn>
  void for_each_completed(Fn&& fn) const {
    for (const auto& [k, e] : entries_) {
      if (e.completed) fn(k.tenant_id, k.key, e.payload_hash, e.resp,
                          e.bytes);
    }
  }

  /// Inserts a completed entry wholesale (snapshot import on restart).
  /// The entry behaves exactly like one that completed at `now_ms`:
  /// executions counts 1 so a post-restart re-execution of the key
  /// would tally as a duplicate. Existing keys are left untouched.
  void seed_completed(std::uint64_t tenant_id, std::uint64_t key,
                      std::uint64_t payload_hash, Resp resp,
                      std::size_t bytes, double now_ms) {
    auto [it, inserted] = entries_.try_emplace(Key{tenant_id, key});
    if (!inserted) return;
    Entry& e = it->second;
    e.resp = std::move(resp);
    e.payload_hash = payload_hash;
    e.bytes = bytes;
    e.executions = 1;
    e.completed = true;
    e.completed_at_ms = now_ms;
    stats_.bytes += bytes;
    stats_.entries = entries_.size();
    fifo_.push_back(it->first);
    shrink_to_caps();
  }

  const DedupStats& stats() const { return stats_; }
  const DedupConfig& config() const { return cfg_; }

 private:
  struct Key {
    std::uint64_t tenant_id = 0;
    std::uint64_t key = 0;
    bool operator==(const Key& o) const {
      return tenant_id == o.tenant_id && key == o.key;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix-style mix of both words; either alone is attacker-ish
      // controlled (client picks the key), so mix with the tenant id.
      std::uint64_t x = k.key + 0x9E3779B97F4A7C15ull * (k.tenant_id + 1);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };
  struct Entry {
    Resp resp{};
    std::vector<Waiter> waiters;
    std::size_t bytes = 0;
    std::uint64_t executions = 0;
    std::uint64_t payload_hash = 0;
    double completed_at_ms = 0.0;
    bool completed = false;
  };

  using Map = std::unordered_map<Key, Entry, KeyHash>;

  void evict(typename Map::iterator it) {
    stats_.bytes -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
    if (!fifo_.empty()) fifo_.pop_front();
  }

  /// Oldest-completed-first eviction down to the byte/entry caps.
  /// In-flight entries are never evicted — they pin no result bytes and
  /// dropping one would orphan its waiters.
  void shrink_to_caps() {
    while ((stats_.bytes > cfg_.max_bytes ||
            entries_.size() > cfg_.max_entries) &&
           !fifo_.empty()) {
      auto it = entries_.find(fifo_.front());
      if (it == entries_.end() || !it->second.completed) {
        fifo_.pop_front();
        continue;
      }
      evict(it);
    }
  }

  DedupConfig cfg_;
  Map entries_;
  std::deque<Key> fifo_;  ///< completion order, oldest first
  DedupStats stats_;
};

}  // namespace tda::net
