#pragma once
// Client side of the wire protocol (docs/NET.md). Blocking I/O over one
// connection: connect() runs the Hello handshake, solve() is the
// one-shot convenience, and send_solve()/recv_result() expose the
// windowed form — fire several request ids, then collect responses in
// arrival order — which is what the bench's closed-loop tenants use.
//
// Not thread-safe; one Client per thread.

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace tda::net {

/// Outcome of one wire solve. code == ErrorCode::None means x holds the
/// solution; anything else is the server's typed reject/failure, with
/// `error` carrying its diagnostic.
template <typename T>
struct WireResult {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::None;
  std::string error;
  std::vector<T> x;
  std::uint64_t trace_id = 0;
  double solve_ms = 0.0;
  double wait_ms = 0.0;
  bool fallback_used = false;

  [[nodiscard]] bool ok() const { return code == ErrorCode::None; }
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Connects to "host:port" or "unix:/path" and, when `token` is
  /// non-empty, authenticates with a Hello. False (with *err) on
  /// connect, handshake, or auth failure.
  bool connect(const std::string& spec, const std::string& token,
               std::string* err);

  [[nodiscard]] bool connected() const { return fd_.valid(); }

  /// Tenant name the server acknowledged in HelloOk ("" before auth).
  [[nodiscard]] const std::string& tenant() const { return tenant_; }

  /// Sends Goodbye (best effort) and closes the socket.
  void close();

  /// Sends one Solve frame without waiting. Pick distinct request ids;
  /// responses may come back in any order.
  template <typename Tv>
  bool send_solve(std::uint64_t request_id, const std::vector<Tv>& a,
                  const std::vector<Tv>& b, const std::vector<Tv>& c,
                  const std::vector<Tv>& d, double deadline_ms,
                  std::string* err) {
    std::string out;
    encode_solve<Tv>(out, request_id, a, b, c, d, deadline_ms);
    return send_bytes(out, err);
  }

  /// Blocks for the next SolveOk/SolveErr frame. False on transport
  /// failure or server Goodbye (mid-drain close) — *err says which.
  template <typename Tv>
  bool recv_result(WireResult<Tv>& out, std::string* err) {
    FrameType type{};
    std::uint64_t rid = 0;
    std::string payload;
    for (;;) {
      if (!next_frame(type, rid, payload, err)) return false;
      if (type == FrameType::SolveOk) {
        const auto ok = parse_solve_ok<Tv>(payload);
        if (!ok) {
          if (err != nullptr) *err = "unparsable SolveOk payload";
          return false;
        }
        out.request_id = rid;
        out.code = ErrorCode::None;
        out.error.clear();
        out.x = std::move(ok->x);
        out.trace_id = ok->trace_id;
        out.solve_ms = ok->solve_ms;
        out.wait_ms = ok->wait_ms;
        out.fallback_used = ok->fallback_used;
        return true;
      }
      if (type == FrameType::SolveErr) {
        const auto e = parse_solve_err(payload);
        if (!e) {
          if (err != nullptr) *err = "unparsable SolveErr payload";
          return false;
        }
        out.request_id = rid;
        out.code = e->code;
        out.error = e->message;
        out.x.clear();
        out.trace_id = 0;
        return true;
      }
      if (type == FrameType::Goodbye) {
        if (err != nullptr) *err = "server said goodbye";
        close_fd();
        return false;
      }
      // HelloOk after the handshake window etc.: skip.
    }
  }

  /// One-shot blocking solve.
  template <typename Tv>
  WireResult<Tv> solve(const std::vector<Tv>& a, const std::vector<Tv>& b,
                       const std::vector<Tv>& c, const std::vector<Tv>& d,
                       double deadline_ms = 0.0) {
    WireResult<Tv> r;
    std::string err;
    const std::uint64_t rid = ++next_id_;
    if (!send_solve<Tv>(rid, a, b, c, d, deadline_ms, &err) ||
        !recv_result<Tv>(r, &err)) {
      r.code = ErrorCode::Internal;
      r.error = err.empty() ? "transport failure" : err;
      return r;
    }
    return r;
  }

 private:
  bool send_bytes(const std::string& bytes, std::string* err);
  /// Reads until one full frame decodes; copies its payload out.
  bool next_frame(FrameType& type, std::uint64_t& request_id,
                  std::string& payload, std::string* err);
  void close_fd();

  Fd fd_;
  std::string rbuf_;
  std::string tenant_;
  std::uint64_t next_id_ = 0;
};

}  // namespace tda::net
