#pragma once
// Client side of the wire protocol (docs/NET.md). Blocking I/O over one
// connection: connect() runs the Hello handshake, solve() is the
// one-shot convenience, and send_solve()/recv_result() expose the
// windowed form — fire several request ids, then collect responses in
// arrival order — which is what the bench's closed-loop tenants use.
//
// Resilience (opt-in via set_retry): when a transport failure lands
// mid-window, the client reconnects with exponential backoff +
// decorrelated jitter, re-runs the Hello handshake, and resends every
// request that was sent but not yet answered — byte-identical, so a v2
// resend carries the same idempotency key and the same absolute
// deadline (the budget shrinks across retries by construction; the
// server rejects what expired). The server's dedup cache turns those
// resends into replays rather than re-executions.
//
// connect() advertises protocol v2; wire_version() reports what the
// server agreed to (a legacy server answers 0 → v1, and the client
// falls back to v1 Solve frames automatically).
//
// Not thread-safe; one Client per thread.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace tda::net {

/// Automatic-recovery policy. max_attempts == 0 (the default) keeps the
/// legacy fail-fast behavior: any transport failure surfaces to the
/// caller immediately.
struct RetryPolicy {
  int max_attempts = 0;         ///< reconnect attempts per failure
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 250.0;
  std::uint64_t seed = 1;       ///< decorrelated-jitter stream
};

struct ClientStats {
  std::uint64_t reconnects = 0;  ///< successful reconnect handshakes
  std::uint64_t resends = 0;     ///< unacknowledged frames resent
  std::uint64_t gave_up = 0;     ///< recoveries that exhausted attempts
};

/// Outcome of one wire solve. code == ErrorCode::None means x holds the
/// solution; anything else is the server's typed reject/failure, with
/// `error` carrying its diagnostic.
template <typename T>
struct WireResult {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::None;
  std::string error;
  std::vector<T> x;
  std::uint64_t trace_id = 0;
  double solve_ms = 0.0;
  double wait_ms = 0.0;
  bool fallback_used = false;

  [[nodiscard]] bool ok() const { return code == ErrorCode::None; }
};

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Connects to "host:port" or "unix:/path" and, when `token` is
  /// non-empty, authenticates with a Hello. False (with *err) on
  /// connect, handshake, or auth failure.
  bool connect(const std::string& spec, const std::string& token,
               std::string* err);

  [[nodiscard]] bool connected() const { return fd_.valid(); }

  /// Tenant name the server acknowledged in HelloOk ("" before auth).
  [[nodiscard]] const std::string& tenant() const { return tenant_; }

  /// Protocol version negotiated with the server (1 until a Hello says
  /// otherwise — anonymous connections stay v1-framed but the server
  /// accepts v2 Solve frames regardless).
  [[nodiscard]] std::uint16_t wire_version() const { return wire_version_; }

  /// Enables automatic reconnect + resend (see header comment).
  void set_retry(RetryPolicy policy) { retry_ = policy; }

  [[nodiscard]] const ClientStats& stats() const { return stats_; }

  /// Mints a session-unique idempotency key (random nonce + counter).
  std::uint64_t mint_key();

  /// Sends Goodbye (best effort) and closes the socket.
  void close();

  /// Sends one Solve frame without waiting. Pick distinct request ids;
  /// responses may come back in any order.
  template <typename Tv>
  bool send_solve(std::uint64_t request_id, const std::vector<Tv>& a,
                  const std::vector<Tv>& b, const std::vector<Tv>& c,
                  const std::vector<Tv>& d, double deadline_ms,
                  std::string* err) {
    std::string out;
    encode_solve<Tv>(out, request_id, a, b, c, d, deadline_ms);
    return send_tracked(request_id, std::move(out), err);
  }

  /// v2 send: relative deadline budget (anchored to the wall clock at
  /// this first send — resends keep the original absolute instant, so
  /// the budget shrinks across retries; negative values craft an
  /// already-expired deadline for testing) plus an idempotency key
  /// (use mint_key(); 0 = unkeyed). Falls back to a v1 frame when the
  /// server only speaks v1.
  template <typename Tv>
  bool send_solve2(std::uint64_t request_id, const std::vector<Tv>& a,
                   const std::vector<Tv>& b, const std::vector<Tv>& c,
                   const std::vector<Tv>& d, double deadline_ms,
                   std::uint64_t idem_key, std::string* err) {
    std::string out;
    if (wire_version_ >= kVersion2) {
      const double deadline_unix =
          deadline_ms != 0.0 ? unix_now_ms() + deadline_ms : 0.0;
      encode_solve_v2<Tv>(out, request_id, a, b, c, d, deadline_unix,
                          idem_key);
    } else {
      encode_solve<Tv>(out, request_id, a, b, c, d,
                       deadline_ms > 0.0 ? deadline_ms : 0.0);
    }
    return send_tracked(request_id, std::move(out), err);
  }

  /// Blocks for the next SolveOk/SolveErr frame. False on transport
  /// failure or server Goodbye (mid-drain close) — *err says which.
  /// With a retry policy set, transport failures trigger reconnect +
  /// resend of everything unanswered, and the wait continues.
  template <typename Tv>
  bool recv_result(WireResult<Tv>& out, std::string* err) {
    FrameType type{};
    std::uint64_t rid = 0;
    std::string payload;
    for (;;) {
      if (!next_frame(type, rid, payload, err)) {
        if (!recover(err)) return false;
        continue;
      }
      if (type == FrameType::SolveOk) {
        const auto ok = parse_solve_ok<Tv>(payload);
        if (!ok) {
          if (err != nullptr) *err = "unparsable SolveOk payload";
          return false;
        }
        out.request_id = rid;
        out.code = ErrorCode::None;
        out.error.clear();
        out.x = std::move(ok->x);
        out.trace_id = ok->trace_id;
        out.solve_ms = ok->solve_ms;
        out.wait_ms = ok->wait_ms;
        out.fallback_used = ok->fallback_used;
        outstanding_.erase(rid);
        return true;
      }
      if (type == FrameType::SolveErr) {
        const auto e = parse_solve_err(payload);
        if (!e) {
          if (err != nullptr) *err = "unparsable SolveErr payload";
          return false;
        }
        out.request_id = rid;
        out.code = e->code;
        out.error = e->message;
        out.x.clear();
        out.trace_id = 0;
        outstanding_.erase(rid);
        return true;
      }
      if (type == FrameType::Goodbye) {
        if (err != nullptr) *err = "server said goodbye";
        close_fd();
        if (!recover(err)) return false;
        continue;
      }
      // HelloOk after the handshake window etc.: skip.
    }
  }

  /// One-shot blocking solve.
  template <typename Tv>
  WireResult<Tv> solve(const std::vector<Tv>& a, const std::vector<Tv>& b,
                       const std::vector<Tv>& c, const std::vector<Tv>& d,
                       double deadline_ms = 0.0) {
    WireResult<Tv> r;
    std::string err;
    const std::uint64_t rid = ++next_id_;
    if (!send_solve<Tv>(rid, a, b, c, d, deadline_ms, &err) ||
        !recv_result<Tv>(r, &err)) {
      r.code = ErrorCode::Internal;
      r.error = err.empty() ? "transport failure" : err;
      return r;
    }
    return r;
  }

 private:
  bool send_bytes(const std::string& bytes, std::string* err);
  /// Tracks the frame for post-reconnect resend (when retry is on),
  /// then sends it — recovering once if the send itself fails.
  bool send_tracked(std::uint64_t request_id, std::string bytes,
                    std::string* err);
  /// Reads until one full frame decodes; copies its payload out.
  bool next_frame(FrameType& type, std::uint64_t& request_id,
                  std::string& payload, std::string* err);
  /// Reconnect + re-Hello + resend outstanding, with decorrelated-
  /// jitter backoff. False when retry is off or attempts run out.
  bool recover(std::string* err);
  bool do_connect(std::string* err);
  double next_backoff_ms();
  void close_fd();

  Fd fd_;
  std::string rbuf_;
  std::string tenant_;
  std::uint64_t next_id_ = 0;
  std::uint16_t wire_version_ = kVersion;
  std::string spec_, token_;  ///< connect() target, for recover()
  RetryPolicy retry_;
  ClientStats stats_;
  double prev_backoff_ms_ = 0.0;
  std::uint64_t jitter_state_ = 0;
  std::uint64_t key_nonce_ = 0;
  std::uint64_t key_counter_ = 0;
  /// request id -> encoded frame, sent but not yet answered. Only
  /// populated when retry is enabled.
  std::map<std::uint64_t, std::string> outstanding_;
};

}  // namespace tda::net
