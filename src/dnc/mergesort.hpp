#pragma once
// Multi-stage, auto-tuned merge sort — the paper's §VI-C generalization.
//
// "Consider the problem of bottom-up merge sorting ... An implementation
//  of this algorithm on the GPU faces the same issues as our tridiagonal
//  solver: a shift from solving many independent chunks within a single
//  processor's shared memory to solving many independent chunks that do
//  not fit within shared memory, and a second shift from solving enough
//  chunks to fill the machine to solving fewer, larger chunks that do not
//  fill the machine."
//
// The stages mirror the tridiagonal solver exactly:
//
//   base kernel  — each block sorts one chunk in shared memory
//                  (bitonic-style; analogue of PCR-Thomas);
//   independent  — one block per merge PAIR, one launch per level
//   merge levels   (analogue of Stage 2: simple, but the machine starves
//                  when few pairs remain);
//   cooperative  — many blocks split each merge via merge-path
//   merge levels   partitioning (analogue of Stage 1: keeps the machine
//                  full at the price of partition-search and extra
//                  partition traffic per level).
//
// Two switch points arise — the shared-memory chunk size and the pair
// count below which merges go cooperative — and the same decoupled,
// machine-guess-seeded search tunes them.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "gpusim/launch.hpp"
#include "kernels/config.hpp"

namespace tda::dnc {

/// Tunable switch points of the sorter.
struct SortSwitchPoints {
  /// Base-kernel chunk size (elements sorted on-chip by one block).
  std::size_t chunk_size = 1024;
  /// Pair count below which a merge level runs cooperatively (many
  /// blocks per pair). Mirrors stage1_target_systems.
  std::size_t coop_threshold = 16;
};

inline std::string describe(const SortSwitchPoints& sp) {
  return "chunk=" + std::to_string(sp.chunk_size) +
         " coop_threshold=" + std::to_string(sp.coop_threshold);
}

/// Execution plan for one input size.
struct SortPlan {
  std::size_t chunks = 0;            ///< base-kernel blocks
  std::size_t independent_levels = 0;  ///< merge levels done per-block
  std::size_t cooperative_levels = 0;  ///< grid-wide merge levels
};

/// Timing breakdown (simulated milliseconds).
struct SortStats {
  SortPlan plan;
  double base_ms = 0.0;
  double independent_ms = 0.0;
  double cooperative_ms = 0.0;
  double total_ms = 0.0;
  std::size_t kernel_launches = 0;
};

/// Largest power-of-two chunk a block can sort on chip: ping-pong buffer
/// of 2 element arrays, one thread per two elements.
inline std::size_t max_chunk_size(const gpusim::DeviceQuery& q,
                                  std::size_t elem_bytes) {
  std::size_t best = 0;
  for (std::size_t c = 64;; c *= 2) {
    const bool fits_shared = 2 * c * elem_bytes <= q.shared_mem_per_sm;
    const bool fits_threads =
        c / 2 <= static_cast<std::size_t>(q.max_threads_per_block);
    if (fits_shared && fits_threads) {
      best = c;
    } else {
      break;
    }
  }
  return best;
}

/// Multi-stage sorter over a simulated device.
template <typename T>
class MultiStageSorter {
 public:
  MultiStageSorter(gpusim::Device& dev, SortSwitchPoints points)
      : dev_(&dev), points_(points) {
    TDA_REQUIRE(points_.chunk_size >= 2, "chunk size must be >= 2");
    TDA_REQUIRE((points_.chunk_size & (points_.chunk_size - 1)) == 0,
                "chunk size must be a power of two");
    TDA_REQUIRE(points_.chunk_size <=
                    max_chunk_size(dev.query(), sizeof(T)),
                "chunk size exceeds on-chip capacity");
    TDA_REQUIRE(points_.coop_threshold >= 1, "coop threshold must be >= 1");
  }

  [[nodiscard]] const SortSwitchPoints& switch_points() const {
    return points_;
  }

  [[nodiscard]] SortPlan plan_for(std::size_t n) const {
    SortPlan plan;
    const std::size_t c = points_.chunk_size;
    plan.chunks = (n + c - 1) / c;
    std::size_t runs = plan.chunks;
    // Merge levels from `runs` down to 1; a level goes cooperative when
    // its pair count drops below the threshold.
    while (runs > 1) {
      const std::size_t pairs = runs / 2;
      if (pairs < points_.coop_threshold) {
        ++plan.cooperative_levels;
      } else {
        ++plan.independent_levels;
      }
      runs = (runs + 1) / 2;
    }
    return plan;
  }

  /// Sorts `data` ascending; returns the simulated timing breakdown.
  SortStats sort(std::vector<T>& data,
                 kernels::ExecMode mode = kernels::ExecMode::Full) {
    const std::size_t n = data.size();
    SortStats stats;
    if (n <= 1) return stats;
    stats.plan = plan_for(n);

    // ---- base kernel: per-block on-chip chunk sort ----
    stats.base_ms = base_sort(data, mode);
    ++stats.kernel_launches;

    // ---- merge levels: one launch each ----
    std::size_t run_len = points_.chunk_size;
    std::size_t runs = stats.plan.chunks;
    std::vector<T> scratch;
    if (mode == kernels::ExecMode::Full) scratch.resize(n);

    while (runs > 1) {
      const std::size_t pairs = runs / 2;
      if (pairs < points_.coop_threshold) {
        stats.cooperative_ms +=
            merge_level(data, scratch, run_len, /*cooperative=*/true, mode);
      } else {
        stats.independent_ms +=
            merge_level(data, scratch, run_len, /*cooperative=*/false,
                        mode);
      }
      ++stats.kernel_launches;
      run_len *= 2;
      runs = (runs + 1) / 2;
    }

    stats.total_ms =
        stats.base_ms + stats.independent_ms + stats.cooperative_ms;
    return stats;
  }

  /// Simulated time for an input size, without data (tuning evaluations).
  double simulate_ms(std::size_t n) {
    return sort_impl_cost_only(n).total_ms;
  }

 private:
  SortStats sort_impl_cost_only(std::size_t n) {
    SortStats stats;
    if (n <= 1) return stats;
    stats.plan = plan_for(n);
    stats.base_ms = base_sort_cost(n);
    ++stats.kernel_launches;
    std::size_t run_len = points_.chunk_size;
    std::size_t runs = stats.plan.chunks;
    std::vector<T> none;
    while (runs > 1) {
      const std::size_t pairs = runs / 2;
      const double ms = merge_level(none, none, run_len,
                                    pairs < points_.coop_threshold,
                                    kernels::ExecMode::CostOnly, n);
      if (pairs < points_.coop_threshold) {
        stats.cooperative_ms += ms;
      } else {
        stats.independent_ms += ms;
      }
      ++stats.kernel_launches;
      run_len *= 2;
      runs = (runs + 1) / 2;
    }
    stats.total_ms =
        stats.base_ms + stats.independent_ms + stats.cooperative_ms;
    return stats;
  }

  // --- base kernel ---

  gpusim::LaunchConfig base_config(std::size_t n) const {
    const std::size_t c = points_.chunk_size;
    gpusim::LaunchConfig cfg;
    cfg.blocks = (n + c - 1) / c;
    cfg.threads_per_block = static_cast<int>(std::min<std::size_t>(
        std::max<std::size_t>(32, c / 2),
        dev_->spec().max_threads_per_block));
    cfg.shared_bytes = 2 * c * sizeof(T);
    cfg.regs_per_thread = 16;
    return cfg;
  }

  void charge_base_block(gpusim::BlockContext& ctx, std::size_t len) const {
    const std::size_t c = points_.chunk_size;
    ctx.charge_global(static_cast<double>(len) * sizeof(T), 1, sizeof(T));
    // Bitonic network: log2(c)*(log2(c)+1)/2 compare-exchange phases over
    // c/2 active threads, one sync each.
    std::size_t lg = 0;
    while ((std::size_t{1} << lg) < c) ++lg;
    const double phases = static_cast<double>(lg * (lg + 1)) / 2.0;
    ctx.charge_phase(static_cast<int>(c / 2), phases, 8.0);
    for (double p = 0; p < phases; ++p) ctx.sync();
    ctx.charge_global(static_cast<double>(len) * sizeof(T), 1, sizeof(T));
  }

  double base_sort(std::vector<T>& data, kernels::ExecMode mode) {
    const std::size_t n = data.size();
    const std::size_t c = points_.chunk_size;
    auto cfg = base_config(n);
    auto st = dev_->launch(cfg, [&](gpusim::BlockContext& ctx) {
      const std::size_t lo = ctx.block_index() * c;
      const std::size_t hi = std::min(n, lo + c);
      if (mode == kernels::ExecMode::Full) {
        std::sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
                  data.begin() + static_cast<std::ptrdiff_t>(hi));
      }
      charge_base_block(ctx, hi - lo);
    }, "sort_chunks");
    return st.seconds * 1e3;
  }

  double base_sort_cost(std::size_t n) {
    const std::size_t c = points_.chunk_size;
    auto cfg = base_config(n);
    auto st = dev_->launch(cfg, [&](gpusim::BlockContext& ctx) {
      const std::size_t lo = ctx.block_index() * c;
      const std::size_t hi = std::min(n, lo + c);
      charge_base_block(ctx, hi - lo);
    }, "sort_chunks");
    return st.seconds * 1e3;
  }

  // --- merge levels ---

  /// One merge level as one kernel launch.
  ///
  /// Independent (Stage-2 analogue): one block per merge pair — no
  /// overheads, but the grid shrinks level by level until the machine
  /// starves.
  ///
  /// Cooperative (Stage-1 analogue): a machine-filling grid where many
  /// blocks share each pair via merge-path partitioning — every block
  /// first binary-searches its diagonal split (extra compute) and the
  /// partition boundaries are re-read (extra traffic), costs the
  /// independent scheme does not pay.
  ///
  /// `n_override` supplies the input size for cost-only runs where
  /// `data` is empty.
  double merge_level(std::vector<T>& data, std::vector<T>& scratch,
                     std::size_t run_len, bool cooperative,
                     kernels::ExecMode mode, std::size_t n_override = 0) {
    const std::size_t n =
        (mode == kernels::ExecMode::Full) ? data.size() : n_override;
    const std::size_t pairs =
        std::max<std::size_t>(1, (n + 2 * run_len - 1) / (2 * run_len));

    gpusim::LaunchConfig cfg;
    cfg.threads_per_block = 256;
    cfg.regs_per_thread = 16;
    if (cooperative) {
      cfg.blocks = std::max<std::size_t>(
          pairs, std::min<std::size_t>(
                     n / (static_cast<std::size_t>(cfg.threads_per_block) *
                          4) +
                         1,
                     8ull * dev_->spec().sm_count));
    } else {
      cfg.blocks = pairs;
    }
    const std::size_t chunk = (n + cfg.blocks - 1) / cfg.blocks;

    bool merged = false;
    auto st = dev_->launch(cfg, [&](gpusim::BlockContext& ctx) {
      // Functional execution: the whole level is merged once (block
      // decomposition does not change the result).
      if (mode == kernels::ExecMode::Full && !merged) {
        merged = true;
        for (std::size_t s = 0; s < n; s += 2 * run_len) {
          const std::size_t mid = std::min(n, s + run_len);
          const std::size_t end = std::min(n, s + 2 * run_len);
          std::merge(data.begin() + static_cast<std::ptrdiff_t>(s),
                     data.begin() + static_cast<std::ptrdiff_t>(mid),
                     data.begin() + static_cast<std::ptrdiff_t>(mid),
                     data.begin() + static_cast<std::ptrdiff_t>(end),
                     scratch.begin() + static_cast<std::ptrdiff_t>(s));
        }
        std::copy(scratch.begin(),
                  scratch.begin() + static_cast<std::ptrdiff_t>(n),
                  data.begin());
      }
      // Cost: this block's share of the level.
      const std::size_t lo = ctx.block_index() * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      if (lo >= hi) return;
      const double len = static_cast<double>(hi - lo);
      // read the two source runs + write the output
      ctx.charge_global(2.0 * len * sizeof(T), 1, sizeof(T));
      ctx.charge_phase(ctx.threads(),
                       std::ceil(len / ctx.threads()), 8.0);
      if (cooperative) {
        // Merge-path partitioning: every thread binary-searches the
        // diagonal (dependent chain of log2(2*run_len) probes, each a
        // global read) and partition frontiers are re-fetched.
        const double probes =
            std::ceil(std::log2(static_cast<double>(2 * run_len)));
        ctx.charge_phase(ctx.threads(), probes, 2.0, 1.0, 4.0);
        ctx.charge_global(probes * ctx.threads() * sizeof(T), 64,
                          sizeof(T));
      }
    }, cooperative ? "merge_level_coop" : "merge_level_indep");
    return st.seconds * 1e3;
  }

  gpusim::Device* dev_;
  SortSwitchPoints points_;
};

/// Machine-oblivious default switch points (mirrors §IV-B).
inline SortSwitchPoints default_sort_points() {
  SortSwitchPoints sp;
  sp.chunk_size = 1024;  // fits the weakest registry device
  sp.coop_threshold = 16;
  return sp;
}

/// Machine-query guess (mirrors §IV-C).
template <typename T>
SortSwitchPoints static_sort_points(const gpusim::DeviceQuery& q) {
  SortSwitchPoints sp;
  sp.chunk_size = max_chunk_size(q, sizeof(T));
  sp.coop_threshold = static_cast<std::size_t>(q.sm_count);
  return sp;
}

/// Decoupled, seeded search (mirrors §IV-D): chunk size and cooperative
/// threshold are tuned independently, each by scanning its short ladder
/// from the machine guess.
template <typename T>
struct SortTuneResult {
  SortSwitchPoints points;
  double best_ms = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;
};

template <typename T>
SortTuneResult<T> tune_sorter(gpusim::Device& dev, std::size_t n) {
  SortTuneResult<T> r;
  const auto q = dev.query();
  const std::size_t cap = max_chunk_size(q, sizeof(T));
  SortSwitchPoints best = static_sort_points<T>(q);

  auto evaluate = [&](const SortSwitchPoints& sp) {
    MultiStageSorter<T> sorter(dev, sp);
    ++r.evaluations;
    return sorter.simulate_ms(n);
  };

  // Group A: chunk size ladder.
  double best_ms = std::numeric_limits<double>::infinity();
  for (std::size_t c = 64; c <= cap; c *= 2) {
    SortSwitchPoints sp = best;
    sp.chunk_size = c;
    const double ms = evaluate(sp);
    if (ms < best_ms) {
      best_ms = ms;
      best = sp;
    }
  }
  // Group B: cooperative threshold ladder.
  for (std::size_t t = 1; t <= 1024; t *= 2) {
    SortSwitchPoints sp = best;
    sp.coop_threshold = t;
    const double ms = evaluate(sp);
    if (ms < best_ms) {
      best_ms = ms;
      best = sp;
    }
  }
  r.points = best;
  r.best_ms = best_ms;
  return r;
}

}  // namespace tda::dnc
