#include "service/config.hpp"
#include "service/request.hpp"

namespace tda::service {

const char* to_string(BackpressurePolicy p) {
  switch (p) {
    case BackpressurePolicy::Block:
      return "block";
    case BackpressurePolicy::Reject:
      return "reject";
    case BackpressurePolicy::ShedOldest:
      return "shed-oldest";
  }
  return "?";
}

const char* to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::RoundRobin:
      return "round-robin";
    case DispatchPolicy::LeastLoaded:
      return "least-loaded";
  }
  return "?";
}

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Ok:
      return "ok";
    case SolveStatus::Rejected:
      return "rejected";
    case SolveStatus::Shed:
      return "shed";
    case SolveStatus::TimedOut:
      return "timed-out";
    case SolveStatus::Failed:
      return "failed";
    case SolveStatus::Singular:
      return "singular";
    case SolveStatus::NonFinite:
      return "nonfinite";
  }
  return "?";
}

const char* to_string(TimeoutScope s) {
  switch (s) {
    case TimeoutScope::None:
      return "none";
    case TimeoutScope::Queue:
      return "queue";
    case TimeoutScope::InFlight:
      return "in-flight";
  }
  return "?";
}

double decorrelated_backoff_ms(double base_ms, double prev_ms,
                               double max_ms, std::uint64_t& state) {
  // splitmix64 step; cheap, caller-seeded, no global RNG contention.
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  const double hi = prev_ms * 3.0 > base_ms ? prev_ms * 3.0 : base_ms;
  double sleep = base_ms + u * (hi - base_ms);
  if (sleep > max_ms) sleep = max_ms;
  return sleep;
}

}  // namespace tda::service
