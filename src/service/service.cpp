#include "service/config.hpp"
#include "service/request.hpp"

namespace tda::service {

const char* to_string(BackpressurePolicy p) {
  switch (p) {
    case BackpressurePolicy::Block:
      return "block";
    case BackpressurePolicy::Reject:
      return "reject";
    case BackpressurePolicy::ShedOldest:
      return "shed-oldest";
  }
  return "?";
}

const char* to_string(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::RoundRobin:
      return "round-robin";
    case DispatchPolicy::LeastLoaded:
      return "least-loaded";
  }
  return "?";
}

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Ok:
      return "ok";
    case SolveStatus::Rejected:
      return "rejected";
    case SolveStatus::Shed:
      return "shed";
    case SolveStatus::TimedOut:
      return "timed-out";
    case SolveStatus::Failed:
      return "failed";
    case SolveStatus::Singular:
      return "singular";
    case SolveStatus::NonFinite:
      return "nonfinite";
  }
  return "?";
}

const char* to_string(TimeoutScope s) {
  switch (s) {
    case TimeoutScope::None:
      return "none";
    case TimeoutScope::Queue:
      return "queue";
    case TimeoutScope::InFlight:
      return "in-flight";
  }
  return "?";
}

}  // namespace tda::service
