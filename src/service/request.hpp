#pragma once
// Request/response types of the solve service. A request is one
// tridiagonal system (the service coalesces many of them into batched
// solves); the response carries the solution plus enough scheduling
// detail — wait time, batch occupancy, device — for callers and benches
// to see what the service did with it.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/tracer.hpp"

namespace tda::service {

/// Terminal state of a submitted request.
enum class SolveStatus {
  Ok,         ///< solved; x holds the solution
  Rejected,   ///< refused at admission (queue full, or service shut down)
  Shed,       ///< evicted from the queue by BackpressurePolicy::ShedOldest
  TimedOut,   ///< deadline lapsed — in the queue, or cancelled mid-flight
              ///< by the watchdog (see SolveResponse::timeout_scope)
  Failed,     ///< the solve itself threw; `error` holds the message
  Singular,   ///< this system is numerically singular (batchmates solved)
  NonFinite   ///< this system carried NaN/Inf coefficients
};

const char* to_string(SolveStatus s);

/// Where a TimedOut request's deadline lapsed.
enum class TimeoutScope {
  None,     ///< the request did not time out
  Queue,    ///< lapsed before a worker picked the request up
  InFlight  ///< lapsed mid-solve; the watchdog cancelled the batch
};

const char* to_string(TimeoutScope s);

/// One tridiagonal system: diagonals a/b/c and right-hand side d, all of
/// equal length n >= 1 (a[0] and c[n-1] are 0 by convention).
template <typename T>
struct SolveRequest {
  std::vector<T> a, b, c, d;
  /// Per-request deadline in ms from admission; 0 = use the config
  /// default (which may itself be "none").
  double deadline_ms = 0.0;
  /// Optional caller-provided trace context: a non-zero trace_id joins
  /// the request to an existing trace (e.g. a front door that already
  /// minted one); zero lets the service mint a fresh id at admission.
  telemetry::TraceContext trace;
  /// Tenant label of the submitting client (the wire front door stamps
  /// it after auth). Non-empty adds a tenant="..." label to the
  /// request-latency histogram and an attr on the request root span;
  /// empty (in-process callers) keeps the label set unchanged.
  std::string tenant;

  [[nodiscard]] std::size_t size() const { return b.size(); }
};

template <typename T>
struct SolveResponse {
  SolveStatus status = SolveStatus::Ok;
  std::vector<T> x;  ///< solution (empty unless status == Ok)

  // --- scheduling detail ---
  /// Trace id the service stamped on (or adopted for) this request; 0
  /// when tracing was disabled. Matches the "request" root span and the
  /// latency-histogram exemplars, so a slow response can be looked up
  /// in the exported trace directly.
  std::uint64_t trace_id = 0;
  std::size_t batch_systems = 0;  ///< systems coalesced into the solve
  double wait_ms = 0.0;           ///< admission -> dispatch wall time
  double solve_ms = 0.0;          ///< simulated ms of the whole batch
  std::string device;             ///< worker device that ran the batch
  std::string error;              ///< diagnostic for Failed

  // --- resilience detail ---
  /// True when the solution came from the pivoting CPU fallback (the
  /// result is still correct; status stays Ok).
  bool fallback_used = false;
  /// Device-fault retries spent on the batch that carried this request.
  std::size_t retries = 0;
  /// For TimedOut: whether the deadline lapsed in the queue or mid-solve.
  TimeoutScope timeout_scope = TimeoutScope::None;
  /// Sub-batches the solve was split into under memory pressure (1 = the
  /// batch fit the device budget whole; 0 = it never reached a device).
  std::size_t chunks = 0;

  [[nodiscard]] bool ok() const { return status == SolveStatus::Ok; }
};

}  // namespace tda::service
