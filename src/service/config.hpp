#pragma once
// Solve-service configuration: admission control (bounded queue +
// backpressure policy), flush triggers for shape-bucketed coalescing,
// and the multi-device dispatch policy.

#include <cstddef>
#include <cstdint>
#include <string>

namespace tda::service {

/// What submit() does when the admission queue is full.
enum class BackpressurePolicy {
  Block,      ///< caller blocks until a slot frees (or shutdown)
  Reject,     ///< the new request is refused immediately
  ShedOldest  ///< the oldest queued request is shed to admit the new one
};

/// How flushed buckets are spread across the worker devices.
enum class DispatchPolicy {
  RoundRobin,  ///< workers take turns
  LeastLoaded  ///< bucket goes to the worker with fewest queued systems
};

const char* to_string(BackpressurePolicy p);
const char* to_string(DispatchPolicy p);

/// One decorrelated-jitter backoff step (AWS-style): a uniform draw
/// from [base_ms, 3 * prev_ms] capped at max_ms. Pass the previous
/// return value back in as prev_ms (or 0 on the first attempt); `state`
/// is the caller-owned RNG stream. Exposed for tests.
double decorrelated_backoff_ms(double base_ms, double prev_ms,
                               double max_ms, std::uint64_t& state);

/// Fault-tolerance policy of the service (docs/ROBUSTNESS.md). Defaults
/// are the production setting: guards on, retries with failover, breaker
/// armed — with injection disabled none of it touches the hot path
/// beyond one O(n) screening pass per system.
struct ResilienceConfig {
  /// Route solves through solver::GuardedSolver (prescreen, quarantine
  /// bisect, residual postcheck, pivoting CPU fallback). Off restores
  /// the legacy all-or-nothing batch behavior.
  bool guards = true;
  /// Dominance floor / residual tolerance forwarded to the guards
  /// (see solver::GuardConfig).
  double dominance_floor = 0.0;
  double residual_tol = 0.0;

  /// Device-fault retries on the same worker before failing over.
  int max_retries = 2;
  /// Base of the retry backoff (wall-clock ms). With jitter on (the
  /// default), attempt k sleeps a decorrelated-jitter draw from
  /// [base, 3 * previous sleep] capped at retry_backoff_max_ms; with
  /// jitter off, attempt k sleeps exactly retry_backoff_ms * 2^k.
  double retry_backoff_ms = 0.25;
  /// Ceiling of a single jittered backoff sleep (wall-clock ms).
  double retry_backoff_max_ms = 8.0;
  /// Decorrelated jitter on the retry backoff. Correlated faults (one
  /// flaky device failing many workers at once) make synchronized
  /// exponential waves retry in lockstep; jitter spreads them out.
  bool retry_jitter = true;
  /// After retries are exhausted, hand the batch to up to
  /// (num_workers - 1) other workers before the CPU path.
  bool device_failover = true;
  /// Last resort: solve the batch with the pivoting CPU solver instead
  /// of failing it when every device attempt was exhausted.
  bool cpu_failover = true;

  /// Consecutive device failures that open a worker's circuit breaker.
  int breaker_threshold = 3;
  /// How long an open breaker keeps the worker out of dispatch before a
  /// half-open probe is allowed (wall-clock ms).
  double breaker_cooldown_ms = 25.0;

  /// Arm the TDA_FAULTS device-level sites (launch/alloc/oom failures)
  /// on the service's devices. The service has a recovery story, so it
  /// opts in by default; bare solver runs stay unarmed.
  bool arm_device_faults = true;
};

/// In-flight watchdog policy (docs/ROBUSTNESS.md). The watchdog thread
/// samples every busy worker: a job past its deadline is cancelled
/// cooperatively (the solver throws at its next stage boundary and the
/// expired members finish as TimedOut/in-flight, unexpired members are
/// requeued); a worker whose heartbeat stops advancing collects strikes
/// and eventually feeds its circuit breaker, taking the stalled device
/// out of dispatch.
struct WatchdogConfig {
  bool enable = true;
  /// Sampling period (wall-clock ms).
  double interval_ms = 1.0;
  /// A busy worker whose solve heartbeat has not advanced for this long
  /// earns a stall strike. Generous by default: simulated solves beat at
  /// stage boundaries many times per wall millisecond, so only a
  /// genuinely stuck worker (injected stall, runaway kernel) trips it.
  double stall_threshold_ms = 50.0;
  /// Consecutive strikes that open the worker's circuit breaker.
  int stall_strikes = 3;
};

struct ServiceConfig {
  /// Max requests admitted but not yet dispatched to a device.
  std::size_t queue_capacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  DispatchPolicy dispatch = DispatchPolicy::LeastLoaded;

  /// Size trigger: a (n, dtype) bucket flushes once it holds this many
  /// systems. 1 disables coalescing (one solve per request).
  std::size_t flush_systems = 64;
  /// Deadline trigger: a bucket flushes once its oldest request has
  /// waited this long, however few systems it holds.
  double flush_interval_ms = 2.0;

  /// Deadline applied to requests that don't carry their own
  /// (milliseconds from admission; 0 = no deadline). A request whose
  /// deadline lapses before its bucket is picked up by a worker
  /// completes with SolveStatus::TimedOut (scope Queue); one that lapses
  /// mid-solve is cancelled by the watchdog at the next stage boundary
  /// and completes as TimedOut (scope InFlight).
  double default_deadline_ms = 0.0;

  /// Lanes of the process-wide block-execution engine
  /// (gpusim::ThreadPool::global()): the service resizes the shared pool
  /// to this many lanes at construction. 0 keeps the pool's current
  /// size (its $TDA_THREADS / hardware default). The pool is shared by
  /// every worker — workers queue blocks into one engine rather than
  /// spinning up pools of their own, so total CPU use stays bounded by
  /// the engine width however many devices the service drives
  /// (docs/PERFORMANCE.md).
  int engine_threads = 0;

  /// Per-worker device memory budget override in bytes; 0 keeps each
  /// device's own default (its spec / $TDA_MEM_BUDGET). Solves that
  /// exceed the budget are chunked (solver::ChunkedSolver).
  std::size_t mem_budget_bytes = 0;
  /// Memory-aware admission: reject/shed a request when the projected
  /// device-resident footprint of everything admitted-but-unfinished
  /// would exceed this fraction of the summed worker budgets. <= 0
  /// disables the check; 1.0 admits up to the full budget (chunking
  /// absorbs transient overshoot).
  double mem_admission_fraction = 0.0;

  WatchdogConfig watchdog;

  /// Shared persistent tuning cache: loaded at start-up, merge-saved on
  /// shutdown. Empty = in-memory only.
  std::string cache_path;

  ResilienceConfig resilience;
};

}  // namespace tda::service
