#pragma once
// Solve-service configuration: admission control (bounded queue +
// backpressure policy), flush triggers for shape-bucketed coalescing,
// and the multi-device dispatch policy.

#include <cstddef>
#include <string>

namespace tda::service {

/// What submit() does when the admission queue is full.
enum class BackpressurePolicy {
  Block,      ///< caller blocks until a slot frees (or shutdown)
  Reject,     ///< the new request is refused immediately
  ShedOldest  ///< the oldest queued request is shed to admit the new one
};

/// How flushed buckets are spread across the worker devices.
enum class DispatchPolicy {
  RoundRobin,  ///< workers take turns
  LeastLoaded  ///< bucket goes to the worker with fewest queued systems
};

const char* to_string(BackpressurePolicy p);
const char* to_string(DispatchPolicy p);

/// Fault-tolerance policy of the service (docs/ROBUSTNESS.md). Defaults
/// are the production setting: guards on, retries with failover, breaker
/// armed — with injection disabled none of it touches the hot path
/// beyond one O(n) screening pass per system.
struct ResilienceConfig {
  /// Route solves through solver::GuardedSolver (prescreen, quarantine
  /// bisect, residual postcheck, pivoting CPU fallback). Off restores
  /// the legacy all-or-nothing batch behavior.
  bool guards = true;
  /// Dominance floor / residual tolerance forwarded to the guards
  /// (see solver::GuardConfig).
  double dominance_floor = 0.0;
  double residual_tol = 0.0;

  /// Device-fault retries on the same worker before failing over.
  int max_retries = 2;
  /// Base of the exponential retry backoff (wall-clock ms): attempt k
  /// sleeps retry_backoff_ms * 2^k.
  double retry_backoff_ms = 0.25;
  /// After retries are exhausted, hand the batch to up to
  /// (num_workers - 1) other workers before the CPU path.
  bool device_failover = true;
  /// Last resort: solve the batch with the pivoting CPU solver instead
  /// of failing it when every device attempt was exhausted.
  bool cpu_failover = true;

  /// Consecutive device failures that open a worker's circuit breaker.
  int breaker_threshold = 3;
  /// How long an open breaker keeps the worker out of dispatch before a
  /// half-open probe is allowed (wall-clock ms).
  double breaker_cooldown_ms = 25.0;

  /// Arm the TDA_FAULTS device-level sites (launch/alloc failures) on
  /// the service's devices. The service has a recovery story, so it
  /// opts in by default; bare solver runs stay unarmed.
  bool arm_device_faults = true;
};

struct ServiceConfig {
  /// Max requests admitted but not yet dispatched to a device.
  std::size_t queue_capacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  DispatchPolicy dispatch = DispatchPolicy::LeastLoaded;

  /// Size trigger: a (n, dtype) bucket flushes once it holds this many
  /// systems. 1 disables coalescing (one solve per request).
  std::size_t flush_systems = 64;
  /// Deadline trigger: a bucket flushes once its oldest request has
  /// waited this long, however few systems it holds.
  double flush_interval_ms = 2.0;

  /// Deadline applied to requests that don't carry their own
  /// (milliseconds from admission; 0 = no deadline). A request whose
  /// deadline lapses before its bucket is picked up by a worker
  /// completes with SolveStatus::TimedOut; once a worker starts solving
  /// it, it runs to completion.
  double default_deadline_ms = 0.0;

  /// Shared persistent tuning cache: loaded at start-up, merge-saved on
  /// shutdown. Empty = in-memory only.
  std::string cache_path;

  ResilienceConfig resilience;
};

}  // namespace tda::service
