#pragma once
// Solve-service configuration: admission control (bounded queue +
// backpressure policy), flush triggers for shape-bucketed coalescing,
// and the multi-device dispatch policy.

#include <cstddef>
#include <string>

namespace tda::service {

/// What submit() does when the admission queue is full.
enum class BackpressurePolicy {
  Block,      ///< caller blocks until a slot frees (or shutdown)
  Reject,     ///< the new request is refused immediately
  ShedOldest  ///< the oldest queued request is shed to admit the new one
};

/// How flushed buckets are spread across the worker devices.
enum class DispatchPolicy {
  RoundRobin,  ///< workers take turns
  LeastLoaded  ///< bucket goes to the worker with fewest queued systems
};

const char* to_string(BackpressurePolicy p);
const char* to_string(DispatchPolicy p);

struct ServiceConfig {
  /// Max requests admitted but not yet dispatched to a device.
  std::size_t queue_capacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  DispatchPolicy dispatch = DispatchPolicy::LeastLoaded;

  /// Size trigger: a (n, dtype) bucket flushes once it holds this many
  /// systems. 1 disables coalescing (one solve per request).
  std::size_t flush_systems = 64;
  /// Deadline trigger: a bucket flushes once its oldest request has
  /// waited this long, however few systems it holds.
  double flush_interval_ms = 2.0;

  /// Deadline applied to requests that don't carry their own
  /// (milliseconds from admission; 0 = no deadline). A request whose
  /// deadline lapses before its bucket is picked up by a worker
  /// completes with SolveStatus::TimedOut; once a worker starts solving
  /// it, it runs to completion.
  double default_deadline_ms = 0.0;

  /// Shared persistent tuning cache: loaded at start-up, merge-saved on
  /// shutdown. Empty = in-memory only.
  std::string cache_path;
};

}  // namespace tda::service
