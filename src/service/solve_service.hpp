#pragma once
// SolveService — the serving layer in front of the auto-tuned solver.
//
// The paper's deployment model (tune once per shape, amortize the tuned
// switch points over many solves) pays off at scale when many
// independent callers funnel their systems through one warm solver.
// This service is that funnel:
//
//   * callers submit() single systems (or ragged batches, one request
//     per system) and get std::futures back;
//   * a scheduler thread buckets pending requests by (n, dtype) shape
//     and coalesces each bucket into ONE batched solve per flush —
//     triggered by size (flush_systems) or deadline (flush_interval_ms);
//   * flushed buckets are dispatched across one or more simulated
//     devices (round-robin or least-loaded), each owned by a worker
//     thread;
//   * all workers share a single thread-safe tuning cache, so a shape
//     tuned on one device/worker is a cache hit for every later solve;
//   * admission is bounded (queue_capacity) with a configurable
//     backpressure policy: Block / Reject / ShedOldest;
//   * per-request deadlines produce TimedOut responses instead of
//     unbounded queueing; shutdown() drains in-flight work.
//
// Resilience (docs/ROBUSTNESS.md): solves run through the numerical
// guards (solver/guards.hpp), so one singular or NaN system returns a
// typed Singular/NonFinite response while its batchmates complete.
// Device faults (faults::DeviceFault, injectable via TDA_FAULTS) are
// retried with exponential backoff, then failed over to another worker
// and finally to the pivoting CPU path; each worker carries a circuit
// breaker (consecutive-failure threshold, cooldown, half-open probe)
// that steers dispatch away from a sick device. A worker thread that
// dies mid-shift is detected by the scheduler, its job is requeued and
// the thread restarted — a dead worker never strands its queue.
//
// Telemetry: the service owns a session. Every admitted request gets a
// trace id (minted here, or adopted from SolveRequest::trace) and a
// "request" root span that stays open until the request reaches a
// terminal state; the batch/solver/kernel spans a solve emits — across
// worker threads, retries, failover, chunk splits and the CPU fallback
// — all nest under that root, so the Chrome-trace export renders one
// coherent tree per request. Metrics record queue depth, wait time,
// batch occupancy and solve times, plus per-(shape, dtype, outcome)
// end-to-end latency histograms whose exemplars carry the trace ids of
// slow requests. The tracer is internally synchronized; workers record
// concurrently without service-level serialization.
//
// Thread-safety model: one service mutex guards the buckets, the
// admission count and every worker's job queue; each simulated Device
// is touched only by its owning worker thread; the tuning cache and the
// metrics registry have their own internal locks.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/buffer_pool.hpp"
#include "common/check.hpp"
#include "faults/faults.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/thread_pool.hpp"
#include "kernels/device_batch.hpp"
#include "service/config.hpp"
#include "service/request.hpp"
#include "solver/cancel.hpp"
#include "solver/chunked.hpp"
#include "solver/gpu_solver.hpp"
#include "solver/guards.hpp"
#include "solver/ragged.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "tridiag/batch.hpp"
#include "tuning/cache.hpp"
#include "tuning/dynamic_tuner.hpp"

namespace tda::service {

template <typename T>
class SolveService {
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

 public:
  /// Aggregate request accounting (monotonic since construction).
  struct Counters {
    std::size_t submitted = 0;   ///< submit() calls
    std::size_t completed = 0;   ///< requests solved (status Ok)
    std::size_t rejected = 0;    ///< refused at admission
    std::size_t shed = 0;        ///< evicted by ShedOldest
    std::size_t timed_out = 0;   ///< deadline lapsed before solve
    std::size_t failed = 0;      ///< solve threw
    std::size_t flushes = 0;     ///< coalesced batches dispatched
    std::size_t coalesced_systems = 0;  ///< systems across all flushes
    std::size_t max_batch_systems = 0;  ///< largest single flush
    std::size_t tunes = 0;       ///< tuning runs not served from cache
    double device_ms = 0.0;      ///< total simulated solve ms, all devices

    // --- resilience ---
    std::size_t singular = 0;      ///< requests completed Singular
    std::size_t nonfinite = 0;     ///< requests completed NonFinite
    std::size_t fallbacks = 0;     ///< systems solved by the CPU fallback
    std::size_t quarantined = 0;   ///< systems isolated by the bisect
    std::size_t retries = 0;       ///< device-fault retry attempts
    std::size_t failovers = 0;     ///< batches re-dispatched to another worker
    std::size_t cpu_failovers = 0; ///< batches that ended on the CPU path
    std::size_t worker_restarts = 0;  ///< crashed worker threads revived
    std::size_t breaker_opens = 0;    ///< circuit-breaker open transitions

    // --- resource exhaustion / watchdog ---
    std::size_t timed_out_queue = 0;     ///< deadline lapsed before pickup
    std::size_t timed_out_inflight = 0;  ///< cancelled mid-solve, expired
    std::size_t timeout_requeues = 0;    ///< cancelled mid-solve, requeued
    std::size_t mem_rejected = 0;     ///< refused by memory admission
    std::size_t chunked_solves = 0;   ///< batches split into >1 chunk
    std::size_t chunks = 0;           ///< sub-batches solved on devices
    std::size_t oom_events = 0;       ///< OutOfMemory absorbed by chunking
    std::size_t oom_fallbacks = 0;    ///< systems CPU-solved at the floor
    std::size_t watchdog_cancels = 0; ///< overdue jobs cancelled in flight
    std::size_t watchdog_stalls = 0;  ///< stall strikes issued
  };

  explicit SolveService(const std::vector<gpusim::DeviceSpec>& devices,
                        ServiceConfig cfg = {})
      : cfg_(std::move(cfg)), start_tp_(Clock::now()) {
    TDA_REQUIRE(!devices.empty(), "service needs at least one device");
    TDA_REQUIRE(cfg_.queue_capacity >= 1, "queue capacity must be positive");
    TDA_REQUIRE(cfg_.flush_systems >= 1, "flush size must be positive");
    TDA_REQUIRE(cfg_.flush_interval_ms >= 0.0,
                "flush interval must be non-negative");
    if (!cfg_.cache_path.empty()) cache_.load(cfg_.cache_path);
    if (cfg_.engine_threads > 0) {
      gpusim::ThreadPool::global().resize(cfg_.engine_threads);
    }
    telemetry_.tracer.set_clock([this] { return wall_s(Clock::now()); });
    if (telemetry_.metrics.enabled()) {
      telemetry_.metrics.set("service.workers",
                             static_cast<double>(devices.size()));
      telemetry_.metrics.set("service.queue_capacity",
                             static_cast<double>(cfg_.queue_capacity));
    }
    workers_.reserve(devices.size());
    for (const auto& spec : devices) {
      workers_.push_back(std::make_unique<Worker>(spec));
      // Every worker device records into the service session, but must
      // NOT adopt the simulated clock: kernel spans need wall timestamps
      // to nest under the service's wall-clock batch spans.
      workers_.back()->dev.set_telemetry(&telemetry_, /*adopt_clock=*/false);
      if (cfg_.resilience.arm_device_faults) {
        workers_.back()->dev.arm_faults();
      }
      if (cfg_.mem_budget_bytes > 0) {
        workers_.back()->dev.set_mem_budget(cfg_.mem_budget_bytes);
      }
      total_mem_budget_ += workers_.back()->dev.memory().budget();
    }
    if (telemetry_.metrics.enabled()) {
      telemetry_.metrics.set("service.mem_budget_bytes",
                             static_cast<double>(total_mem_budget_));
    }
    for (auto& w : workers_) {
      w->thread = std::thread([this, wp = w.get()] { worker_loop(*wp); });
    }
    scheduler_ = std::thread([this] { scheduler_loop(); });
    if (cfg_.watchdog.enable) {
      watchdog_ = std::thread([this] { watchdog_loop(); });
    }
  }

  ~SolveService() { shutdown(); }

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// How a finished request is delivered: through a promise (the
  /// future-returning submit) or a callback (the wire front door, which
  /// must not burn a thread per outstanding future). Exactly one is
  /// armed. A callback may run on a service worker thread — or on the
  /// submitting thread, under the service mutex, for admission-time
  /// rejections — so it must be cheap and MUST NOT call back into the
  /// service (enqueue the response and return).
  struct Completion {
    std::promise<SolveResponse<T>> promise;
    std::function<void(SolveResponse<T>)> callback;

    void deliver(SolveResponse<T> resp) {
      if (callback) {
        callback(std::move(resp));
      } else {
        promise.set_value(std::move(resp));
      }
    }
  };

  /// Submits one system; the future resolves when the request reaches a
  /// terminal state (see SolveStatus). Never blocks except under
  /// BackpressurePolicy::Block with a full queue.
  std::future<SolveResponse<T>> submit(SolveRequest<T> req) {
    Completion done;
    auto future = done.promise.get_future();
    submit_impl(std::move(req), std::move(done));
    return future;
  }

  /// Callback-delivery submit: `on_done` fires exactly once with the
  /// terminal response (possibly before this call returns, for
  /// admission rejections). See Completion for the callback contract.
  void submit(SolveRequest<T> req,
              std::function<void(SolveResponse<T>)> on_done) {
    Completion done;
    done.callback = std::move(on_done);
    submit_impl(std::move(req), std::move(done));
  }

 private:
  void submit_impl(SolveRequest<T> req, Completion done) {
    const std::size_t n = req.size();
    TDA_REQUIRE(n >= 1, "solve request needs at least one equation");
    TDA_REQUIRE(req.a.size() == n && req.c.size() == n && req.d.size() == n,
                "request diagonals must have equal length");

    std::unique_lock lk(mu_);
    counters_submitted_.fetch_add(1, std::memory_order_relaxed);
    if (!accepting_) {
      lk.unlock();
      count_terminal(SolveStatus::Rejected);
      finish(std::move(done), SolveStatus::Rejected);
      return;
    }
    if (pending_ >= cfg_.queue_capacity) {
      switch (cfg_.backpressure) {
        case BackpressurePolicy::Block:
          cv_space_.wait(lk, [this] {
            return pending_ < cfg_.queue_capacity || !accepting_;
          });
          if (!accepting_) {
            lk.unlock();
            count_terminal(SolveStatus::Rejected);
            finish(std::move(done), SolveStatus::Rejected);
            return;
          }
          break;
        case BackpressurePolicy::Reject:
          lk.unlock();
          count_terminal(SolveStatus::Rejected);
          finish(std::move(done), SolveStatus::Rejected);
          return;
        case BackpressurePolicy::ShedOldest:
          shed_oldest_locked();
          break;
      }
    }

    // Memory-aware admission: keep the projected device-resident
    // footprint of everything admitted-but-unfinished within the
    // configured fraction of the pooled budgets. ShedOldest makes room
    // by evicting; Block degenerates to Reject here (a caller blocked on
    // bytes could wait forever behind one oversized resident batch).
    const std::size_t fp = footprint_of(n);
    if (cfg_.mem_admission_fraction > 0.0 && total_mem_budget_ > 0) {
      const double cap = cfg_.mem_admission_fraction *
                         static_cast<double>(total_mem_budget_);
      const auto projected = [&] {
        std::size_t inflight = 0;
        for (const auto& w : workers_) inflight += w->queued_bytes;
        return static_cast<double>(pending_bytes_ + inflight + fp);
      };
      if (cfg_.backpressure == BackpressurePolicy::ShedOldest) {
        while (projected() > cap && shed_oldest_locked()) {
        }
      }
      if (projected() > cap) {
        counters_mem_rejected_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry_.metrics.enabled()) {
          telemetry_.metrics.add("service.mem_rejected");
        }
        lk.unlock();
        count_terminal(SolveStatus::Rejected);
        finish(std::move(done), SolveStatus::Rejected,
               "memory admission: projected footprint exceeds budget");
        return;
      }
    }

    const TimePoint now = Clock::now();
    Pending p;
    p.a = std::move(req.a);
    p.b = std::move(req.b);
    p.c = std::move(req.c);
    p.d = std::move(req.d);
    p.done = std::move(done);
    p.tenant = std::move(req.tenant);
    p.enqueue_tp = now;
    p.deadline_tp = deadline_of(now, req.deadline_ms);
    p.seq = next_seq_++;
    p.n = n;
    if (telemetry_.tracer.enabled()) {
      // Mint the request's identity at admission: adopt the caller's
      // trace id when one came in, otherwise start a fresh trace. The
      // root span stays open until the request reaches a terminal state;
      // everything the solve path emits parents under it via p.ctx.
      p.ctx.trace_id = req.trace.trace_id != 0 ? req.trace.trace_id
                                               : telemetry::next_trace_id();
      p.root = telemetry_.tracer.open_at(
          "request", "service", wall_s(now),
          {p.ctx.trace_id, req.trace.parent});
      telemetry_.tracer.attr(p.root, "n", static_cast<double>(n));
      if (!p.tenant.empty()) {
        telemetry_.tracer.attr(p.root, "tenant", p.tenant);
      }
      p.ctx.parent = p.root;
    }
    buckets_[n].push_back(std::move(p));
    ++pending_;
    pending_bytes_ += fp;
    if (telemetry_.metrics.enabled()) {
      telemetry_.metrics.add("service.submitted");
      telemetry_.metrics.observe("service.queue_depth",
                                 static_cast<double>(pending_));
    }
    lk.unlock();
    cv_sched_.notify_one();
  }

 public:
  /// Submits every system of a ragged batch (one request each); the
  /// scheduler re-coalesces equal sizes — possibly together with other
  /// callers' systems. Futures are in system order.
  std::vector<std::future<SolveResponse<T>>> submit_ragged(
      const solver::RaggedBatch<T>& rb) {
    std::vector<std::future<SolveResponse<T>>> futures;
    futures.reserve(rb.num_systems());
    for (std::size_t s = 0; s < rb.num_systems(); ++s) {
      const std::size_t n = rb.system_size(s);
      const std::size_t off = rb.offset(s);
      SolveRequest<T> req;
      req.a.assign(rb.a().begin() + off, rb.a().begin() + off + n);
      req.b.assign(rb.b().begin() + off, rb.b().begin() + off + n);
      req.c.assign(rb.c().begin() + off, rb.c().begin() + off + n);
      req.d.assign(rb.d().begin() + off, rb.d().begin() + off + n);
      futures.push_back(submit(std::move(req)));
    }
    return futures;
  }

  /// Stops admission, drains every queued and in-flight request, joins
  /// all threads and merge-saves the tuning cache. Idempotent; called by
  /// the destructor.
  void shutdown() {
    {
      std::lock_guard lk(mu_);
      if (stopped_) return;
      accepting_ = false;
      draining_ = true;
    }
    cv_sched_.notify_all();
    cv_space_.notify_all();
    if (scheduler_.joinable()) scheduler_.join();
    {
      // The scheduler is gone, so shutdown takes over worker supervision:
      // keep reviving crashed workers until every queue is drained and
      // nothing is in flight — otherwise a crash during the drain would
      // strand its requeued job with unfulfilled promises.
      std::unique_lock lk(mu_);
      for (;;) {
        heal_workers_locked();
        bool busy = false;
        for (const auto& w : workers_) {
          if (w->crashed || !w->jobs.empty() || w->queued_systems > 0) {
            busy = true;
            break;
          }
        }
        if (!busy) break;
        cv_sched_.wait_for(lk, std::chrono::milliseconds(1));
      }
      for (auto& w : workers_) w->stop = true;
    }
    for (auto& w : workers_) w->cv.notify_all();
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
    {
      std::lock_guard lk(mu_);
      watchdog_stop_ = true;
    }
    cv_watchdog_.notify_all();
    if (watchdog_.joinable()) watchdog_.join();
    if (!cfg_.cache_path.empty()) cache_.save_merged(cfg_.cache_path);
    std::lock_guard lk(mu_);
    stopped_ = true;
  }

  [[nodiscard]] bool accepting() const {
    std::lock_guard lk(mu_);
    return accepting_;
  }
  /// Requests admitted but not yet dispatched to a device.
  [[nodiscard]] std::size_t queue_depth() const {
    std::lock_guard lk(mu_);
    return pending_;
  }
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  [[nodiscard]] const tuning::TuningCache& cache() const { return cache_; }

  // --- live reconfiguration (ops admin socket, docs/OPERATIONS.md) ---

  /// Changes the default relative deadline applied to requests that
  /// carry none. Under the service mutex (deadline_of reads it there);
  /// work already queued keeps the deadline computed at its admission.
  void set_default_deadline_ms(double ms) {
    std::lock_guard lk(mu_);
    cfg_.default_deadline_ms = ms;
  }

  /// Resizes the shared engine thread pool without a restart; <= 0 is
  /// ignored. In-flight batch solves finish on the old lanes.
  void resize_engine_threads(int lanes) {
    if (lanes > 0) gpusim::ThreadPool::global().resize(lanes);
  }

  /// Rewrites the env-gated export files (TDA_TRACE / TDA_METRICS /
  /// TDA_OPENMETRICS) now instead of waiting for destruction — orderly
  /// exits (SIGTERM, admin drain, hot-restart handoff) call this so the
  /// on-disk numbers are current even if the process is then killed.
  void flush_exports() { env_export_.flush(); }

  [[nodiscard]] Counters counters() const {
    Counters c;
    c.submitted = counters_submitted_.load(std::memory_order_relaxed);
    c.completed = counters_completed_.load(std::memory_order_relaxed);
    c.rejected = counters_rejected_.load(std::memory_order_relaxed);
    c.shed = counters_shed_.load(std::memory_order_relaxed);
    c.timed_out = counters_timed_out_.load(std::memory_order_relaxed);
    c.failed = counters_failed_.load(std::memory_order_relaxed);
    c.flushes = counters_flushes_.load(std::memory_order_relaxed);
    c.coalesced_systems =
        counters_coalesced_.load(std::memory_order_relaxed);
    c.max_batch_systems = counters_max_batch_.load(std::memory_order_relaxed);
    c.tunes = counters_tunes_.load(std::memory_order_relaxed);
    c.device_ms = counters_device_ms_.load(std::memory_order_relaxed);
    c.singular = counters_singular_.load(std::memory_order_relaxed);
    c.nonfinite = counters_nonfinite_.load(std::memory_order_relaxed);
    c.fallbacks = counters_fallbacks_.load(std::memory_order_relaxed);
    c.quarantined = counters_quarantined_.load(std::memory_order_relaxed);
    c.retries = counters_retries_.load(std::memory_order_relaxed);
    c.failovers = counters_failovers_.load(std::memory_order_relaxed);
    c.cpu_failovers =
        counters_cpu_failovers_.load(std::memory_order_relaxed);
    c.worker_restarts =
        counters_worker_restarts_.load(std::memory_order_relaxed);
    c.breaker_opens =
        counters_breaker_opens_.load(std::memory_order_relaxed);
    c.timed_out_queue =
        counters_timed_out_queue_.load(std::memory_order_relaxed);
    c.timed_out_inflight =
        counters_timed_out_inflight_.load(std::memory_order_relaxed);
    c.timeout_requeues =
        counters_timeout_requeues_.load(std::memory_order_relaxed);
    c.mem_rejected = counters_mem_rejected_.load(std::memory_order_relaxed);
    c.chunked_solves =
        counters_chunked_solves_.load(std::memory_order_relaxed);
    c.chunks = counters_chunks_.load(std::memory_order_relaxed);
    c.oom_events = counters_oom_events_.load(std::memory_order_relaxed);
    c.oom_fallbacks =
        counters_oom_fallbacks_.load(std::memory_order_relaxed);
    c.watchdog_cancels =
        counters_watchdog_cancels_.load(std::memory_order_relaxed);
    c.watchdog_stalls =
        counters_watchdog_stalls_.load(std::memory_order_relaxed);
    return c;
  }

  /// Summed device memory budgets of every worker.
  [[nodiscard]] std::size_t total_mem_budget() const {
    return total_mem_budget_;
  }

  /// The service telemetry session (enable via enable_all() before
  /// submitting, or through TDA_TRACE / TDA_METRICS which export with a
  /// ".service" suffix at destruction).
  [[nodiscard]] telemetry::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const {
    return telemetry_;
  }

  bool export_trace(const std::string& path) const {
    return telemetry::write_text_file(
        path, telemetry::to_chrome_trace(telemetry_.tracer));
  }
  bool export_metrics(const std::string& path) const {
    return telemetry::write_text_file(
        path, telemetry::to_metrics_json(telemetry_.metrics));
  }
  /// Writes the registry in OpenMetrics text format (counters, gauges,
  /// summaries, latency histograms with exemplars, `# EOF`).
  bool export_openmetrics(const std::string& path) const {
    return telemetry::write_text_file(
        path, telemetry::to_openmetrics(telemetry_.metrics));
  }

  /// Point-in-time view of one worker for dashboards/consoles.
  struct WorkerHealth {
    std::string device;       ///< device name
    const char* breaker;      ///< "closed" / "open" / "half_open"
    std::size_t restarts;     ///< times the worker thread was revived
    std::size_t queued_systems;
    bool busy;                ///< a job is being processed right now
  };

  [[nodiscard]] std::vector<WorkerHealth> worker_health() const {
    std::vector<WorkerHealth> out;
    out.reserve(workers_.size());
    std::lock_guard lk(mu_);
    for (const auto& w : workers_) {
      WorkerHealth h;
      h.device = w->dev.spec().name;
      h.breaker = w->breaker == Breaker::Open       ? "open"
                  : w->breaker == Breaker::HalfOpen ? "half_open"
                                                    : "closed";
      h.restarts = w->restarts;
      h.queued_systems = w->queued_systems;
      h.busy = w->busy;
      out.push_back(std::move(h));
    }
    return out;
  }

  /// Refreshes the point-in-time gauges: queue depth, per-worker breaker
  /// state and restarts, per-lane engine utilization, buffer-pool hit
  /// rate and host allocation count. The watchdog calls this every tick;
  /// callers exporting metrics mid-run may call it directly.
  void publish_gauges() {
    if (!telemetry_.metrics.enabled()) return;
    {
      std::lock_guard lk(mu_);
      publish_service_gauges_locked();
    }
    publish_engine_gauges();
  }

 private:
  struct Pending {
    std::vector<T> a, b, c, d;
    Completion done;
    std::string tenant;  ///< latency-histogram label ("" = unlabeled)
    TimePoint enqueue_tp{};
    TimePoint deadline_tp = TimePoint::max();
    std::uint64_t seq = 0;
    std::size_t n = 0;  ///< system size (latency-bucket label)
    /// Request identity: trace id + root span ("request"), minted at
    /// admission while the tracer is enabled. Every span the solve path
    /// emits for this request hangs under `root`.
    telemetry::TraceContext ctx;
    telemetry::SpanId root = telemetry::kInvalidSpan;
  };

  struct Job {
    std::size_t n = 0;
    std::vector<Pending> members;
    TimePoint oldest_enqueue_tp{};
    TimePoint flush_tp{};
    const char* trigger = "size";
    std::size_t failovers = 0;  ///< workers that already gave up on it
  };

  /// Per-worker circuit-breaker state (guarded by the service mutex).
  enum class Breaker { Closed, Open, HalfOpen };

  struct Worker {
    explicit Worker(const gpusim::DeviceSpec& spec) : dev(spec) {}
    gpusim::Device dev;
    std::thread thread;
    std::condition_variable cv;       // waits on the service mutex
    std::deque<Job> jobs;             // guarded by the service mutex
    std::size_t queued_systems = 0;   // guarded by the service mutex
    std::size_t queued_bytes = 0;     // guarded by the service mutex
    bool stop = false;                // guarded by the service mutex

    // --- watchdog view of the in-flight job (guarded by the service
    // mutex; the token's own state is atomic) ---
    bool busy = false;  ///< a job is being processed right now
    std::shared_ptr<solver::CancelToken> token;
    TimePoint job_deadline = TimePoint::max();  ///< earliest member deadline
    std::uint64_t last_beats = 0;
    TimePoint last_progress_tp{};
    int strikes = 0;

    // --- health (guarded by the service mutex) ---
    Breaker breaker = Breaker::Closed;
    int consecutive_failures = 0;
    TimePoint open_until{};   ///< when an Open breaker may half-open
    bool crashed = false;     ///< thread died; scheduler must revive it
    std::size_t restarts = 0;

    /// Decorrelated-jitter stream of the retry backoff (worker thread
    /// only). Seeded from the worker's address so concurrent workers
    /// hit by the same fault desynchronize their retries.
    std::uint64_t backoff_rng = 0;
  };

  [[nodiscard]] double wall_s(TimePoint tp) const {
    return std::chrono::duration<double>(tp - start_tp_).count();
  }
  [[nodiscard]] TimePoint deadline_of(TimePoint now, double req_ms) const {
    const double ms = req_ms > 0.0 ? req_ms : cfg_.default_deadline_ms;
    if (ms <= 0.0) return TimePoint::max();
    return now + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(ms));
  }

  static void finish(Completion done, SolveStatus status,
                     std::string error = {}) {
    SolveResponse<T> resp;
    resp.status = status;
    resp.error = std::move(error);
    done.deliver(std::move(resp));
  }

  static void finish_timeout(Completion done, TimeoutScope scope) {
    SolveResponse<T> resp;
    resp.status = SolveStatus::TimedOut;
    resp.timeout_scope = scope;
    done.deliver(std::move(resp));
  }

  /// Histogram shape label: smallest power-of-two bucket holding n.
  [[nodiscard]] static std::string shape_bucket(std::size_t n) {
    std::size_t b = 16;
    while (b < n && b < (std::size_t{1} << 24)) b <<= 1;
    return "le" + std::to_string(b);
  }

  [[nodiscard]] static const char* dtype_name() {
    return sizeof(T) == 4 ? "f32" : "f64";
  }

  /// Marks one request terminal for observability: closes its root span
  /// (stamping the outcome) and records its end-to-end latency into the
  /// per-(shape, dtype, outcome) histogram with the trace id as the
  /// exemplar. Idempotent on the span side (root is cleared). Safe to
  /// call with tracing and/or metrics disabled.
  void conclude(Pending& p, const char* outcome, TimePoint now) {
    if (p.root != telemetry::kInvalidSpan) {
      telemetry_.tracer.attr(p.root, "outcome", outcome);
      telemetry_.tracer.close_at(p.root, wall_s(now));
      p.root = telemetry::kInvalidSpan;
    }
    if (telemetry_.metrics.enabled()) {
      const double e2e_ms = std::chrono::duration<double, std::milli>(
                                now - p.enqueue_tp)
                                .count();
      // Wire-submitted requests carry their tenant into the label set;
      // in-process callers keep the original three labels so existing
      // dashboards/parsers see an unchanged key shape.
      const std::string key =
          p.tenant.empty()
              ? telemetry::labeled("service.request_latency_ms",
                                   {{"shape", shape_bucket(p.n)},
                                    {"dtype", dtype_name()},
                                    {"outcome", outcome}})
              : telemetry::labeled("service.request_latency_ms",
                                   {{"tenant", p.tenant},
                                    {"shape", shape_bucket(p.n)},
                                    {"dtype", dtype_name()},
                                    {"outcome", outcome}});
      telemetry_.metrics.observe_latency(key, e2e_ms, p.ctx.trace_id);
    }
  }

  /// Gauges that read service state. Caller holds mu_.
  void publish_service_gauges_locked() {
    auto& mx = telemetry_.metrics;
    mx.set("service.queue_depth_now", static_cast<double>(pending_));
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const Worker& w = *workers_[i];
      const std::string lane = std::to_string(i);
      // 0 = closed, 1 = half-open, 2 = open (matches alert thresholds:
      // anything above 0 deserves a look).
      const double state = w.breaker == Breaker::Open       ? 2.0
                           : w.breaker == Breaker::HalfOpen ? 1.0
                                                            : 0.0;
      mx.set(telemetry::labeled("service.breaker_state",
                                {{"worker", lane},
                                 {"device", w.dev.spec().name}}),
             state);
      mx.set(telemetry::labeled("service.worker_restarts_now",
                                {{"worker", lane}}),
             static_cast<double>(w.restarts));
    }
  }

  /// Gauges that read global engine/pool state. No service lock needed.
  void publish_engine_gauges() {
    auto& mx = telemetry_.metrics;
    const auto lanes = gpusim::ThreadPool::global().lane_stats();
    double busy_ms = 0.0;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const std::string lane = std::to_string(i);
      mx.set(telemetry::labeled("engine.lane.busy_ms", {{"lane", lane}}),
             lanes[i].busy_ms);
      mx.set(telemetry::labeled("engine.lane.chunks", {{"lane", lane}}),
             static_cast<double>(lanes[i].chunks));
      busy_ms += lanes[i].busy_ms;
    }
    const double up_ms = std::chrono::duration<double, std::milli>(
                             Clock::now() - start_tp_)
                             .count();
    if (!lanes.empty() && up_ms > 0.0) {
      mx.set("engine.utilization",
             busy_ms / (up_ms * static_cast<double>(lanes.size())));
    }
    const auto ps = tda::BufferPool::global().stats();
    mx.set("pool.hit_rate",
           ps.acquires > 0
               ? static_cast<double>(ps.hits) /
                     static_cast<double>(ps.acquires)
               : 0.0);
    mx.set("pool.cached_bytes", static_cast<double>(ps.cached_bytes));
    mx.set("pool.outstanding_bytes",
           static_cast<double>(ps.outstanding_bytes));
    mx.set("host.alloc_count", static_cast<double>(host_alloc_count()));
  }

  /// Device-resident bytes one queued system of size n will need.
  [[nodiscard]] static std::size_t footprint_of(std::size_t n) {
    return kernels::DeviceBatch<T>::footprint_bytes(1, n);
  }

  void count_timeout_scope(TimeoutScope scope, std::size_t n = 1) {
    if (scope == TimeoutScope::Queue) {
      counters_timed_out_queue_.fetch_add(n, std::memory_order_relaxed);
      if (telemetry_.metrics.enabled()) {
        telemetry_.metrics.add("service.timed_out_queue",
                               static_cast<double>(n));
      }
    } else if (scope == TimeoutScope::InFlight) {
      counters_timed_out_inflight_.fetch_add(n, std::memory_order_relaxed);
      if (telemetry_.metrics.enabled()) {
        telemetry_.metrics.add("service.timed_out_inflight",
                               static_cast<double>(n));
      }
    }
  }

  void count_terminal(SolveStatus status, std::size_t n = 1) {
    switch (status) {
      case SolveStatus::Ok:
        counters_completed_.fetch_add(n, std::memory_order_relaxed);
        break;
      case SolveStatus::Rejected:
        counters_rejected_.fetch_add(n, std::memory_order_relaxed);
        if (telemetry_.metrics.enabled())
          telemetry_.metrics.add("service.rejected", static_cast<double>(n));
        break;
      case SolveStatus::Shed:
        counters_shed_.fetch_add(n, std::memory_order_relaxed);
        if (telemetry_.metrics.enabled())
          telemetry_.metrics.add("service.shed", static_cast<double>(n));
        break;
      case SolveStatus::TimedOut:
        counters_timed_out_.fetch_add(n, std::memory_order_relaxed);
        if (telemetry_.metrics.enabled())
          telemetry_.metrics.add("service.timed_out",
                                 static_cast<double>(n));
        break;
      case SolveStatus::Failed:
        counters_failed_.fetch_add(n, std::memory_order_relaxed);
        if (telemetry_.metrics.enabled())
          telemetry_.metrics.add("service.failed", static_cast<double>(n));
        break;
      case SolveStatus::Singular:
        counters_singular_.fetch_add(n, std::memory_order_relaxed);
        if (telemetry_.metrics.enabled())
          telemetry_.metrics.add("service.singular", static_cast<double>(n));
        break;
      case SolveStatus::NonFinite:
        counters_nonfinite_.fetch_add(n, std::memory_order_relaxed);
        if (telemetry_.metrics.enabled())
          telemetry_.metrics.add("service.nonfinite",
                                 static_cast<double>(n));
        break;
    }
  }

  /// Evicts the globally oldest queued request. Returns false when the
  /// queue was already empty. Caller holds mu_.
  bool shed_oldest_locked() {
    auto oldest_bucket = buckets_.end();
    std::uint64_t oldest_seq = std::numeric_limits<std::uint64_t>::max();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      if (!it->second.empty() && it->second.front().seq < oldest_seq) {
        oldest_seq = it->second.front().seq;
        oldest_bucket = it;
      }
    }
    if (oldest_bucket == buckets_.end()) return false;
    Pending victim = std::move(oldest_bucket->second.front());
    oldest_bucket->second.pop_front();
    pending_bytes_ -= std::min(pending_bytes_,
                               footprint_of(oldest_bucket->first));
    if (oldest_bucket->second.empty()) buckets_.erase(oldest_bucket);
    --pending_;
    count_terminal(SolveStatus::Shed);
    conclude(victim, "shed", Clock::now());
    finish(std::move(victim.done), SolveStatus::Shed);
    return true;
  }

  /// Times out every queued request whose deadline lapsed. Caller holds
  /// mu_.
  void expire_overdue_locked(TimePoint now) {
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      auto& dq = it->second;
      for (auto p = dq.begin(); p != dq.end();) {
        if (p->deadline_tp <= now) {
          count_terminal(SolveStatus::TimedOut);
          count_timeout_scope(TimeoutScope::Queue);
          conclude(*p, "timed_out", now);
          finish_timeout(std::move(p->done), TimeoutScope::Queue);
          p = dq.erase(p);
          --pending_;
          pending_bytes_ -= std::min(pending_bytes_,
                                     footprint_of(it->first));
        } else {
          ++p;
        }
      }
      it = dq.empty() ? buckets_.erase(it) : std::next(it);
    }
  }

  /// Earliest instant at which a trigger can fire (bucket age reaching
  /// flush_interval_ms, or a request deadline). Caller holds mu_.
  [[nodiscard]] TimePoint next_event_locked() const {
    TimePoint wake = TimePoint::max();
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(cfg_.flush_interval_ms));
    for (const auto& [n, dq] : buckets_) {
      if (dq.empty()) continue;
      wake = std::min(wake, dq.front().enqueue_tp + interval);
      for (const auto& p : dq) wake = std::min(wake, p.deadline_tp);
    }
    return wake;
  }

  /// True when the breaker admits new work on this worker: Closed or
  /// HalfOpen always; Open flips to HalfOpen (one probe) once the
  /// cooldown elapsed. Caller holds mu_.
  [[nodiscard]] bool breaker_admits_locked(Worker& w, TimePoint now) {
    if (w.breaker != Breaker::Open) return true;
    if (w.open_until > now) return false;
    w.breaker = Breaker::HalfOpen;
    if (telemetry_.metrics.enabled()) {
      telemetry_.metrics.add("service.breaker.half_open");
    }
    return true;
  }

  /// Picks the worker for a flush of `systems` systems, steering around
  /// open breakers; when every breaker is open the least-recently
  /// opened worker takes the job (its queue feeds the eventual probe).
  /// Caller holds mu_.
  [[nodiscard]] Worker* pick_worker_locked(std::size_t systems) {
    const TimePoint now = Clock::now();
    Worker* chosen = nullptr;
    if (cfg_.dispatch == DispatchPolicy::RoundRobin) {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        Worker* cand = workers_[rr_next_ % workers_.size()].get();
        ++rr_next_;
        if (breaker_admits_locked(*cand, now)) {
          chosen = cand;
          break;
        }
      }
    } else {
      for (auto& w : workers_) {
        if (!breaker_admits_locked(*w, now)) continue;
        if (chosen == nullptr || w->queued_systems < chosen->queued_systems)
          chosen = w.get();
      }
    }
    if (chosen == nullptr) {
      for (auto& w : workers_) {
        if (chosen == nullptr || w->open_until < chosen->open_until)
          chosen = w.get();
      }
    }
    chosen->queued_systems += systems;
    return chosen;
  }

  /// Breaker bookkeeping after one device attempt. Called by workers
  /// (which do not hold mu_).
  void record_device_result(Worker& w, bool success) {
    bool opened = false;
    {
      std::lock_guard lk(mu_);
      if (success) {
        w.consecutive_failures = 0;
        if (w.breaker != Breaker::Closed) {
          w.breaker = Breaker::Closed;
          if (telemetry_.metrics.enabled()) {
            telemetry_.metrics.add("service.breaker.closed");
          }
        }
        return;
      }
      ++w.consecutive_failures;
      if (w.breaker == Breaker::HalfOpen ||
          (w.breaker == Breaker::Closed &&
           w.consecutive_failures >= cfg_.resilience.breaker_threshold)) {
        w.breaker = Breaker::Open;
        w.open_until =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    cfg_.resilience.breaker_cooldown_ms));
        opened = true;
      }
    }
    if (opened) {
      counters_breaker_opens_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_.metrics.enabled()) {
        telemetry_.metrics.add("service.breaker.open");
      }
    }
  }

  /// Any worker thread awaiting revival? Caller holds mu_.
  [[nodiscard]] bool any_crashed_locked() const {
    for (const auto& w : workers_) {
      if (w->crashed) return true;
    }
    return false;
  }

  /// Joins and respawns every crashed worker thread. Its queue (including
  /// the requeued in-flight job) survives untouched, so no request is
  /// stranded. Caller holds mu_; the dying thread never re-acquires it,
  /// so the join cannot deadlock.
  void heal_workers_locked() {
    for (auto& w : workers_) {
      if (!w->crashed) continue;
      if (w->thread.joinable()) w->thread.join();
      w->crashed = false;
      ++w->restarts;
      counters_worker_restarts_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry_.metrics.enabled()) {
        telemetry_.metrics.add("service.worker_restarts");
      }
      w->thread = std::thread([this, wp = w.get()] { worker_loop(*wp); });
      w->cv.notify_one();
    }
  }

  /// Flushes every triggered bucket to a worker. Caller holds mu_.
  void dispatch_ready_locked(TimePoint now) {
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(cfg_.flush_interval_ms));
    bool freed = false;
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      auto& dq = it->second;
      // Carve jobs of at most flush_systems while a trigger holds:
      // flush_systems is both the size trigger and the batch-size cap, so
      // a deep bucket spreads over the worker pool instead of landing as
      // one oversized batch on a single device.
      for (;;) {
        const char* trigger = nullptr;
        if (dq.empty()) {
          break;
        } else if (draining_) {
          trigger = "drain";
        } else if (dq.size() >= cfg_.flush_systems) {
          trigger = "size";
        } else if (dq.front().enqueue_tp + interval <= now) {
          trigger = "interval";
        }
        if (trigger == nullptr) break;
        Job job;
        job.n = it->first;
        job.trigger = trigger;
        job.flush_tp = now;
        job.oldest_enqueue_tp = dq.front().enqueue_tp;
        const std::size_t take = std::min(dq.size(), cfg_.flush_systems);
        job.members.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          job.members.push_back(std::move(dq.front()));
          dq.pop_front();
        }
        pending_ -= take;
        pending_bytes_ -=
            std::min(pending_bytes_, take * footprint_of(it->first));
        freed = true;
        counters_flushes_.fetch_add(1, std::memory_order_relaxed);
        counters_coalesced_.fetch_add(take, std::memory_order_relaxed);
        std::size_t prev =
            counters_max_batch_.load(std::memory_order_relaxed);
        while (prev < take && !counters_max_batch_.compare_exchange_weak(
                                  prev, take, std::memory_order_relaxed)) {
        }
        if (telemetry_.metrics.enabled()) {
          telemetry_.metrics.add("service.flushes");
          telemetry_.metrics.add(std::string("service.flush.") + trigger);
          telemetry_.metrics.observe("service.batch_occupancy",
                                     static_cast<double>(take));
          telemetry_.metrics.observe("service.queue_depth",
                                     static_cast<double>(pending_));
        }
        Worker* w = pick_worker_locked(take);
        w->queued_bytes += take * footprint_of(it->first);
        w->jobs.push_back(std::move(job));
        w->cv.notify_one();
      }
      it = dq.empty() ? buckets_.erase(it) : std::next(it);
    }
    if (freed) cv_space_.notify_all();
  }

  void scheduler_loop() {
    std::unique_lock lk(mu_);
    for (;;) {
      heal_workers_locked();
      expire_overdue_locked(Clock::now());
      dispatch_ready_locked(Clock::now());
      if (draining_ && pending_ == 0) return;
      const TimePoint wake = next_event_locked();
      if (wake == TimePoint::max()) {
        cv_sched_.wait(lk, [this] {
          return draining_ || pending_ > 0 || any_crashed_locked();
        });
      } else {
        cv_sched_.wait_until(lk, wake);
      }
    }
  }

  void worker_loop(Worker& w) {
    std::unique_lock lk(mu_);
    for (;;) {
      w.cv.wait(lk, [&w] { return w.stop || !w.jobs.empty(); });
      if (w.jobs.empty() && w.stop) return;
      Job job = std::move(w.jobs.front());
      w.jobs.pop_front();
      const std::size_t systems = job.members.size();
      const std::size_t bytes = systems * footprint_of(job.n);

      auto& inj = faults::FaultInjector::global();
      if (inj.fire(faults::Site::WorkerCrash)) {
        // Simulated thread death. The job is requeued intact (no promise
        // has been touched yet) and the scheduler revives the thread.
        if (telemetry_.metrics.enabled()) {
          telemetry_.metrics.add("service.faults.worker_crash");
        }
        w.jobs.push_front(std::move(job));
        w.crashed = true;
        cv_sched_.notify_all();
        return;
      }

      // Publish the in-flight job to the watchdog before dropping the
      // lock: earliest member deadline + a fresh heartbeat token.
      w.busy = true;
      w.token = std::make_shared<solver::CancelToken>();
      w.job_deadline = TimePoint::max();
      for (const auto& p : job.members) {
        w.job_deadline = std::min(w.job_deadline, p.deadline_tp);
      }
      w.last_beats = 0;
      w.last_progress_tp = Clock::now();
      w.strikes = 0;
      auto token = w.token;
      lk.unlock();

      process(w, job, token.get());
      lk.lock();
      w.queued_systems -= systems;
      w.queued_bytes -= std::min(w.queued_bytes, bytes);
      w.busy = false;
      w.token.reset();
      if (draining_) cv_sched_.notify_all();
    }
  }

  /// Samples every busy worker: cancels jobs past their deadline and
  /// issues stall strikes when a solve's heartbeat stops advancing;
  /// enough consecutive strikes open the worker's breaker so dispatch
  /// steers away from the stalled device.
  void watchdog_loop() {
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(
            std::max(cfg_.watchdog.interval_ms, 0.05)));
    const auto stall_threshold =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                cfg_.watchdog.stall_threshold_ms));
    std::unique_lock lk(mu_);
    while (!watchdog_stop_) {
      const TimePoint now = Clock::now();
      for (auto& wp : workers_) {
        Worker& w = *wp;
        if (w.crashed || !w.busy || w.token == nullptr) {
          w.strikes = 0;
          continue;
        }
        if (w.job_deadline <= now && !w.token->cancelled()) {
          w.token->cancel();
          counters_watchdog_cancels_.fetch_add(1,
                                               std::memory_order_relaxed);
          if (telemetry_.metrics.enabled()) {
            telemetry_.metrics.add("service.watchdog.cancels");
          }
        }
        const std::uint64_t beats = w.token->beats();
        if (beats != w.last_beats) {
          w.last_beats = beats;
          w.last_progress_tp = now;
          w.strikes = 0;
        } else if (now - w.last_progress_tp >= stall_threshold) {
          ++w.strikes;
          w.last_progress_tp = now;
          counters_watchdog_stalls_.fetch_add(1,
                                              std::memory_order_relaxed);
          if (telemetry_.metrics.enabled()) {
            telemetry_.metrics.add("service.watchdog.stalls");
          }
          if (w.strikes >= cfg_.watchdog.stall_strikes) {
            w.strikes = 0;
            if (w.breaker != Breaker::Open) {
              w.breaker = Breaker::Open;
              w.open_until =
                  now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                cfg_.resilience.breaker_cooldown_ms));
              counters_breaker_opens_.fetch_add(
                  1, std::memory_order_relaxed);
              if (telemetry_.metrics.enabled()) {
                telemetry_.metrics.add("service.breaker.open");
              }
            }
          }
        }
      }
      if (telemetry_.metrics.enabled()) {
        publish_service_gauges_locked();
        publish_engine_gauges();
      }
      cv_watchdog_.wait_for(lk, interval);
    }
  }

  /// Runs one coalesced batch on the worker's device and fulfils every
  /// member promise. No service lock held. `token` is the cancellation
  /// token the worker published to the watchdog for this job.
  void process(Worker& w, Job& job, solver::CancelToken* token) {
    const TimePoint t_pickup = Clock::now();

    // Requests whose deadline lapsed while queued behind this flush time
    // out here (scope Queue); everything picked up in time starts
    // solving under the watchdog's in-flight deadline enforcement.
    std::vector<Pending> live;
    live.reserve(job.members.size());
    for (auto& p : job.members) {
      if (p.deadline_tp <= t_pickup) {
        count_terminal(SolveStatus::TimedOut);
        count_timeout_scope(TimeoutScope::Queue);
        conclude(p, "timed_out", t_pickup);
        finish_timeout(std::move(p.done), TimeoutScope::Queue);
      } else {
        live.push_back(std::move(p));
      }
    }
    if (live.empty()) return;

    // Install the primary member's trace context as this worker thread's
    // ambient parent and open a "batch" span under it: every span the
    // solve emits below (tuner, solver stages, chunk splits, kernel
    // launches, CPU fallback) nests under the batch via the thread-local
    // span stack. Batchmates riding along carry a link attribute back to
    // the shared batch trace on their own roots.
    auto& tr = telemetry_.tracer;
    telemetry::TraceContext bctx;
    if (tr.enabled() && live.front().root != telemetry::kInvalidSpan) {
      bctx = telemetry::TraceContext{live.front().ctx.trace_id,
                                     live.front().root};
    }
    telemetry::TraceScope trace_scope(&tr, bctx);
    telemetry::ScopedSpan batch_span(tr, "batch", "service");
    if (batch_span.active()) {
      batch_span.attr("n", static_cast<double>(job.n));
      batch_span.attr("systems", static_cast<double>(live.size()));
      batch_span.attr("device", w.dev.spec().name);
      batch_span.attr("trigger", job.trigger);
      if (job.failovers > 0) {
        batch_span.attr("failovers", static_cast<double>(job.failovers));
      }
      if (bctx.valid()) {
        const std::string hex = telemetry::trace_id_hex(bctx.trace_id);
        for (std::size_t i = 1; i < live.size(); ++i) {
          if (live[i].root != telemetry::kInvalidSpan) {
            tr.attr(live[i].root, "batch_trace", hex);
          }
        }
      }
    }

    auto& inj = faults::FaultInjector::global();
    if (inj.fire(faults::Site::WorkerStall)) {
      // Stall mid-job, after the pickup filter: a deadline lapsing
      // during the sleep is the watchdog's to enforce, so an injected
      // stall exercises the in-flight timeout path end to end.
      if (telemetry_.metrics.enabled()) {
        telemetry_.metrics.add("service.faults.worker_stall");
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(
              inj.config().stall_ms));
    }

    const std::size_t m = live.size();
    const std::size_t n = job.n;
    tridiag::TridiagBatch<T> batch(m, n);
    for (std::size_t i = 0; i < m; ++i) {
      std::copy(live[i].a.begin(), live[i].a.end(),
                batch.a().data() + i * n);
      std::copy(live[i].b.begin(), live[i].b.end(),
                batch.b().data() + i * n);
      std::copy(live[i].c.begin(), live[i].c.end(),
                batch.c().data() + i * n);
      std::copy(live[i].d.begin(), live[i].d.end(),
                batch.d().data() + i * n);
    }

    // Poison injection: contaminate systems on their way to the device
    // so the guards and quarantine get exercised end-to-end.
    if (inj.enabled()) {
      for (std::size_t i = 0; i < m; ++i) {
        faults::Poison kind{};
        bool hit = false;
        if (inj.fire(faults::Site::PoisonNaN)) {
          kind = faults::Poison::NaN;
          hit = true;
        } else if (inj.fire(faults::Site::PoisonZeroPivot)) {
          kind = faults::Poison::ZeroPivot;
          hit = true;
        }
        if (hit) {
          faults::poison_system<T>(
              batch.a().subspan(i * n, n), batch.b().subspan(i * n, n),
              batch.c().subspan(i * n, n), batch.d().subspan(i * n, n),
              kind);
          if (telemetry_.metrics.enabled()) {
            telemetry_.metrics.add("service.faults.poisoned");
          }
        }
      }
    }

    const auto& res = cfg_.resilience;
    const TimePoint t_solve0 = Clock::now();
    solver::SolveStats stats;
    std::vector<solver::SystemStatus> sys_status(
        m, solver::SystemStatus::Ok);
    std::size_t batch_retries = 0;
    std::size_t quarantined = 0;
    solver::ChunkStats chunk_stats;
    bool solved = false;
    bool device_exhausted = false;
    bool cancelled = false;
    std::string error;
    // Decorrelated-jitter state for the retry backoff: one stream per
    // worker so correlated faults don't retry in lockstep across
    // workers (the stream survives batches — that's fine, any seed is
    // as good as another).
    double backoff_prev_ms = 0.0;

    for (int attempt = 0; !solved; ++attempt) {
      try {
        // The tuning search is cost-model introspection (hundreds of
        // cost-only launches), not production traffic: run it with the
        // device's fault sites disarmed so an injected launch failure
        // exercises the solve path, not the tuner.
        const bool armed = w.dev.faults_armed();
        w.dev.arm_faults(false);
        tuning::DynamicTuner<T> tuner(w.dev, &cache_);
        const auto tuned = tuner.tune({m, n});
        w.dev.arm_faults(armed);
        if (!tuned.from_cache)
          counters_tunes_.fetch_add(1, std::memory_order_relaxed);
        // The tuned layout decides which pipeline this coalesced batch
        // takes (staged PCR vs interleaved SIMD Thomas) — surface it on
        // the batch span so a trace shows the choice per flush.
        if (batch_span.active()) {
          batch_span.attr("layout",
                          tridiag::to_string(tuned.points.layout));
        }
        solver::GpuTridiagonalSolver<T> solver(w.dev, tuned.points);
        solver.set_cancel_token(token);
        std::optional<solver::GuardConfig> gc;
        if (res.guards) {
          gc.emplace();
          gc->dominance_floor = res.dominance_floor;
          gc->residual_tol = res.residual_tol;
        }
        // ChunkedSolver splits the batch when its device footprint
        // exceeds the worker's memory budget and absorbs OutOfMemory
        // (genuine or injected) by bisecting down to a CPU-fallback
        // floor — so OOM never reaches the retry loop below.
        solver::ChunkedSolver<T> chunked(w.dev, solver, gc);
        auto cres = chunked.solve(batch);
        stats = cres.guarded.stats;
        sys_status = std::move(cres.guarded.status);
        quarantined = cres.guarded.quarantined;
        chunk_stats = cres.chunking;
        record_device_result(w, true);
        solved = true;
      } catch (const solver::SolveCancelled&) {
        cancelled = true;
        break;
      } catch (const faults::DeviceFault& e) {
        record_device_result(w, false);
        if (telemetry_.metrics.enabled()) {
          telemetry_.metrics.add("service.faults.device");
        }
        if (attempt < res.max_retries) {
          ++batch_retries;
          counters_retries_.fetch_add(1, std::memory_order_relaxed);
          if (telemetry_.metrics.enabled()) {
            telemetry_.metrics.add("service.retries");
          }
          if (res.retry_backoff_ms > 0.0) {
            double sleep_ms;
            if (res.retry_jitter) {
              if (w.backoff_rng == 0) {
                w.backoff_rng =
                    reinterpret_cast<std::uintptr_t>(&w) | 1u;
              }
              sleep_ms = decorrelated_backoff_ms(
                  res.retry_backoff_ms, backoff_prev_ms,
                  res.retry_backoff_max_ms, w.backoff_rng);
              backoff_prev_ms = sleep_ms;
            } else {
              sleep_ms = res.retry_backoff_ms *
                         static_cast<double>(1 << attempt);
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(sleep_ms));
          }
          continue;
        }
        device_exhausted = true;
        error = e.what();
        break;
      } catch (const std::exception& e) {
        // Numerical errors are absorbed by the guards; anything else
        // here is non-retryable (e.g. legacy no-guards mode).
        error = e.what();
        break;
      }
    }

    if (cancelled) {
      // The watchdog cancelled this batch mid-flight. Members whose
      // deadline has lapsed finish as TimedOut (scope InFlight); the
      // rest are requeued at the front of their bucket so a later,
      // smaller flush can still make their deadline. During the drain
      // nothing would dispatch a requeue, so everything times out.
      const TimePoint now = Clock::now();
      std::vector<Pending> requeue;
      std::unique_lock lk(mu_);
      for (auto& p : live) {
        if (!draining_ && p.deadline_tp > now) {
          // Requeued members keep their root span open: the re-dispatch
          // emits a second batch span under the same request tree.
          requeue.push_back(std::move(p));
        } else {
          count_terminal(SolveStatus::TimedOut);
          count_timeout_scope(TimeoutScope::InFlight);
          conclude(p, "timed_out", now);
          finish_timeout(std::move(p.done), TimeoutScope::InFlight);
        }
      }
      if (!requeue.empty()) {
        counters_timeout_requeues_.fetch_add(requeue.size(),
                                             std::memory_order_relaxed);
        if (telemetry_.metrics.enabled()) {
          telemetry_.metrics.add("service.timeout_requeues",
                                 static_cast<double>(requeue.size()));
        }
        auto& dq = buckets_[n];
        for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
          dq.push_front(std::move(*it));
        }
        pending_ += requeue.size();
        pending_bytes_ += requeue.size() * footprint_of(n);
        cv_sched_.notify_all();
      }
      return;
    }

    if (!solved && device_exhausted) {
      // Retries on this device are spent. Hand the whole job to another
      // worker (bounded by the pool size so it cannot ping-pong
      // forever), or solve it on the CPU as the last resort.
      if (res.device_failover && workers_.size() > 1 &&
          job.failovers + 1 < workers_.size()) {
        std::lock_guard lk(mu_);
        Worker* alt = nullptr;
        const TimePoint now = Clock::now();
        for (auto& cand : workers_) {
          if (cand.get() == &w) continue;
          if (!breaker_admits_locked(*cand, now)) continue;
          if (alt == nullptr || cand->queued_systems < alt->queued_systems)
            alt = cand.get();
        }
        if (alt != nullptr) {
          ++job.failovers;
          job.members = std::move(live);
          alt->queued_systems += job.members.size();
          alt->queued_bytes += job.members.size() * footprint_of(n);
          alt->jobs.push_back(std::move(job));
          alt->cv.notify_one();
          counters_failovers_.fetch_add(1, std::memory_order_relaxed);
          if (telemetry_.metrics.enabled()) {
            telemetry_.metrics.add("service.failovers");
          }
          return;
        }
      }
      if (res.cpu_failover) {
        counters_cpu_failovers_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry_.metrics.enabled()) {
          telemetry_.metrics.add("service.cpu_failovers");
        }
        for (std::size_t i = 0; i < m; ++i) {
          sys_status[i] = solver::pivoting_fallback<T>(batch.system(i),
                                                       batch.solution(i));
        }
        stats = {};
        solved = true;
        error.clear();
      }
    }
    const TimePoint t_solve1 = Clock::now();

    if (!solved) {
      count_terminal(SolveStatus::Failed, m);
      for (auto& p : live) {
        conclude(p, "failed", t_solve1);
        finish(std::move(p.done), SolveStatus::Failed, error);
      }
      return;
    }

    std::size_t n_ok = 0, n_fallback = 0, n_singular = 0, n_nonfinite = 0;
    for (const auto s : sys_status) {
      switch (s) {
        case solver::SystemStatus::Ok: ++n_ok; break;
        case solver::SystemStatus::FallbackUsed: ++n_fallback; break;
        case solver::SystemStatus::Singular: ++n_singular; break;
        case solver::SystemStatus::NonFinite: ++n_nonfinite; break;
      }
    }

    counters_device_ms_.fetch_add(stats.total_ms,
                                  std::memory_order_relaxed);
    // Account BEFORE fulfilling promises: anyone who has observed a
    // future resolve must see counters that include that request.
    count_terminal(SolveStatus::Ok, n_ok + n_fallback);
    if (n_singular > 0) count_terminal(SolveStatus::Singular, n_singular);
    if (n_nonfinite > 0)
      count_terminal(SolveStatus::NonFinite, n_nonfinite);
    if (n_fallback > 0) {
      counters_fallbacks_.fetch_add(n_fallback, std::memory_order_relaxed);
    }
    if (quarantined > 0) {
      counters_quarantined_.fetch_add(quarantined,
                                      std::memory_order_relaxed);
    }
    if (chunk_stats.chunks > 0) {
      counters_chunks_.fetch_add(chunk_stats.chunks,
                                 std::memory_order_relaxed);
      if (chunk_stats.chunks > 1) {
        counters_chunked_solves_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (chunk_stats.oom_events > 0) {
      counters_oom_events_.fetch_add(chunk_stats.oom_events,
                                     std::memory_order_relaxed);
    }
    if (chunk_stats.oom_fallback_systems > 0) {
      counters_oom_fallbacks_.fetch_add(chunk_stats.oom_fallback_systems,
                                        std::memory_order_relaxed);
    }
    if (telemetry_.metrics.enabled()) {
      auto& mx = telemetry_.metrics;
      if (chunk_stats.chunks > 1) {
        mx.add("service.chunked_solves");
        mx.add("service.chunks",
               static_cast<double>(chunk_stats.chunks));
      }
      if (chunk_stats.oom_events > 0) {
        mx.add("service.oom_events",
               static_cast<double>(chunk_stats.oom_events));
      }
      if (chunk_stats.oom_fallback_systems > 0) {
        mx.add("service.oom_fallbacks",
               static_cast<double>(chunk_stats.oom_fallback_systems));
      }
    }
    if (telemetry_.metrics.enabled()) {
      telemetry_.metrics.observe("service.solve_ms", stats.total_ms);
      telemetry_.metrics.add("service.solved_systems",
                             static_cast<double>(n_ok + n_fallback));
      if (n_fallback > 0) {
        telemetry_.metrics.add("service.fallback_used",
                               static_cast<double>(n_fallback));
      }
      if (quarantined > 0) {
        telemetry_.metrics.add("service.quarantined",
                               static_cast<double>(quarantined));
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      SolveResponse<T> resp;
      const char* outcome = "ok";
      switch (sys_status[i]) {
        case solver::SystemStatus::Ok:
          resp.status = SolveStatus::Ok;
          break;
        case solver::SystemStatus::FallbackUsed:
          resp.status = SolveStatus::Ok;
          resp.fallback_used = true;
          outcome = "fallback";
          break;
        case solver::SystemStatus::Singular:
          resp.status = SolveStatus::Singular;
          resp.error = "system is numerically singular";
          outcome = "singular";
          break;
        case solver::SystemStatus::NonFinite:
          resp.status = SolveStatus::NonFinite;
          resp.error = "system contains non-finite coefficients";
          outcome = "nonfinite";
          break;
      }
      if (resp.status == SolveStatus::Ok) {
        resp.x.assign(batch.x().begin() + i * n,
                      batch.x().begin() + (i + 1) * n);
      }
      resp.trace_id = live[i].ctx.trace_id;
      resp.batch_systems = m;
      resp.retries = batch_retries;
      resp.chunks = chunk_stats.chunks;
      resp.wait_ms = std::chrono::duration<double, std::milli>(
                         job.flush_tp - live[i].enqueue_tp)
                         .count();
      resp.solve_ms = stats.total_ms;
      resp.device = w.dev.spec().name;
      if (telemetry_.metrics.enabled()) {
        telemetry_.metrics.observe("service.wait_ms", resp.wait_ms);
        telemetry_.metrics.observe(
            "service.e2e_ms", std::chrono::duration<double, std::milli>(
                                  t_solve1 - live[i].enqueue_tp)
                                  .count());
      }
      if (live[i].root != telemetry::kInvalidSpan) {
        tr.attr(live[i].root, "device", w.dev.spec().name);
        if (batch_retries > 0) {
          tr.attr(live[i].root, "retries",
                  static_cast<double>(batch_retries));
        }
      }
      conclude(live[i], outcome, t_solve1);
      live[i].done.deliver(std::move(resp));
    }
    const TimePoint t_done = Clock::now();

    if (tr.enabled()) {
      // Whole spans with pre-measured wall timestamps, parented
      // explicitly: "enqueue" predates the batch span so it hangs off
      // the request root; the scheduling phases nest under the batch.
      const telemetry::TraceContext under_batch{
          bctx.trace_id, batch_span.active() ? batch_span.id() : bctx.parent};
      const auto span = [&](const char* name, TimePoint b, TimePoint e,
                            telemetry::TraceContext ctx) {
        const auto id =
            tr.emit_at(name, "service", wall_s(b), wall_s(e), ctx);
        tr.attr(id, "n", static_cast<double>(n));
        tr.attr(id, "systems", static_cast<double>(m));
        tr.attr(id, "device", w.dev.spec().name);
        return id;
      };
      const auto enq =
          span("enqueue", job.oldest_enqueue_tp, job.flush_tp, bctx);
      tr.attr(enq, "trigger", job.trigger);
      span("flush", job.flush_tp, t_solve0, under_batch);
      const auto slv = span("solve", t_solve0, t_solve1, under_batch);
      tr.attr(slv, "sim_ms", stats.total_ms);
      if (batch_retries > 0) {
        tr.attr(slv, "retries", static_cast<double>(batch_retries));
      }
      if (n_fallback > 0) {
        tr.attr(slv, "fallbacks", static_cast<double>(n_fallback));
      }
      span("complete", t_solve1, t_done, under_batch);
    }
  }

  ServiceConfig cfg_;
  TimePoint start_tp_;

  mutable std::mutex mu_;
  std::condition_variable cv_sched_;
  std::condition_variable cv_space_;
  std::map<std::size_t, std::deque<Pending>> buckets_;  // keyed by n
  std::size_t pending_ = 0;
  std::size_t pending_bytes_ = 0;  ///< device footprint of queued requests
  std::uint64_t next_seq_ = 0;
  std::uint64_t rr_next_ = 0;
  bool accepting_ = true;
  bool draining_ = false;
  bool stopped_ = false;
  bool watchdog_stop_ = false;  // guarded by mu_

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread scheduler_;
  std::thread watchdog_;
  std::condition_variable cv_watchdog_;
  std::size_t total_mem_budget_ = 0;  ///< summed worker budgets (const)

  tuning::TuningCache cache_;

  telemetry::Telemetry telemetry_;
  telemetry::EnvExport env_export_{telemetry_, "service"};

  std::atomic<std::size_t> counters_submitted_{0};
  std::atomic<std::size_t> counters_completed_{0};
  std::atomic<std::size_t> counters_rejected_{0};
  std::atomic<std::size_t> counters_shed_{0};
  std::atomic<std::size_t> counters_timed_out_{0};
  std::atomic<std::size_t> counters_failed_{0};
  std::atomic<std::size_t> counters_flushes_{0};
  std::atomic<std::size_t> counters_coalesced_{0};
  std::atomic<std::size_t> counters_max_batch_{0};
  std::atomic<std::size_t> counters_tunes_{0};
  std::atomic<double> counters_device_ms_{0.0};
  std::atomic<std::size_t> counters_singular_{0};
  std::atomic<std::size_t> counters_nonfinite_{0};
  std::atomic<std::size_t> counters_fallbacks_{0};
  std::atomic<std::size_t> counters_quarantined_{0};
  std::atomic<std::size_t> counters_retries_{0};
  std::atomic<std::size_t> counters_failovers_{0};
  std::atomic<std::size_t> counters_cpu_failovers_{0};
  std::atomic<std::size_t> counters_worker_restarts_{0};
  std::atomic<std::size_t> counters_breaker_opens_{0};
  std::atomic<std::size_t> counters_timed_out_queue_{0};
  std::atomic<std::size_t> counters_timed_out_inflight_{0};
  std::atomic<std::size_t> counters_timeout_requeues_{0};
  std::atomic<std::size_t> counters_mem_rejected_{0};
  std::atomic<std::size_t> counters_chunked_solves_{0};
  std::atomic<std::size_t> counters_chunks_{0};
  std::atomic<std::size_t> counters_oom_events_{0};
  std::atomic<std::size_t> counters_oom_fallbacks_{0};
  std::atomic<std::size_t> counters_watchdog_cancels_{0};
  std::atomic<std::size_t> counters_watchdog_stalls_{0};
};

}  // namespace tda::service
