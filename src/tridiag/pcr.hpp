#pragma once
// Parallel cyclic reduction (PCR).
//
// One PCR step with shift s rewrites every equation i by eliminating its
// couplings to i-s and i+s using those equations, leaving i coupled to
// i-2s and i+2s instead. After one shift-1 step the even and odd equations
// form two independent interleaved subsystems; this is the splitting
// primitive behind every stage of the multi-stage solver. Running steps
// with shifts 1, 2, 4, ... ⌈log2 n⌉ times decouples every unknown:
// x[i] = d[i] / b[i].
//
// All functions operate on SystemView (strided), so the same code serves
// the CPU reference, the global-memory splitting kernels and the
// shared-memory stage.

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "tridiag/batch.hpp"

namespace tda::tridiag {

/// One PCR step with the given shift (in view-local index space).
/// Reads src, writes dst; src and dst must not alias and must have the
/// same size. Boundary neighbours (i-s < 0, i+s >= n) are treated as
/// absent, which makes the step valid for any n, power of two or not.
template <typename T>
void pcr_step(const SystemView<const T>& src, const SystemView<T>& dst,
              std::size_t shift) {
  const std::size_t n = src.size();
  TDA_REQUIRE(dst.size() == n, "pcr_step: size mismatch");
  TDA_REQUIRE(shift >= 1, "pcr_step: shift must be >= 1");
  const auto s = static_cast<std::ptrdiff_t>(shift);
  const auto nn = static_cast<std::ptrdiff_t>(n);

  for (std::ptrdiff_t i = 0; i < nn; ++i) {
    const std::ptrdiff_t im = i - s;
    const std::ptrdiff_t ip = i + s;
    const auto ui = static_cast<std::size_t>(i);

    T alpha{0}, gamma{0};
    T nb = src.b[ui];
    T na{0}, nc{0};
    T nd = src.d[ui];

    if (im >= 0) {
      const auto uim = static_cast<std::size_t>(im);
      alpha = -src.a[ui] / src.b[uim];
      nb += alpha * src.c[uim];
      na = alpha * src.a[uim];
      nd += alpha * src.d[uim];
    }
    if (ip < nn) {
      const auto uip = static_cast<std::size_t>(ip);
      gamma = -src.c[ui] / src.b[uip];
      nb += gamma * src.a[uip];
      nc = gamma * src.c[uip];
      nd += gamma * src.d[uip];
    }
    dst.a[ui] = na;
    dst.b[ui] = nb;
    dst.c[ui] = nc;
    dst.d[ui] = nd;
  }
}

/// PCR step restricted to equations [begin, end) of the view — the work a
/// single cooperating block contributes to a grid-wide split (Stage 1).
/// Neighbour reads may fall outside [begin, end); they read `src`, which
/// holds pre-step values, so chunked execution equals a full pcr_step.
template <typename T>
void pcr_step_range(const SystemView<const T>& src, const SystemView<T>& dst,
                    std::size_t shift, std::size_t begin, std::size_t end) {
  const std::size_t n = src.size();
  TDA_REQUIRE(dst.size() == n, "pcr_step_range: size mismatch");
  TDA_REQUIRE(begin <= end && end <= n, "pcr_step_range: bad range");
  TDA_REQUIRE(shift >= 1, "pcr_step_range: shift must be >= 1");
  const auto s = static_cast<std::ptrdiff_t>(shift);
  const auto nn = static_cast<std::ptrdiff_t>(n);

  for (std::size_t ui = begin; ui < end; ++ui) {
    const auto i = static_cast<std::ptrdiff_t>(ui);
    const std::ptrdiff_t im = i - s;
    const std::ptrdiff_t ip = i + s;
    T nb = src.b[ui];
    T na{0}, nc{0};
    T nd = src.d[ui];
    if (im >= 0) {
      const auto uim = static_cast<std::size_t>(im);
      const T alpha = -src.a[ui] / src.b[uim];
      nb += alpha * src.c[uim];
      na = alpha * src.a[uim];
      nd += alpha * src.d[uim];
    }
    if (ip < nn) {
      const auto uip = static_cast<std::size_t>(ip);
      const T gamma = -src.c[ui] / src.b[uip];
      nb += gamma * src.a[uip];
      nc = gamma * src.c[uip];
      nd += gamma * src.d[uip];
    }
    dst.a[ui] = na;
    dst.b[ui] = nb;
    dst.c[ui] = nc;
    dst.d[ui] = nd;
  }
}

/// Number of PCR steps with doubling shifts needed to fully decouple a
/// system of size n (⌈log2 n⌉; 0 for n <= 1).
inline std::size_t pcr_steps_to_decouple(std::size_t n) {
  std::size_t steps = 0;
  std::size_t shift = 1;
  while (shift < n) {
    shift *= 2;
    ++steps;
  }
  return steps;
}

/// Flop count of one PCR step over n equations (for cost accounting).
inline std::size_t pcr_step_flops(std::size_t n) { return 14 * n; }

/// Full PCR solve of a single system using caller-visible scratch of the
/// same shape. Overwrites both sys and scratch; writes unknowns to x.
/// This is the CPU reference for the pure-PCR GPU kernel.
template <typename T>
void pcr_solve(SystemView<T> sys, SystemView<T> scratch, StridedView<T> x) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(scratch.size() == n, "pcr_solve: scratch size mismatch");
  TDA_REQUIRE(x.size() == n, "pcr_solve: solution size mismatch");

  SystemView<T>* src = &sys;
  SystemView<T>* dst = &scratch;
  for (std::size_t shift = 1; shift < n; shift *= 2) {
    pcr_step(SystemView<const T>{src->a.as_const(), src->b.as_const(),
                                 src->c.as_const(), src->d.as_const()},
             *dst, shift);
    std::swap(src, dst);
  }
  for (std::size_t i = 0; i < n; ++i) x[i] = src->d[i] / src->b[i];
}

}  // namespace tda::tridiag
