#pragma once
// Workload generators for tests, benchmarks and examples.
//
// The paper evaluates batches described as m×n ("1K×1K is 1024 systems of
// 1024 equations"). These generators synthesize such batches with
// controllable numerical character. All are deterministic in the seed.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "tridiag/batch.hpp"

namespace tda::tridiag {

/// Strictly diagonally dominant random batch — safe for every algorithm
/// in the library (no pivoting needed, PCR/CR pivots never vanish).
/// `dominance` > 1 controls how dominant the diagonal is.
template <typename T>
TridiagBatch<T> make_diag_dominant(std::size_t m, std::size_t n,
                                   std::uint64_t seed,
                                   double dominance = 2.0,
                                   BatchStorage storage = BatchStorage::Fresh) {
  TDA_REQUIRE(dominance > 1.0, "dominance must exceed 1");
  TridiagBatch<T> batch(m, n, storage);
  Rng rng(seed);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = s * n + i;
      const double av = (i == 0) ? 0.0 : rng.uniform(-1.0, 1.0);
      const double cv = (i == n - 1) ? 0.0 : rng.uniform(-1.0, 1.0);
      const double mag =
          dominance * (std::abs(av) + std::abs(cv)) + rng.uniform(0.1, 1.0);
      a[k] = static_cast<T>(av);
      c[k] = static_cast<T>(cv);
      b[k] = static_cast<T>(rng.sign() * mag);
      d[k] = static_cast<T>(rng.uniform(-1.0, 1.0));
    }
  }
  return batch;
}

/// 1-D Poisson (second difference) systems: a = c = -1, b = 2, random
/// right-hand side. Symmetric positive definite; the classic substrate for
/// ADI and spectral Poisson solvers cited in the paper's introduction.
template <typename T>
TridiagBatch<T> make_poisson(std::size_t m, std::size_t n,
                             std::uint64_t seed,
                             BatchStorage storage = BatchStorage::Fresh) {
  TridiagBatch<T> batch(m, n, storage);
  Rng rng(seed);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = s * n + i;
      a[k] = (i == 0) ? T{0} : T{-1};
      c[k] = (i == n - 1) ? T{0} : T{-1};
      b[k] = T{2};
      d[k] = static_cast<T>(rng.uniform(-1.0, 1.0));
    }
  }
  return batch;
}

/// Natural cubic-spline second-derivative systems: diag 4, off-diag 1,
/// right-hand side from random knot values (diagonally dominant).
template <typename T>
TridiagBatch<T> make_spline(std::size_t m, std::size_t n,
                            std::uint64_t seed,
                            BatchStorage storage = BatchStorage::Fresh) {
  TridiagBatch<T> batch(m, n, storage);
  Rng rng(seed);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t s = 0; s < m; ++s) {
    double prev = rng.uniform(-1.0, 1.0);
    double cur = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = s * n + i;
      const double next = rng.uniform(-1.0, 1.0);
      a[k] = (i == 0) ? T{0} : T{1};
      c[k] = (i == n - 1) ? T{0} : T{1};
      b[k] = T{4};
      d[k] = static_cast<T>(6.0 * (next - 2.0 * cur + prev));
      prev = cur;
      cur = next;
    }
  }
  return batch;
}

/// Constant-coefficient (Toeplitz) batch with user-chosen stencil.
template <typename T>
TridiagBatch<T> make_toeplitz(std::size_t m, std::size_t n, T sub, T diag,
                              T sup, std::uint64_t seed,
                              BatchStorage storage = BatchStorage::Fresh) {
  TridiagBatch<T> batch(m, n, storage);
  Rng rng(seed);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = s * n + i;
      a[k] = (i == 0) ? T{0} : sub;
      c[k] = (i == n - 1) ? T{0} : sup;
      b[k] = diag;
      d[k] = static_cast<T>(rng.uniform(-1.0, 1.0));
    }
  }
  return batch;
}

/// Non-dominant random batch. Thomas/PCR pivots may blow up or vanish —
/// used to exercise the pivoting LU baseline and robustness checks.
template <typename T>
TridiagBatch<T> make_random_general(std::size_t m, std::size_t n,
                                    std::uint64_t seed,
                                    BatchStorage storage = BatchStorage::Fresh) {
  TridiagBatch<T> batch(m, n, storage);
  Rng rng(seed);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = s * n + i;
      a[k] = (i == 0) ? T{0} : static_cast<T>(rng.uniform(-1.0, 1.0));
      c[k] = (i == n - 1) ? T{0} : static_cast<T>(rng.uniform(-1.0, 1.0));
      b[k] = static_cast<T>(rng.uniform(-1.0, 1.0));
      d[k] = static_cast<T>(rng.uniform(-1.0, 1.0));
    }
  }
  return batch;
}

/// Batch with a known exact solution: coefficients are diagonally
/// dominant random, x* is random, and d is computed as A·x*. Lets tests
/// compare against the true solution instead of a residual.
template <typename T>
TridiagBatch<T> make_with_known_solution(std::size_t m, std::size_t n,
                                         std::uint64_t seed,
                                         std::vector<T>* x_true = nullptr,
                                         BatchStorage storage = BatchStorage::Fresh) {
  TridiagBatch<T> batch = make_diag_dominant<T>(m, n, seed, 2.0, storage);
  Rng rng(seed ^ 0x5eedu);
  std::vector<T> xs(m * n);
  for (auto& v : xs) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = s * n + i;
      T acc = b[k] * xs[k];
      if (i > 0) acc += a[k] * xs[k - 1];
      if (i + 1 < n) acc += c[k] * xs[k + 1];
      d[k] = acc;
    }
  }
  if (x_true != nullptr) *x_true = std::move(xs);
  return batch;
}

}  // namespace tda::tridiag
