#pragma once
// Solution verification: residuals and a dense Gaussian-elimination
// reference for small systems.

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "tridiag/batch.hpp"

namespace tda::tridiag {

/// Scaled max residual of one system: max_i |A x - d|_i / max(1, |d|_inf,
/// |x|_inf * |A|_row). A good solve of a well-conditioned system yields a
/// value near machine epsilon of T.
template <typename T>
double residual_inf(const SystemView<const T>& sys,
                    const StridedView<const T>& x) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(x.size() == n, "residual: size mismatch");
  double worst = 0.0;
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = static_cast<double>(sys.b[i]) * static_cast<double>(x[i]);
    double row = std::abs(static_cast<double>(sys.b[i]));
    if (i > 0) {
      acc += static_cast<double>(sys.a[i]) * static_cast<double>(x[i - 1]);
      row += std::abs(static_cast<double>(sys.a[i]));
    }
    if (i + 1 < n) {
      acc += static_cast<double>(sys.c[i]) * static_cast<double>(x[i + 1]);
      row += std::abs(static_cast<double>(sys.c[i]));
    }
    worst = std::max(worst, std::abs(acc - static_cast<double>(sys.d[i])));
    scale = std::max(scale, row * std::abs(static_cast<double>(x[i])));
    scale = std::max(scale, std::abs(static_cast<double>(sys.d[i])));
  }
  return worst / scale;
}

/// Max scaled residual across every system of a batch, checking the
/// solution already stored in batch.x(). Coefficients must still hold the
/// ORIGINAL system (pass a pristine copy if the solver destroyed them).
template <typename T>
double batch_residual_inf(const TridiagBatch<T>& original,
                          std::span<const T> x) {
  const std::size_t m = original.num_systems();
  const std::size_t n = original.system_size();
  TDA_REQUIRE(x.size() == m * n, "batch residual: size mismatch");
  double worst = 0.0;
  for (std::size_t s = 0; s < m; ++s) {
    const std::size_t off = s * n;
    SystemView<const T> sys{
        StridedView<const T>(original.a().data() + off, n, 1),
        StridedView<const T>(original.b().data() + off, n, 1),
        StridedView<const T>(original.c().data() + off, n, 1),
        StridedView<const T>(original.d().data() + off, n, 1)};
    StridedView<const T> xv(x.data() + off, n, 1);
    worst = std::max(worst, residual_inf(sys, xv));
  }
  return worst;
}

/// Overload: accepts a mutable span (template deduction cannot apply the
/// span<T> -> span<const T> conversion by itself).
template <typename T>
double batch_residual_inf(const TridiagBatch<T>& original, std::span<T> x) {
  return batch_residual_inf(original, std::span<const T>(x));
}

/// Convenience: residual of the batch against its own stored solution.
template <typename T>
double batch_residual_inf(const TridiagBatch<T>& original) {
  return batch_residual_inf(original, original.x());
}

/// Dense Gaussian elimination with partial pivoting — an algorithm-
/// independent reference for small n (O(n^3), tests only).
template <typename T>
std::vector<double> dense_solve(const SystemView<const T>& sys) {
  const std::size_t n = sys.size();
  std::vector<double> mat(n * n, 0.0);
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) mat[i * n + i - 1] = static_cast<double>(sys.a[i]);
    mat[i * n + i] = static_cast<double>(sys.b[i]);
    if (i + 1 < n) mat[i * n + i + 1] = static_cast<double>(sys.c[i]);
    rhs[i] = static_cast<double>(sys.d[i]);
  }
  // Forward elimination with partial pivoting.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(mat[r * n + k]) > std::abs(mat[piv * n + k])) piv = r;
    }
    if (piv != k) {
      for (std::size_t col = 0; col < n; ++col)
        std::swap(mat[k * n + col], mat[piv * n + col]);
      std::swap(rhs[k], rhs[piv]);
    }
    const double p = mat[k * n + k];
    TDA_REQUIRE(p != 0.0, "dense_solve: singular matrix");
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = mat[r * n + k] / p;
      if (f == 0.0) continue;
      for (std::size_t col = k; col < n; ++col)
        mat[r * n + col] -= f * mat[k * n + col];
      rhs[r] -= f * rhs[k];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = rhs[i];
    for (std::size_t col = i + 1; col < n; ++col)
      acc -= mat[i * n + col] * x[col];
    x[i] = acc / mat[i * n + i];
  }
  return x;
}

}  // namespace tda::tridiag
