#pragma once
// Input diagnostics: the checks a production solver runs before
// committing a batch to a pivot-free algorithm chain (Thomas/PCR/CR all
// assume nonzero pivots; strict diagonal dominance guarantees them).

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "tridiag/batch.hpp"
#include "tridiag/thomas.hpp"

namespace tda::tridiag {

/// Summary of a batch's numerical character.
struct BatchDiagnostics {
  /// min_i |b_i| / (|a_i| + |c_i|); > 1 means strictly diagonally
  /// dominant (safe for every pivot-free solver in this library).
  double dominance = 0.0;
  /// True when every row is strictly diagonally dominant.
  bool strictly_dominant = false;
  /// True when some diagonal entry is exactly zero (Thomas/PCR will
  /// divide by zero on the first step; use the pivoting CPU solver).
  bool zero_diagonal = false;
  /// True when boundary convention a[0] = c[n-1] = 0 holds everywhere.
  bool boundaries_normalized = true;
  /// Index of the worst (least dominant) row, as (system, equation).
  std::size_t worst_system = 0;
  std::size_t worst_equation = 0;
  /// 1-norm condition estimate of the worst system (see
  /// estimate_condition); 0 if not computed.
  double condition_estimate = 0.0;
};

/// Scans a batch and reports its numerical character. Cheap: one pass.
template <typename T>
BatchDiagnostics diagnose(const TridiagBatch<T>& batch) {
  BatchDiagnostics diag;
  diag.dominance = std::numeric_limits<double>::infinity();
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  for (std::size_t s = 0; s < m; ++s) {
    const std::size_t off = s * n;
    if (a[off] != T{0} || c[off + n - 1] != T{0}) {
      diag.boundaries_normalized = false;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = off + i;
      const double bd = std::abs(static_cast<double>(b[k]));
      if (bd == 0.0) diag.zero_diagonal = true;
      double offsum = 0.0;
      if (i > 0) offsum += std::abs(static_cast<double>(a[k]));
      if (i + 1 < n) offsum += std::abs(static_cast<double>(c[k]));
      const double ratio =
          (offsum == 0.0) ? std::numeric_limits<double>::infinity()
                          : bd / offsum;
      if (ratio < diag.dominance) {
        diag.dominance = ratio;
        diag.worst_system = s;
        diag.worst_equation = i;
      }
    }
  }
  diag.strictly_dominant = diag.dominance > 1.0 && !diag.zero_diagonal;
  return diag;
}

/// 1-norm condition number estimate of one tridiagonal system using the
/// classic Hager/Higham-style power iteration on |A^{-1}|:
/// cond ≈ ||A||_1 * ||A^{-1}||_1, with ||A^{-1}||_1 estimated from a few
/// solves. Requires a nonsingular system solvable by Thomas (use for
/// dominant systems). O(iterations * n).
template <typename T>
double estimate_condition(const SystemView<const T>& sys,
                          int iterations = 5) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(n >= 1, "condition estimate needs a system");

  // ||A||_1 = max column sum.
  double norm_a = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double col = std::abs(static_cast<double>(sys.b[j]));
    if (j > 0) col += std::abs(static_cast<double>(sys.c[j - 1]));
    if (j + 1 < n) col += std::abs(static_cast<double>(sys.a[j + 1]));
    norm_a = std::max(norm_a, col);
  }

  // Power iteration on A^{-1}: repeatedly solve A x = v with v a
  // (sign-refined) probe; ||A^{-1}||_1 >= ||x||_1 / ||v||_1.
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  std::vector<double> x(n), cs(n), ds(n), av(n), bv(n), cv(n);
  double best = 0.0;
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      av[i] = static_cast<double>(sys.a[i]);
      bv[i] = static_cast<double>(sys.b[i]);
      cv[i] = static_cast<double>(sys.c[i]);
    }
    SystemView<const double> dsys{
        StridedView<const double>(av.data(), n, 1),
        StridedView<const double>(bv.data(), n, 1),
        StridedView<const double>(cv.data(), n, 1),
        StridedView<const double>(v.data(), n, 1)};
    if (!thomas_solve(dsys, StridedView<double>(x.data(), n, 1),
                      StridedView<double>(cs.data(), n, 1),
                      StridedView<double>(ds.data(), n, 1))) {
      return std::numeric_limits<double>::infinity();
    }
    double norm_x = 0.0;
    for (double xi : x) norm_x += std::abs(xi);
    best = std::max(best, norm_x);
    // Refine the probe towards the maximizing sign pattern.
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = (x[i] >= 0.0 ? 1.0 : -1.0) / static_cast<double>(n);
    }
  }
  return norm_a * best;
}

/// Human-readable one-line report.
inline std::string to_string(const BatchDiagnostics& d) {
  std::string s = "dominance=" + std::to_string(d.dominance);
  s += d.strictly_dominant ? " (strictly dominant)" : " (NOT dominant)";
  if (d.zero_diagonal) s += " ZERO-DIAGONAL";
  if (!d.boundaries_normalized) s += " boundaries-not-normalized";
  if (d.condition_estimate > 0.0) {
    s += " cond~" + std::to_string(d.condition_estimate);
  }
  return s;
}

}  // namespace tda::tridiag
