#pragma once
// Cyclic reduction (CR), the Göddeke-style GPU baseline.
//
// Forward phase: at step s each equation i with (i+1) divisible by 2s
// eliminates its couplings to i-s and i+s, halving the active system.
// Backward phase: unknowns are recovered level by level. CR does O(n) total
// work (work-efficient, unlike PCR) but needs 2·log n dependent steps and
// its active thread count halves every step — exactly the step-vs-work
// tradeoff the paper's hybrid solvers navigate.
//
// The formulation below supports arbitrary n via boundary guards.

#include <cstddef>

#include "common/check.hpp"
#include "tridiag/batch.hpp"

namespace tda::tridiag {

/// One CR forward update of equation i using neighbours at distance s.
/// Modifies the system in place.
template <typename T>
void cr_forward_update(const SystemView<T>& sys, std::size_t i,
                       std::size_t s) {
  const std::size_t n = sys.size();
  TDA_ASSERT(i < n);
  T alpha{0}, gamma{0};
  T na{0}, nc{0};
  T nb = sys.b[i];
  T nd = sys.d[i];
  if (i >= s) {
    alpha = -sys.a[i] / sys.b[i - s];
    nb += alpha * sys.c[i - s];
    na = alpha * sys.a[i - s];
    nd += alpha * sys.d[i - s];
  }
  if (i + s < n) {
    gamma = -sys.c[i] / sys.b[i + s];
    nb += gamma * sys.a[i + s];
    nc = gamma * sys.c[i + s];
    nd += gamma * sys.d[i + s];
  }
  sys.a[i] = na;
  sys.b[i] = nb;
  sys.c[i] = nc;
  sys.d[i] = nd;
}

/// Full cyclic reduction solve of one system (in place; x gets the
/// unknowns). Works for any n >= 1.
template <typename T>
void cr_solve(SystemView<T> sys, StridedView<T> x) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(x.size() == n, "cr_solve: solution size mismatch");
  if (n == 0) return;

  // Forward reduction.
  std::size_t smax = 1;
  while (smax < n) smax *= 2;
  for (std::size_t s = 1; s < n; s *= 2) {
    for (std::size_t i = 2 * s - 1; i < n; i += 2 * s) {
      cr_forward_update(sys, i, s);
    }
  }

  // Back substitution. Indices at level s are i = s-1, 3s-1, 5s-1, ...;
  // each couples only to i±s, whose unknowns belong to higher levels and
  // are already solved (or fall outside the system).
  for (std::size_t s = smax; s >= 1; s /= 2) {
    for (std::size_t i = s - 1; i < n; i += 2 * s) {
      T acc = sys.d[i];
      if (i >= s) acc -= sys.a[i] * x[i - s];
      if (i + s < n) acc -= sys.c[i] * x[i + s];
      x[i] = acc / sys.b[i];
    }
    if (s == 1) break;
  }
}

/// Flops of one CR forward update (cost accounting).
inline std::size_t cr_update_flops() { return 14; }

}  // namespace tda::tridiag
