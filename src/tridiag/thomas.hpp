#pragma once
// Thomas algorithm (tridiagonal LU without pivoting).
//
// O(n) work, strictly serial — the paper's Stage 4 runs one instance per
// GPU thread on an interleaved shared-memory subsystem, which is why the
// implementation below works on StridedView rather than raw arrays.
//
// Requires nonzero pivots (guaranteed for strictly diagonally dominant or
// symmetric positive definite systems). For general systems use
// tda::cpu::gtsv_solve, which pivots.

#include <cmath>
#include <cstddef>

#include "common/check.hpp"
#include "common/strided_view.hpp"
#include "tridiag/batch.hpp"

namespace tda::tridiag {

/// Solves sys in place (forward sweep overwrites c and d) and writes the
/// unknowns to x. x may alias d. Returns false if a zero pivot was hit
/// (solution is then invalid).
template <typename T>
bool thomas_solve_inplace(SystemView<T> sys, StridedView<T> x) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(x.size() == n, "solution view size mismatch");
  if (n == 0) return true;

  // Forward elimination: c[i] and d[i] become the c'/d' of the standard
  // formulation.
  T denom = sys.b[0];
  if (denom == T{0}) return false;
  sys.c[0] = sys.c[0] / denom;
  sys.d[0] = sys.d[0] / denom;
  for (std::size_t i = 1; i < n; ++i) {
    denom = sys.b[i] - sys.a[i] * sys.c[i - 1];
    if (denom == T{0}) return false;
    const T inv = T{1} / denom;
    if (i + 1 < n) sys.c[i] = sys.c[i] * inv;
    sys.d[i] = (sys.d[i] - sys.a[i] * sys.d[i - 1]) * inv;
  }

  // Back substitution.
  x[n - 1] = sys.d[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = sys.d[i] - sys.c[i] * x[i + 1];
  }
  return true;
}

/// Non-destructive Thomas solve: copies coefficients into caller-provided
/// scratch (cs, ds; each of size n) first.
template <typename T>
bool thomas_solve(const SystemView<const T>& sys, StridedView<T> x,
                  StridedView<T> cs, StridedView<T> ds) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(cs.size() == n && ds.size() == n, "scratch size mismatch");
  if (n == 0) return true;

  T denom = sys.b[0];
  if (denom == T{0}) return false;
  cs[0] = sys.c[0] / denom;
  ds[0] = sys.d[0] / denom;
  for (std::size_t i = 1; i < n; ++i) {
    denom = sys.b[i] - sys.a[i] * cs[i - 1];
    if (denom == T{0}) return false;
    const T inv = T{1} / denom;
    cs[i] = (i + 1 < n) ? sys.c[i] * inv : T{0};
    ds[i] = (sys.d[i] - sys.a[i] * ds[i - 1]) * inv;
  }
  x[n - 1] = ds[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) x[i] = ds[i] - cs[i] * x[i + 1];
  return true;
}

/// Number of floating point operations a Thomas solve of size n performs
/// (used by the simulator's compute-cost accounting).
inline std::size_t thomas_flops(std::size_t n) {
  if (n == 0) return 0;
  return 8 * n;  // ~5 flops forward + ~2 backward + divisions, rounded
}

}  // namespace tda::tridiag
