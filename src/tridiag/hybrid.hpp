#pragma once
// CPU reference implementations of the two hybrid algorithms:
//
//  * PCR-Thomas (the paper's base kernel, §III-A): run j PCR
//    shift-doubling steps so the system decomposes into 2^j interleaved
//    subsystems, then solve each subsystem serially with Thomas.
//  * CR-PCR (Zhang et al., PPoPP 2010 — the prior-art baseline): run CR
//    forward steps until the reduced system is small, solve it with PCR,
//    then CR back-substitution.
//
// The GPU-sim kernels in src/kernels mirror these step for step; tests pin
// the kernels against these references.

#include <cstddef>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "tridiag/batch.hpp"
#include "tridiag/cr.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/thomas.hpp"

namespace tda::tridiag {

/// Number of PCR splitting steps the PCR-Thomas hybrid performs for a
/// system of size n and a stage-3→4 switch point of `target_subsystems`:
/// the smallest j with 2^j >= target, capped so subsystems keep >= 1
/// equation.
inline std::size_t pcr_thomas_split_steps(std::size_t n,
                                          std::size_t target_subsystems) {
  std::size_t j = 0;
  while ((std::size_t{1} << j) < target_subsystems &&
         (std::size_t{1} << (j + 1)) <= n) {
    ++j;
  }
  return j;
}

/// PCR-Thomas hybrid solve of one system.
///
/// `target_subsystems` plays the role of the paper's stage-3→4 switch
/// point: PCR splits until the system has decomposed into at least that
/// many independent subsystems (capped so subsystems keep >= 1 equation).
/// Overwrites sys and scratch; writes unknowns to x.
template <typename T>
void pcr_thomas_solve(SystemView<T> sys, SystemView<T> scratch,
                      StridedView<T> x, std::size_t target_subsystems) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(scratch.size() == n, "scratch size mismatch");
  TDA_REQUIRE(x.size() == n, "solution size mismatch");
  TDA_REQUIRE(target_subsystems >= 1, "need at least one subsystem");
  if (n == 0) return;

  const std::size_t j = pcr_thomas_split_steps(n, target_subsystems);

  SystemView<T>* src = &sys;
  SystemView<T>* dst = &scratch;
  for (std::size_t step = 0; step < j; ++step) {
    pcr_step(SystemView<const T>{src->a.as_const(), src->b.as_const(),
                                 src->c.as_const(), src->d.as_const()},
             *dst, std::size_t{1} << step);
    std::swap(src, dst);
  }

  // The system is now 2^j interleaved subsystems; solve each with Thomas.
  const std::size_t parts = std::size_t{1} << j;
  for (std::size_t p = 0; p < parts && p < n; ++p) {
    SystemView<T> sub = src->subsystem(j, p);
    StridedView<T> xs = x.subsystem(j, p);
    const bool ok = thomas_solve_inplace(sub, xs);
    TDA_ENSURE(ok, "PCR-Thomas hit a zero pivot");
  }
}

/// CR-PCR hybrid solve of one system (Zhang et al. baseline).
///
/// CR-reduces until the active system has at most `pcr_threshold`
/// equations, solves the reduced strided system with PCR, then finishes
/// CR back substitution. Overwrites sys; writes unknowns to x.
template <typename T>
void cr_pcr_solve(SystemView<T> sys, StridedView<T> x,
                  std::size_t pcr_threshold) {
  const std::size_t n = sys.size();
  TDA_REQUIRE(x.size() == n, "solution size mismatch");
  TDA_REQUIRE(pcr_threshold >= 1, "threshold must be >= 1");
  if (n == 0) return;

  // CR forward. After completing the step with stride s, the active
  // (reduced) system is the indices 2s-1, 4s-1, ... coupling at distance
  // 2s. `stride` below always holds the stride of the NEXT forward step;
  // the current active system starts at stride-1 with step `stride`.
  std::size_t stride = 1;
  std::size_t active_count = n;
  while (active_count > pcr_threshold && active_count >= 2) {
    for (std::size_t i = 2 * stride - 1; i < n; i += 2 * stride) {
      cr_forward_update(sys, i, stride);
    }
    stride *= 2;
    const std::size_t start = stride - 1;
    active_count = (n > start) ? (n - start + stride - 1) / stride : 0;
  }

  if (stride == 1) {
    // No reduction happened: solve the whole system with PCR.
    AlignedBuffer<T> buf(4 * n);
    SystemView<T> scratch{StridedView<T>(buf.data(), n, 1),
                          StridedView<T>(buf.data() + n, n, 1),
                          StridedView<T>(buf.data() + 2 * n, n, 1),
                          StridedView<T>(buf.data() + 3 * n, n, 1)};
    pcr_solve(sys, scratch, x);
    return;
  }

  // Solve the reduced strided system with PCR.
  const std::size_t start = stride - 1;
  if (start < n && active_count > 0) {
    const std::size_t es = sys.a.stride();  // element stride of the view
    SystemView<T> red{
        StridedView<T>(&sys.a[start], active_count, es * stride),
        StridedView<T>(&sys.b[start], active_count, es * stride),
        StridedView<T>(&sys.c[start], active_count, es * stride),
        StridedView<T>(&sys.d[start], active_count, es * stride)};
    AlignedBuffer<T> buf(4 * active_count);
    SystemView<T> scratch{
        StridedView<T>(buf.data(), active_count, 1),
        StridedView<T>(buf.data() + active_count, active_count, 1),
        StridedView<T>(buf.data() + 2 * active_count, active_count, 1),
        StridedView<T>(buf.data() + 3 * active_count, active_count, 1)};
    StridedView<T> xr(&x[start], active_count, x.stride() * stride);
    pcr_solve(red, scratch, xr);
  }

  // CR back substitution for the remaining levels. Level `lvl` holds the
  // indices lvl-1, 3·lvl-1, 5·lvl-1, ... whose equations couple at
  // distance lvl to unknowns of strictly higher levels (already solved).
  for (std::size_t lvl = stride / 2; lvl >= 1; lvl /= 2) {
    for (std::size_t i = lvl - 1; i < n; i += 2 * lvl) {
      T acc = sys.d[i];
      if (i >= lvl) acc -= sys.a[i] * x[i - lvl];
      if (i + lvl < n) acc -= sys.c[i] * x[i + lvl];
      x[i] = acc / sys.b[i];
    }
    if (lvl == 1) break;
  }
}

}  // namespace tda::tridiag
