#pragma once
// Periodic (cyclic) tridiagonal systems.
//
// Spectral Poisson solvers and ocean models on periodic domains (both in
// the paper's motivation list) produce "tridiagonal" systems with two
// corner entries: equation 0 couples to x[n-1] and equation n-1 couples
// to x[0]. The Sherman-Morrison formula reduces such a system to two
// solves of an ordinary tridiagonal system, so ANY solver in this library
// (CPU Thomas/gtsv or the multi-stage GPU solver) can serve as the inner
// engine:
//
//   A_cyclic = A + u v^T,   u = (-b0*gamma_scale, 0, .., a0?),  classic
//   construction: choose gamma, modify b[0] and b[n-1], solve A y = d and
//   A z = u, then x = y - (v^T y / (1 + v^T z)) z.

#include <cstddef>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "tridiag/batch.hpp"

namespace tda::tridiag {

/// A periodic tridiagonal system: `alpha` couples equation 0 to x[n-1]
/// (top-right corner) and `beta` couples equation n-1 to x[0]
/// (bottom-left corner). The a/b/c/d arrays describe the ordinary
/// tridiagonal part with the usual a[0] = c[n-1] = 0 convention.
template <typename T>
struct PeriodicSystem {
  std::vector<T> a, b, c, d;
  T alpha{};  ///< A[0][n-1]
  T beta{};   ///< A[n-1][0]

  [[nodiscard]] std::size_t size() const { return b.size(); }
};

/// Batch of periodic systems sharing one size.
template <typename T>
struct PeriodicBatch {
  TridiagBatch<T> core;        ///< the tridiagonal parts
  std::vector<T> alpha, beta;  ///< corner entries, one per system

  PeriodicBatch(std::size_t m, std::size_t n)
      : core(m, n), alpha(m, T{}), beta(m, T{}) {}
};

/// Solves a batch of periodic systems given a callback that solves an
/// ordinary TridiagBatch in place (results in batch.x()). The callback is
/// invoked exactly twice with a batch of the same shape (Sherman-Morrison
/// needs the pair of solves); this is how the GPU multi-stage solver or
/// the CPU baseline plugs in.
///
/// Returns the solutions (m*n, system-major). Requires n >= 3 and
/// non-singular modified systems (diagonally dominant periodic systems
/// with |b| > |a|+|c|+|corner| are always safe).
template <typename T>
std::vector<T> solve_periodic_batch(
    PeriodicBatch<T>& batch,
    const std::function<void(TridiagBatch<T>&)>& solve_tridiag) {
  const std::size_t m = batch.core.num_systems();
  const std::size_t n = batch.core.system_size();
  TDA_REQUIRE(n >= 3, "periodic solve needs at least 3 equations");

  // Build the modified system A' = A - u v^T with
  //   u = (gamma, 0, ..., 0, beta)^T, v = (1, 0, ..., 0, alpha/gamma)^T,
  // which zeroes the corners when gamma is chosen per system. We use the
  // classic choice gamma = -b[0].
  TridiagBatch<T> modified(m, n);
  std::copy(batch.core.a().begin(), batch.core.a().end(),
            modified.a().begin());
  std::copy(batch.core.b().begin(), batch.core.b().end(),
            modified.b().begin());
  std::copy(batch.core.c().begin(), batch.core.c().end(),
            modified.c().begin());
  std::copy(batch.core.d().begin(), batch.core.d().end(),
            modified.d().begin());

  std::vector<T> gamma(m);
  for (std::size_t s = 0; s < m; ++s) {
    const std::size_t off = s * n;
    const T g = -modified.b()[off];
    TDA_REQUIRE(g != T{0}, "periodic solve: b[0] must be nonzero");
    gamma[s] = g;
    modified.b()[off] -= g;  // b0' = b0 - gamma (= 2 b0)
    modified.b()[off + n - 1] -=
        batch.alpha[s] * batch.beta[s] / g;  // b_{n-1}' -= alpha*beta/gamma
  }

  // First solve: A' y = d.
  solve_tridiag(modified);
  std::vector<T> y(modified.x().begin(), modified.x().end());

  // Second solve: A' z = u.
  for (std::size_t s = 0; s < m; ++s) {
    const std::size_t off = s * n;
    for (std::size_t i = 0; i < n; ++i) modified.d()[off + i] = T{0};
    modified.d()[off] = gamma[s];
    modified.d()[off + n - 1] = batch.beta[s];
  }
  solve_tridiag(modified);
  std::span<const T> z = modified.x();

  // Combine: x = y - ((y0 + alpha/gamma * y_{n-1}) /
  //                   (1 + z0 + alpha/gamma * z_{n-1})) * z.
  std::vector<T> x(m * n);
  for (std::size_t s = 0; s < m; ++s) {
    const std::size_t off = s * n;
    const T va = batch.alpha[s] / gamma[s];
    const T num = y[off] + va * y[off + n - 1];
    const T den = T{1} + z[off] + va * z[off + n - 1];
    TDA_REQUIRE(den != T{0}, "periodic solve: singular correction");
    const T factor = num / den;
    for (std::size_t i = 0; i < n; ++i) {
      x[off + i] = y[off + i] - factor * z[off + i];
    }
  }
  return x;
}

/// Scaled max residual of a periodic batch against a candidate solution.
template <typename T>
double periodic_residual_inf(const PeriodicBatch<T>& batch,
                             std::span<const T> x) {
  const std::size_t m = batch.core.num_systems();
  const std::size_t n = batch.core.system_size();
  TDA_REQUIRE(x.size() == m * n, "periodic residual: size mismatch");
  double worst = 0.0;
  double scale = 1.0;
  auto a = batch.core.a();
  auto b = batch.core.b();
  auto c = batch.core.c();
  auto d = batch.core.d();
  for (std::size_t s = 0; s < m; ++s) {
    const std::size_t off = s * n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = off + i;
      double acc = static_cast<double>(b[k]) * x[k];
      if (i > 0) acc += static_cast<double>(a[k]) * x[k - 1];
      if (i + 1 < n) acc += static_cast<double>(c[k]) * x[k + 1];
      if (i == 0) acc += static_cast<double>(batch.alpha[s]) * x[off + n - 1];
      if (i == n - 1) acc += static_cast<double>(batch.beta[s]) * x[off];
      worst = std::max(worst, std::abs(acc - static_cast<double>(d[k])));
      scale = std::max(scale, std::abs(static_cast<double>(d[k])));
      scale = std::max(scale, std::abs(acc));
    }
  }
  return worst / scale;
}

}  // namespace tda::tridiag
