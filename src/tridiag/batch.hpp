#pragma once
// Batched tridiagonal systems in structure-of-arrays layout.
//
// A batch holds m systems of n equations each. System s of the batch is
//
//   b[0] x0 + c[0] x1                     = d[0]
//   a[i] x(i-1) + b[i] xi + c[i] x(i+1)   = d[i]     0 < i < n-1
//   a[n-1] x(n-2) + b[n-1] x(n-1)         = d[n-1]
//
// stored system-major: coefficient array A holds system 0's n entries, then
// system 1's, ... — so one GPU block reading its own system with consecutive
// threads produces coalesced accesses, exactly the access pattern the
// paper's kernels rely on. a[0] and c[n-1] are 0 by convention.

#include <cstddef>
#include <span>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "common/strided_view.hpp"

namespace tda::tridiag {

/// Non-owning view of one (sub)system's coefficients. All four views share
/// count and stride. PCR rewrites a/b/c/d in place (via a double buffer);
/// the unknowns are written to a separate x view.
template <typename T>
struct SystemView {
  StridedView<T> a, b, c, d;

  [[nodiscard]] std::size_t size() const { return a.size(); }
  [[nodiscard]] std::size_t stride() const { return a.stride(); }

  /// Even/odd children after one PCR split.
  [[nodiscard]] std::pair<SystemView, SystemView> split() const {
    auto [ae, ao] = a.split();
    auto [be, bo] = b.split();
    auto [ce, co] = c.split();
    auto [de, doo] = d.split();
    return {SystemView{ae, be, ce, de}, SystemView{ao, bo, co, doo}};
  }

  /// j-th of 2^k interleaved subsystems.
  [[nodiscard]] SystemView subsystem(std::size_t k, std::size_t j) const {
    return SystemView{a.subsystem(k, j), b.subsystem(k, j),
                      c.subsystem(k, j), d.subsystem(k, j)};
  }
};

/// Owning batch of m tridiagonal systems of size n (SoA, system-major).
template <typename T>
class TridiagBatch {
 public:
  TridiagBatch() = default;

  TridiagBatch(std::size_t num_systems, std::size_t system_size)
      : m_(num_systems), n_(system_size) {
    TDA_REQUIRE(num_systems > 0, "batch needs at least one system");
    TDA_REQUIRE(system_size > 0, "system size must be positive");
    const std::size_t total = m_ * n_;
    a_.resize(total);
    b_.resize(total);
    c_.resize(total);
    d_.resize(total);
    x_.resize(total);
  }

  [[nodiscard]] std::size_t num_systems() const { return m_; }
  [[nodiscard]] std::size_t system_size() const { return n_; }
  [[nodiscard]] std::size_t total_equations() const { return m_ * n_; }

  [[nodiscard]] std::span<T> a() { return a_.span(); }
  [[nodiscard]] std::span<T> b() { return b_.span(); }
  [[nodiscard]] std::span<T> c() { return c_.span(); }
  [[nodiscard]] std::span<T> d() { return d_.span(); }
  [[nodiscard]] std::span<T> x() { return x_.span(); }
  [[nodiscard]] std::span<const T> a() const { return a_.span(); }
  [[nodiscard]] std::span<const T> b() const { return b_.span(); }
  [[nodiscard]] std::span<const T> c() const { return c_.span(); }
  [[nodiscard]] std::span<const T> d() const { return d_.span(); }
  [[nodiscard]] std::span<const T> x() const { return x_.span(); }

  /// Coefficient view of system s (contiguous, stride 1).
  [[nodiscard]] SystemView<T> system(std::size_t s) {
    TDA_REQUIRE(s < m_, "system index out of range");
    const std::size_t off = s * n_;
    return SystemView<T>{StridedView<T>(a_.data() + off, n_, 1),
                         StridedView<T>(b_.data() + off, n_, 1),
                         StridedView<T>(c_.data() + off, n_, 1),
                         StridedView<T>(d_.data() + off, n_, 1)};
  }

  /// Solution view of system s.
  [[nodiscard]] StridedView<T> solution(std::size_t s) {
    TDA_REQUIRE(s < m_, "system index out of range");
    return StridedView<T>(x_.data() + s * n_, n_, 1);
  }

  /// Enforces the boundary convention a[0] = c[n-1] = 0 on every system.
  void normalize_boundaries() {
    for (std::size_t s = 0; s < m_; ++s) {
      a_[s * n_] = T{0};
      c_[s * n_ + n_ - 1] = T{0};
    }
  }

 private:
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  AlignedBuffer<T> a_, b_, c_, d_, x_;
};

}  // namespace tda::tridiag
