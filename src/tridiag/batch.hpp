#pragma once
// Batched tridiagonal systems in structure-of-arrays layout.
//
// A batch holds m systems of n equations each. System s of the batch is
//
//   b[0] x0 + c[0] x1                     = d[0]
//   a[i] x(i-1) + b[i] xi + c[i] x(i+1)   = d[i]     0 < i < n-1
//   a[n-1] x(n-2) + b[n-1] x(n-1)         = d[n-1]
//
// stored system-major: coefficient array A holds system 0's n entries, then
// system 1's, ... — so one GPU block reading its own system with consecutive
// threads produces coalesced accesses, exactly the access pattern the
// paper's kernels rely on. a[0] and c[n-1] are 0 by convention.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "common/buffer_pool.hpp"
#include "common/check.hpp"
#include "common/strided_view.hpp"

namespace tda::tridiag {

/// How a batch's m×n coefficient arrays are ordered in memory.
///
///  * SystemMajor — element i of system s lives at [s*n + i]: one GPU
///    block reads its own system contiguously (the paper's layout).
///  * ElementMajor — it lives at [i*m + s]: all systems' i-th elements
///    are adjacent, so one SIMD lane (or GPU thread) per system walks
///    the Thomas/PCR recurrences over stride-1 memory — the interleaved
///    layout of cuThomasBatch-style batched solvers.
enum class BatchLayout { SystemMajor, ElementMajor };

inline const char* to_string(BatchLayout l) {
  return l == BatchLayout::SystemMajor ? "system" : "element";
}

/// Cache-blocked out-of-place transpose of an R×C row-major array:
/// dst[c*R + r] = src[r*C + c]. Tiles of kTransposeTile² elements keep
/// both the strided side and the contiguous side inside L1 — the
/// routine behind every layout conversion (host and device).
/// system→element is (R=m, C=n); element→system is (R=n, C=m).
inline constexpr std::size_t kTransposeTile = 64;

template <typename T>
void blocked_transpose(const T* src, T* dst, std::size_t rows,
                       std::size_t cols) {
  for (std::size_t r0 = 0; r0 < rows; r0 += kTransposeTile) {
    const std::size_t r1 = std::min(rows, r0 + kTransposeTile);
    for (std::size_t c0 = 0; c0 < cols; c0 += kTransposeTile) {
      const std::size_t c1 = std::min(cols, c0 + kTransposeTile);
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = c0; c < c1; ++c) {
          dst[c * rows + r] = src[r * cols + c];
        }
      }
    }
  }
}

/// Where a TridiagBatch's coefficient arrays live.
enum class BatchStorage {
  Fresh,  ///< five zero-initialized AlignedBuffers (the default)
  Pooled  ///< one BufferPool slab shared by all five lanes — repeated
          ///< same-shape batches (figure benches, generators in loops)
          ///< reuse a warm allocation instead of paying malloc + free
};

/// Non-owning view of one (sub)system's coefficients. All four views share
/// count and stride. PCR rewrites a/b/c/d in place (via a double buffer);
/// the unknowns are written to a separate x view.
template <typename T>
struct SystemView {
  StridedView<T> a, b, c, d;

  [[nodiscard]] std::size_t size() const { return a.size(); }
  [[nodiscard]] std::size_t stride() const { return a.stride(); }

  /// Even/odd children after one PCR split.
  [[nodiscard]] std::pair<SystemView, SystemView> split() const {
    auto [ae, ao] = a.split();
    auto [be, bo] = b.split();
    auto [ce, co] = c.split();
    auto [de, doo] = d.split();
    return {SystemView{ae, be, ce, de}, SystemView{ao, bo, co, doo}};
  }

  /// j-th of 2^k interleaved subsystems.
  [[nodiscard]] SystemView subsystem(std::size_t k, std::size_t j) const {
    return SystemView{a.subsystem(k, j), b.subsystem(k, j),
                      c.subsystem(k, j), d.subsystem(k, j)};
  }
};

/// Owning batch of m tridiagonal systems of size n (SoA, system-major).
/// Storage is either five fresh AlignedBuffers or one pooled slab (see
/// BatchStorage); both are zero-initialized and 64-byte aligned, so the
/// choice is invisible to everything downstream of the five lane spans.
template <typename T>
class TridiagBatch {
 public:
  TridiagBatch() = default;

  TridiagBatch(std::size_t num_systems, std::size_t system_size,
               BatchStorage storage = BatchStorage::Fresh,
               BatchLayout layout = BatchLayout::SystemMajor)
      : m_(num_systems), n_(system_size), layout_(layout) {
    TDA_REQUIRE(num_systems > 0, "batch needs at least one system");
    TDA_REQUIRE(system_size > 0, "system size must be positive");
    allocate(storage);
  }

  TridiagBatch(const TridiagBatch& other)
      : m_(other.m_), n_(other.n_), layout_(other.layout_) {
    if (m_ == 0) return;
    allocate(other.storage());
    copy_lanes_from(other);
  }
  TridiagBatch& operator=(const TridiagBatch& other) {
    if (this == &other) return *this;
    if (m_ != other.m_ || n_ != other.n_ || storage() != other.storage()) {
      *this = TridiagBatch();  // drop current storage
      m_ = other.m_;
      n_ = other.n_;
      if (m_ > 0) allocate(other.storage());
    }
    layout_ = other.layout_;
    if (m_ > 0) copy_lanes_from(other);
    return *this;
  }
  // Both storage kinds are heap allocations whose data pointers survive
  // a move of their owning handle, so the lane pointers transfer as-is;
  // the source is left empty (not just unspecified) so a stale span can
  // never be taken from it.
  TridiagBatch(TridiagBatch&& other) noexcept
      : m_(other.m_),
        n_(other.n_),
        layout_(other.layout_),
        a_(std::move(other.a_)),
        b_(std::move(other.b_)),
        c_(std::move(other.c_)),
        d_(std::move(other.d_)),
        x_(std::move(other.x_)),
        slab_(std::move(other.slab_)),
        pa_(other.pa_),
        pb_(other.pb_),
        pc_(other.pc_),
        pd_(other.pd_),
        px_(other.px_) {
    other.clear_handle();
  }
  TridiagBatch& operator=(TridiagBatch&& other) noexcept {
    if (this != &other) {
      m_ = other.m_;
      n_ = other.n_;
      layout_ = other.layout_;
      a_ = std::move(other.a_);
      b_ = std::move(other.b_);
      c_ = std::move(other.c_);
      d_ = std::move(other.d_);
      x_ = std::move(other.x_);
      slab_ = std::move(other.slab_);
      pa_ = other.pa_;
      pb_ = other.pb_;
      pc_ = other.pc_;
      pd_ = other.pd_;
      px_ = other.px_;
      other.clear_handle();
    }
    return *this;
  }

  [[nodiscard]] std::size_t num_systems() const { return m_; }
  [[nodiscard]] std::size_t system_size() const { return n_; }
  [[nodiscard]] std::size_t total_equations() const { return m_ * n_; }
  [[nodiscard]] BatchStorage storage() const {
    return slab_ ? BatchStorage::Pooled : BatchStorage::Fresh;
  }
  [[nodiscard]] BatchLayout layout() const { return layout_; }

  /// Physically transposes all five lanes to `target` (no-op when the
  /// batch already has that layout). Cache-blocked through one pooled
  /// staging lane, so repeated conversions of a shape reuse a warm slab;
  /// system→element→system restores every lane byte-for-byte (the
  /// transpose is a bijection on element slots — nothing is recomputed).
  void convert_layout(BatchLayout target) {
    if (target == layout_ || m_ == 0) {
      layout_ = target;
      return;
    }
    const std::size_t rows = layout_ == BatchLayout::SystemMajor ? m_ : n_;
    const std::size_t cols = layout_ == BatchLayout::SystemMajor ? n_ : m_;
    PoolBlock staging = BufferPool::global().acquire(m_ * n_ * sizeof(T));
    T* tmp = reinterpret_cast<T*>(staging.data());
    for (T* lane : {pa_, pb_, pc_, pd_, px_}) {
      blocked_transpose(lane, tmp, rows, cols);
      std::copy(tmp, tmp + m_ * n_, lane);
    }
    layout_ = target;
  }

  [[nodiscard]] std::span<T> a() { return {pa_, m_ * n_}; }
  [[nodiscard]] std::span<T> b() { return {pb_, m_ * n_}; }
  [[nodiscard]] std::span<T> c() { return {pc_, m_ * n_}; }
  [[nodiscard]] std::span<T> d() { return {pd_, m_ * n_}; }
  [[nodiscard]] std::span<T> x() { return {px_, m_ * n_}; }
  [[nodiscard]] std::span<const T> a() const { return {pa_, m_ * n_}; }
  [[nodiscard]] std::span<const T> b() const { return {pb_, m_ * n_}; }
  [[nodiscard]] std::span<const T> c() const { return {pc_, m_ * n_}; }
  [[nodiscard]] std::span<const T> d() const { return {pd_, m_ * n_}; }
  [[nodiscard]] std::span<const T> x() const { return {px_, m_ * n_}; }

  /// Coefficient view of system s (contiguous stride-1 when
  /// system-major; stride-m when element-major).
  [[nodiscard]] SystemView<T> system(std::size_t s) {
    TDA_REQUIRE(s < m_, "system index out of range");
    const std::size_t off = layout_ == BatchLayout::SystemMajor ? s * n_ : s;
    const std::size_t str = layout_ == BatchLayout::SystemMajor ? 1 : m_;
    return SystemView<T>{StridedView<T>(pa_ + off, n_, str),
                         StridedView<T>(pb_ + off, n_, str),
                         StridedView<T>(pc_ + off, n_, str),
                         StridedView<T>(pd_ + off, n_, str)};
  }

  /// Solution view of system s.
  [[nodiscard]] StridedView<T> solution(std::size_t s) {
    TDA_REQUIRE(s < m_, "system index out of range");
    return layout_ == BatchLayout::SystemMajor
               ? StridedView<T>(px_ + s * n_, n_, 1)
               : StridedView<T>(px_ + s, n_, m_);
  }

  /// Enforces the boundary convention a[0] = c[n-1] = 0 on every system.
  void normalize_boundaries() {
    if (layout_ == BatchLayout::SystemMajor) {
      for (std::size_t s = 0; s < m_; ++s) {
        pa_[s * n_] = T{0};
        pc_[s * n_ + n_ - 1] = T{0};
      }
    } else {
      for (std::size_t s = 0; s < m_; ++s) {
        pa_[s] = T{0};
        pc_[(n_ - 1) * m_ + s] = T{0};
      }
    }
  }

 private:
  /// One lane's bytes, padded so every lane inside a pooled slab starts
  /// on a cache-line boundary.
  [[nodiscard]] std::size_t lane_bytes() const {
    constexpr std::size_t kAlign = 64;
    return (m_ * n_ * sizeof(T) + kAlign - 1) / kAlign * kAlign;
  }

  void allocate(BatchStorage storage) {
    const std::size_t total = m_ * n_;
    if (storage == BatchStorage::Pooled) {
      const std::size_t lane = lane_bytes();
      slab_ = BufferPool::global().acquire(5 * lane);
      // Pooled memory is returned dirty; zero it to match Fresh exactly.
      std::memset(slab_.data(), 0, 5 * lane);
      pa_ = reinterpret_cast<T*>(slab_.data());
      pb_ = reinterpret_cast<T*>(slab_.data() + lane);
      pc_ = reinterpret_cast<T*>(slab_.data() + 2 * lane);
      pd_ = reinterpret_cast<T*>(slab_.data() + 3 * lane);
      px_ = reinterpret_cast<T*>(slab_.data() + 4 * lane);
    } else {
      a_.resize(total);
      b_.resize(total);
      c_.resize(total);
      d_.resize(total);
      x_.resize(total);
      pa_ = a_.data();
      pb_ = b_.data();
      pc_ = c_.data();
      pd_ = d_.data();
      px_ = x_.data();
    }
  }

  void clear_handle() {
    m_ = 0;
    n_ = 0;
    layout_ = BatchLayout::SystemMajor;
    pa_ = pb_ = pc_ = pd_ = px_ = nullptr;
  }

  void copy_lanes_from(const TridiagBatch& other) {
    const std::size_t total = m_ * n_;
    std::copy(other.pa_, other.pa_ + total, pa_);
    std::copy(other.pb_, other.pb_ + total, pb_);
    std::copy(other.pc_, other.pc_ + total, pc_);
    std::copy(other.pd_, other.pd_ + total, pd_);
    std::copy(other.px_, other.px_ + total, px_);
  }

  std::size_t m_ = 0;
  std::size_t n_ = 0;
  BatchLayout layout_ = BatchLayout::SystemMajor;
  AlignedBuffer<T> a_, b_, c_, d_, x_;  ///< Fresh storage (empty if pooled)
  PoolBlock slab_;                      ///< Pooled storage (empty if fresh)
  T* pa_ = nullptr;
  T* pb_ = nullptr;
  T* pc_ = nullptr;
  T* pd_ = nullptr;
  T* px_ = nullptr;
};

}  // namespace tda::tridiag
