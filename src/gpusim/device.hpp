#pragma once
// Simulated GPU device descriptions.
//
// DeviceSpec is the full hardware truth: the queryable properties CUDA's
// deviceProperties exposes (paper Table II) *plus* the performance
// characteristics the paper stresses CANNOT be queried — global memory
// bandwidth, shared-bank organisation, dependent-op latency, launch
// overhead. The static machine-query tuner is only ever handed a
// DeviceQuery (the queryable subset); the dynamic tuner can observe the
// hidden parameters only through measured (simulated) runtimes, exactly
// the information asymmetry of §IV-C/D.
//
// The registry holds the paper's three GPUs (Table I).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace tda::gpusim {

/// Queryable device properties (the cudaDeviceProperties subset the
/// paper's Table II lists). This is ALL the static tuner may see.
struct DeviceQuery {
  std::string name;
  std::size_t global_mem_bytes = 0;
  int sm_count = 0;
  int thread_procs_per_sm = 0;
  int warp_size = 32;
  std::size_t shared_mem_per_sm = 0;   ///< bytes
  std::size_t constant_mem_bytes = 0;  ///< bytes
  int registers_per_sm = 0;
  int max_threads_per_block = 0;
  int max_threads_per_sm = 0;
  int max_blocks_per_sm = 0;
  /// API grid limit: 65535 blocks per dimension; kernels index 2-D grids
  /// when they need more, so the effective limit is 65535^2.
  long long max_grid_blocks = 0;
};

/// Full device model: query()-able properties plus hidden performance
/// characteristics used only by the cost model.
struct DeviceSpec {
  // --- queryable (Table II) ---
  std::string name;
  std::size_t global_mem_bytes = 0;
  int sm_count = 0;
  int thread_procs_per_sm = 0;
  int warp_size = 32;
  std::size_t shared_mem_per_sm = 0;
  std::size_t constant_mem_bytes = 64 * 1024;
  int registers_per_sm = 0;
  int max_threads_per_block = 0;
  int max_threads_per_sm = 0;
  int max_blocks_per_sm = 8;
  long long max_grid_blocks = 65535ll * 65535ll;  ///< 2-D grid capacity

  // --- hidden performance characteristics (NOT queryable; §IV-C) ---
  double global_bw_gb_s = 0.0;       ///< peak global bandwidth (Table I)
  double clock_ghz = 1.0;            ///< shader clock
  int shared_banks = 16;             ///< shared memory bank count
  double dep_latency_cycles = 24.0;  ///< latency of a dependent ALU/shared op
  double mem_latency_cycles = 450;   ///< global memory round-trip latency
  double launch_overhead_us = 6.0;   ///< per kernel launch
  double sync_cycles = 40.0;         ///< cost of one __syncthreads
  /// Effective fraction of peak bandwidth a grid-wide dependent pass
  /// achieves (paper §III-C: cooperative splitting "incurs an extra
  /// penalty per split due to this synchronization" — the whole pipeline
  /// drains at every relaunch, and the read-after-write dependence defeats
  /// DRAM scheduling). Applies to Stage-1 split passes.
  double coop_sync_efficiency = 0.25;
  /// Fraction of max resident warps required to reach peak memory
  /// bandwidth (latency hiding requirement). Newer, wider parts need more.
  double occupancy_for_peak = 0.5;
  /// Memory transaction segment size in bytes: determines the worst-case
  /// inflation of uncoalesced accesses (G80 has no coalescing hardware for
  /// irregular patterns; Fermi's L1 softens the blow).
  std::size_t coalesce_segment_bytes = 64;
  /// Fraction of redundant strided-segment fetches absorbed by cross-block
  /// reuse (caches / DRAM row locality): sibling blocks gathering
  /// interleaved subsystems touch the same segments close together in
  /// time. 0 = every block refetches (G80); near 1 = segments are served
  /// once (Fermi L1/L2).
  double strided_reuse = 0.0;

  /// The queryable subset.
  [[nodiscard]] DeviceQuery query() const;
};

/// The three GPUs of paper Table I.
DeviceSpec geforce_8800_gtx();
DeviceSpec geforce_gtx_280();
DeviceSpec geforce_gtx_470();

/// All registry devices, oldest first (matching Table I ordering).
std::vector<DeviceSpec> device_registry();

/// Looks up a registry device by (case-sensitive) name; nullopt if absent.
std::optional<DeviceSpec> device_by_name(const std::string& name);

}  // namespace tda::gpusim
