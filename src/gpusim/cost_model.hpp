#pragma once
// Kernel time model.
//
// A kernel's cost is aggregated from per-block events into three terms:
//
//  * memory time   — effective (coalescing-inflated) global bytes divided
//                    by peak bandwidth, derated when too few warps are
//                    resident to hide memory latency;
//  * compute time  — warp-instruction throughput cycles per SM, executed
//                    wave by wave;
//  * critical path — each block's longest dependent chain (chain length ×
//                    dependent-op latency); a wave cannot finish faster
//                    than its blocks' critical paths even at low
//                    throughput utilization. This is what penalizes e.g. a
//                    Thomas phase run by too few threads.
//
// kernel time = launch overhead + max(memory time, compute time), where
// compute time = waves × max(per-wave throughput cycles, critical path).

#include <cstddef>

#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"

namespace tda::gpusim {

/// Cost events accumulated by one block during functional execution.
struct BlockCost {
  double global_bytes_eff = 0.0;  ///< coalescing-inflated global traffic
  double throughput_cycles = 0.0; ///< warp-issue cycles on one SM
  double critical_cycles = 0.0;   ///< dependent-chain cycles (latency bound)
  double syncs = 0.0;             ///< __syncthreads count

  void add(const BlockCost& other) {
    global_bytes_eff += other.global_bytes_eff;
    throughput_cycles += other.throughput_cycles;
    critical_cycles += other.critical_cycles;
    syncs += other.syncs;
  }
};

/// Aggregate over all blocks of one kernel launch.
struct KernelCost {
  std::size_t blocks = 0;
  BlockCost total;                 ///< sums over blocks
  double max_critical_cycles = 0;  ///< max over blocks

  void add_block(const BlockCost& b) {
    ++blocks;
    total.add(b);
    if (b.critical_cycles > max_critical_cycles)
      max_critical_cycles = b.critical_cycles;
  }
};

/// Timing breakdown of one simulated kernel launch.
struct KernelStats {
  double seconds = 0.0;
  double mem_seconds = 0.0;
  double compute_seconds = 0.0;
  double launch_seconds = 0.0;
  double hiding_factor = 1.0;  ///< achieved fraction of peak bandwidth
  double bytes_moved = 0.0;    ///< effective global bytes charged
  Occupancy occupancy;
  std::size_t waves = 0;
};

/// Converts aggregated kernel cost into time on `spec` with launch
/// configuration `cfg`. REQUIREs that the configuration is launchable
/// (occupancy > 0).
KernelStats kernel_time(const DeviceSpec& spec, const LaunchConfig& cfg,
                        const KernelCost& cost);

}  // namespace tda::gpusim
