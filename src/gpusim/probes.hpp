#pragma once
// Micro-benchmark probes (§IV-D: the self-tuner "uses static machine
// characteristics when available, but also uses micro-benchmarks").
//
// The probes estimate the performance characteristics that CANNOT be
// queried (paper §IV-C) by timing tiny synthetic kernels — the same way a
// real auto-tuner would. They only ever observe simulated kernel times;
// they never read the hidden DeviceSpec fields, so their results are
// honest measurements within the simulation.

#include <cstddef>
#include <vector>

#include "gpusim/launch.hpp"

namespace tda::gpusim {

/// Results of a probe sweep.
struct ProbeReport {
  /// Measured peak effective global bandwidth (GB/s) at full occupancy.
  double peak_bandwidth_gb_s = 0.0;
  /// Measured bandwidth with a single resident block (starved machine).
  double starved_bandwidth_gb_s = 0.0;
  /// Measured inflation of a stride-`s` access relative to stride-1, for
  /// each probed stride (powers of two starting at 2).
  std::vector<std::pair<std::size_t, double>> stride_inflation;
  /// Stride at which inflation stops growing (the transaction segment
  /// size, expressed in elements) — not directly queryable on the device.
  std::size_t inflation_saturation_stride = 0;
  /// Estimated per-launch overhead in microseconds.
  double launch_overhead_us = 0.0;
  /// Relative cost of a dependent-chain phase vs a wide parallel phase
  /// with identical instruction counts (a latency-sensitivity measure).
  double dependency_penalty = 1.0;
};

/// Measured effective bandwidth (GB/s) for a streaming kernel moving
/// `bytes_per_block` with `blocks` blocks of `threads` threads.
double probe_bandwidth(Device& dev, std::size_t blocks, int threads,
                       double bytes_per_block, std::size_t stride_elems = 1,
                       std::size_t elem_bytes = 4);

/// Per-launch overhead estimated from empty-kernel timing (us).
double probe_launch_overhead(Device& dev);

/// Full probe sweep on a device.
ProbeReport run_probes(Device& dev, std::size_t elem_bytes = 4);

}  // namespace tda::gpusim
