#pragma once
// Device global-memory accounting (docs/ROBUSTNESS.md).
//
// The paper's premise is that the multi-stage solver handles any (m, n)
// workload "as long as it fits in global memory" — this is the piece
// that knows what fits. Every Device owns a MemoryTracker whose budget
// defaults to the spec's global-memory size (overridable via the
// TDA_MEM_BUDGET env var for tests and pressure benches); device-side
// buffers reserve through it and a reservation that would exceed the
// budget throws the typed OutOfMemory error — deliberately distinct
// from faults::DeviceFault, because OOM is not transient: retrying the
// same allocation fails forever, so the recovery story is *shrinking
// the work* (solver::ChunkedSolver) rather than retry/failover.
//
// The tracker also serves as the principled target of the `oom` fault
// site (faults::Site::DeviceOOM): injection exercises the same error
// path a genuine budget exhaustion takes, while the per-site decision
// counters keep the two separately observable.

#include <cstddef>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>

#include "telemetry/telemetry.hpp"

namespace tda::gpusim {

/// Device memory budget exhausted (or `oom` injected). NOT a
/// faults::DeviceFault: retrying the identical allocation cannot
/// succeed — callers must shrink the working set or fall back.
class OutOfMemory : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a byte count with an optional k/m/g (KiB/MiB/GiB) suffix,
/// e.g. "262144", "256k", "1.5m". Returns 0 for empty/malformed input.
std::size_t parse_mem_bytes(const std::string& text);

/// The effective memory budget for a device with `device_default` bytes
/// of global memory: $TDA_MEM_BUDGET when set and parsable (tests and
/// pressure runs shrink budgets without touching device specs),
/// otherwise the device default.
std::size_t mem_budget_from_env(std::size_t device_default);

/// Tracked allocate/release accounting against a byte budget, with a
/// high-water-mark gauge. A budget of 0 means unlimited (a DeviceSpec
/// that declares no global-memory size enforces nothing). Thread-safe
/// (the service queries budgets from scheduler and watchdog threads
/// while workers allocate).
class MemoryTracker {
 public:
  explicit MemoryTracker(std::size_t budget_bytes) : budget_(budget_bytes) {}

  /// Rebinds the budget. Shrinking below the current in-use total is
  /// allowed: existing reservations stay valid, new ones fail until
  /// enough is released.
  void set_budget(std::size_t bytes) {
    std::lock_guard lk(mu_);
    budget_ = bytes;
  }

  [[nodiscard]] std::size_t budget() const {
    std::lock_guard lk(mu_);
    return budget_;
  }
  [[nodiscard]] std::size_t in_use() const {
    std::lock_guard lk(mu_);
    return in_use_;
  }
  /// Largest in-use total ever observed.
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard lk(mu_);
    return high_water_;
  }
  /// Bytes a new reservation may still claim (max() when unlimited).
  [[nodiscard]] std::size_t available() const {
    std::lock_guard lk(mu_);
    if (budget_ == 0) return std::numeric_limits<std::size_t>::max();
    return budget_ > in_use_ ? budget_ - in_use_ : 0;
  }
  /// Reservations refused for exceeding the budget (injected OOMs are
  /// counted by the fault injector, not here).
  [[nodiscard]] std::size_t oom_count() const {
    std::lock_guard lk(mu_);
    return oom_count_;
  }
  [[nodiscard]] std::size_t allocations() const {
    std::lock_guard lk(mu_);
    return allocations_;
  }

  /// Metrics sink for the mem_in_use / mem_high_water gauges and the
  /// oom counter; nullptr detaches. Not owned.
  void set_telemetry(telemetry::Telemetry* tel) {
    std::lock_guard lk(mu_);
    tel_ = tel;
  }

  /// Claims `bytes`; throws OutOfMemory (tagged with `what`) when the
  /// budget would be exceeded.
  void allocate(std::size_t bytes, const char* what);

  /// Returns `bytes` to the budget (clamped at zero so a double release
  /// cannot underflow the gauge during unwinding).
  void release(std::size_t bytes);

  void reset_high_water() {
    std::lock_guard lk(mu_);
    high_water_ = in_use_;
  }

 private:
  mutable std::mutex mu_;
  std::size_t budget_;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::size_t oom_count_ = 0;
  std::size_t allocations_ = 0;
  telemetry::Telemetry* tel_ = nullptr;
};

/// RAII claim on a MemoryTracker: releases its bytes on destruction.
/// Movable, not copyable; a default-constructed reservation tracks
/// nothing (untracked host/tuning buffers).
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryTracker* tracker, std::size_t bytes)
      : tracker_(tracker), bytes_(bytes) {}
  ~MemoryReservation() { reset(); }

  MemoryReservation(MemoryReservation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      reset();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] bool tracked() const { return tracker_ != nullptr; }

  void reset() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemoryTracker* tracker_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace tda::gpusim
