#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tda::gpusim {

Occupancy compute_occupancy(const DeviceQuery& q, const LaunchConfig& cfg) {
  TDA_REQUIRE(cfg.threads_per_block >= 1, "block needs at least one thread");
  TDA_REQUIRE(cfg.regs_per_thread >= 1, "regs_per_thread must be positive");

  Occupancy occ;
  if (cfg.threads_per_block > q.max_threads_per_block) {
    occ.limiter = "threads_per_block";
    return occ;
  }
  if (cfg.shared_bytes > q.shared_mem_per_sm) {
    occ.limiter = "shared_memory";
    return occ;
  }
  const long long regs_per_block =
      static_cast<long long>(cfg.regs_per_thread) * cfg.threads_per_block;
  if (regs_per_block > q.registers_per_sm) {
    occ.limiter = "registers";
    return occ;
  }

  int by_threads = q.max_threads_per_sm / cfg.threads_per_block;
  int by_shared = (cfg.shared_bytes == 0)
                      ? q.max_blocks_per_sm
                      : static_cast<int>(q.shared_mem_per_sm /
                                         cfg.shared_bytes);
  int by_regs = static_cast<int>(q.registers_per_sm / regs_per_block);
  int by_limit = q.max_blocks_per_sm;

  int blocks = std::min({by_threads, by_shared, by_regs, by_limit});
  occ.blocks_per_sm = blocks;
  if (blocks == by_threads) occ.limiter = "threads_per_sm";
  if (blocks == by_regs) occ.limiter = "registers";
  if (blocks == by_shared) occ.limiter = "shared_memory";
  if (blocks == by_limit) occ.limiter = "max_blocks";
  if (blocks <= 0) {
    occ.blocks_per_sm = 0;
    return occ;
  }

  const int warps_per_block =
      (cfg.threads_per_block + q.warp_size - 1) / q.warp_size;
  occ.warps_per_sm = blocks * warps_per_block;
  const int max_warps = q.max_threads_per_sm / q.warp_size;
  occ.fraction =
      static_cast<double>(occ.warps_per_sm) / static_cast<double>(max_warps);
  occ.fraction = std::min(occ.fraction, 1.0);
  return occ;
}

Occupancy compute_occupancy(const DeviceSpec& spec, const LaunchConfig& cfg) {
  return compute_occupancy(spec.query(), cfg);
}

}  // namespace tda::gpusim
