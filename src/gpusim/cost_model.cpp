#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tda::gpusim {

KernelStats kernel_time(const DeviceSpec& spec, const LaunchConfig& cfg,
                        const KernelCost& cost) {
  KernelStats st;
  st.occupancy = compute_occupancy(spec, cfg);
  TDA_REQUIRE(st.occupancy.blocks_per_sm > 0,
              "kernel configuration is not launchable on this device");
  TDA_REQUIRE(cost.blocks == cfg.blocks || cost.blocks == 0,
              "cost was accumulated for a different grid size");

  const double clock_hz = spec.clock_ghz * 1e9;
  st.launch_seconds = spec.launch_overhead_us * 1e-6;
  st.bytes_moved = cost.total.global_bytes_eff;

  if (cost.blocks == 0) {
    st.seconds = st.launch_seconds;
    return st;
  }

  // --- wave schedule ---
  const double wave_capacity =
      static_cast<double>(st.occupancy.blocks_per_sm) * spec.sm_count;
  st.waves = static_cast<std::size_t>(
      std::ceil(static_cast<double>(cost.blocks) / wave_capacity));

  // --- latency hiding / achieved bandwidth ---
  // Resident warps, averaged over the whole launch: the tail wave may run
  // fewer blocks than capacity, and a grid smaller than the machine leaves
  // SMs idle.
  const int max_warps = spec.max_threads_per_sm / spec.warp_size;
  const double avg_blocks_running =
      static_cast<double>(cost.blocks) / static_cast<double>(st.waves);
  const int warps_per_block =
      (cfg.threads_per_block + spec.warp_size - 1) / spec.warp_size;
  // Decompose into (fraction of SMs that have work at all) × (how well a
  // busy SM hides latency). A small grid leaves SMs idle; a busy SM with
  // few resident warps cannot keep enough requests in flight — and that
  // loss is super-linear (each missing warp removes outstanding requests
  // AND issue slots), hence the square.
  const double busy_fraction =
      std::min(1.0, avg_blocks_running / spec.sm_count);
  const double blocks_per_busy_sm = std::min<double>(
      st.occupancy.blocks_per_sm,
      std::max(1.0, avg_blocks_running / spec.sm_count));
  const double occ_fraction = std::min(
      1.0, blocks_per_busy_sm * warps_per_block / max_warps);
  const double ratio = std::min(1.0, occ_fraction / spec.occupancy_for_peak);
  st.hiding_factor = busy_fraction * ratio * ratio * ratio;
  // DRAM-efficiency floor: even one resident warp keeps several requests
  // in flight.
  st.hiding_factor = std::max(st.hiding_factor, 0.1);

  // --- memory time ---
  const double bw = spec.global_bw_gb_s * 1e9;
  st.mem_seconds = cost.total.global_bytes_eff / (bw * st.hiding_factor);

  // --- compute time ---
  // Throughput cycles are per-SM issue cycles; blocks spread across SMs.
  const double busy_sms =
      std::min<double>(spec.sm_count, static_cast<double>(cost.blocks));
  const double per_wave_throughput =
      cost.total.throughput_cycles / busy_sms / static_cast<double>(st.waves);
  const double sync_cycles_per_wave =
      cost.total.syncs * spec.sync_cycles / busy_sms /
      static_cast<double>(st.waves);
  const double per_wave_cycles =
      std::max(per_wave_throughput + sync_cycles_per_wave,
               cost.max_critical_cycles);
  st.compute_seconds =
      static_cast<double>(st.waves) * per_wave_cycles / clock_hz;

  // --- compute/memory overlap ---
  // With >= 2 resident blocks per SM, one block's compute phases overlap
  // another's memory traffic and the kernel runs at max(mem, compute).
  // With a single resident block the SM alternates between phases and the
  // times add. Interpolate on the average resident block count.
  const double avg_blocks_per_sm =
      std::min<double>(st.occupancy.blocks_per_sm,
                       avg_blocks_running / spec.sm_count);
  const double overlap = std::clamp(avg_blocks_per_sm - 1.0, 0.0, 1.0);
  const double core =
      std::max(st.mem_seconds, st.compute_seconds) +
      (1.0 - overlap) * std::min(st.mem_seconds, st.compute_seconds);
  st.seconds = st.launch_seconds + core;
  return st;
}

}  // namespace tda::gpusim
