#pragma once
// Device profiles as text files.
//
// The paper's closing argument: "more generations of GPUs with different
// performance characteristics coupled with the larger diversity of
// manycore devices ... make performance tuning an increasingly difficult
// problem". Users model a new device by writing a profile file instead of
// recompiling; the auto-tuner handles the rest.
//
// Format: one `key = value` per line, `#` comments. Keys match the
// DeviceSpec field names. Unknown keys are errors (typo safety);
// omitted keys keep DeviceSpec defaults. `name` is required.

#include <iosfwd>
#include <string>

#include "gpusim/device.hpp"

namespace tda::gpusim {

/// Parses a device profile from a stream. Throws tda::ContractError on
/// malformed input or unknown keys.
DeviceSpec read_device_profile(std::istream& in);

/// Loads a device profile from a file. Throws on I/O or parse failure.
DeviceSpec load_device_profile(const std::string& path);

/// Writes a profile (all fields) that read_device_profile can load back.
void write_device_profile(std::ostream& out, const DeviceSpec& spec);

/// Saves a profile to a file; returns false on I/O failure.
bool save_device_profile(const std::string& path, const DeviceSpec& spec);

}  // namespace tda::gpusim
