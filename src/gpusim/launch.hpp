#pragma once
// Kernel launcher and per-block execution context.
//
// A "kernel" is any callable void(BlockContext&). The launcher executes
// every block functionally while each block records cost events through
// its BlockContext; the cost model then turns the aggregate into
// simulated time, which the owning Device accumulates on its timeline.
//
// Execution is parallel across host threads (gpusim::ThreadPool, sized
// by $TDA_THREADS) yet bitwise deterministic: every block's cost lands
// in a per-block slot and the slots are reduced in block order after
// the workers join, so simulated time, solutions and thrown errors are
// identical to the serial path at any thread count. Each pool lane owns
// its shared-memory arena and kernel scratch (EngineScratch), and every
// shared allocation is zeroed (or NaN-poisoned) before the block sees
// it — a block can never observe another block's arena contents.
//
// BlockContext owns the block's shared-memory arena slice: kernels
// allocate their working set from it, so a configuration whose working
// set exceeds the declared shared_bytes fails loudly during functional
// execution — the simulator's analogue of a CUDA launch failure.

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "faults/faults.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/memory_model.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace tda::gpusim {

/// Execution context of one block: cost recorder + shared-memory arena.
class BlockContext {
 public:
  BlockContext(const DeviceSpec& spec, const LaunchConfig& cfg,
               std::size_t block_index, std::byte* shared_arena,
               int resident_blocks, EngineScratch* scratch = nullptr,
               bool poison = false)
      : spec_(&spec),
        cfg_(&cfg),
        block_index_(block_index),
        shared_arena_(shared_arena),
        scratch_(scratch),
        resident_blocks_(resident_blocks > 0 ? resident_blocks : 1),
        poison_(poison) {}

  [[nodiscard]] std::size_t block_index() const { return block_index_; }
  [[nodiscard]] int threads() const { return cfg_->threads_per_block; }
  [[nodiscard]] const DeviceSpec& device() const { return *spec_; }

  /// Allocates `count` elements of block-shared memory. Throws when the
  /// block's declared shared_bytes budget is exceeded. The slice is
  /// zeroed (0xFF-poisoned when the device's arena poison is on) so a
  /// block can never observe another block's — or a previous launch's —
  /// arena contents; real shared memory holds garbage, not neighbours'
  /// secrets.
  template <typename T>
  std::span<T> shared_alloc(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    // keep allocations aligned to the element size
    std::size_t aligned_off =
        (shared_used_ + alignof(T) - 1) / alignof(T) * alignof(T);
    TDA_REQUIRE(aligned_off + bytes <= cfg_->shared_bytes,
                "kernel exceeded its declared shared memory budget");
    std::byte* raw = shared_arena_ + aligned_off;
    std::memset(raw, poison_ ? 0xFF : 0x00, bytes);
    shared_used_ = aligned_off + bytes;
    return {reinterpret_cast<T*>(raw), count};
  }

  /// Allocates `count` elements of per-block kernel scratch (the
  /// simulator's stand-in for the register file: PCR register staging
  /// and the like). Served from the executing lane's grow-only arena —
  /// no heap allocation in steady state — and valid until the block
  /// returns. Same fill guarantee as shared_alloc.
  template <typename T>
  std::span<T> scratch_alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "kernel scratch is for plain numeric data");
    TDA_REQUIRE(scratch_ != nullptr, "block context has no scratch arena");
    void* p = scratch_->scratch_alloc(count * sizeof(T), alignof(T));
    std::memset(p, poison_ ? 0xFF : 0x00, count * sizeof(T));
    return {static_cast<T*>(p), count};
  }

  /// Records a global-memory access of `useful_bytes` payload performed
  /// warp-wide at the given element stride (1 = coalesced).
  void charge_global(double useful_bytes, std::size_t stride_elems,
                     std::size_t elem_bytes) {
    cost_.global_bytes_eff +=
        effective_global_bytes(*spec_, useful_bytes, stride_elems,
                               elem_bytes);
  }

  /// Records a compute/shared phase: `active_threads` threads each execute
  /// a dependent chain of `chain_ops` steps, every step issuing
  /// `warp_insts_per_op` warp instructions (replayed `conflict_factor`
  /// times for shared-bank conflicts) and carrying `dep_per_op` dependent-
  /// latency units (≈ how many back-to-back instruction results each step
  /// waits on; division-heavy steps are deep).
  ///
  /// The phase cost folds latency-boundness in at phase granularity:
  /// with R resident blocks per SM the phase cannot run faster than its
  /// critical path spread over R concurrent blocks, however few warps it
  /// occupies — this is what makes a 16-thread Thomas tail expensive and
  /// drives the stage-3→4 switch point (paper Fig. 6).
  void charge_phase(int active_threads, double chain_ops,
                    double warp_insts_per_op = 1.0,
                    double conflict_factor = 1.0, double dep_per_op = 1.0) {
    if (active_threads <= 0 || chain_ops <= 0.0) return;
    const int warps =
        (active_threads + spec_->warp_size - 1) / spec_->warp_size;
    const double issue =
        static_cast<double>(spec_->warp_size) / spec_->thread_procs_per_sm;
    const double throughput = static_cast<double>(warps) * chain_ops *
                              warp_insts_per_op * conflict_factor * issue;
    const double critical =
        chain_ops * dep_per_op * spec_->dep_latency_cycles;
    cost_.throughput_cycles +=
        std::max(throughput, critical / resident_blocks_);
    cost_.critical_cycles += critical;
  }

  /// Records one __syncthreads().
  void sync() { cost_.syncs += 1.0; }

  [[nodiscard]] const BlockCost& cost() const { return cost_; }

 private:
  const DeviceSpec* spec_;
  const LaunchConfig* cfg_;
  std::size_t block_index_;
  std::byte* shared_arena_;
  EngineScratch* scratch_;
  int resident_blocks_;
  bool poison_;
  std::size_t shared_used_ = 0;
  BlockCost cost_;
};

/// One record of the optional kernel trace.
struct TraceRecord {
  std::string name;
  std::string label;  ///< span path ("solve/stage1") when telemetry is attached
  std::size_t blocks = 0;
  int threads_per_block = 0;
  KernelStats stats;
};

/// A simulated GPU: a DeviceSpec plus an accumulating timeline.
class Device {
 public:
  explicit Device(DeviceSpec spec)
      : spec_(std::move(spec)),
        mem_(mem_budget_from_env(spec_.global_mem_bytes)) {}

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] DeviceQuery query() const { return spec_.query(); }

  /// Runs `body(BlockContext&)` for every block of the grid — sharded
  /// across the engine thread pool when it has workers — charges the
  /// aggregate cost, advances the timeline, and returns the launch
  /// stats. Bitwise deterministic at any thread count: per-block costs
  /// are reduced in block order, and the lowest-indexed failing block's
  /// exception is the one rethrown. `name` labels the launch in the
  /// optional trace.
  template <typename F>
  KernelStats launch(const LaunchConfig& cfg, F&& body,
                     const char* name = "kernel") {
    if (faults_armed_) {
      auto& inj = faults::FaultInjector::global();
      inj.maybe_device_fault(faults::Site::DeviceAlloc, name);
      inj.maybe_device_fault(faults::Site::DeviceLaunch, name);
    }
    TDA_REQUIRE(cfg.blocks >= 1, "grid must contain at least one block");
    TDA_REQUIRE(cfg.blocks <=
                    static_cast<std::size_t>(spec_.max_grid_blocks),
                "grid exceeds the device's block limit");
    const Occupancy occ = compute_occupancy(spec_, cfg);
    TDA_REQUIRE(occ.blocks_per_sm > 0,
                std::string("unlaunchable configuration (") + occ.limiter +
                    ")");

    // When the tracer clock is not this device's simulated timeline
    // (service workers share one wall-clock session), kernel spans need
    // wall timestamps bracketing the block execution instead.
    const double wall0 =
        (telemetry_ != nullptr && !owns_clock_ &&
         telemetry_->tracer.enabled())
            ? telemetry_->tracer.now()
            : 0.0;

    KernelCost agg;
    ThreadPool& pool = ThreadPool::global();
    if (pool.workers() == 0 || cfg.blocks < 2) {
      EngineScratch& es = EngineScratch::local();
      std::byte* arena = es.shared_arena(spec_.shared_mem_per_sm);
      for (std::size_t b = 0; b < cfg.blocks; ++b) {
        es.reset_scratch();
        BlockContext ctx(spec_, cfg, b, arena, occ.blocks_per_sm, &es,
                         arena_poison_);
        body(ctx);
        agg.add_block(ctx.cost());
      }
    } else {
      std::vector<BlockCost> slots(cfg.blocks);
      // Lowest failing block index; later blocks stop early once a
      // lower one has failed (their work would be discarded anyway).
      std::atomic<std::size_t> first_error{
          std::numeric_limits<std::size_t>::max()};
      std::mutex err_mu;
      std::exception_ptr err;
      std::size_t err_block = std::numeric_limits<std::size_t>::max();
      pool.run(cfg.blocks, [&](std::size_t begin, std::size_t end) {
        EngineScratch& es = EngineScratch::local();
        std::byte* arena = es.shared_arena(spec_.shared_mem_per_sm);
        for (std::size_t b = begin; b < end; ++b) {
          if (first_error.load(std::memory_order_relaxed) < b) return;
          es.reset_scratch();
          BlockContext ctx(spec_, cfg, b, arena, occ.blocks_per_sm, &es,
                           arena_poison_);
          try {
            body(ctx);
          } catch (...) {
            std::lock_guard lk(err_mu);
            if (b < err_block) {
              err_block = b;
              err = std::current_exception();
              first_error.store(b, std::memory_order_relaxed);
            }
            return;
          }
          slots[b] = ctx.cost();
        }
      });
      // The chunk owning the overall-lowest failing block always reaches
      // it (nothing lower can have failed and stopped it), so the
      // rethrown error is exactly the serial path's.
      if (err) std::rethrow_exception(err);
      for (const BlockCost& c : slots) agg.add_block(c);
    }
    const double t0 = elapsed_seconds_;
    KernelStats st = kernel_time(spec_, cfg, agg);
    elapsed_seconds_ += st.seconds;
    ++kernels_launched_;
    if (telemetry_ != nullptr) {
      record_launch_telemetry(name, cfg, agg, st, t0, wall0);
    }
    if (tracing_) {
      TraceRecord rec{name, {}, cfg.blocks, cfg.threads_per_block, st};
      if (telemetry_ != nullptr && telemetry_->tracer.enabled()) {
        rec.label = telemetry_->tracer.current_path();
      }
      trace_.push_back(std::move(rec));
    }
    return st;
  }

  /// Attaches (or detaches, with nullptr) a telemetry session. Every
  /// launch then emits a child span under the caller's open span and
  /// updates launch counters. With `adopt_clock` (the default) the
  /// tracer's clock is pointed at this device's simulated timeline;
  /// pass false when the session's clock belongs to someone else — the
  /// service shares one wall-clock session across many worker devices —
  /// and kernel spans then carry wall timestamps (simulated ms stays in
  /// the "ms" attr). The device does not own the session.
  void set_telemetry(tda::telemetry::Telemetry* tel,
                     bool adopt_clock = true) {
    telemetry_ = tel;
    mem_.set_telemetry(tel);
    owns_clock_ = tel != nullptr && adopt_clock;
    if (owns_clock_) {
      tel->tracer.set_clock([this] { return elapsed_seconds_; });
    }
  }
  [[nodiscard]] tda::telemetry::Telemetry* telemetry() const {
    return telemetry_;
  }

  /// Enables per-launch trace recording (off by default; recording a
  /// tuning search produces thousands of records). Disabling also frees
  /// the accumulated records — a tuning sweep with tracing left on
  /// would otherwise silently retain thousands of them.
  void enable_trace(bool on = true) {
    tracing_ = on;
    if (!on) clear_trace();
  }
  [[nodiscard]] const std::vector<TraceRecord>& trace() const {
    return trace_;
  }
  void clear_trace() {
    trace_.clear();
    trace_.shrink_to_fit();
  }

  /// Total simulated time since construction / last reset.
  [[nodiscard]] double elapsed_seconds() const { return elapsed_seconds_; }
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds_ * 1e3; }
  [[nodiscard]] std::size_t kernels_launched() const {
    return kernels_launched_;
  }

  void reset_timeline() {
    elapsed_seconds_ = 0.0;
    kernels_launched_ = 0;
  }

  /// Arena fill policy: poisoned allocations are filled with 0xFF (a
  /// NaN pattern for float/double), so a kernel reading shared or
  /// scratch memory it never wrote computes NaNs that the guards and
  /// tests catch loudly, instead of silently reusing stale values.
  /// Defaults to on in debug builds or when $TDA_ARENA_POISON is set.
  void set_arena_poison(bool on = true) { arena_poison_ = on; }
  [[nodiscard]] bool arena_poison() const { return arena_poison_; }

  /// Arms the device-level fault sites (DeviceLaunch/DeviceAlloc) on this
  /// device. Off by default: only callers with a recovery story — the
  /// service's retry/failover path, fault tests, the resilience bench —
  /// opt in, so a stray TDA_FAULTS env var cannot crash a bare solver
  /// run that has no way to handle a DeviceFault.
  void arm_faults(bool on = true) { faults_armed_ = on; }
  [[nodiscard]] bool faults_armed() const { return faults_armed_; }

  /// This device's global-memory accounting. The budget defaults to
  /// spec().global_mem_bytes (or $TDA_MEM_BUDGET when set).
  [[nodiscard]] MemoryTracker& memory() { return mem_; }
  [[nodiscard]] const MemoryTracker& memory() const { return mem_; }
  void set_mem_budget(std::size_t bytes) { mem_.set_budget(bytes); }

  /// Claims `bytes` of device global memory; throws OutOfMemory when the
  /// budget would be exceeded — or, on armed devices, when the `oom`
  /// fault site fires (same error type, so recovery code exercised by
  /// injection is exactly the code a genuine exhaustion takes).
  MemoryReservation mem_reserve(std::size_t bytes, const char* what) {
    if (faults_armed_ &&
        faults::FaultInjector::global().fire(faults::Site::DeviceOOM)) {
      if (telemetry_ != nullptr && telemetry_->metrics.enabled()) {
        telemetry_->metrics.add("device.oom_injected");
      }
      throw OutOfMemory(std::string("injected oom (") + what + ")");
    }
    mem_.allocate(bytes, what);
    return MemoryReservation(&mem_, bytes);
  }

 private:
  void record_launch_telemetry(const char* name, const LaunchConfig& cfg,
                               const KernelCost& agg, const KernelStats& st,
                               double t0, double wall0) {
    auto& tracer = telemetry_->tracer;
    if (tracer.enabled()) {
      const double b = owns_clock_ ? t0 : wall0;
      const double e = owns_clock_ ? elapsed_seconds_ : tracer.now();
      const auto span = tracer.emit(name, "kernel", b, e);
      tracer.attr(span, "blocks", static_cast<double>(cfg.blocks));
      tracer.attr(span, "threads",
                  static_cast<double>(cfg.threads_per_block));
      tracer.attr(span, "ms", st.seconds * 1e3);
      tracer.attr(span, "mem_ms", st.mem_seconds * 1e3);
      tracer.attr(span, "compute_ms", st.compute_seconds * 1e3);
      tracer.attr(span, "occupancy", st.occupancy.fraction);
      tracer.attr(span, "bytes", agg.total.global_bytes_eff);
    }
    auto& metrics = telemetry_->metrics;
    if (metrics.enabled()) {
      metrics.add("device.kernel_launches");
      metrics.add("device.bytes_moved", agg.total.global_bytes_eff);
      metrics.observe("device.launch_ms", st.seconds * 1e3);
    }
  }

  static bool default_arena_poison() {
#ifdef NDEBUG
    const bool dbg = false;
#else
    const bool dbg = true;
#endif
    if (const char* env = std::getenv("TDA_ARENA_POISON");
        env != nullptr && *env != '\0') {
      return env[0] != '0';
    }
    return dbg;
  }

  DeviceSpec spec_;
  MemoryTracker mem_;
  double elapsed_seconds_ = 0.0;
  std::size_t kernels_launched_ = 0;
  bool tracing_ = false;
  bool faults_armed_ = false;
  bool owns_clock_ = false;  ///< tracer clock is this device's timeline
  bool arena_poison_ = default_arena_poison();
  std::vector<TraceRecord> trace_;
  tda::telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace tda::gpusim
