#include "gpusim/memory.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace tda::gpusim {

std::size_t parse_mem_bytes(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || v < 0.0) return 0;
  double scale = 1.0;
  if (end != nullptr && *end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': scale = 1024.0; break;
      case 'm': scale = 1024.0 * 1024.0; break;
      case 'g': scale = 1024.0 * 1024.0 * 1024.0; break;
      default: return 0;
    }
    if (*(end + 1) != '\0') return 0;
  }
  return static_cast<std::size_t>(v * scale);
}

std::size_t mem_budget_from_env(std::size_t device_default) {
  const char* env = std::getenv("TDA_MEM_BUDGET");
  if (env == nullptr || *env == '\0') return device_default;
  const std::size_t parsed = parse_mem_bytes(env);
  if (parsed == 0) {
    TDA_WARN("memory: ignoring unparsable TDA_MEM_BUDGET '" << env << "'");
    return device_default;
  }
  return parsed;
}

void MemoryTracker::allocate(std::size_t bytes, const char* what) {
  telemetry::Telemetry* tel = nullptr;
  {
    std::lock_guard lk(mu_);
    if (budget_ != 0 && in_use_ + bytes > budget_) {
      ++oom_count_;
      if (tel_ != nullptr && tel_->metrics.enabled()) {
        tel_->metrics.add("device.oom");
      }
      std::ostringstream os;
      os << "device memory budget exceeded: requested " << bytes
         << " B for " << what << ", " << in_use_ << " B in use of "
         << budget_ << " B budget";
      throw OutOfMemory(os.str());
    }
    in_use_ += bytes;
    if (in_use_ > high_water_) high_water_ = in_use_;
    ++allocations_;
    tel = tel_;
  }
  if (tel != nullptr && tel->metrics.enabled()) {
    tel->metrics.set("device.mem_in_use", static_cast<double>(in_use()));
    tel->metrics.set("device.mem_high_water",
                     static_cast<double>(high_water()));
  }
}

void MemoryTracker::release(std::size_t bytes) {
  telemetry::Telemetry* tel = nullptr;
  {
    std::lock_guard lk(mu_);
    in_use_ = bytes < in_use_ ? in_use_ - bytes : 0;
    tel = tel_;
  }
  if (tel != nullptr && tel->metrics.enabled()) {
    tel->metrics.set("device.mem_in_use", static_cast<double>(in_use()));
  }
}

}  // namespace tda::gpusim
