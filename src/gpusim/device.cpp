#include "gpusim/device.hpp"

namespace tda::gpusim {

DeviceQuery DeviceSpec::query() const {
  DeviceQuery q;
  q.name = name;
  q.global_mem_bytes = global_mem_bytes;
  q.sm_count = sm_count;
  q.thread_procs_per_sm = thread_procs_per_sm;
  q.warp_size = warp_size;
  q.shared_mem_per_sm = shared_mem_per_sm;
  q.constant_mem_bytes = constant_mem_bytes;
  q.registers_per_sm = registers_per_sm;
  q.max_threads_per_block = max_threads_per_block;
  q.max_threads_per_sm = max_threads_per_sm;
  q.max_blocks_per_sm = max_blocks_per_sm;
  q.max_grid_blocks = max_grid_blocks;
  return q;
}

// Profiles follow paper Table I for bandwidth / shared memory / processor
// counts, and the published architecture documents for the rest. The
// hidden performance constants are calibrated once (DESIGN.md §6) so the
// paper's anchor observations hold, then frozen.

DeviceSpec geforce_8800_gtx() {
  DeviceSpec d;
  d.name = "GeForce 8800 GTX";
  d.global_mem_bytes = 768ull * 1024 * 1024;
  d.sm_count = 14;  // paper Table I
  d.thread_procs_per_sm = 8;
  d.warp_size = 32;
  d.shared_mem_per_sm = 16 * 1024;
  d.registers_per_sm = 8192;
  d.max_threads_per_block = 512;
  d.max_threads_per_sm = 768;
  d.max_blocks_per_sm = 8;

  d.global_bw_gb_s = 57.6;
  d.clock_ghz = 1.35;
  d.shared_banks = 16;
  d.dep_latency_cycles = 20.0;
  d.mem_latency_cycles = 500;
  d.launch_overhead_us = 10.0;
  d.sync_cycles = 40.0;
  // G80's narrow SMs saturate memory with few warps.
  d.occupancy_for_peak = 0.33;
  // G80 coalescing is all-or-nothing across a half-warp: irregular
  // patterns degenerate to one transaction per thread, and there is no
  // cache to absorb the redundancy.
  d.coalesce_segment_bytes = 128;
  d.strided_reuse = 0.0;
  return d;
}

DeviceSpec geforce_gtx_280() {
  DeviceSpec d;
  d.name = "GeForce GTX 280";
  d.global_mem_bytes = 1024ull * 1024 * 1024;
  d.sm_count = 30;  // paper Table I
  d.thread_procs_per_sm = 8;
  d.warp_size = 32;
  d.shared_mem_per_sm = 16 * 1024;
  d.registers_per_sm = 16384;
  d.max_threads_per_block = 512;
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 8;

  d.global_bw_gb_s = 141.7;
  d.clock_ghz = 1.296;
  d.shared_banks = 16;
  d.dep_latency_cycles = 40.0;
  d.mem_latency_cycles = 500;
  d.launch_overhead_us = 8.0;
  d.sync_cycles = 40.0;
  d.occupancy_for_peak = 0.5;
  // GT200 coalescing hardware merges into 64-byte segments; row-buffer
  // locality across concurrently-scheduled sibling blocks recovers about
  // half of the redundant strided traffic.
  d.coalesce_segment_bytes = 64;
  d.strided_reuse = 0.5;
  return d;
}

DeviceSpec geforce_gtx_470() {
  DeviceSpec d;
  d.name = "GeForce GTX 470";
  d.global_mem_bytes = 1280ull * 1024 * 1024;
  d.sm_count = 14;  // paper Table I
  d.thread_procs_per_sm = 32;
  d.warp_size = 32;
  d.shared_mem_per_sm = 48 * 1024;
  d.registers_per_sm = 32768;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 1536;
  d.max_blocks_per_sm = 8;

  d.global_bw_gb_s = 133.9;
  d.clock_ghz = 1.215;
  d.shared_banks = 32;
  d.dep_latency_cycles = 30.0;
  d.mem_latency_cycles = 400;
  d.launch_overhead_us = 5.0;
  d.sync_cycles = 32.0;
  // Fermi's wide SMs need a full complement of resident warps to cover
  // latency — the architectural reason the paper's Fig. 5 shows the 470
  // preferring 512-sized on-chip systems over 1024 (§V).
  d.occupancy_for_peak = 1.0;
  // Fermi L1 serves uncoalesced accesses in 32-byte sectors and the
  // L1/L2 hierarchy absorbs most redundant strided refetches.
  d.coalesce_segment_bytes = 32;
  d.strided_reuse = 0.85;
  return d;
}

std::vector<DeviceSpec> device_registry() {
  return {geforce_8800_gtx(), geforce_gtx_280(), geforce_gtx_470()};
}

std::optional<DeviceSpec> device_by_name(const std::string& name) {
  for (auto& d : device_registry()) {
    if (d.name == name) return d;
  }
  return std::nullopt;
}

}  // namespace tda::gpusim
