#pragma once
// Occupancy calculation: how many blocks of a given launch configuration
// fit on one streaming multiprocessor simultaneously, and what fraction of
// the SM's warp slots they fill. This is the CUDA occupancy calculator's
// arithmetic, driven entirely by queryable properties plus the launch
// configuration — so both the cost model and the *static* tuner may use it.

#include <cstddef>

#include "gpusim/device.hpp"

namespace tda::gpusim {

/// Per-block resource requirements of a kernel launch.
struct LaunchConfig {
  std::size_t blocks = 1;            ///< grid size
  int threads_per_block = 32;        ///< block size (threads)
  std::size_t shared_bytes = 0;      ///< shared memory per block
  int regs_per_thread = 24;          ///< register footprint per thread
};

/// Result of the occupancy calculation.
struct Occupancy {
  int blocks_per_sm = 0;   ///< resident blocks per SM (0 = unlaunchable)
  int warps_per_sm = 0;    ///< resident warps per SM
  double fraction = 0.0;   ///< warps_per_sm / max warps
  const char* limiter = "none";  ///< which resource bound first
};

/// Computes occupancy of `cfg` on a device described by its queryable
/// properties. Returns blocks_per_sm == 0 when the configuration cannot
/// launch at all (block too large for shared memory / registers / thread
/// limit).
Occupancy compute_occupancy(const DeviceQuery& q, const LaunchConfig& cfg);

/// Convenience overload for a full spec.
Occupancy compute_occupancy(const DeviceSpec& spec, const LaunchConfig& cfg);

}  // namespace tda::gpusim
