#include "gpusim/memory_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tda::gpusim {

double strided_inflation(const DeviceSpec& spec, std::size_t stride_elems,
                         std::size_t elem_bytes) {
  TDA_REQUIRE(stride_elems >= 1, "stride must be >= 1");
  TDA_REQUIRE(elem_bytes >= 1, "element size must be >= 1");
  const double seg = static_cast<double>(spec.coalesce_segment_bytes);
  const double e = static_cast<double>(elem_bytes);
  // A warp's 32 accesses at stride s touch ceil(32·s·e / seg) segments
  // (at most 32 — one per thread); coalesced payload is 32·e bytes.
  const double wanted = 32.0 * e;
  const double span = 32.0 * static_cast<double>(stride_elems) * e;
  double segments = std::min(32.0, std::max(1.0, span / seg));
  const double moved = std::max(wanted, segments * seg);
  return moved / wanted;
}

double reuse_adjusted_inflation(const DeviceSpec& spec,
                                std::size_t stride_elems,
                                std::size_t elem_bytes) {
  const double raw = strided_inflation(spec, stride_elems, elem_bytes);
  return 1.0 + (raw - 1.0) * (1.0 - spec.strided_reuse);
}

double effective_global_bytes(const DeviceSpec& spec, double useful_bytes,
                              std::size_t stride_elems,
                              std::size_t elem_bytes) {
  return useful_bytes *
         reuse_adjusted_inflation(spec, stride_elems, elem_bytes);
}

double bank_conflict_factor(const DeviceSpec& spec, std::size_t stride_elems,
                            std::size_t elem_bytes) {
  TDA_REQUIRE(stride_elems >= 1, "stride must be >= 1");
  const std::size_t banks = static_cast<std::size_t>(spec.shared_banks);
  // Shared banks are 4-byte wide; an element of e bytes advances the bank
  // index by e/4 words (8-byte doubles hit two banks, modeled as word
  // stride 2).
  const std::size_t word_stride =
      std::max<std::size_t>(1, stride_elems * std::max<std::size_t>(
                                                  1, elem_bytes / 4));
  const std::size_t g = std::gcd(word_stride, banks);
  // g threads of each bank-group collide; the warp replays g times
  // (classic CUDA rule: conflict degree = gcd(stride, banks)).
  double factor = static_cast<double>(g);
  // 16-bank parts service a warp as two half-warps; that constant
  // half-warp serialization is part of the baseline cost, not a conflict.
  return std::max(1.0, factor);
}

}  // namespace tda::gpusim
