#pragma once
// Global-memory coalescing and shared-memory bank-conflict models.
//
// Coalescing: a warp of 32 threads reading consecutive elements touches
// 32·e bytes in ⌈32e/seg⌉ segments — fully coalesced. Reading with an
// element stride s makes the warp's footprint span 32·s·e bytes; the
// memory system must still move whole segments, so the useful-byte
// inflation grows with s until every thread hits its own segment
// (inflation cap = seg/e). The segment size is a *hidden* device property:
// 128 B on G80 (whose coalescer gives up on irregular patterns), 64 B on
// GT200, 32 B on Fermi with its L1.
//
// Bank conflicts: a warp accessing shared memory with element stride s
// hits gcd-determined bank groups; the access replays conflict_factor
// times.

#include <cstddef>
#include <numeric>

#include "gpusim/device.hpp"

namespace tda::gpusim {

/// Useful-byte inflation factor (>= 1) of a warp-strided global access.
/// stride_elems == 1 → 1.0 (fully coalesced).
double strided_inflation(const DeviceSpec& spec, std::size_t stride_elems,
                         std::size_t elem_bytes);

/// Inflation after cross-block segment reuse: when many blocks gather
/// interleaved subsystems from the same region, a cached/row-local memory
/// system serves part of the redundant segment traffic once. This is the
/// inflation kernels are charged with.
double reuse_adjusted_inflation(const DeviceSpec& spec,
                                std::size_t stride_elems,
                                std::size_t elem_bytes);

/// Effective bytes the memory system moves for `useful_bytes` of payload
/// accessed at the given element stride (reuse-adjusted).
double effective_global_bytes(const DeviceSpec& spec, double useful_bytes,
                              std::size_t stride_elems,
                              std::size_t elem_bytes);

/// Shared-memory bank-conflict replay factor for a warp accessing 32-bit
/// words with the given element stride (CUDA bank rules: bank =
/// word_index mod banks; conflict factor = warp_size/banks * gcd-derived
/// group size). Returns >= 1.
double bank_conflict_factor(const DeviceSpec& spec, std::size_t stride_elems,
                            std::size_t elem_bytes);

}  // namespace tda::gpusim
