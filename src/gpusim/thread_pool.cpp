#include "gpusim/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.hpp"

namespace tda::gpusim {

namespace {
/// Set while the thread is executing a pool job: a reentrant run()
/// from inside a job executes inline instead of deadlocking on itself.
thread_local bool t_in_pool_job = false;

/// TDA_PIN=1 requests best-effort CPU affinity for the worker lanes:
/// lane k is pinned to CPU (k mod ncpu), which keeps each lane's bump
/// arena and scratch chunks on the NUMA node that first touched them
/// and stops the scheduler migrating lanes mid-launch. Off by default;
/// a no-op (never an error) on platforms without pthread affinity.
bool pin_from_env() {
  const char* env = std::getenv("TDA_PIN");
  return env != nullptr && *env != '\0' && env[0] != '0';
}

void pin_lane_to_cpu(std::thread& t, std::size_t lane) {
#if defined(__linux__)
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(lane % ncpu), &set);
  // Best effort: failure (cgroup restrictions, exotic kernels) leaves
  // the thread unpinned, which is exactly the TDA_PIN=0 behaviour.
  (void)pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)lane;
#endif
}
}  // namespace

// ---------------------------------------------------------------- scratch

EngineScratch& EngineScratch::local() {
  static thread_local EngineScratch scratch;
  return scratch;
}

std::byte* EngineScratch::shared_arena(std::size_t bytes) {
  if (shared_.size() < bytes) shared_.resize(bytes);
  return shared_.data();
}

void* EngineScratch::scratch_alloc(std::size_t bytes, std::size_t align) {
  TDA_REQUIRE(align >= 1 && align <= kCacheLineBytes,
              "scratch alignment out of range");
  for (; cursor_ < chunks_.size(); ++cursor_) {
    Chunk& c = chunks_[cursor_];
    const std::size_t off = (c.used + align - 1) / align * align;
    if (off + bytes <= c.buf.size()) {
      c.used = off + bytes;
      return c.buf.data() + off;
    }
  }
  // No chunk fits: append one (chunks at least double, so steady state
  // settles after a handful of launches and never allocates again).
  constexpr std::size_t kMinChunk = 64 * 1024;
  std::size_t cap = std::max(bytes, kMinChunk);
  if (!chunks_.empty()) cap = std::max(cap, 2 * chunks_.back().buf.size());
  Chunk c;
  c.buf.resize(cap);
  c.used = bytes;
  chunks_.push_back(std::move(c));
  cursor_ = chunks_.size() - 1;
  return chunks_.back().buf.data();
}

void EngineScratch::reset_scratch() {
  for (Chunk& c : chunks_) c.used = 0;
  cursor_ = 0;
}

std::size_t EngineScratch::scratch_capacity() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.buf.size();
  return total;
}

// ------------------------------------------------------------------- pool

int ThreadPool::lanes_from_env() {
  if (const char* env = std::getenv("TDA_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  // Intentionally leaked: service workers may still hold launches during
  // static destruction; a leaked pool sidesteps teardown ordering.
  static ThreadPool* pool = new ThreadPool(lanes_from_env());
  return *pool;
}

ThreadPool::ThreadPool(int lanes) { spawn(lanes); }

ThreadPool::~ThreadPool() { stop_workers(); }

int ThreadPool::lanes() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(threads_.size()) + 1;
}

int ThreadPool::workers() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::spawn(int lanes) {
  lanes = std::max(1, lanes);
  std::lock_guard lk(mu_);
  TDA_REQUIRE(threads_.empty(), "pool already has workers");
  lane_counters_.clear();
  for (int i = 0; i < lanes; ++i) {
    lane_counters_.push_back(std::make_unique<LaneCounters>());
  }
  const bool pin = pin_from_env();
  for (int i = 0; i < lanes - 1; ++i) {
    threads_.emplace_back([this, lane = static_cast<std::size_t>(i) + 1] {
      worker_loop(lane);
    });
    if (pin) {
      pin_lane_to_cpu(threads_.back(), static_cast<std::size_t>(i) + 1);
    }
  }
}

void ThreadPool::stop_workers() {
  std::vector<std::thread> doomed;
  {
    std::lock_guard lk(mu_);
    stop_ = true;
    doomed.swap(threads_);
  }
  cv_.notify_all();
  for (std::thread& t : doomed) {
    if (t.joinable()) t.join();
  }
  std::lock_guard lk(mu_);
  stop_ = false;
}

void ThreadPool::resize(int lanes) {
  {
    std::lock_guard lk(mu_);
    TDA_REQUIRE(jobs_.empty(), "cannot resize the pool mid-launch");
  }
  stop_workers();
  spawn(lanes);
}

void ThreadPool::run(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (workers() == 0 || count == 1 || t_in_pool_job) {
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    LaneCounters* caller = nullptr;
    {
      std::lock_guard lk(mu_);
      if (!lane_counters_.empty()) caller = lane_counters_[0].get();
    }
    const auto t0 = std::chrono::steady_clock::now();
    fn(0, count);
    if (caller != nullptr) {
      const auto dt = std::chrono::steady_clock::now() - t0;
      caller->chunks.fetch_add(1, std::memory_order_relaxed);
      caller->busy_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                  .count()),
          std::memory_order_relaxed);
    }
    return;
  }
  parallel_runs_.fetch_add(1, std::memory_order_relaxed);

  auto job = std::make_shared<Job>();
  job->count = count;
  job->fn = &fn;
  // Chunks several times smaller than a lane's even share: blocks have
  // uneven cost (ragged tails, uneven stage-1 coverage), so finer grains
  // re-balance — while slot-ordered reduction keeps results exact.
  const std::size_t nlanes = static_cast<std::size_t>(lanes());
  job->chunk = std::max<std::size_t>(1, count / (nlanes * 8));
  LaneCounters* caller = nullptr;
  {
    std::lock_guard lk(mu_);
    jobs_.push_back(job);
    if (!lane_counters_.empty()) caller = lane_counters_[0].get();
  }
  cv_.notify_all();

  participate(*job, caller);

  std::unique_lock lk(job->m);
  job->done_cv.wait(lk, [&] {
    return job->next.load(std::memory_order_acquire) >= job->count &&
           job->running.load(std::memory_order_acquire) == 0;
  });
  lk.unlock();
  remove_job(job);
}

void ThreadPool::participate(Job& job, LaneCounters* counters) {
  const bool was_in_job = t_in_pool_job;
  t_in_pool_job = true;
  job.running.fetch_add(1, std::memory_order_acq_rel);
  for (;;) {
    const std::size_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_acq_rel);
    if (begin >= job.count) break;
    const std::size_t end = std::min(job.count, begin + job.chunk);
    const auto t0 = std::chrono::steady_clock::now();
    (*job.fn)(begin, end);
    if (counters != nullptr) {
      const auto dt = std::chrono::steady_clock::now() - t0;
      counters->chunks.fetch_add(1, std::memory_order_relaxed);
      counters->busy_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                  .count()),
          std::memory_order_relaxed);
    }
  }
  if (job.running.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last lane out wakes the owner; the lock pairs with the owner's
    // predicate check so the notify cannot be missed.
    std::lock_guard lk(job.m);
    job.done_cv.notify_all();
  }
  t_in_pool_job = was_in_job;
}

void ThreadPool::remove_job(const std::shared_ptr<Job>& job) {
  std::lock_guard lk(mu_);
  auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
}

void ThreadPool::worker_loop(std::size_t lane) {
  LaneCounters* counters = nullptr;
  {
    std::lock_guard lk(mu_);
    if (lane < lane_counters_.size()) {
      counters = lane_counters_[lane].get();
    }
  }
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      job = jobs_.front();
      if (job->next.load(std::memory_order_acquire) >= job->count) {
        // Exhausted but not yet removed by its owner: skip it so the
        // queue cannot wedge on a drained job.
        jobs_.pop_front();
        continue;
      }
    }
    participate(*job, counters);
  }
}

std::vector<ThreadPool::LaneStats> ThreadPool::lane_stats() const {
  std::lock_guard lk(mu_);
  std::vector<LaneStats> out;
  out.reserve(lane_counters_.size());
  for (const auto& c : lane_counters_) {
    LaneStats s;
    s.chunks = c->chunks.load(std::memory_order_relaxed);
    s.busy_ms =
        static_cast<double>(c->busy_ns.load(std::memory_order_relaxed)) /
        1e6;
    out.push_back(s);
  }
  return out;
}

}  // namespace tda::gpusim
