#pragma once
// Parallel block-execution engine (docs/PERFORMANCE.md).
//
// The simulator executes every block of a kernel launch functionally on
// the host; a persistent pool of worker threads shards those blocks so
// the hot path uses all host cores instead of one. Determinism is the
// design constraint: the launcher stores per-block costs in fixed slots
// and reduces them in block order afterwards, so simulated time and
// solutions are bitwise identical at every thread count (ISSUE 5).
//
// Sizing: $TDA_THREADS lanes (default hardware_concurrency). A lane is
// one thread that can execute block chunks — the pool spawns lanes-1
// workers and the calling thread participates as the last lane, so
// TDA_THREADS=1 never spawns a thread and runs the exact serial path.
//
// Each lane owns an EngineScratch (thread-local): the block
// shared-memory arena plus a grow-only bump allocator for kernel
// register-staging buffers. Per-lane arenas are what make parallel
// block execution safe — and they fix the pre-existing cross-block
// stale-data leak of the single shared Device arena.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace tda::gpusim {

/// Per-thread execution scratch of the block engine.
class EngineScratch {
 public:
  /// The calling thread's scratch (created on first use).
  static EngineScratch& local();

  /// The block shared-memory arena, grown to at least `bytes`.
  /// Growth is destructive (blocks never rely on arena contents —
  /// BlockContext zeroes/poisons every allocation).
  std::byte* shared_arena(std::size_t bytes);

  /// Bump-allocates `bytes` of kernel scratch aligned to `align`.
  /// Returned memory is stable until reset_scratch(): growth appends
  /// new chunks, it never moves live ones.
  void* scratch_alloc(std::size_t bytes, std::size_t align);

  /// Rewinds the bump allocator; chunks are retained for reuse, so a
  /// steady-state launch performs no allocations at all.
  void reset_scratch();

  [[nodiscard]] std::size_t scratch_capacity() const;

 private:
  struct Chunk {
    AlignedBuffer<std::byte> buf;
    std::size_t used = 0;
  };

  AlignedBuffer<std::byte> shared_;
  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0;  ///< chunk currently bump-allocating
};

/// Persistent host thread pool that shards index ranges across lanes.
class ThreadPool {
 public:
  /// The process-wide pool, sized from $TDA_THREADS on first use
  /// (invalid/unset falls back to std::thread::hardware_concurrency).
  static ThreadPool& global();

  /// A pool with `lanes` execution lanes (>= 1). lanes == 1 spawns no
  /// worker thread: run() executes inline on the caller.
  explicit ThreadPool(int lanes);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes a run() can use at once (workers + caller).
  [[nodiscard]] int lanes() const;
  /// Worker threads currently alive (lanes() - 1; 0 in serial mode).
  [[nodiscard]] int workers() const;

  /// Stops and respawns workers with a new lane count. Callable only
  /// while no run() is in flight (tests and benches sweeping thread
  /// counts; the service resizes before its workers start).
  void resize(int lanes);

  /// Executes fn(begin, end) over contiguous chunks of [0, count),
  /// load-balanced across lanes; the calling thread participates and
  /// the call returns once every index is processed. `fn` MUST NOT
  /// throw — callers that need exceptions record them per index and
  /// rethrow after run() (see Device::launch). Concurrent run() calls
  /// from different threads share the workers; a reentrant call from
  /// inside a pool job runs inline (no deadlock).
  void run(std::size_t count,
           const std::function<void(std::size_t, std::size_t)>& fn);

  /// run() calls that used the workers vs. executed inline.
  [[nodiscard]] std::uint64_t parallel_runs() const {
    return parallel_runs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t inline_runs() const {
    return inline_runs_.load(std::memory_order_relaxed);
  }

  /// Cumulative per-lane execution accounting. Index 0 aggregates every
  /// calling thread's participation (callers come and go; they share a
  /// slot); 1..workers() are the pool's own threads. Feeds the
  /// engine.lane.* utilization gauges — a flat thread-scaling curve
  /// with idle worker lanes is diagnosable from these alone.
  struct LaneStats {
    std::uint64_t chunks = 0;  ///< work chunks executed on this lane
    double busy_ms = 0.0;      ///< wall time spent inside chunks
  };
  [[nodiscard]] std::vector<LaneStats> lane_stats() const;

  /// Lane count $TDA_THREADS requests (hardware_concurrency fallback).
  static int lanes_from_env();

 private:
  struct Job {
    std::size_t count = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<int> running{0};
    std::mutex m;
    std::condition_variable done_cv;
  };

  struct LaneCounters {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void spawn(int lanes);
  void stop_workers();
  void worker_loop(std::size_t lane);
  void participate(Job& job, LaneCounters* counters);
  void remove_job(const std::shared_ptr<Job>& job);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<LaneCounters>> lane_counters_;  // mu_
  bool stop_ = false;
  std::atomic<std::uint64_t> parallel_runs_{0};
  std::atomic<std::uint64_t> inline_runs_{0};
};

}  // namespace tda::gpusim
