#include "gpusim/device_file.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/check.hpp"

namespace tda::gpusim {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

using Setter = std::function<void(DeviceSpec&, const std::string&)>;

template <typename T, typename Parse>
Setter make_setter(T DeviceSpec::* field, Parse parse) {
  return [field, parse](DeviceSpec& spec, const std::string& value) {
    spec.*field = parse(value);
  };
}

long long parse_int(const std::string& v) {
  std::size_t pos = 0;
  const long long out = std::stoll(v, &pos);
  TDA_REQUIRE(pos == v.size(), "trailing junk after integer: " + v);
  return out;
}

double parse_double(const std::string& v) {
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  TDA_REQUIRE(pos == v.size(), "trailing junk after number: " + v);
  return out;
}

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> table = {
      {"name", make_setter(&DeviceSpec::name,
                           [](const std::string& v) { return v; })},
      {"global_mem_bytes",
       make_setter(&DeviceSpec::global_mem_bytes, [](const std::string& v) {
         return static_cast<std::size_t>(parse_int(v));
       })},
      {"sm_count", make_setter(&DeviceSpec::sm_count,
                               [](const std::string& v) {
                                 return static_cast<int>(parse_int(v));
                               })},
      {"thread_procs_per_sm",
       make_setter(&DeviceSpec::thread_procs_per_sm,
                   [](const std::string& v) {
                     return static_cast<int>(parse_int(v));
                   })},
      {"warp_size", make_setter(&DeviceSpec::warp_size,
                                [](const std::string& v) {
                                  return static_cast<int>(parse_int(v));
                                })},
      {"shared_mem_per_sm",
       make_setter(&DeviceSpec::shared_mem_per_sm, [](const std::string& v) {
         return static_cast<std::size_t>(parse_int(v));
       })},
      {"constant_mem_bytes",
       make_setter(&DeviceSpec::constant_mem_bytes,
                   [](const std::string& v) {
                     return static_cast<std::size_t>(parse_int(v));
                   })},
      {"registers_per_sm",
       make_setter(&DeviceSpec::registers_per_sm, [](const std::string& v) {
         return static_cast<int>(parse_int(v));
       })},
      {"max_threads_per_block",
       make_setter(&DeviceSpec::max_threads_per_block,
                   [](const std::string& v) {
                     return static_cast<int>(parse_int(v));
                   })},
      {"max_threads_per_sm",
       make_setter(&DeviceSpec::max_threads_per_sm,
                   [](const std::string& v) {
                     return static_cast<int>(parse_int(v));
                   })},
      {"max_blocks_per_sm",
       make_setter(&DeviceSpec::max_blocks_per_sm, [](const std::string& v) {
         return static_cast<int>(parse_int(v));
       })},
      {"max_grid_blocks",
       make_setter(&DeviceSpec::max_grid_blocks,
                   [](const std::string& v) { return parse_int(v); })},
      {"global_bw_gb_s",
       make_setter(&DeviceSpec::global_bw_gb_s, parse_double)},
      {"clock_ghz", make_setter(&DeviceSpec::clock_ghz, parse_double)},
      {"shared_banks", make_setter(&DeviceSpec::shared_banks,
                                   [](const std::string& v) {
                                     return static_cast<int>(parse_int(v));
                                   })},
      {"dep_latency_cycles",
       make_setter(&DeviceSpec::dep_latency_cycles, parse_double)},
      {"mem_latency_cycles",
       make_setter(&DeviceSpec::mem_latency_cycles, parse_double)},
      {"launch_overhead_us",
       make_setter(&DeviceSpec::launch_overhead_us, parse_double)},
      {"sync_cycles", make_setter(&DeviceSpec::sync_cycles, parse_double)},
      {"coop_sync_efficiency",
       make_setter(&DeviceSpec::coop_sync_efficiency, parse_double)},
      {"occupancy_for_peak",
       make_setter(&DeviceSpec::occupancy_for_peak, parse_double)},
      {"coalesce_segment_bytes",
       make_setter(&DeviceSpec::coalesce_segment_bytes,
                   [](const std::string& v) {
                     return static_cast<std::size_t>(parse_int(v));
                   })},
      {"strided_reuse",
       make_setter(&DeviceSpec::strided_reuse, parse_double)},
  };
  return table;
}

void validate(const DeviceSpec& spec) {
  TDA_REQUIRE(!spec.name.empty(), "device profile must set `name`");
  TDA_REQUIRE(spec.sm_count >= 1, "sm_count must be positive");
  TDA_REQUIRE(spec.thread_procs_per_sm >= 1,
              "thread_procs_per_sm must be positive");
  TDA_REQUIRE(spec.warp_size >= 1, "warp_size must be positive");
  TDA_REQUIRE(spec.shared_mem_per_sm >= 1024,
              "shared_mem_per_sm implausibly small");
  TDA_REQUIRE(spec.max_threads_per_block >= spec.warp_size,
              "max_threads_per_block below warp size");
  TDA_REQUIRE(spec.max_threads_per_sm >= spec.max_threads_per_block,
              "max_threads_per_sm below max_threads_per_block");
  TDA_REQUIRE(spec.global_bw_gb_s > 0.0, "global_bw_gb_s must be positive");
  TDA_REQUIRE(spec.clock_ghz > 0.0, "clock_ghz must be positive");
  TDA_REQUIRE(spec.coop_sync_efficiency > 0.0 &&
                  spec.coop_sync_efficiency <= 1.0,
              "coop_sync_efficiency must be in (0, 1]");
  TDA_REQUIRE(spec.occupancy_for_peak > 0.0 &&
                  spec.occupancy_for_peak <= 1.0,
              "occupancy_for_peak must be in (0, 1]");
  TDA_REQUIRE(spec.strided_reuse >= 0.0 && spec.strided_reuse < 1.0,
              "strided_reuse must be in [0, 1)");
}

}  // namespace

DeviceSpec read_device_profile(std::istream& in) {
  DeviceSpec spec;
  spec.name.clear();
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    TDA_REQUIRE(eq != std::string::npos,
                "device profile line " + std::to_string(lineno) +
                    ": expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    auto it = setters().find(key);
    TDA_REQUIRE(it != setters().end(),
                "device profile line " + std::to_string(lineno) +
                    ": unknown key `" + key + "`");
    it->second(spec, value);
  }
  validate(spec);
  return spec;
}

DeviceSpec load_device_profile(const std::string& path) {
  std::ifstream in(path);
  TDA_REQUIRE(static_cast<bool>(in), "cannot open device profile " + path);
  return read_device_profile(in);
}

void write_device_profile(std::ostream& out, const DeviceSpec& spec) {
  out << "# tridiag_autotune device profile\n";
  out << "name = " << spec.name << "\n";
  out << "global_mem_bytes = " << spec.global_mem_bytes << "\n";
  out << "sm_count = " << spec.sm_count << "\n";
  out << "thread_procs_per_sm = " << spec.thread_procs_per_sm << "\n";
  out << "warp_size = " << spec.warp_size << "\n";
  out << "shared_mem_per_sm = " << spec.shared_mem_per_sm << "\n";
  out << "constant_mem_bytes = " << spec.constant_mem_bytes << "\n";
  out << "registers_per_sm = " << spec.registers_per_sm << "\n";
  out << "max_threads_per_block = " << spec.max_threads_per_block << "\n";
  out << "max_threads_per_sm = " << spec.max_threads_per_sm << "\n";
  out << "max_blocks_per_sm = " << spec.max_blocks_per_sm << "\n";
  out << "max_grid_blocks = " << spec.max_grid_blocks << "\n";
  out << "global_bw_gb_s = " << spec.global_bw_gb_s << "\n";
  out << "clock_ghz = " << spec.clock_ghz << "\n";
  out << "shared_banks = " << spec.shared_banks << "\n";
  out << "dep_latency_cycles = " << spec.dep_latency_cycles << "\n";
  out << "mem_latency_cycles = " << spec.mem_latency_cycles << "\n";
  out << "launch_overhead_us = " << spec.launch_overhead_us << "\n";
  out << "sync_cycles = " << spec.sync_cycles << "\n";
  out << "coop_sync_efficiency = " << spec.coop_sync_efficiency << "\n";
  out << "occupancy_for_peak = " << spec.occupancy_for_peak << "\n";
  out << "coalesce_segment_bytes = " << spec.coalesce_segment_bytes << "\n";
  out << "strided_reuse = " << spec.strided_reuse << "\n";
}

bool save_device_profile(const std::string& path, const DeviceSpec& spec) {
  std::ofstream out(path);
  if (!out) return false;
  write_device_profile(out, spec);
  return static_cast<bool>(out);
}

}  // namespace tda::gpusim
