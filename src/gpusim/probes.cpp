#include "gpusim/probes.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace tda::gpusim {

double probe_bandwidth(Device& dev, std::size_t blocks, int threads,
                       double bytes_per_block, std::size_t stride_elems,
                       std::size_t elem_bytes) {
  TDA_REQUIRE(bytes_per_block > 0, "probe needs traffic");
  LaunchConfig cfg;
  cfg.blocks = blocks;
  cfg.threads_per_block = threads;
  cfg.regs_per_thread = 16;
  auto st = dev.launch(cfg, [&](BlockContext& ctx) {
    ctx.charge_global(bytes_per_block, stride_elems, elem_bytes);
  });
  const double seconds = st.seconds - st.launch_seconds;
  if (seconds <= 0.0) return 0.0;
  return bytes_per_block * static_cast<double>(blocks) / seconds / 1e9;
}

double probe_launch_overhead(Device& dev) {
  LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  cfg.regs_per_thread = 8;
  auto st = dev.launch(cfg, [](BlockContext&) {});
  return st.seconds * 1e6;
}

ProbeReport run_probes(Device& dev, std::size_t elem_bytes) {
  ProbeReport rep;
  const auto q = dev.query();
  telemetry::Telemetry* tel = dev.telemetry();
  telemetry::ScopedSpan probes_span(telemetry::tracer_of(tel), "probes",
                                    "probe");

  // Saturating configuration: many medium blocks.
  const std::size_t fat_blocks = 64ull * q.sm_count;
  const int threads = 256;
  const double per_block = 1 << 20;  // 1 MiB per block

  {
    telemetry::ScopedSpan span(telemetry::tracer_of(tel),
                               "probe.peak_bandwidth", "probe");
    rep.peak_bandwidth_gb_s =
        probe_bandwidth(dev, fat_blocks, threads, per_block, 1, elem_bytes);
    span.attr("gb_s", rep.peak_bandwidth_gb_s);
  }
  {
    telemetry::ScopedSpan span(telemetry::tracer_of(tel),
                               "probe.starved_bandwidth", "probe");
    rep.starved_bandwidth_gb_s =
        probe_bandwidth(dev, 1, threads, per_block, 1, elem_bytes);
    span.attr("gb_s", rep.starved_bandwidth_gb_s);
  }

  const double base =
      probe_bandwidth(dev, fat_blocks, threads, per_block, 1, elem_bytes);
  double prev_inflation = 1.0;
  rep.inflation_saturation_stride = 0;
  for (std::size_t s = 2; s <= 256; s *= 2) {
    telemetry::ScopedSpan span(telemetry::tracer_of(tel),
                               "probe.stride_inflation", "probe");
    span.attr("stride", static_cast<double>(s));
    const double bw =
        probe_bandwidth(dev, fat_blocks, threads, per_block, s, elem_bytes);
    const double inflation = (bw > 0.0) ? base / bw : 0.0;
    span.attr("inflation", inflation);
    rep.stride_inflation.emplace_back(s, inflation);
    if (rep.inflation_saturation_stride == 0 &&
        inflation < prev_inflation * 1.01 && s > 2) {
      rep.inflation_saturation_stride = s / 2;
    }
    prev_inflation = inflation;
  }
  if (rep.inflation_saturation_stride == 0) {
    rep.inflation_saturation_stride = 256;
  }

  {
    telemetry::ScopedSpan span(telemetry::tracer_of(tel),
                               "probe.launch_overhead", "probe");
    rep.launch_overhead_us = probe_launch_overhead(dev);
    span.attr("us", rep.launch_overhead_us);
  }

  // Latency sensitivity: one long dependent chain vs the same
  // instructions spread over parallel threads.
  {
    telemetry::ScopedSpan span(telemetry::tracer_of(tel),
                               "probe.dependency_penalty", "probe");
    LaunchConfig cfg;
    cfg.blocks = static_cast<std::size_t>(q.sm_count);
    cfg.threads_per_block = 256;
    cfg.regs_per_thread = 16;
    auto wide = dev.launch(cfg, [](BlockContext& ctx) {
      ctx.charge_phase(256, 64.0, 1.0);  // 64-op chains, 8 warps
    });
    auto deep = dev.launch(cfg, [](BlockContext& ctx) {
      ctx.charge_phase(32, 512.0, 1.0);  // one warp, 512-op chain
    });
    const double tw = wide.compute_seconds;
    const double td = deep.compute_seconds;
    rep.dependency_penalty = (tw > 0.0) ? td / tw : 1.0;
    span.attr("penalty", rep.dependency_penalty);
  }

  if (tel != nullptr && tel->metrics.enabled()) {
    auto& mx = tel->metrics;
    mx.add("probes.runs");
    mx.set("probe.peak_bandwidth_gb_s", rep.peak_bandwidth_gb_s);
    mx.set("probe.starved_bandwidth_gb_s", rep.starved_bandwidth_gb_s);
    mx.set("probe.launch_overhead_us", rep.launch_overhead_us);
    mx.set("probe.dependency_penalty", rep.dependency_penalty);
    mx.set("probe.inflation_saturation_stride",
           static_cast<double>(rep.inflation_saturation_stride));
  }
  return rep;
}

}  // namespace tda::gpusim
