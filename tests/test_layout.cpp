// Tests for the interleaved (element-major) layout family: host and
// device transposes, solver equivalence between the two layouts across
// ragged shapes, bitwise determinism of the SIMD paths under different
// host lane counts, the tuner's layout decision at the occupancy
// crossover, and the v2 cache records that persist it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gpusim/thread_pool.hpp"
#include "kernels/device_batch.hpp"
#include "kernels/interleaved_kernels.hpp"
#include "kernels/simd.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/cache.hpp"
#include "tuning/dynamic_tuner.hpp"

namespace {

using namespace tda;
using tridiag::BatchLayout;
using tridiag::make_diag_dominant;

// ---------- host-side layout conversion ----------

TEST(Layout, HostConvertRoundTripIsByteIdentical) {
  auto batch = make_diag_dominant<double>(7, 13, 11);
  for (std::size_t i = 0; i < batch.x().size(); ++i) {
    batch.x()[i] = 0.25 * static_cast<double>(i) - 3.0;
  }
  const std::vector<double> a0(batch.a().begin(), batch.a().end());
  const std::vector<double> b0(batch.b().begin(), batch.b().end());
  const std::vector<double> c0(batch.c().begin(), batch.c().end());
  const std::vector<double> d0(batch.d().begin(), batch.d().end());
  const std::vector<double> x0(batch.x().begin(), batch.x().end());

  batch.convert_layout(BatchLayout::ElementMajor);
  ASSERT_EQ(batch.layout(), BatchLayout::ElementMajor);
  const std::size_t m = batch.num_systems();
  const std::size_t n = batch.system_size();
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      // Element i of system s now lives at column s of row i.
      EXPECT_EQ(batch.a()[i * m + s], a0[s * n + i]);
      EXPECT_EQ(batch.d()[i * m + s], d0[s * n + i]);
    }
  }

  batch.convert_layout(BatchLayout::SystemMajor);
  ASSERT_EQ(batch.layout(), BatchLayout::SystemMajor);
  EXPECT_EQ(std::memcmp(batch.a().data(), a0.data(),
                        a0.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(batch.b().data(), b0.data(),
                        b0.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(batch.c().data(), c0.data(),
                        c0.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(batch.d().data(), d0.data(),
                        d0.size() * sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(batch.x().data(), x0.data(),
                        x0.size() * sizeof(double)), 0);
}

TEST(Layout, ConvertToSameLayoutIsANoOp) {
  auto batch = make_diag_dominant<float>(3, 5, 2);
  const std::vector<float> a0(batch.a().begin(), batch.a().end());
  batch.convert_layout(BatchLayout::SystemMajor);
  EXPECT_EQ(batch.layout(), BatchLayout::SystemMajor);
  EXPECT_EQ(std::memcmp(batch.a().data(), a0.data(),
                        a0.size() * sizeof(float)), 0);
}

// ---------- device-side transpose stages ----------

TEST(Layout, DeviceTransposeInProducesElementMajorLanes) {
  const std::size_t m = 37, n = 19;
  auto host = make_diag_dominant<float>(m, n, 5);
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.set_arena_poison(false);
  kernels::DeviceBatch<float> batch(dev, host);
  kernels::transpose_in_stage(dev, batch, kernels::ExecMode::Full);
  ASSERT_EQ(batch.layout(), BatchLayout::ElementMajor);
  const std::span<const float> lanes[4] = {host.a(), host.b(), host.c(),
                                           host.d()};
  for (int k = 0; k < 4; ++k) {
    auto lane = batch.cur_lane(k);
    for (std::size_t s = 0; s < m; ++s) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(lane[i * m + s], lanes[k][s * n + i])
            << "lane " << k << " system " << s << " element " << i;
      }
    }
  }
}

TEST(Layout, DeviceTransposeRoundTripIsByteIdentical) {
  const std::size_t m = 65, n = 33;
  auto host = make_diag_dominant<float>(m, n, 9);
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.set_arena_poison(false);
  kernels::DeviceBatch<float> batch(dev, host);
  kernels::transpose_in_stage(dev, batch, kernels::ExecMode::Full);
  // The interleaved Thomas kernel stages x element-major in the alternate
  // d lane; emulate that by copying the transposed d lane across, then
  // check transpose-out lands the original bytes in x.
  auto src = batch.cur_lane(3);
  auto dst = batch.alt_lane(3);
  std::copy(src.begin(), src.end(), dst.begin());
  kernels::transpose_out_stage(dev, batch, kernels::ExecMode::Full);
  ASSERT_EQ(batch.layout(), BatchLayout::SystemMajor);
  EXPECT_EQ(std::memcmp(batch.x().data(), host.d().data(),
                        m * n * sizeof(float)), 0);
}

// ---------- solver equivalence across layouts ----------

template <typename T>
void expect_layout_equivalence(std::size_t m, std::size_t n, double tol) {
  for (auto layout : {BatchLayout::SystemMajor, BatchLayout::ElementMajor}) {
    gpusim::Device dev(gpusim::geforce_gtx_470());
    dev.set_arena_poison(false);
    solver::SwitchPoints sp;
    sp.layout = layout;
    solver::GpuTridiagonalSolver<T> solver(dev, sp);
    auto batch = make_diag_dominant<T>(m, n, 42);
    auto stats = solver.solve(batch);
    EXPECT_LT(tridiag::batch_residual_inf(batch), tol)
        << m << "x" << n << " layout=" << tridiag::to_string(layout);
    if (layout == BatchLayout::ElementMajor) {
      EXPECT_GT(stats.transpose_ms, 0.0);
    } else {
      EXPECT_EQ(stats.transpose_ms, 0.0);
    }
    // The element-major pipeline must hand the batch back system-major.
    EXPECT_EQ(batch.layout(), BatchLayout::SystemMajor);
  }
}

TEST(Layout, SolversAgreeAcrossRaggedShapesFloat) {
  // Includes 1-equation systems, a single system, and sizes straddling
  // the stage-3 switch points (non-powers of two on both axes).
  const std::size_t shapes[][2] = {{1, 1},  {3, 1},    {1, 129},
                                   {5, 7},  {33, 257}, {17, 1025},
                                   {7, 2048}};
  for (const auto& s : shapes) {
    expect_layout_equivalence<float>(s[0], s[1], 1e-3);
  }
}

TEST(Layout, SolversAgreeAcrossRaggedShapesDouble) {
  const std::size_t shapes[][2] = {{3, 1}, {33, 257}, {17, 1025}};
  for (const auto& s : shapes) {
    expect_layout_equivalence<double>(s[0], s[1], 1e-9);
  }
}

// ---------- determinism of the SIMD paths across lane counts ----------

template <typename T>
std::vector<T> solve_element_major(std::size_t m, std::size_t n) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.set_arena_poison(false);
  solver::SwitchPoints sp;
  sp.layout = BatchLayout::ElementMajor;
  solver::GpuTridiagonalSolver<T> solver(dev, sp);
  auto batch = make_diag_dominant<T>(m, n, 7);
  solver.solve(batch);
  return {batch.x().begin(), batch.x().end()};
}

TEST(Layout, ElementMajorPathIsBitwiseDeterministicAcrossLanes) {
  auto& pool = gpusim::ThreadPool::global();
  const int saved = pool.lanes();
  pool.resize(1);
  const auto reference = solve_element_major<float>(257, 96);
  for (int lanes : {2, 4}) {
    pool.resize(lanes);
    const auto got = solve_element_major<float>(257, 96);
    ASSERT_EQ(got.size(), reference.size());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(),
                          got.size() * sizeof(float)), 0)
        << "element-major result changed at " << lanes << " lanes";
  }
  pool.resize(saved);
}

TEST(Layout, SystemMajorPathStaysDeterministicAcrossLanes) {
  auto& pool = gpusim::ThreadPool::global();
  const int saved = pool.lanes();
  auto solve_once = [] {
    gpusim::Device dev(gpusim::geforce_gtx_470());
    dev.set_arena_poison(false);
    solver::GpuTridiagonalSolver<float> solver(dev, solver::SwitchPoints{});
    auto batch = make_diag_dominant<float>(48, 513, 3);
    solver.solve(batch);
    return std::vector<float>(batch.x().begin(), batch.x().end());
  };
  pool.resize(1);
  const auto reference = solve_once();
  pool.resize(3);
  const auto got = solve_once();
  EXPECT_EQ(std::memcmp(got.data(), reference.data(),
                        got.size() * sizeof(float)), 0);
  pool.resize(saved);
}

// ---------- tuner crossover ----------

TEST(Layout, TunerPicksElementMajorWhereOneThreadPerSystemFills) {
  // 21504 systems of 64 equations: system-major runs one under-occupied
  // block per system while one-thread-per-system fills every SM of the
  // GTX 470, so the tuner must learn the element-major layout.
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.set_arena_poison(false);
  tuning::DynamicTuner<float> tuner(dev);
  auto result = tuner.tune({21504, 64});
  EXPECT_EQ(result.points.layout, BatchLayout::ElementMajor);
}

TEST(Layout, TunerKeepsSystemMajorWhereTransposeDominates) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.set_arena_poison(false);
  tuning::DynamicTuner<float> tuner(dev);
  auto result = tuner.tune({512, 1024});
  EXPECT_EQ(result.points.layout, BatchLayout::SystemMajor);
}

// ---------- cache persistence of the layout dimension ----------

TEST(Layout, CacheRoundTripsElementMajorRecords) {
  const std::string path = "/tmp/tda_cache_layout_test.txt";
  std::remove(path.c_str());
  const std::string key = tuning::TuningCache::make_key("Test GPU", 4, 64, 64);
  tuning::TuningCache cache;
  tuning::CacheEntry entry;
  entry.points.stage1_target_systems = 32;
  entry.points.stage3_system_size = 128;
  entry.points.thomas_switch = 16;
  entry.points.variant = kernels::LoadVariant::Coalesced;
  entry.points.layout = BatchLayout::ElementMajor;
  entry.tuned_ms = 0.75;
  cache.store(key, entry);
  ASSERT_TRUE(cache.save(path));

  tuning::TuningCache loaded;
  ASSERT_EQ(loaded.load(path), 1u);
  auto found = loaded.find(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->points.layout, BatchLayout::ElementMajor);
  EXPECT_EQ(found->points.variant, kernels::LoadVariant::Coalesced);
  EXPECT_EQ(found->points.stage3_system_size, 128u);
  EXPECT_DOUBLE_EQ(found->tuned_ms, 0.75);
  std::remove(path.c_str());
}

TEST(Layout, LegacyRecordsWithoutLayoutTokenDefaultToSystemMajor) {
  const std::string path = "/tmp/tda_cache_layout_legacy.txt";
  const std::string key = tuning::TuningCache::make_key("Old GPU", 4, 8, 512);
  {
    std::ofstream out(path);
    out << "# tridiag_autotune tuning cache v1\n";
    out << key << "\t16 256 64 strided 1.5\n";
  }
  tuning::TuningCache cache;
  ASSERT_EQ(cache.load(path), 1u);
  auto found = cache.find(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->points.layout, BatchLayout::SystemMajor);
  EXPECT_EQ(found->points.variant, kernels::LoadVariant::Strided);
  EXPECT_DOUBLE_EQ(found->tuned_ms, 1.5);
  std::remove(path.c_str());
}

// ---------- SIMD strip width & lane pinning knobs ----------

TEST(Layout, SimdStripWidthIsAPowerOfTwo) {
  const std::size_t wf = kernels::simd_strip_width<float>();
  const std::size_t wd = kernels::simd_strip_width<double>();
  EXPECT_GE(wf, 1u);
  EXPECT_GE(wd, 1u);
  EXPECT_EQ(wf & (wf - 1), 0u);
  EXPECT_EQ(wd & (wd - 1), 0u);
  // float lanes are at least as wide as double lanes on every ISA.
  EXPECT_GE(wf, wd);
}

TEST(Layout, PinnedLanesSolveCorrectly) {
  // TDA_PIN is best-effort affinity; the observable contract is simply
  // that a pinned pool still produces a correct (and converted-back)
  // solve on the element-major path.
  const char* saved = std::getenv("TDA_PIN");
  const std::string saved_val = saved != nullptr ? saved : "";
  ::setenv("TDA_PIN", "1", 1);
  auto& pool = gpusim::ThreadPool::global();
  const int saved_lanes = pool.lanes();
  pool.resize(1);   // drop workers so the next resize respawns pinned
  pool.resize(3);
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.set_arena_poison(false);
  solver::SwitchPoints sp;
  sp.layout = BatchLayout::ElementMajor;
  solver::GpuTridiagonalSolver<float> solver(dev, sp);
  auto batch = make_diag_dominant<float>(96, 48, 13);
  solver.solve(batch);
  EXPECT_LT(tridiag::batch_residual_inf(batch), 1e-3);
  if (saved != nullptr) {
    ::setenv("TDA_PIN", saved_val.c_str(), 1);
  } else {
    ::unsetenv("TDA_PIN");
  }
  pool.resize(saved_lanes);
}

}  // namespace
