// End-to-end numerical robustness: the guard pipeline (prescreen,
// quarantine bisect, residual postcheck, pivoting fallback) and
// ill-conditioned inputs pushed through every stage of the multi-stage
// solver — stage-1/2 splits and both stage-3 shared-memory variants.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "solver/gpu_solver.hpp"
#include "solver/guards.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

namespace {

using namespace tda;
using namespace tda::solver;

void poison(tridiag::TridiagBatch<double>& batch, std::size_t s,
            faults::Poison kind) {
  const std::size_t n = batch.system_size();
  faults::poison_system<double>(
      batch.a().subspan(s * n, n), batch.b().subspan(s * n, n),
      batch.c().subspan(s * n, n), batch.d().subspan(s * n, n), kind);
}

double system_residual(tridiag::TridiagBatch<double>& pristine,
                       tridiag::TridiagBatch<double>& solved,
                       std::size_t s) {
  return relative_residual<double>(pristine.system(s), solved.solution(s));
}

// ---------- prescreen_system ----------

TEST(Prescreen, PassesDominantSystem) {
  auto batch = tridiag::make_diag_dominant<double>(1, 64, 1);
  const auto r = prescreen_system<double>(batch.system(0));
  EXPECT_EQ(r.verdict, ScreenVerdict::Pass);
  EXPECT_GE(r.dominance, 2.0);
  EXPECT_FALSE(r.zero_diagonal);
}

TEST(Prescreen, FlagsNonFinite) {
  auto batch = tridiag::make_diag_dominant<double>(1, 64, 2);
  poison(batch, 0, faults::Poison::NaN);
  const auto r = prescreen_system<double>(batch.system(0));
  EXPECT_EQ(r.verdict, ScreenVerdict::NonFinite);
}

TEST(Prescreen, FlagsZeroDiagonal) {
  auto batch = tridiag::make_diag_dominant<double>(1, 64, 3);
  poison(batch, 0, faults::Poison::ZeroPivot);
  const auto r = prescreen_system<double>(batch.system(0));
  EXPECT_EQ(r.verdict, ScreenVerdict::NeedsPivoting);
  EXPECT_TRUE(r.zero_diagonal);
}

TEST(Prescreen, DominanceFloorRoutesWeakSystems) {
  // dominance = 2.0 by construction; a floor above that routes it away.
  auto batch = tridiag::make_diag_dominant<double>(1, 64, 4);
  EXPECT_EQ(prescreen_system<double>(batch.system(0), 1.5).verdict,
            ScreenVerdict::Pass);
  EXPECT_EQ(prescreen_system<double>(batch.system(0), 3.0).verdict,
            ScreenVerdict::NeedsPivoting);
}

// ---------- relative_residual ----------

TEST(Residual, ExactSolutionIsTiny) {
  std::vector<double> x_true;
  auto batch = tridiag::make_with_known_solution<double>(1, 128, 5, &x_true);
  for (std::size_t i = 0; i < x_true.size(); ++i) batch.x()[i] = x_true[i];
  EXPECT_LT(system_residual(batch, batch, 0), 1e-12);
}

TEST(Residual, WrongSolutionIsLarge) {
  auto batch = tridiag::make_diag_dominant<double>(1, 128, 6);
  for (auto& v : batch.x()) v = 1e6;
  EXPECT_GT(system_residual(batch, batch, 0), 1e-3);
}

TEST(Residual, NonFiniteSolutionIsInfinite) {
  auto batch = tridiag::make_diag_dominant<double>(1, 32, 7);
  batch.x()[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isinf(system_residual(batch, batch, 0)));
}

// ---------- pivoting_fallback ----------

TEST(PivotingFallback, SolvesZeroLeadingPivot) {
  // b[0] = 0 but the system is solvable with row pivoting.
  auto batch = tridiag::make_diag_dominant<double>(1, 64, 8);
  batch.b()[0] = 0.0;
  batch.c()[0] = 1.0;
  auto pristine = batch;
  const auto st =
      pivoting_fallback<double>(batch.system(0), batch.solution(0));
  EXPECT_EQ(st, SystemStatus::FallbackUsed);
  EXPECT_LT(system_residual(pristine, batch, 0), 1e-10);
}

TEST(PivotingFallback, ReportsSingular) {
  auto batch = tridiag::make_diag_dominant<double>(1, 64, 9);
  poison(batch, 0, faults::Poison::ZeroPivot);
  const auto st =
      pivoting_fallback<double>(batch.system(0), batch.solution(0));
  EXPECT_EQ(st, SystemStatus::Singular);
}

TEST(PivotingFallback, ReportsNonFinite) {
  auto batch = tridiag::make_diag_dominant<double>(1, 64, 10);
  poison(batch, 0, faults::Poison::NaN);
  const auto st =
      pivoting_fallback<double>(batch.system(0), batch.solution(0));
  EXPECT_EQ(st, SystemStatus::NonFinite);
}

// ---------- GuardedSolver ----------

TEST(GuardedSolver, CleanBatchSolvesOnGpu) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  GpuTridiagonalSolver<double> inner(dev, SwitchPoints{});
  GuardedSolver<double> guard(inner);
  auto batch = tridiag::make_diag_dominant<double>(8, 1024, 11);
  auto pristine = batch;
  const auto r = guard.solve(batch);
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(r.gpu_solved, 8u);
  EXPECT_EQ(r.fallback_used, 0u);
  EXPECT_EQ(r.quarantined, 0u);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-10);
}

TEST(GuardedSolver, PoisonedSystemsGetTypedStatusAndBatchmatesSolve) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  GpuTridiagonalSolver<double> inner(dev, SwitchPoints{});
  GuardedSolver<double> guard(inner);
  auto batch = tridiag::make_diag_dominant<double>(8, 512, 12);
  poison(batch, 2, faults::Poison::NaN);
  poison(batch, 5, faults::Poison::ZeroPivot);
  auto pristine = batch;

  const auto r = guard.solve(batch);
  EXPECT_EQ(r.status[2], SystemStatus::NonFinite);
  EXPECT_EQ(r.status[5], SystemStatus::Singular);
  EXPECT_EQ(r.nonfinite, 1u);
  EXPECT_EQ(r.singular, 1u);
  EXPECT_EQ(r.gpu_solved, 6u);
  for (std::size_t s : {0u, 1u, 3u, 4u, 6u, 7u}) {
    EXPECT_EQ(r.status[s], SystemStatus::Ok) << "system " << s;
    EXPECT_LT(system_residual(pristine, batch, s), 1e-10) << "system " << s;
  }
}

TEST(GuardedSolver, RecoverablePivotProblemUsesFallback) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  GpuTridiagonalSolver<double> inner(dev, SwitchPoints{});
  GuardedSolver<double> guard(inner);
  auto batch = tridiag::make_diag_dominant<double>(4, 256, 13);
  // System 1: zero leading pivot but solvable with pivoting.
  batch.b()[256] = 0.0;
  batch.c()[256] = 1.0;
  auto pristine = batch;

  const auto r = guard.solve(batch);
  EXPECT_EQ(r.status[1], SystemStatus::FallbackUsed);
  EXPECT_EQ(r.fallback_used, 1u);
  EXPECT_EQ(r.prescreen_routed, 1u);
  EXPECT_TRUE(r.all_solved());
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_LT(system_residual(pristine, batch, s), 1e-10) << "system " << s;
  }
}

TEST(GuardedSolver, DominanceFloorRoutesWholeBatchToFallback) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  GpuTridiagonalSolver<double> inner(dev, SwitchPoints{});
  GuardConfig cfg;
  cfg.dominance_floor = 10.0;  // above the generator's dominance of 2
  GuardedSolver<double> guard(inner, cfg);
  auto batch = tridiag::make_diag_dominant<double>(4, 128, 14);
  auto pristine = batch;

  const auto r = guard.solve(batch);
  EXPECT_EQ(r.prescreen_routed, 4u);
  EXPECT_EQ(r.fallback_used, 4u);
  EXPECT_EQ(r.gpu_solved, 0u);
  EXPECT_TRUE(r.all_solved());
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-10);
}

TEST(GuardedSolver, BisectQuarantinesCulpritWithoutPrescreen) {
  // With the screen off, the zero pivot reaches the kernel. thomas_switch
  // >= n sends the whole system to the Thomas path, whose pivot check
  // throws ContractError deterministically; the bisect must isolate the
  // single culprit and every batchmate must still solve.
  gpusim::Device dev(gpusim::geforce_gtx_470());
  SwitchPoints points;
  points.stage3_system_size = 64;
  points.thomas_switch = 64;
  GpuTridiagonalSolver<double> inner(dev, points);
  GuardConfig cfg;
  cfg.prescreen = false;
  GuardedSolver<double> guard(inner, cfg);

  auto batch = tridiag::make_diag_dominant<double>(8, 64, 15);
  poison(batch, 3, faults::Poison::ZeroPivot);
  auto pristine = batch;

  const auto r = guard.solve(batch);
  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.status[3], SystemStatus::Singular);
  for (std::size_t s = 0; s < 8; ++s) {
    if (s == 3) continue;
    EXPECT_EQ(r.status[s], SystemStatus::Ok) << "system " << s;
    EXPECT_LT(system_residual(pristine, batch, s), 1e-10) << "system " << s;
  }
}

TEST(GuardedSolver, ResidualPostcheckEscalatesToFallback) {
  // An absurdly tight tolerance forces every GPU solution through the
  // escalation path; the fallback must still deliver correct solutions.
  gpusim::Device dev(gpusim::geforce_gtx_470());
  GpuTridiagonalSolver<double> inner(dev, SwitchPoints{});
  GuardConfig cfg;
  cfg.residual_tol = 1e-300;
  GuardedSolver<double> guard(inner, cfg);
  auto batch = tridiag::make_diag_dominant<double>(4, 256, 16);
  auto pristine = batch;

  const auto r = guard.solve(batch);
  EXPECT_EQ(r.residual_rejects, 4u);
  EXPECT_EQ(r.fallback_used, 4u);
  EXPECT_TRUE(r.all_solved());
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-10);
}

TEST(GuardedSolver, NoFallbackReportsSingularInsteadOfSolving) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  GpuTridiagonalSolver<double> inner(dev, SwitchPoints{});
  GuardConfig cfg;
  cfg.cpu_fallback = false;
  GuardedSolver<double> guard(inner, cfg);
  auto batch = tridiag::make_diag_dominant<double>(2, 128, 17);
  poison(batch, 0, faults::Poison::ZeroPivot);

  const auto r = guard.solve(batch);
  EXPECT_EQ(r.status[0], SystemStatus::Singular);
  EXPECT_EQ(r.status[1], SystemStatus::Ok);
}

// ---------- ill-conditioned inputs through every solver stage ----------

// Satellite (c): push poisoned systems through the stage-1/2 splitting
// path (n >> stage3_system_size) and through both stage-3 shared-memory
// variants; statuses must be typed and batchmates must stay correct.

struct StageCase {
  const char* name;
  std::size_t m, n;
  SwitchPoints points;
};

std::vector<StageCase> stage_cases() {
  SwitchPoints strided;
  strided.variant = kernels::LoadVariant::Strided;
  SwitchPoints coalesced;
  coalesced.variant = kernels::LoadVariant::Coalesced;
  SwitchPoints deep = strided;
  deep.stage1_target_systems = 32;  // force extra stage-1 splitting
  return {
      {"stage3_strided_direct", 8, 256, strided},
      {"stage3_coalesced_direct", 8, 256, coalesced},
      {"stage12_strided_large", 4, 4096, strided},
      {"stage12_coalesced_large", 4, 4096, coalesced},
      {"stage1_deep_split", 2, 8192, deep},
  };
}

TEST(IllConditioned, TypedStatusAcrossAllStages) {
  for (const auto& tc : stage_cases()) {
    SCOPED_TRACE(tc.name);
    gpusim::Device dev(gpusim::geforce_gtx_470());
    GpuTridiagonalSolver<double> inner(dev, tc.points);
    GuardedSolver<double> guard(inner);
    auto batch = tridiag::make_diag_dominant<double>(tc.m, tc.n, 18);
    poison(batch, 0, faults::Poison::NaN);
    poison(batch, tc.m - 1, faults::Poison::ZeroPivot);
    auto pristine = batch;

    const auto r = guard.solve(batch);
    EXPECT_EQ(r.status[0], SystemStatus::NonFinite);
    EXPECT_EQ(r.status[tc.m - 1], SystemStatus::Singular);
    for (std::size_t s = 1; s + 1 < tc.m; ++s) {
      EXPECT_EQ(r.status[s], SystemStatus::Ok) << "system " << s;
      EXPECT_LT(system_residual(pristine, batch, s), 1e-9) << "system " << s;
    }
  }
}

TEST(IllConditioned, UnguardedSolverThrowsContractError) {
  // Without guards the raw solver keeps its contract behavior: a poisoned
  // pivot surfaces as ContractError, not silent garbage.
  gpusim::Device dev(gpusim::geforce_gtx_470());
  SwitchPoints points;
  points.stage3_system_size = 64;
  points.thomas_switch = 64;
  GpuTridiagonalSolver<double> solver(dev, points);
  auto batch = tridiag::make_diag_dominant<double>(4, 64, 19);
  poison(batch, 1, faults::Poison::ZeroPivot);
  EXPECT_THROW(solver.solve(batch), ContractError);
}

TEST(IllConditioned, NonDominantSolvableSystemPassesPostcheck) {
  // A weakly/non-dominant but well-posed system: the GPU result is kept
  // only if the residual check accepts it; either way the answer must be
  // correct.
  gpusim::Device dev(gpusim::geforce_gtx_470());
  GpuTridiagonalSolver<double> inner(dev, SwitchPoints{});
  GuardedSolver<double> guard(inner);
  auto batch = tridiag::make_random_general<double>(4, 512, 20);
  auto pristine = batch;
  const auto r = guard.solve(batch);
  EXPECT_TRUE(r.all_solved());
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_LT(system_residual(pristine, batch, s), 1e-8) << "system " << s;
  }
}

}  // namespace
