// Tests for device-profile files: round-tripping, parsing, validation,
// and end-to-end use of a custom device with the tuner — the "new
// architectures keep coming" workflow from the paper's conclusion.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "gpusim/device_file.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/dynamic_tuner.hpp"

namespace {

using namespace tda;
using namespace tda::gpusim;

TEST(DeviceFile, RoundTripsEveryRegistryDevice) {
  for (const auto& spec : device_registry()) {
    std::stringstream ss;
    write_device_profile(ss, spec);
    const DeviceSpec back = read_device_profile(ss);
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.sm_count, spec.sm_count);
    EXPECT_EQ(back.shared_mem_per_sm, spec.shared_mem_per_sm);
    EXPECT_EQ(back.registers_per_sm, spec.registers_per_sm);
    EXPECT_DOUBLE_EQ(back.global_bw_gb_s, spec.global_bw_gb_s);
    EXPECT_DOUBLE_EQ(back.clock_ghz, spec.clock_ghz);
    EXPECT_DOUBLE_EQ(back.occupancy_for_peak, spec.occupancy_for_peak);
    EXPECT_DOUBLE_EQ(back.strided_reuse, spec.strided_reuse);
    EXPECT_EQ(back.coalesce_segment_bytes, spec.coalesce_segment_bytes);
  }
}

TEST(DeviceFile, CommentsAndDefaults) {
  std::stringstream ss(R"(# a hypothetical OpenCL part
name = Hypothetical X1   # trailing comment
sm_count = 20
thread_procs_per_sm = 16
shared_mem_per_sm = 32768
registers_per_sm = 16384
max_threads_per_block = 512
max_threads_per_sm = 1024
global_bw_gb_s = 200.5
clock_ghz = 1.5
)");
  const DeviceSpec spec = read_device_profile(ss);
  EXPECT_EQ(spec.name, "Hypothetical X1");
  EXPECT_EQ(spec.sm_count, 20);
  EXPECT_DOUBLE_EQ(spec.global_bw_gb_s, 200.5);
  // Defaults survive for omitted keys.
  EXPECT_EQ(spec.warp_size, 32);
  EXPECT_EQ(spec.max_blocks_per_sm, 8);
}

TEST(DeviceFile, RejectsUnknownKey) {
  std::stringstream ss("name = X\nsm_count = 4\nbogus_key = 1\n");
  EXPECT_THROW((void)read_device_profile(ss), ContractError);
}

TEST(DeviceFile, RejectsMissingName) {
  std::stringstream ss("sm_count = 4\n");
  EXPECT_THROW((void)read_device_profile(ss), ContractError);
}

TEST(DeviceFile, RejectsMalformedLine) {
  std::stringstream ss("name = X\nsm_count 4\n");
  EXPECT_THROW((void)read_device_profile(ss), ContractError);
}

TEST(DeviceFile, RejectsImplausibleValues) {
  std::stringstream ss(R"(name = Bad
sm_count = 4
thread_procs_per_sm = 8
shared_mem_per_sm = 16384
registers_per_sm = 8192
max_threads_per_block = 256
max_threads_per_sm = 512
global_bw_gb_s = -5
clock_ghz = 1.0
)");
  EXPECT_THROW((void)read_device_profile(ss), ContractError);
}

TEST(DeviceFile, RejectsTrailingJunkInNumbers) {
  std::stringstream ss("name = X\nsm_count = 4x\n");
  EXPECT_THROW((void)read_device_profile(ss), ContractError);
}

TEST(DeviceFile, FileRoundTrip) {
  const std::string path = "/tmp/tda_device_test.txt";
  ASSERT_TRUE(save_device_profile(path, geforce_gtx_280()));
  const DeviceSpec back = load_device_profile(path);
  EXPECT_EQ(back.name, "GeForce GTX 280");
  EXPECT_EQ(back.sm_count, 30);
  std::remove(path.c_str());
}

TEST(DeviceFile, MissingFileThrows) {
  EXPECT_THROW((void)load_device_profile("/tmp/definitely_missing_dev.txt"),
               ContractError);
}

TEST(DeviceFile, CustomDeviceWorksEndToEnd) {
  // A hypothetical wide future part: the tuner must adapt without any
  // code change.
  std::stringstream ss(R"(name = FutureChip 9000
sm_count = 64
thread_procs_per_sm = 64
shared_mem_per_sm = 131072
registers_per_sm = 65536
max_threads_per_block = 2048
max_threads_per_sm = 4096
global_bw_gb_s = 900
clock_ghz = 2.0
coalesce_segment_bytes = 32
strided_reuse = 0.9
occupancy_for_peak = 1.0
launch_overhead_us = 3
)");
  Device dev(read_device_profile(ss));
  tuning::DynamicTuner<float> tuner(dev);
  auto tuned = tuner.tune({64, 8192});
  solver::GpuTridiagonalSolver<float> s(dev, tuned.points);
  auto batch = tridiag::make_diag_dominant<float>(64, 8192, 42);
  auto pristine = batch;
  auto stats = s.solve(batch);
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-3);
  // The fat shared memory must unlock larger on-chip systems than any
  // registry device.
  EXPECT_GE(kernels::max_shared_system_size(dev.query(), 4), 2048u);
}

}  // namespace
