// Concurrency tests for the tuning cache: many threads hammering
// lookup/insert/save on one shared cache, atomic save-to-temp-then-
// rename, and merge-on-save semantics (two caches / two AutoSolvers
// pointed at one cache_path must not clobber each other's entries).
// The CI TSan job runs this suite.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/launch.hpp"
#include "solver/auto_solver.hpp"
#include "tridiag/generators.hpp"
#include "tuning/cache.hpp"

namespace {

using namespace tda;
using tuning::CacheEntry;
using tuning::TuningCache;

CacheEntry entry_for(std::size_t i) {
  CacheEntry e;
  e.points.stage1_target_systems = 1 + i % 7;
  e.points.stage3_system_size = 64 << (i % 3);
  e.points.thomas_switch = 16 << (i % 2);
  e.points.variant = (i % 2 == 0) ? kernels::LoadVariant::Strided
                                  : kernels::LoadVariant::Coalesced;
  e.tuned_ms = 0.25 * static_cast<double>(i + 1);
  return e;
}

std::string key_for(std::size_t i) {
  return TuningCache::make_key("HammerCard", 4, i % 16, 1024);
}

// ---------- concurrent lookup/insert ----------

TEST(TuningCacheConcurrency, HammerFindStore) {
  TuningCache cache;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::size_t k = static_cast<std::size_t>(t * kOps + i);
        cache.store(key_for(k), entry_for(k));
        auto hit = cache.find(key_for(k));
        ASSERT_TRUE(hit.has_value());
        (void)cache.size();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(), 16u);  // 16 distinct keys, last writer wins
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_TRUE(cache.find(key_for(i)).has_value());
}

TEST(TuningCacheConcurrency, HammerSaveLoadStore) {
  const std::string path = "test_cache_hammer.txt";
  std::remove(path.c_str());
  TuningCache cache;
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &path, t] {
      for (int i = 0; i < 200; ++i) {
        const std::size_t k = static_cast<std::size_t>(t * 200 + i);
        switch (i % 4) {
          case 0:
            cache.store(key_for(k), entry_for(k));
            break;
          case 1:
            (void)cache.find(key_for(k));
            break;
          case 2:
            (void)cache.save(path);
            break;
          default:
            (void)cache.load(path);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Whatever interleaving happened, the file is a complete, parseable
  // snapshot (atomic rename: no torn writes).
  TuningCache loaded;
  EXPECT_GT(loaded.load(path), 0u);
  std::remove(path.c_str());
}

// ---------- atomic + merged saves ----------

TEST(TuningCacheConcurrency, SaveLeavesNoTempFile) {
  const std::string path = "test_cache_atomic.txt";
  std::remove(path.c_str());
  TuningCache cache;
  cache.store(key_for(1), entry_for(1));
  ASSERT_TRUE(cache.save(path));
  EXPECT_TRUE(std::ifstream(path).good());
  for (const auto& e : std::filesystem::directory_iterator(".")) {
    EXPECT_EQ(e.path().filename().string().rfind(path + ".tmp", 0),
              std::string::npos)
        << "stray staging file: " << e.path();
  }
  std::remove(path.c_str());
}

TEST(TuningCacheConcurrency, SaveMergedKeepsForeignEntries) {
  const std::string path = "test_cache_merge.txt";
  std::remove(path.c_str());

  TuningCache a, b;
  a.store(TuningCache::make_key("CardA", 4, 8, 1024), entry_for(1));
  b.store(TuningCache::make_key("CardB", 8, 16, 2048), entry_for(2));

  // Plain save would make the second writer clobber the first.
  ASSERT_TRUE(a.save_merged(path));
  ASSERT_TRUE(b.save_merged(path));

  TuningCache loaded;
  EXPECT_EQ(loaded.load(path), 2u);
  EXPECT_TRUE(
      loaded.find(TuningCache::make_key("CardA", 4, 8, 1024)).has_value());
  EXPECT_TRUE(
      loaded.find(TuningCache::make_key("CardB", 8, 16, 2048)).has_value());
  std::remove(path.c_str());
}

TEST(TuningCacheConcurrency, SaveMergedPrefersOwnEntries) {
  const std::string path = "test_cache_merge_pref.txt";
  std::remove(path.c_str());
  const std::string key = TuningCache::make_key("CardA", 4, 8, 1024);

  TuningCache stale, fresh;
  stale.store(key, entry_for(3));
  ASSERT_TRUE(stale.save(path));
  CacheEntry mine = entry_for(4);
  mine.tuned_ms = 0.001;
  fresh.store(key, mine);
  ASSERT_TRUE(fresh.save_merged(path));

  TuningCache loaded;
  ASSERT_EQ(loaded.load(path), 1u);
  EXPECT_DOUBLE_EQ(loaded.find(key)->tuned_ms, 0.001);
  std::remove(path.c_str());
}

// ---------- AutoSolver merge-on-save ----------

TEST(AutoSolverConcurrency, TwoSolversSharingCachePathMerge) {
  const std::string path = "test_auto_solver_shared_cache.txt";
  std::remove(path.c_str());
  {
    // Both solvers load (empty) up front; each tunes a different shape.
    // Without merge-on-save, whichever destructs last would erase the
    // other's entry from the file.
    gpusim::Device dev_a(gpusim::geforce_gtx_470());
    gpusim::Device dev_b(gpusim::geforce_gtx_470());
    solver::AutoSolver<float> sa(dev_a, path);
    solver::AutoSolver<float> sb(dev_b, path);
    auto batch_a = tridiag::make_diag_dominant<float>(8, 512, 1);
    auto batch_b = tridiag::make_diag_dominant<float>(4, 2048, 2);
    sa.solve(batch_a);
    sb.solve(batch_b);
    EXPECT_EQ(sa.tunes_performed(), 1u);
    EXPECT_EQ(sb.tunes_performed(), 1u);
  }
  TuningCache merged;
  EXPECT_EQ(merged.load(path), 2u);
  EXPECT_TRUE(merged
                  .find(TuningCache::make_key("GeForce GTX 470", 4, 8, 512))
                  .has_value());
  EXPECT_TRUE(merged
                  .find(TuningCache::make_key("GeForce GTX 470", 4, 4, 2048))
                  .has_value());
  std::remove(path.c_str());
}

TEST(AutoSolverConcurrency, ConcurrentSolversOnSeparateDevices) {
  // One AutoSolver per thread, each with its own device but the same
  // cache file — the save path is exercised from multiple threads in
  // sequence (destructors), the solve path concurrently.
  const std::string path = "test_auto_solver_threads_cache.txt";
  std::remove(path.c_str());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&path, t] {
      gpusim::Device dev(gpusim::geforce_gtx_280());
      solver::AutoSolver<float> solver(dev, path);
      auto batch = tridiag::make_diag_dominant<float>(
          4 + static_cast<std::size_t>(t), 1024, 7);
      solver.solve(batch);
    });
  }
  for (auto& th : threads) th.join();
  TuningCache merged;
  EXPECT_EQ(merged.load(path), static_cast<std::size_t>(kThreads));
  std::remove(path.c_str());
}

}  // namespace
