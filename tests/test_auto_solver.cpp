// Tests for the AutoSolver facade and ragged (variable-size) batches.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "gpusim/launch.hpp"
#include "solver/auto_solver.hpp"
#include "solver/ragged.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

namespace {

using namespace tda;
using namespace tda::solver;

// ---------- RaggedBatch ----------

RaggedBatch<double> make_ragged(const std::vector<std::size_t>& sizes,
                                std::uint64_t seed) {
  RaggedBatch<double> rb{std::vector<std::size_t>(sizes)};
  Rng rng(seed);
  auto a = rb.a();
  auto b = rb.b();
  auto c = rb.c();
  auto d = rb.d();
  for (std::size_t s = 0; s < rb.num_systems(); ++s) {
    const std::size_t off = rb.offset(s);
    const std::size_t n = rb.system_size(s);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = off + i;
      a[k] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
      c[k] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
      b[k] = (std::abs(a[k]) + std::abs(c[k])) * 2.0 + 0.5;
      d[k] = rng.uniform(-1, 1);
    }
  }
  return rb;
}

double ragged_residual(const RaggedBatch<double>& rb) {
  double worst = 0.0;
  auto a = rb.a();
  auto b = rb.b();
  auto c = rb.c();
  auto d = rb.d();
  auto x = rb.x();
  for (std::size_t s = 0; s < rb.num_systems(); ++s) {
    const std::size_t off = rb.offset(s);
    const std::size_t n = rb.system_size(s);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k = off + i;
      double acc = b[k] * x[k] - d[k];
      if (i > 0) acc += a[k] * x[k - 1];
      if (i + 1 < n) acc += c[k] * x[k + 1];
      worst = std::max(worst, std::abs(acc));
    }
  }
  return worst;
}

TEST(RaggedBatch, OffsetsAndSizes) {
  RaggedBatch<double> rb{{3, 5, 2}};
  EXPECT_EQ(rb.num_systems(), 3u);
  EXPECT_EQ(rb.total_equations(), 10u);
  EXPECT_EQ(rb.offset(0), 0u);
  EXPECT_EQ(rb.offset(1), 3u);
  EXPECT_EQ(rb.offset(2), 8u);
  EXPECT_EQ(rb.system_size(1), 5u);
}

TEST(RaggedBatch, RejectsZeroSizes) {
  EXPECT_THROW(RaggedBatch<double>({4, 0, 2}), ContractError);
}

// The service layer materialises ragged views of whatever is pending,
// which may be nothing — zero systems is a valid (empty) batch.
TEST(RaggedBatch, EmptyBatchIsAllowed) {
  RaggedBatch<double> rb{std::vector<std::size_t>{}};
  EXPECT_EQ(rb.num_systems(), 0u);
  EXPECT_EQ(rb.total_equations(), 0u);
  EXPECT_TRUE(rb.groups_by_size().empty());
  EXPECT_TRUE(rb.a().empty());
}

TEST(RaggedBatch, GroupsBySize) {
  RaggedBatch<double> rb{{8, 4, 8, 2, 4, 8}};
  auto groups = rb.groups_by_size();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].first, 2u);
  EXPECT_EQ(groups[0].second, (std::vector<std::size_t>{3}));
  EXPECT_EQ(groups[1].first, 4u);
  EXPECT_EQ(groups[1].second, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(groups[2].first, 8u);
  EXPECT_EQ(groups[2].second, (std::vector<std::size_t>{0, 2, 5}));
}

TEST(RaggedBatch, GatherScatterRoundTrip) {
  auto rb = make_ragged({4, 6, 4}, 55);
  auto groups = rb.groups_by_size();
  auto& [n4, members4] = groups[0];
  ASSERT_EQ(n4, 4u);
  auto batch = rb.gather_group(n4, members4);
  EXPECT_EQ(batch.num_systems(), 2u);
  EXPECT_EQ(batch.b()[0], rb.b()[rb.offset(0)]);
  for (std::size_t k = 0; k < batch.x().size(); ++k)
    batch.x()[k] = static_cast<double>(k + 1);
  rb.scatter_group(batch, members4);
  EXPECT_EQ(rb.x()[rb.offset(0)], 1.0);
  EXPECT_EQ(rb.x()[rb.offset(2)], 5.0);
  EXPECT_EQ(rb.x()[rb.offset(1)], 0.0);  // untouched group
}

// ---------- AutoSolver ----------

TEST(AutoSolver, SolvesUniformBatchAndTunesOnce) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  AutoSolver<double> solver(dev);
  auto batch = tridiag::make_diag_dominant<double>(16, 2048, 303);
  auto pristine = batch;
  solver.solve(batch);
  EXPECT_EQ(solver.tunes_performed(), 1u);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-10);

  // Same shape again: no new tuning run.
  auto batch2 = tridiag::make_diag_dominant<double>(16, 2048, 304);
  solver.solve(batch2);
  EXPECT_EQ(solver.tunes_performed(), 1u);

  // New shape: one more.
  auto batch3 = tridiag::make_diag_dominant<double>(4, 512, 305);
  solver.solve(batch3);
  EXPECT_EQ(solver.tunes_performed(), 2u);
}

TEST(AutoSolver, SolvesRaggedBatch) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  AutoSolver<double> solver(dev);
  auto rb = make_ragged({100, 2048, 100, 37, 2048, 513}, 808);
  const double ms = solver.solve(rb);
  EXPECT_GT(ms, 0.0);
  EXPECT_LT(ragged_residual(rb), 1e-10);
  // 4 distinct sizes -> 4 tuning runs.
  EXPECT_EQ(solver.tunes_performed(), 4u);
}

// ---------- ragged edge cases the service layer exercises ----------

TEST(AutoSolver, SolvesEmptyRaggedBatch) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  AutoSolver<double> solver(dev);
  RaggedBatch<double> rb{std::vector<std::size_t>{}};
  EXPECT_EQ(solver.solve(rb), 0.0);
  EXPECT_EQ(solver.tunes_performed(), 0u);
}

TEST(AutoSolver, SolvesSingleOneEquationSystem) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  AutoSolver<double> solver(dev);
  RaggedBatch<double> rb{{1}};
  rb.a()[0] = 0.0;
  rb.b()[0] = 4.0;
  rb.c()[0] = 0.0;
  rb.d()[0] = 2.0;
  solver.solve(rb);
  EXPECT_NEAR(rb.x()[0], 0.5, 1e-12);
}

TEST(AutoSolver, SolvesMixedSizesSpanningSwitchPoints) {
  // Sizes straddle every regime of the tuned pipeline: trivial (1),
  // sub-Thomas-switch tails (3, 17), on-chip stage-3 sizes (64, 300),
  // and systems large enough to need stage-1/2 splitting first (4096,
  // 10000) — on the device whose tuned stage-3 size they must cross.
  gpusim::Device dev(gpusim::geforce_gtx_470());
  AutoSolver<double> solver(dev);
  auto rb = make_ragged({1, 3, 17, 64, 300, 1, 4096, 10000, 64}, 606);
  const double ms = solver.solve(rb);
  EXPECT_GT(ms, 0.0);
  EXPECT_LT(ragged_residual(rb), 1e-9);
  // 7 distinct sizes -> 7 tuning runs; repeats hit the cache.
  EXPECT_EQ(solver.tunes_performed(), 7u);
}

TEST(AutoSolver, PersistsCacheAcrossInstances) {
  const std::string path = "/tmp/tda_auto_cache_test.txt";
  std::remove(path.c_str());
  gpusim::Device dev(gpusim::geforce_gtx_470());
  {
    AutoSolver<float> solver(dev, path);
    auto batch = tridiag::make_diag_dominant<float>(8, 1024, 1);
    solver.solve(batch);
    EXPECT_EQ(solver.tunes_performed(), 1u);
  }  // destructor saves
  {
    AutoSolver<float> solver(dev, path);
    auto batch = tridiag::make_diag_dominant<float>(8, 1024, 2);
    solver.solve(batch);
    EXPECT_EQ(solver.tunes_performed(), 0u);  // cache hit from disk
  }
  std::remove(path.c_str());
}

TEST(AutoSolver, PrecisionsAreCachedSeparately) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  const std::string path = "/tmp/tda_auto_cache_prec.txt";
  std::remove(path.c_str());
  {
    AutoSolver<float> sf(dev, path);
    auto bf = tridiag::make_diag_dominant<float>(8, 1024, 3);
    sf.solve(bf);
  }
  {
    AutoSolver<double> sd(dev, path);
    auto bd = tridiag::make_diag_dominant<double>(8, 1024, 4);
    sd.solve(bd);
    EXPECT_EQ(sd.tunes_performed(), 1u);  // fp32 entry must not match
  }
  std::remove(path.c_str());
}

}  // namespace
