// Tests for the extension modules: periodic (cyclic) tridiagonal systems
// via Sherman-Morrison, and the banded / pentadiagonal LU solver — the
// paper's §VII "next challenge" features.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cpu/banded.hpp"
#include "cpu/batch_solver.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/periodic.hpp"
#include "tridiag/verify.hpp"
#include "tuning/tuners.hpp"

namespace {

using namespace tda;
using namespace tda::tridiag;

// ---------- periodic tridiagonal ----------

template <typename T>
PeriodicBatch<T> make_periodic(std::size_t m, std::size_t n,
                               std::uint64_t seed) {
  PeriodicBatch<T> batch(m, n);
  auto core = make_diag_dominant<T>(m, n, seed, /*dominance=*/3.0);
  std::copy(core.a().begin(), core.a().end(), batch.core.a().begin());
  std::copy(core.b().begin(), core.b().end(), batch.core.b().begin());
  std::copy(core.c().begin(), core.c().end(), batch.core.c().begin());
  std::copy(core.d().begin(), core.d().end(), batch.core.d().begin());
  Rng rng(seed ^ 0xC0FFEE);
  for (std::size_t s = 0; s < m; ++s) {
    batch.alpha[s] = static_cast<T>(rng.uniform(-0.3, 0.3));
    batch.beta[s] = static_cast<T>(rng.uniform(-0.3, 0.3));
  }
  return batch;
}

void cpu_inner_solver(TridiagBatch<double>& batch) {
  cpu::BatchCpuSolver solver(1);
  auto st = solver.solve(batch);
  ASSERT_EQ(st.failures, 0u);
}

TEST(Periodic, SolvesWithCpuInnerSolver) {
  auto batch = make_periodic<double>(4, 64, 9001);
  auto x = solve_periodic_batch<double>(batch, cpu_inner_solver);
  EXPECT_LT(periodic_residual_inf(batch, std::span<const double>(x)),
            1e-12);
}

TEST(Periodic, SolvesWithGpuInnerSolver) {
  auto batch = make_periodic<double>(8, 1024, 9002);
  gpusim::Device dev(gpusim::geforce_gtx_470());
  solver::GpuTridiagonalSolver<double> gpu(
      dev, tuning::default_switch_points<double>());
  auto x = solve_periodic_batch<double>(
      batch, [&](TridiagBatch<double>& b) { gpu.solve(b); });
  EXPECT_LT(periodic_residual_inf(batch, std::span<const double>(x)),
            1e-10);
}

TEST(Periodic, ZeroCornersReduceToOrdinarySolve) {
  auto batch = make_periodic<double>(2, 32, 9003);
  for (auto& v : batch.alpha) v = 0.0;
  for (auto& v : batch.beta) v = 0.0;
  auto x = solve_periodic_batch<double>(batch, cpu_inner_solver);
  // Must equal the plain tridiagonal solution.
  auto plain = batch.core;
  cpu::BatchCpuSolver solver(1);
  solver.solve(plain);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(x[k], plain.x()[k], 1e-12);
  }
}

TEST(Periodic, CirculantMatrixKnownSolution) {
  // Circulant [4, 1, ..., 1]: x = all-ones solves d = 6 everywhere.
  const std::size_t n = 16;
  PeriodicBatch<double> batch(1, n);
  auto a = batch.core.a();
  auto b = batch.core.b();
  auto c = batch.core.c();
  auto d = batch.core.d();
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = (i == 0) ? 0.0 : 1.0;
    c[i] = (i == n - 1) ? 0.0 : 1.0;
    b[i] = 4.0;
    d[i] = 6.0;
  }
  batch.alpha[0] = 1.0;
  batch.beta[0] = 1.0;
  auto x = solve_periodic_batch<double>(batch, cpu_inner_solver);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0, 1e-12);
}

TEST(Periodic, RejectsTinySystems) {
  PeriodicBatch<double> batch(1, 2);
  EXPECT_THROW((void)solve_periodic_batch<double>(batch, cpu_inner_solver),
               ContractError);
}

TEST(Periodic, FloatPath) {
  auto batch = make_periodic<float>(4, 128, 9004);
  auto x = solve_periodic_batch<float>(batch, [](TridiagBatch<float>& b) {
    cpu::BatchCpuSolver solver(1);
    solver.solve(b);
  });
  EXPECT_LT(periodic_residual_inf(batch, std::span<const float>(x)), 1e-4);
}

// ---------- banded LU ----------

// Dense reference for banded tests.
std::vector<double> dense_banded_solve(const cpu::BandedMatrix<double>& A0,
                                       std::span<const double> d) {
  const std::size_t n = A0.size();
  std::vector<double> mat(n * n, 0.0), rhs(d.begin(), d.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (A0.in_band(i, j)) mat[i * n + j] = A0.at(i, j);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(mat[r * n + k]) > std::abs(mat[piv * n + k])) piv = r;
    }
    for (std::size_t j = 0; j < n; ++j)
      std::swap(mat[k * n + j], mat[piv * n + j]);
    std::swap(rhs[k], rhs[piv]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = mat[r * n + k] / mat[k * n + k];
      for (std::size_t j = k; j < n; ++j) mat[r * n + j] -= f * mat[k * n + j];
      rhs[r] -= f * rhs[k];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = rhs[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= mat[i * n + j] * x[j];
    x[i] = acc / mat[i * n + i];
  }
  return x;
}

cpu::BandedMatrix<double> random_banded(std::size_t n, std::size_t kl,
                                        std::size_t ku, std::uint64_t seed,
                                        bool dominant) {
  cpu::BandedMatrix<double> A(n, kl, ku);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    double offsum = 0.0;
    for (std::size_t j = (i > kl ? i - kl : 0);
         j <= std::min(n - 1, i + ku); ++j) {
      if (j == i) continue;
      const double v = rng.uniform(-1.0, 1.0);
      A.at(i, j) = v;
      offsum += std::abs(v);
    }
    A.at(i, i) = dominant ? (offsum + rng.uniform(0.5, 1.5)) * rng.sign()
                          : rng.uniform(-1.0, 1.0);
  }
  return A;
}

TEST(Banded, MatchesDenseOnRandomBands) {
  for (auto [kl, ku] : {std::pair<std::size_t, std::size_t>{1, 1},
                        {2, 2},
                        {3, 1},
                        {1, 3},
                        {4, 4}}) {
    const std::size_t n = 40;
    auto A = random_banded(n, kl, ku, 31 * kl + ku, true);
    auto Acopy = A;
    std::vector<double> d(n);
    Rng rng(5);
    for (auto& v : d) v = rng.uniform(-1.0, 1.0);
    auto ref = dense_banded_solve(A, d);
    std::vector<double> x(n);
    ASSERT_TRUE(cpu::gbsv_solve(Acopy, std::span<const double>(d),
                                std::span<double>(x)));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], ref[i], 1e-9) << "kl=" << kl << " ku=" << ku;
  }
}

TEST(Banded, PivotingHandlesNonDominantMatrices) {
  int solved = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const std::size_t n = 24;
    auto A = random_banded(n, 2, 2, seed, false);
    auto Aref = A;
    std::vector<double> d(n, 1.0);
    std::vector<double> x(n);
    if (cpu::gbsv_solve(A, std::span<const double>(d),
                        std::span<double>(x))) {
      ++solved;
      auto ref = dense_banded_solve(Aref, d);
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], ref[i], 1e-6);
    }
  }
  EXPECT_GT(solved, 20);
}

TEST(Banded, TridiagonalSpecialCaseMatchesThomas) {
  const std::size_t n = 64;
  auto batch = make_diag_dominant<double>(1, n, 404);
  cpu::BandedMatrix<double> A(n, 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) A.at(i, i - 1) = batch.a()[i];
    A.at(i, i) = batch.b()[i];
    if (i + 1 < n) A.at(i, i + 1) = batch.c()[i];
  }
  std::vector<double> d(batch.d().begin(), batch.d().end());
  std::vector<double> x(n);
  ASSERT_TRUE(
      cpu::gbsv_solve(A, std::span<const double>(d), std::span<double>(x)));

  auto work = batch;
  ASSERT_TRUE(thomas_solve_inplace(work.system(0), work.solution(0)));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[i], work.x()[i], 1e-10);
}

TEST(Banded, SingularReported) {
  cpu::BandedMatrix<double> A(4, 1, 1);  // all zeros
  std::vector<double> d(4, 1.0), x(4);
  EXPECT_FALSE(
      cpu::gbsv_solve(A, std::span<const double>(d), std::span<double>(x)));
}

TEST(Banded, RejectsBadBandwidths) {
  EXPECT_THROW(cpu::BandedMatrix<double>(4, 4, 1), ContractError);
  EXPECT_THROW(cpu::BandedMatrix<double>(0, 0, 0), ContractError);
}

TEST(Penta, SolvesDominantSystem) {
  const std::size_t n = 50;
  Rng rng(606);
  std::vector<double> a2(n), a1(n), b(n), c1(n), c2(n), d(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    a2[i] = (i >= 2) ? rng.uniform(-1, 1) : 0.0;
    a1[i] = (i >= 1) ? rng.uniform(-1, 1) : 0.0;
    c1[i] = (i + 1 < n) ? rng.uniform(-1, 1) : 0.0;
    c2[i] = (i + 2 < n) ? rng.uniform(-1, 1) : 0.0;
    b[i] = std::abs(a2[i]) + std::abs(a1[i]) + std::abs(c1[i]) +
           std::abs(c2[i]) + rng.uniform(0.5, 1.5);
    d[i] = rng.uniform(-1, 1);
  }
  ASSERT_TRUE(cpu::penta_solve<double>(a2, a1, b, c1, c2, d, x));
  // Residual check.
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i] * x[i];
    if (i >= 2) acc += a2[i] * x[i - 2];
    if (i >= 1) acc += a1[i] * x[i - 1];
    if (i + 1 < n) acc += c1[i] * x[i + 1];
    if (i + 2 < n) acc += c2[i] * x[i + 2];
    worst = std::max(worst, std::abs(acc - d[i]));
  }
  EXPECT_LT(worst, 1e-11);
}

TEST(Penta, FourthDifferenceOperator) {
  // The biharmonic stencil [1 -4 6 -4 1] + identity: solve against a
  // known smooth solution.
  const std::size_t n = 80;
  std::vector<double> a2(n, 1.0), a1(n, -4.0), b(n, 7.0), c1(n, -4.0),
      c2(n, 1.0), d(n), x(n), xtrue(n);
  Rng rng(707);
  for (auto& v : xtrue) v = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    a2[i] = (i >= 2) ? 1.0 : 0.0;
    a1[i] = (i >= 1) ? -4.0 : 0.0;
    c1[i] = (i + 1 < n) ? -4.0 : 0.0;
    c2[i] = (i + 2 < n) ? 1.0 : 0.0;
    double acc = b[i] * xtrue[i];
    if (i >= 2) acc += a2[i] * xtrue[i - 2];
    if (i >= 1) acc += a1[i] * xtrue[i - 1];
    if (i + 1 < n) acc += c1[i] * xtrue[i + 1];
    if (i + 2 < n) acc += c2[i] * xtrue[i + 2];
    d[i] = acc;
  }
  ASSERT_TRUE(cpu::penta_solve<double>(a2, a1, b, c1, c2, d, x));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xtrue[i], 1e-8);
}

}  // namespace

// ---------- block tridiagonal (paper §VII "blocked tridiagonal") ----------

#include "cpu/block_tridiag.hpp"

namespace {

using namespace tda;

cpu::BlockTridiagSystem<double> random_block_system(std::size_t n,
                                                    std::size_t k,
                                                    std::uint64_t seed) {
  cpu::BlockTridiagSystem<double> sys(n, k);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    double offsum = 0.0;
    for (std::size_t e = 0; e < k * k; ++e) {
      if (i > 0) {
        sys.A(i)[e] = rng.uniform(-1, 1);
        offsum += std::abs(sys.A(i)[e]);
      }
      if (i + 1 < n) {
        sys.C(i)[e] = rng.uniform(-1, 1);
        offsum += std::abs(sys.C(i)[e]);
      }
      sys.B(i)[e] = rng.uniform(-1, 1);
    }
    // Make the diagonal blocks strongly dominant so block Thomas is safe.
    for (std::size_t r = 0; r < k; ++r) {
      sys.B(i)[r * k + r] += (offsum + 2.0) * rng.sign();
    }
    for (std::size_t r = 0; r < k; ++r) sys.D(i)[r] = rng.uniform(-1, 1);
  }
  return sys;
}

TEST(SmallLU, FactorsAndSolves3x3) {
  std::vector<double> m{2, 1, 0, 1, 3, 1, 0, 1, 2};
  cpu::SmallLU<double> lu;
  ASSERT_TRUE(lu.factor(std::span<double>(m), 3));
  std::vector<double> b{3, 5, 3};  // solution: [1,1,1]
  lu.solve_vec(std::span<double>(b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
  EXPECT_NEAR(b[2], 1.0, 1e-12);
}

TEST(SmallLU, PivotsZeroLeadingEntry) {
  std::vector<double> m{0, 1, 1, 0};  // requires a row swap
  cpu::SmallLU<double> lu;
  ASSERT_TRUE(lu.factor(std::span<double>(m), 2));
  std::vector<double> b{2, 3};  // x = [3, 2]
  lu.solve_vec(std::span<double>(b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(SmallLU, DetectsSingular) {
  std::vector<double> m{1, 2, 2, 4};
  cpu::SmallLU<double> lu;
  EXPECT_FALSE(lu.factor(std::span<double>(m), 2));
}

TEST(SmallLU, SolveMatInvertsAgainstIdentity) {
  std::vector<double> m{4, 1, 2, 3};
  cpu::SmallLU<double> lu;
  std::vector<double> mcopy = m;
  ASSERT_TRUE(lu.factor(std::span<double>(mcopy), 2));
  std::vector<double> eye{1, 0, 0, 1};
  lu.solve_mat(std::span<double>(eye));  // eye = M^{-1}
  // M * M^{-1} must be identity.
  std::vector<double> prod(4, 0.0);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c)
      for (int t = 0; t < 2; ++t)
        prod[r * 2 + c] += m[r * 2 + t] * eye[t * 2 + c];
  EXPECT_NEAR(prod[0], 1.0, 1e-12);
  EXPECT_NEAR(prod[1], 0.0, 1e-12);
  EXPECT_NEAR(prod[2], 0.0, 1e-12);
  EXPECT_NEAR(prod[3], 1.0, 1e-12);
}

class BlockThomasSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(BlockThomasSweep, ResidualTiny) {
  const auto [n, k] = GetParam();
  auto sys = random_block_system(n, k, 17 * n + k);
  auto pristine = sys;
  std::vector<double> x(n * k);
  ASSERT_TRUE(cpu::block_thomas_solve(sys, std::span<double>(x)));
  EXPECT_LT(cpu::block_residual_inf(pristine, std::span<const double>(x)),
            1e-10)
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, BlockThomasSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 10, 64),
                       ::testing::Values(1, 2, 3, 5)));

TEST(BlockThomas, BlockSizeOneMatchesScalarThomas) {
  const std::size_t n = 50;
  auto batch = tridiag::make_diag_dominant<double>(1, n, 4242);
  cpu::BlockTridiagSystem<double> sys(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    sys.A(i)[0] = batch.a()[i];
    sys.B(i)[0] = batch.b()[i];
    sys.C(i)[0] = batch.c()[i];
    sys.D(i)[0] = batch.d()[i];
  }
  std::vector<double> x(n);
  ASSERT_TRUE(cpu::block_thomas_solve(sys, std::span<double>(x)));

  auto work = batch;
  ASSERT_TRUE(
      tridiag::thomas_solve_inplace(work.system(0), work.solution(0)));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], work.x()[i], 1e-11);
}

TEST(BlockThomas, MatchesBandedSolverOnExpandedMatrix) {
  // A block-tridiagonal matrix with k×k blocks IS a banded matrix with
  // kl = ku = 2k-1: cross-validate against gbsv.
  const std::size_t n = 12, k = 3, N = n * k;
  auto sys = random_block_system(n, k, 99);
  auto pristine = sys;

  cpu::BandedMatrix<double> A(N, 2 * k - 1, 2 * k - 1);
  std::vector<double> d(N);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t r = 0; r < k; ++r) {
      d[i * k + r] = sys.D(i)[r];
      for (std::size_t c = 0; c < k; ++c) {
        A.at(i * k + r, i * k + c) = sys.B(i)[r * k + c];
        if (i > 0) A.at(i * k + r, (i - 1) * k + c) = sys.A(i)[r * k + c];
        if (i + 1 < n)
          A.at(i * k + r, (i + 1) * k + c) = sys.C(i)[r * k + c];
      }
    }
  }
  std::vector<double> x_band(N), x_block(N);
  ASSERT_TRUE(cpu::gbsv_solve(A, std::span<const double>(d),
                              std::span<double>(x_band)));
  ASSERT_TRUE(cpu::block_thomas_solve(sys, std::span<double>(x_block)));
  for (std::size_t i = 0; i < N; ++i)
    EXPECT_NEAR(x_block[i], x_band[i], 1e-9);
  EXPECT_LT(
      cpu::block_residual_inf(pristine, std::span<const double>(x_block)),
      1e-10);
}

TEST(BlockThomas, SingularDiagonalBlockReported) {
  cpu::BlockTridiagSystem<double> sys(3, 2);  // all-zero B blocks
  std::vector<double> x(6);
  EXPECT_FALSE(cpu::block_thomas_solve(sys, std::span<double>(x)));
}

}  // namespace
