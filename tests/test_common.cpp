// Unit tests for src/common: buffers, strided views, RNG, statistics,
// tables, CLI parsing, contracts.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strided_view.hpp"
#include "common/table.hpp"

namespace {

using namespace tda;

// ---------- contracts ----------

TEST(Check, RequireThrowsContractError) {
  EXPECT_THROW(TDA_REQUIRE(false, "boom"), ContractError);
}

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(TDA_REQUIRE(true, "fine"));
}

TEST(Check, MessageContainsContext) {
  try {
    TDA_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

// ---------- AlignedBuffer ----------

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(AlignedBuffer, AllocatesAligned) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
}

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer<double> buf(257);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, CopyPreservesContents) {
  AlignedBuffer<int> buf(10);
  for (std::size_t i = 0; i < 10; ++i) buf[i] = static_cast<int>(i * i);
  AlignedBuffer<int> copy(buf);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(copy[i], int(i * i));
  copy[3] = -1;
  EXPECT_EQ(buf[3], 9);  // deep copy
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> buf(4);
  buf[0] = 42;
  int* p = buf.data();
  AlignedBuffer<int> moved(std::move(buf));
  EXPECT_EQ(moved.data(), p);
  EXPECT_EQ(moved[0], 42);
  EXPECT_TRUE(buf.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, ResizeDropsAndZeroes) {
  AlignedBuffer<int> buf(4);
  buf[0] = 7;
  buf.resize(8);
  EXPECT_EQ(buf.size(), 8u);
  for (int v : buf) EXPECT_EQ(v, 0);
}

TEST(AlignedBuffer, SpanCoversAll) {
  AlignedBuffer<float> buf(33);
  EXPECT_EQ(buf.span().size(), 33u);
  EXPECT_EQ(buf.span().data(), buf.data());
}

// ---------- StridedView ----------

TEST(StridedView, IndexingHonorsStride) {
  std::vector<int> data(20);
  for (int i = 0; i < 20; ++i) data[i] = i;
  StridedView<int> v(data.data() + 1, 5, 3);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 4);
  EXPECT_EQ(v[4], 13);
}

TEST(StridedView, SplitEvenSize) {
  std::vector<int> data{0, 1, 2, 3, 4, 5, 6, 7};
  StridedView<int> v(data.data(), 8, 1);
  auto [even, odd] = v.split();
  EXPECT_EQ(even.size(), 4u);
  EXPECT_EQ(odd.size(), 4u);
  EXPECT_EQ(even.stride(), 2u);
  EXPECT_EQ(even[0], 0);
  EXPECT_EQ(even[3], 6);
  EXPECT_EQ(odd[0], 1);
  EXPECT_EQ(odd[3], 7);
}

TEST(StridedView, SplitOddSizeUneven) {
  std::vector<int> data{0, 1, 2, 3, 4, 5, 6};
  StridedView<int> v(data.data(), 7, 1);
  auto [even, odd] = v.split();
  EXPECT_EQ(even.size(), 4u);  // ceil(7/2)
  EXPECT_EQ(odd.size(), 3u);   // floor(7/2)
  EXPECT_EQ(even[3], 6);
  EXPECT_EQ(odd[2], 5);
}

TEST(StridedView, SplitOfStridedViewComposes) {
  std::vector<int> data(32);
  for (int i = 0; i < 32; ++i) data[i] = i;
  StridedView<int> v(data.data(), 16, 2);  // 0,2,4,...
  auto [even, odd] = v.split();
  EXPECT_EQ(even.stride(), 4u);
  EXPECT_EQ(even[1], 4);
  EXPECT_EQ(odd[1], 6);
}

TEST(StridedView, SubsystemMatchesRepeatedSplit) {
  std::vector<int> data(16);
  for (int i = 0; i < 16; ++i) data[i] = i;
  StridedView<int> v(data.data(), 16, 1);
  // two splits -> 4 subsystems, residue classes mod 4
  for (std::size_t j = 0; j < 4; ++j) {
    auto sub = v.subsystem(2, j);
    EXPECT_EQ(sub.size(), 4u);
    for (std::size_t i = 0; i < sub.size(); ++i) {
      EXPECT_EQ(sub[i], static_cast<int>(j + 4 * i));
    }
  }
}

TEST(StridedView, SubsystemUnevenCounts) {
  std::vector<int> data(10);
  StridedView<int> v(data.data(), 10, 1);
  // 4 subsystems of a 10-element view: sizes 3,3,2,2
  EXPECT_EQ(v.subsystem(2, 0).size(), 3u);
  EXPECT_EQ(v.subsystem(2, 1).size(), 3u);
  EXPECT_EQ(v.subsystem(2, 2).size(), 2u);
  EXPECT_EQ(v.subsystem(2, 3).size(), 2u);
}

TEST(StridedView, SubsystemsPartitionTheView) {
  std::vector<int> data(23);
  for (int i = 0; i < 23; ++i) data[i] = i;
  StridedView<int> v(data.data(), 23, 1);
  std::multiset<int> seen;
  for (std::size_t j = 0; j < 8; ++j) {
    auto sub = v.subsystem(3, j);
    for (std::size_t i = 0; i < sub.size(); ++i) seen.insert(sub[i]);
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 22);
}

TEST(StridedView, SplitRequiresTwoElements) {
  std::vector<int> data(1);
  StridedView<int> v(data.data(), 1, 1);
  EXPECT_THROW((void)v.split(), ContractError);
}

// ---------- Rng ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, MeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

// ---------- stats ----------

TEST(Stats, SummarizeBasics) {
  std::vector<double> xs{1, 2, 3, 4};
  auto s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.118, 1e-3);
}

TEST(Stats, SummarizeEmpty) {
  auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW((void)geomean(xs), ContractError);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Stats, MaxAbsDiff) {
  std::vector<double> a{1, 2, 3}, b{1, 2.5, 2};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

TEST(Stats, RelErrorScaleInvariant) {
  std::vector<double> a{1000.0, 2000.0}, b{1000.1, 2000.0};
  EXPECT_NEAR(rel_error(a, b), 0.1 / 2000.0, 1e-12);
}

// ---------- TextTable ----------

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(42ll), "42");
}

// ---------- Cli ----------

TEST(Cli, ParsesKeyValueFlags) {
  const char* argv[] = {"prog", "--m=128", "--device=GTX 470", "pos"};
  Cli cli(4, argv);
  EXPECT_EQ(cli.get_int("m", 0), 128);
  EXPECT_EQ(cli.get("device"), "GTX 470");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_EQ(cli.get("verbose"), "1");
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("m", 77), 77);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cli.get("s", "dflt"), "dflt");
}

}  // namespace
