// Tests for the solve service: shape-bucketed coalescing, admission
// control (block / reject / shed-oldest), deadlines, multi-device
// dispatch, the shared tuning cache, graceful shutdown, and the
// telemetry wiring. The Hammer tests are the ones the CI TSan job runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "service/solve_service.hpp"

namespace {

using namespace tda;
using namespace tda::service;

SolveRequest<double> make_request(std::size_t n, std::uint64_t seed,
                                  double deadline_ms = 0.0) {
  SolveRequest<double> req;
  req.a.resize(n);
  req.b.resize(n);
  req.c.resize(n);
  req.d.resize(n);
  req.deadline_ms = deadline_ms;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    req.a[i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
    req.c[i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
    req.b[i] = (std::abs(req.a[i]) + std::abs(req.c[i])) * 2.0 + 0.5;
    req.d[i] = rng.uniform(-1, 1);
  }
  return req;
}

double request_residual(const SolveRequest<double>& req,
                        const std::vector<double>& x) {
  const std::size_t n = req.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = req.b[i] * x[i] - req.d[i];
    if (i > 0) acc += req.a[i] * x[i - 1];
    if (i + 1 < n) acc += req.c[i] * x[i + 1];
    worst = std::max(worst, std::abs(acc));
  }
  return worst;
}

std::vector<gpusim::DeviceSpec> one_device() {
  return {gpusim::geforce_gtx_470()};
}

// ---------- basic solving ----------

TEST(SolveService, SolvesSingleRequest) {
  SolveService<double> svc(one_device());
  auto req = make_request(257, 1);
  auto copy = req;
  auto fut = svc.submit(std::move(req));
  auto resp = fut.get();
  ASSERT_EQ(resp.status, SolveStatus::Ok) << to_string(resp.status);
  ASSERT_EQ(resp.x.size(), 257u);
  EXPECT_LT(request_residual(copy, resp.x), 1e-8);
  EXPECT_EQ(resp.device, "GeForce GTX 470");
  EXPECT_GE(resp.batch_systems, 1u);
}

TEST(SolveService, CoalescesSameShapeIntoOneBatch) {
  ServiceConfig cfg;
  cfg.flush_systems = 8;
  cfg.flush_interval_ms = 10'000.0;  // only the size trigger can fire
  SolveService<double> svc(one_device(), cfg);

  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(svc.submit(make_request(128, 100 + i)));
  for (auto& f : futs) {
    auto resp = f.get();
    ASSERT_EQ(resp.status, SolveStatus::Ok);
    EXPECT_EQ(resp.batch_systems, 8u);  // all eight rode one solve
  }
  const auto c = svc.counters();
  EXPECT_EQ(c.flushes, 1u);
  EXPECT_EQ(c.coalesced_systems, 8u);
  EXPECT_EQ(c.max_batch_systems, 8u);
  EXPECT_EQ(c.completed, 8u);
}

TEST(SolveService, BucketsDistinctShapesSeparately) {
  ServiceConfig cfg;
  cfg.flush_systems = 4;
  cfg.flush_interval_ms = 10'000.0;
  SolveService<double> svc(one_device(), cfg);

  std::vector<std::future<SolveResponse<double>>> small, large;
  for (int i = 0; i < 4; ++i)
    small.push_back(svc.submit(make_request(64, 200 + i)));
  for (int i = 0; i < 4; ++i)
    large.push_back(svc.submit(make_request(512, 300 + i)));
  for (auto& f : small) EXPECT_EQ(f.get().batch_systems, 4u);
  for (auto& f : large) EXPECT_EQ(f.get().batch_systems, 4u);
  EXPECT_EQ(svc.counters().flushes, 2u);
}

TEST(SolveService, IntervalTriggerFlushesPartialBucket) {
  ServiceConfig cfg;
  cfg.flush_systems = 1000;       // size trigger unreachable
  cfg.flush_interval_ms = 5.0;    // deadline trigger does the work
  SolveService<double> svc(one_device(), cfg);
  auto resp = svc.submit(make_request(96, 7)).get();
  EXPECT_EQ(resp.status, SolveStatus::Ok);
  EXPECT_EQ(resp.batch_systems, 1u);
}

TEST(SolveService, RaggedSubmissionRecoalesces) {
  ServiceConfig cfg;
  cfg.flush_systems = 100;
  cfg.flush_interval_ms = 10'000.0;
  SolveService<double> svc(one_device(), cfg);

  solver::RaggedBatch<double> rb({64, 96, 64, 96, 64});
  Rng rng(5);
  auto a = rb.a(), b = rb.b(), c = rb.c(), d = rb.d();
  for (std::size_t s = 0; s < rb.num_systems(); ++s) {
    const std::size_t off = rb.offset(s), n = rb.system_size(s);
    for (std::size_t i = 0; i < n; ++i) {
      a[off + i] = (i == 0) ? 0.0 : rng.uniform(-1, 1);
      c[off + i] = (i == n - 1) ? 0.0 : rng.uniform(-1, 1);
      b[off + i] =
          (std::abs(a[off + i]) + std::abs(c[off + i])) * 2.0 + 0.5;
      d[off + i] = rng.uniform(-1, 1);
    }
  }
  auto futs = svc.submit_ragged(rb);
  ASSERT_EQ(futs.size(), 5u);
  svc.shutdown();  // drain flushes both buckets
  // three 64s coalesced together, two 96s coalesced together
  EXPECT_EQ(futs[0].get().batch_systems, 3u);
  EXPECT_EQ(futs[1].get().batch_systems, 2u);
  EXPECT_EQ(futs[2].get().batch_systems, 3u);
  EXPECT_EQ(futs[3].get().batch_systems, 2u);
  EXPECT_EQ(futs[4].get().batch_systems, 3u);
}

TEST(SolveService, EmptyRaggedSubmitIsEmpty) {
  SolveService<double> svc(one_device());
  solver::RaggedBatch<double> rb(std::vector<std::size_t>{});
  EXPECT_TRUE(svc.submit_ragged(rb).empty());
}

// ---------- admission control ----------

ServiceConfig stalled_config() {
  // Nothing ever flushes on its own: requests pile up in the queue.
  ServiceConfig cfg;
  cfg.queue_capacity = 2;
  cfg.flush_systems = 1000;
  cfg.flush_interval_ms = 10'000.0;
  return cfg;
}

TEST(SolveService, RejectPolicyRefusesWhenFull) {
  auto cfg = stalled_config();
  cfg.backpressure = BackpressurePolicy::Reject;
  SolveService<double> svc(one_device(), cfg);
  auto f1 = svc.submit(make_request(64, 1));
  auto f2 = svc.submit(make_request(64, 2));
  auto f3 = svc.submit(make_request(64, 3));  // queue full -> rejected
  EXPECT_EQ(f3.get().status, SolveStatus::Rejected);
  svc.shutdown();  // drains the two admitted requests
  EXPECT_EQ(f1.get().status, SolveStatus::Ok);
  EXPECT_EQ(f2.get().status, SolveStatus::Ok);
  EXPECT_EQ(svc.counters().rejected, 1u);
}

TEST(SolveService, ShedOldestEvictsToAdmit) {
  auto cfg = stalled_config();
  cfg.backpressure = BackpressurePolicy::ShedOldest;
  SolveService<double> svc(one_device(), cfg);
  auto f1 = svc.submit(make_request(64, 1));
  auto f2 = svc.submit(make_request(128, 2));
  auto f3 = svc.submit(make_request(64, 3));  // f1 (oldest) is shed
  EXPECT_EQ(f1.get().status, SolveStatus::Shed);
  svc.shutdown();
  EXPECT_EQ(f2.get().status, SolveStatus::Ok);
  EXPECT_EQ(f3.get().status, SolveStatus::Ok);
  EXPECT_EQ(svc.counters().shed, 1u);
}

TEST(SolveService, BlockPolicyWaitsForSpace) {
  ServiceConfig cfg;
  cfg.queue_capacity = 1;
  cfg.backpressure = BackpressurePolicy::Block;
  cfg.flush_systems = 1000;
  cfg.flush_interval_ms = 5.0;  // scheduler frees the slot shortly
  SolveService<double> svc(one_device(), cfg);
  auto f1 = svc.submit(make_request(64, 1));
  auto f2 = svc.submit(make_request(64, 2));  // blocks until f1 flushes
  EXPECT_EQ(f1.get().status, SolveStatus::Ok);
  EXPECT_EQ(f2.get().status, SolveStatus::Ok);
}

// ---------- deadlines ----------

TEST(SolveService, DeadlineTimesOutQueuedRequest) {
  auto cfg = stalled_config();
  cfg.queue_capacity = 16;
  SolveService<double> svc(one_device(), cfg);
  auto fut = svc.submit(make_request(64, 1, /*deadline_ms=*/2.0));
  auto resp = fut.get();  // scheduler wakes at the deadline
  EXPECT_EQ(resp.status, SolveStatus::TimedOut);
  EXPECT_EQ(svc.counters().timed_out, 1u);
}

TEST(SolveService, DefaultDeadlineApplies) {
  auto cfg = stalled_config();
  cfg.queue_capacity = 16;
  cfg.default_deadline_ms = 2.0;
  SolveService<double> svc(one_device(), cfg);
  EXPECT_EQ(svc.submit(make_request(64, 1)).get().status,
            SolveStatus::TimedOut);
}

// ---------- multi-device dispatch ----------

TEST(SolveService, RoundRobinSpreadsAcrossDevices) {
  ServiceConfig cfg;
  cfg.flush_systems = 1;  // every request is its own flush
  cfg.dispatch = DispatchPolicy::RoundRobin;
  SolveService<double> svc(
      {gpusim::geforce_gtx_470(), gpusim::geforce_gtx_280()}, cfg);
  ASSERT_EQ(svc.num_workers(), 2u);
  std::set<std::string> devices;
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(svc.submit(make_request(64, 400 + i)));
  for (auto& f : futs) {
    auto resp = f.get();
    ASSERT_EQ(resp.status, SolveStatus::Ok);
    devices.insert(resp.device);
  }
  EXPECT_EQ(devices.size(), 2u);
}

TEST(SolveService, LeastLoadedUsesBothDevices) {
  ServiceConfig cfg;
  cfg.flush_systems = 1;
  cfg.dispatch = DispatchPolicy::LeastLoaded;
  SolveService<double> svc(
      {gpusim::geforce_gtx_470(), gpusim::geforce_gtx_470()}, cfg);
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(svc.submit(make_request(256, 500 + i)));
  for (auto& f : futs) EXPECT_EQ(f.get().status, SolveStatus::Ok);
  EXPECT_EQ(svc.counters().completed, 32u);
}

// ---------- shared tuning cache ----------

TEST(SolveService, SharesOneTuningAcrossManySolves) {
  ServiceConfig cfg;
  cfg.flush_systems = 4;
  cfg.flush_interval_ms = 10'000.0;
  SolveService<double> svc(one_device(), cfg);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<SolveResponse<double>>> futs;
    for (int i = 0; i < 4; ++i)
      futs.push_back(svc.submit(make_request(128, 600 + i)));
    for (auto& f : futs) ASSERT_EQ(f.get().status, SolveStatus::Ok);
  }
  // Three identical (4, 128) flushes: one tuning run, two cache hits.
  EXPECT_EQ(svc.counters().tunes, 1u);
  EXPECT_EQ(svc.cache().size(), 1u);
}

TEST(SolveService, PersistsTuningCacheAcrossInstances) {
  const std::string path = "test_service_cache.txt";
  std::remove(path.c_str());
  ServiceConfig cfg;
  cfg.cache_path = path;
  cfg.flush_systems = 2;
  cfg.flush_interval_ms = 10'000.0;
  {
    SolveService<double> svc(one_device(), cfg);
    auto f1 = svc.submit(make_request(128, 1));
    auto f2 = svc.submit(make_request(128, 2));
    ASSERT_EQ(f1.get().status, SolveStatus::Ok);
    ASSERT_EQ(f2.get().status, SolveStatus::Ok);
  }  // shutdown merge-saves the cache
  {
    SolveService<double> svc(one_device(), cfg);
    EXPECT_EQ(svc.cache().size(), 1u);  // loaded from disk
    auto f1 = svc.submit(make_request(128, 3));
    auto f2 = svc.submit(make_request(128, 4));
    ASSERT_EQ(f1.get().status, SolveStatus::Ok);
    ASSERT_EQ(f2.get().status, SolveStatus::Ok);
    EXPECT_EQ(svc.counters().tunes, 0u);  // warm from the previous run
  }
  std::remove(path.c_str());
}

// ---------- shutdown ----------

TEST(SolveService, ShutdownDrainsQueuedWork) {
  auto cfg = stalled_config();
  cfg.queue_capacity = 64;
  SolveService<double> svc(one_device(), cfg);
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 10; ++i)
    futs.push_back(svc.submit(make_request(64 + 32 * (i % 3), 700 + i)));
  svc.shutdown();
  for (auto& f : futs) EXPECT_EQ(f.get().status, SolveStatus::Ok);
  EXPECT_EQ(svc.counters().completed, 10u);
}

TEST(SolveService, SubmitAfterShutdownIsRejected) {
  SolveService<double> svc(one_device());
  svc.shutdown();
  EXPECT_FALSE(svc.accepting());
  EXPECT_EQ(svc.submit(make_request(64, 1)).get().status,
            SolveStatus::Rejected);
  svc.shutdown();  // idempotent
}

// ---------- validation ----------

TEST(SolveService, RejectsMalformedRequests) {
  SolveService<double> svc(one_device());
  SolveRequest<double> empty;
  EXPECT_THROW(svc.submit(std::move(empty)), ContractError);
  SolveRequest<double> ragged_diags;
  ragged_diags.a = {0.0};
  ragged_diags.b = {1.0, 1.0};
  ragged_diags.c = {0.0, 0.0};
  ragged_diags.d = {1.0, 1.0};
  EXPECT_THROW(svc.submit(std::move(ragged_diags)), ContractError);
}

// ---------- telemetry ----------

TEST(SolveService, ExportsQueueAndOccupancyMetrics) {
  ServiceConfig cfg;
  cfg.flush_systems = 4;
  cfg.flush_interval_ms = 10'000.0;
  SolveService<double> svc(one_device(), cfg);
  svc.telemetry().enable_all();
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 8; ++i)
    futs.push_back(svc.submit(make_request(128, 800 + i)));
  for (auto& f : futs) ASSERT_EQ(f.get().status, SolveStatus::Ok);

  const auto& mx = svc.telemetry().metrics;
  EXPECT_GE(mx.histogram("service.queue_depth").count, 8u);
  EXPECT_EQ(mx.histogram("service.batch_occupancy").count, 2u);
  EXPECT_DOUBLE_EQ(mx.histogram("service.batch_occupancy").max, 4.0);
  EXPECT_EQ(mx.counter("service.submitted"), 8.0);
  EXPECT_GT(mx.histogram("service.wait_ms").count, 0u);
  EXPECT_GT(mx.histogram("service.solve_ms").count, 0u);

  const std::string path = "test_service_metrics.json";
  ASSERT_TRUE(svc.export_metrics(path));
  std::stringstream ss;
  ss << std::ifstream(path).rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("service.queue_depth"), std::string::npos);
  EXPECT_NE(json.find("service.batch_occupancy"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SolveService, EmitsLifecycleSpans) {
  ServiceConfig cfg;
  cfg.flush_systems = 2;
  cfg.flush_interval_ms = 10'000.0;
  SolveService<double> svc(one_device(), cfg);
  svc.telemetry().enable_all();
  auto f1 = svc.submit(make_request(64, 1));
  auto f2 = svc.submit(make_request(64, 2));
  ASSERT_EQ(f1.get().status, SolveStatus::Ok);
  ASSERT_EQ(f2.get().status, SolveStatus::Ok);
  svc.shutdown();

  std::set<std::string> names;
  for (const auto& span : svc.telemetry().tracer.spans())
    names.insert(span.name);
  for (const char* expected : {"enqueue", "flush", "solve", "complete"})
    EXPECT_TRUE(names.count(expected)) << "missing span " << expected;
}

// ---------- coalescing beats one-solve-per-request ----------

TEST(SolveService, CoalescingBeatsPerRequestThroughput) {
  // Same many-small-systems workload through both configurations; the
  // coalesced service must spend less simulated device time (launch
  // overhead and fill amortized across the batch).
  const auto run = [](std::size_t flush_systems) {
    ServiceConfig cfg;
    cfg.flush_systems = flush_systems;
    cfg.flush_interval_ms = 50.0;
    SolveService<double> svc(one_device(), cfg);
    std::vector<std::future<SolveResponse<double>>> futs;
    for (int i = 0; i < 64; ++i) {
      futs.push_back(svc.submit(make_request(128, 900 + i)));
      // The per-request baseline waits for each response before
      // submitting the next, so nothing can ride along.
      if (flush_systems == 1) {
        EXPECT_EQ(futs.back().get().status, SolveStatus::Ok);
      }
    }
    if (flush_systems != 1) {
      for (auto& f : futs) EXPECT_EQ(f.get().status, SolveStatus::Ok);
    }
    svc.shutdown();
    EXPECT_EQ(svc.counters().completed, 64u);
    return svc.counters().device_ms;
  };
  const double per_request_ms = run(1);
  const double coalesced_ms = run(64);
  EXPECT_LT(coalesced_ms, per_request_ms);
}

// ---------- concurrency hammer (run under TSan in CI) ----------

TEST(SolveServiceHammer, ManyClientsManyShapes) {
  ServiceConfig cfg;
  cfg.flush_systems = 16;
  cfg.flush_interval_ms = 1.0;
  cfg.queue_capacity = 256;
  SolveService<double> svc(
      {gpusim::geforce_gtx_470(), gpusim::geforce_gtx_280()}, cfg);
  svc.telemetry().enable_all();

  constexpr int kClients = 4;
  constexpr int kPerClient = 32;
  const std::size_t shapes[] = {33, 64, 100, 128};
  std::atomic<int> ok{0};
  std::atomic<int> residual_fail{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      // Fire every request before collecting, so same-shape requests
      // are pending together and the scheduler can coalesce them.
      std::vector<SolveRequest<double>> copies;
      std::vector<std::future<SolveResponse<double>>> futs;
      for (int i = 0; i < kPerClient; ++i) {
        auto req = make_request(shapes[i % 4], 1000 + t * 100 + i);
        copies.push_back(req);
        futs.push_back(svc.submit(std::move(req)));
      }
      for (int i = 0; i < kPerClient; ++i) {
        auto resp = futs[i].get();
        if (resp.status == SolveStatus::Ok) {
          ok.fetch_add(1);
          if (request_residual(copies[i], resp.x) > 1e-8)
            residual_fail.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  svc.shutdown();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  EXPECT_EQ(residual_fail.load(), 0);
  EXPECT_EQ(svc.counters().completed,
            static_cast<std::size_t>(kClients * kPerClient));
  EXPECT_GT(svc.counters().max_batch_systems, 1u);
}

TEST(SolveServiceHammer, ShutdownRacesWithSubmitters) {
  for (int round = 0; round < 3; ++round) {
    ServiceConfig cfg;
    cfg.flush_systems = 8;
    cfg.flush_interval_ms = 0.5;
    SolveService<double> svc(one_device(), cfg);
    std::vector<std::thread> clients;
    std::atomic<int> terminal{0};
    for (int t = 0; t < 3; ++t) {
      clients.emplace_back([&] {
        for (int i = 0; i < 20; ++i) {
          auto resp = svc.submit(make_request(64, i)).get();
          (void)to_string(resp.status);  // any terminal status is legal
          terminal.fetch_add(1);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    svc.shutdown();  // must not deadlock or drop futures
    for (auto& c : clients) c.join();
    EXPECT_EQ(terminal.load(), 60);
  }
}

// ---------- resilience: poison, retries, failover, healing ----------

SolveRequest<double> make_poisoned_request(std::size_t n, std::uint64_t seed,
                                           faults::Poison kind) {
  auto req = make_request(n, seed);
  faults::poison_system<double>(std::span<double>(req.a),
                                std::span<double>(req.b),
                                std::span<double>(req.c),
                                std::span<double>(req.d), kind);
  return req;
}

TEST(SolveServiceResilience, PoisonedSystemsGetTypedStatusOthersComplete) {
  ServiceConfig cfg;
  cfg.flush_systems = 8;
  cfg.flush_interval_ms = 10'000.0;
  SolveService<double> svc(one_device(), cfg);

  std::vector<SolveRequest<double>> copies;
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 8; ++i) {
    SolveRequest<double> req;
    if (i == 2) {
      req = make_poisoned_request(192, 900 + i, faults::Poison::NaN);
    } else if (i == 5) {
      req = make_poisoned_request(192, 900 + i, faults::Poison::ZeroPivot);
    } else {
      req = make_request(192, 900 + i);
    }
    copies.push_back(req);
    futs.push_back(svc.submit(std::move(req)));
  }
  for (int i = 0; i < 8; ++i) {
    auto resp = futs[i].get();
    if (i == 2) {
      EXPECT_EQ(resp.status, SolveStatus::NonFinite);
      EXPECT_FALSE(resp.error.empty());
    } else if (i == 5) {
      EXPECT_EQ(resp.status, SolveStatus::Singular);
      EXPECT_FALSE(resp.error.empty());
    } else {
      // One bad batchmate must never take down the rest of the batch.
      ASSERT_EQ(resp.status, SolveStatus::Ok) << "request " << i;
      EXPECT_LT(request_residual(copies[i], resp.x), 1e-8);
    }
  }
  const auto c = svc.counters();
  EXPECT_EQ(c.completed, 6u);
  EXPECT_EQ(c.nonfinite, 1u);
  EXPECT_EQ(c.singular, 1u);
}

TEST(SolveServiceResilience, InjectedPoisonIsIsolated) {
  faults::FaultConfig fc;
  fc.seed = 21;
  fc.rate_of(faults::Site::PoisonNaN) = 0.1;
  fc.rate_of(faults::Site::PoisonZeroPivot) = 0.1;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 16;
  SolveService<double> svc(one_device(), cfg);
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 64; ++i)
    futs.push_back(svc.submit(make_request(128, 2000 + i)));

  std::size_t ok = 0, poisoned = 0;
  for (auto& f : futs) {
    const auto resp = f.get();
    if (resp.status == SolveStatus::Ok) {
      ++ok;
    } else {
      ASSERT_TRUE(resp.status == SolveStatus::Singular ||
                  resp.status == SolveStatus::NonFinite)
          << to_string(resp.status);
      ++poisoned;
    }
  }
  EXPECT_EQ(ok + poisoned, 64u);
  // ~20% combined poison rate over 64 systems: some must have fired,
  // and the healthy majority must have completed.
  EXPECT_GT(poisoned, 0u);
  EXPECT_GT(ok, 32u);
  EXPECT_EQ(svc.counters().completed, ok);
}

TEST(SolveServiceResilience, DeviceFaultsAreRetriedToCompletion) {
  faults::FaultConfig fc;
  fc.seed = 5;
  fc.rate_of(faults::Site::DeviceLaunch) = 0.3;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 8;
  SolveService<double> svc(one_device(), cfg);
  std::vector<SolveRequest<double>> copies;
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 48; ++i) {
    auto req = make_request(96, 3000 + i);
    copies.push_back(req);
    futs.push_back(svc.submit(std::move(req)));
  }
  for (int i = 0; i < 48; ++i) {
    auto resp = futs[i].get();
    ASSERT_EQ(resp.status, SolveStatus::Ok) << "request " << i;
    EXPECT_LT(request_residual(copies[i], resp.x), 1e-8);
  }
  // At 30% launch-failure some batches must have needed another attempt
  // (retry, failover or CPU fallback) — yet every request completed.
  const auto c = svc.counters();
  EXPECT_EQ(c.completed, 48u);
  EXPECT_GT(c.retries + c.cpu_failovers + c.failovers, 0u);
}

TEST(SolveServiceResilience, TotalDeviceFailureFailsOverToCpu) {
  faults::FaultConfig fc;
  fc.seed = 2;
  fc.rate_of(faults::Site::DeviceLaunch) = 1.0;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 4;
  cfg.resilience.retry_backoff_ms = 0.01;
  SolveService<double> svc(one_device(), cfg);
  std::vector<SolveRequest<double>> copies;
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 8; ++i) {
    auto req = make_request(64, 4000 + i);
    copies.push_back(req);
    futs.push_back(svc.submit(std::move(req)));
  }
  for (int i = 0; i < 8; ++i) {
    auto resp = futs[i].get();
    ASSERT_EQ(resp.status, SolveStatus::Ok) << "request " << i;
    EXPECT_TRUE(resp.fallback_used);
    EXPECT_LT(request_residual(copies[i], resp.x), 1e-10);
  }
  const auto c = svc.counters();
  EXPECT_EQ(c.completed, 8u);
  EXPECT_GT(c.cpu_failovers, 0u);
  EXPECT_GT(c.retries, 0u);
  EXPECT_GT(c.breaker_opens, 0u);
}

TEST(SolveServiceResilience, BreakerReclosesAfterFaultsClear) {
  ServiceConfig cfg;
  cfg.flush_systems = 2;
  cfg.resilience.retry_backoff_ms = 0.01;
  cfg.resilience.breaker_cooldown_ms = 1.0;
  SolveService<double> svc(one_device(), cfg);

  {
    faults::FaultConfig fc;
    fc.seed = 3;
    fc.rate_of(faults::Site::DeviceLaunch) = 1.0;
    faults::ScopedFaultConfig scoped(fc);
    std::vector<std::future<SolveResponse<double>>> futs;
    for (int i = 0; i < 6; ++i)
      futs.push_back(svc.submit(make_request(64, 5000 + i)));
    for (auto& f : futs) EXPECT_EQ(f.get().status, SolveStatus::Ok);
  }
  EXPECT_GT(svc.counters().breaker_opens, 0u);

  // Faults gone (explicitly zeroed — an ambient TDA_FAULTS must not
  // leak in): the half-open probe must admit traffic again and the GPU
  // path must come back (no new CPU failovers for clean solves).
  faults::ScopedFaultConfig quiet{faults::FaultConfig{}};
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto cpu_before = svc.counters().cpu_failovers;
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 6; ++i)
    futs.push_back(svc.submit(make_request(64, 6000 + i)));
  for (auto& f : futs) {
    const auto resp = f.get();
    EXPECT_EQ(resp.status, SolveStatus::Ok);
    EXPECT_FALSE(resp.fallback_used);
  }
  EXPECT_EQ(svc.counters().cpu_failovers, cpu_before);
}

TEST(SolveServiceResilience, CrashedWorkersAreHealed) {
  faults::FaultConfig fc;
  fc.seed = 13;
  fc.rate_of(faults::Site::WorkerCrash) = 0.4;  // 1.0 would livelock
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 4;
  SolveService<double> svc(
      {gpusim::geforce_gtx_470(), gpusim::geforce_gtx_280()}, cfg);
  std::vector<std::future<SolveResponse<double>>> futs;
  for (int i = 0; i < 32; ++i)
    futs.push_back(svc.submit(make_request(96, 7000 + i)));
  for (auto& f : futs) EXPECT_EQ(f.get().status, SolveStatus::Ok);
  svc.shutdown();

  const auto c = svc.counters();
  EXPECT_EQ(c.completed, 32u);
  // At 40% crash probability per pickup, 8 flush batches make at least
  // one crash overwhelmingly likely (P[no crash] ≈ 0.6^8 < 2%).
  EXPECT_GT(c.worker_restarts, 0u);
}

TEST(SolveServiceHammer, SurvivesCombinedFaultStorm) {
  faults::FaultConfig fc;
  fc.seed = 29;
  fc.rate_of(faults::Site::DeviceLaunch) = 0.1;
  fc.rate_of(faults::Site::WorkerCrash) = 0.1;
  fc.rate_of(faults::Site::WorkerStall) = 0.1;
  fc.stall_ms = 0.5;
  faults::ScopedFaultConfig scoped(fc);

  ServiceConfig cfg;
  cfg.flush_systems = 8;
  cfg.flush_interval_ms = 0.5;
  cfg.resilience.retry_backoff_ms = 0.01;
  SolveService<double> svc(
      {gpusim::geforce_gtx_470(), gpusim::geforce_gtx_280()}, cfg);

  constexpr int kClients = 3, kPerClient = 20;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerClient; ++i) {
        auto resp = svc.submit(make_request(64, 8000 + t * 100 + i)).get();
        if (resp.status == SolveStatus::Ok) ok.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  svc.shutdown();  // crashes mid-drain must not strand the shutdown
  EXPECT_EQ(ok.load(), kClients * kPerClient);
}

}  // namespace
