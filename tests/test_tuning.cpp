// Tests for the parameter-selection strategies: default constants, static
// machine-query selection, the dynamic self-tuner (decoupled search) and
// the tuning cache.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "faults/faults.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/cache.hpp"
#include "tuning/dynamic_tuner.hpp"
#include "tuning/tuners.hpp"

namespace {

using namespace tda;
using namespace tda::tuning;
using solver::Workload;

// ---------- default parameters ----------

TEST(DefaultTuner, PaperConstants) {
  auto sp = default_switch_points<float>();
  EXPECT_EQ(sp.stage3_system_size, 256u);
  EXPECT_EQ(sp.stage1_target_systems, 16u);
  EXPECT_EQ(sp.thomas_switch, 32u);
  EXPECT_EQ(sp.variant, kernels::LoadVariant::Strided);
}

TEST(DefaultTuner, SafeOnEveryRegistryDevice) {
  // The defining property of defaults (§IV-B): they must launch (not
  // crash) on every supported device, in both precisions.
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    {
      solver::GpuTridiagonalSolver<float> s(dev,
                                            default_switch_points<float>());
      auto batch = tridiag::make_diag_dominant<float>(4, 1024, 3);
      EXPECT_NO_THROW(s.solve(batch)) << spec.name;
    }
    {
      solver::GpuTridiagonalSolver<double> s(
          dev, default_switch_points<double>());
      auto batch = tridiag::make_diag_dominant<double>(4, 1024, 3);
      EXPECT_NO_THROW(s.solve(batch)) << spec.name;
    }
  }
}

// ---------- static machine-query tuning ----------

TEST(StaticTuner, UsesSharedCapacity) {
  EXPECT_EQ(static_switch_points<float>(gpusim::geforce_8800_gtx().query())
                .stage3_system_size,
            256u);
  EXPECT_EQ(static_switch_points<float>(gpusim::geforce_gtx_280().query())
                .stage3_system_size,
            512u);
  EXPECT_EQ(static_switch_points<float>(gpusim::geforce_gtx_470().query())
                .stage3_system_size,
            1024u);
}

TEST(StaticTuner, ThomasSwitchIsWarpBasedAndDeviceIndependent) {
  // §IV-C: bank count/bandwidth are not queryable, so the guess is 64 on
  // every device.
  for (const auto& spec : gpusim::device_registry()) {
    EXPECT_EQ(static_switch_points<float>(spec.query()).thomas_switch, 64u)
        << spec.name;
  }
}

TEST(StaticTuner, StageOneTargetTracksProcessorCount) {
  const auto sp8800 =
      static_switch_points<float>(gpusim::geforce_8800_gtx().query());
  const auto sp280 =
      static_switch_points<float>(gpusim::geforce_gtx_280().query());
  EXPECT_EQ(sp8800.stage1_target_systems, 14u);
  EXPECT_EQ(sp280.stage1_target_systems, 30u);
}

// ---------- dynamic tuner ----------

TEST(DynamicTuner, NeverWorseThanStaticOrDefault) {
  // The core property claimed in §V: dynamic >= static >= (usually)
  // default. We assert the dynamic result is at least as good as both on
  // every device for a mixed workload set.
  const Workload workloads[] = {{64, 1024}, {4, 8192}, {1, 65536}};
  for (const auto& spec : gpusim::device_registry()) {
    for (const auto& w : workloads) {
      gpusim::Device dev(spec);
      DynamicTuner<float> tuner(dev);
      auto result = tuner.tune(w);

      auto eval = [&](const solver::SwitchPoints& sp) {
        solver::GpuTridiagonalSolver<float> s(dev, sp);
        return s.simulate_ms(w);
      };
      const double t_default = eval(default_switch_points<float>());
      const double t_static = eval(static_switch_points<float>(dev.query()));
      const double t_dynamic = eval(result.points);

      EXPECT_LE(t_dynamic, t_static * 1.0001)
          << spec.name << " m=" << w.num_systems << " n=" << w.system_size;
      EXPECT_LE(t_dynamic, t_default * 1.0001)
          << spec.name << " m=" << w.num_systems << " n=" << w.system_size;
      EXPECT_NEAR(t_dynamic, result.best_ms, result.best_ms * 1e-9);
    }
  }
}

TEST(DynamicTuner, DecoupledSearchIsAdditive) {
  // |A| + |B| evaluations, not |A| × |B|: the paper's example is 16+32=48
  // vs 16×32=512. Assert the dynamic tuner evaluates far fewer configs
  // than the exhaustive cross product.
  gpusim::Device dev(gpusim::geforce_gtx_470());
  const Workload w{8, 8192};
  DynamicTuner<float> tuner(dev);
  auto dyn = tuner.tune(w);
  auto exh = exhaustive_tune<float>(dev, w);
  EXPECT_LT(dyn.evaluations, exh.evaluations / 4);
  // And the hill descent must land within a few percent of the global
  // optimum over the same space.
  EXPECT_LE(dyn.best_ms, exh.best_ms * 1.05);
}

TEST(DynamicTuner, TunedPointsAreValidForDevice) {
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    DynamicTuner<double> tuner(dev);
    auto result = tuner.tune({16, 4096});
    const std::size_t cap =
        kernels::max_shared_system_size(dev.query(), sizeof(double));
    EXPECT_LE(result.points.stage3_system_size, cap) << spec.name;
    EXPECT_GE(result.points.thomas_switch, 1u);
  }
}

TEST(DynamicTuner, SkipsStageOneTuningWhenMachineIsFull) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  DynamicTuner<float> tuner(dev);
  auto big_m = tuner.tune({4096, 1024});
  EXPECT_FALSE(big_m.stage1_tuned);
  auto small_m = tuner.tune({1, 262144});
  EXPECT_TRUE(small_m.stage1_tuned);
}

TEST(DynamicTuner, DeterministicAcrossRuns) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  DynamicTuner<float> t1(dev), t2(dev);
  auto r1 = t1.tune({32, 2048});
  auto r2 = t2.tune({32, 2048});
  EXPECT_EQ(r1.points.stage3_system_size, r2.points.stage3_system_size);
  EXPECT_EQ(r1.points.thomas_switch, r2.points.thomas_switch);
  EXPECT_EQ(r1.points.stage1_target_systems,
            r2.points.stage1_target_systems);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
  EXPECT_DOUBLE_EQ(r1.best_ms, r2.best_ms);
}

// ---------- cache ----------

TEST(Cache, StoreAndFind) {
  TuningCache cache;
  const auto key = TuningCache::make_key("GeForce GTX 470", 4, 64, 1024);
  EXPECT_FALSE(cache.find(key).has_value());
  CacheEntry e;
  e.points.stage3_system_size = 512;
  e.points.thomas_switch = 128;
  e.tuned_ms = 1.25;
  cache.store(key, e);
  auto hit = cache.find(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->points.stage3_system_size, 512u);
  EXPECT_DOUBLE_EQ(hit->tuned_ms, 1.25);
}

TEST(Cache, KeySeparatesPrecisionAndShape) {
  const auto k1 = TuningCache::make_key("dev", 4, 64, 1024);
  const auto k2 = TuningCache::make_key("dev", 8, 64, 1024);
  const auto k3 = TuningCache::make_key("dev", 4, 64, 2048);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
}

TEST(Cache, FileRoundTrip) {
  const std::string path = "/tmp/tda_cache_test.txt";
  std::remove(path.c_str());
  {
    TuningCache cache;
    CacheEntry e;
    e.points.stage1_target_systems = 8;
    e.points.stage3_system_size = 512;
    e.points.thomas_switch = 128;
    e.points.variant = kernels::LoadVariant::Coalesced;
    e.tuned_ms = 3.5;
    cache.store(TuningCache::make_key("GeForce GTX 280", 4, 16, 4096), e);
    ASSERT_TRUE(cache.save(path));
  }
  TuningCache loaded;
  EXPECT_EQ(loaded.load(path), 1u);
  auto hit = loaded.find(TuningCache::make_key("GeForce GTX 280", 4, 16, 4096));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->points.stage1_target_systems, 8u);
  EXPECT_EQ(hit->points.stage3_system_size, 512u);
  EXPECT_EQ(hit->points.thomas_switch, 128u);
  EXPECT_EQ(hit->points.variant, kernels::LoadVariant::Coalesced);
  EXPECT_DOUBLE_EQ(hit->tuned_ms, 3.5);
  std::remove(path.c_str());
}

TEST(Cache, LoadMissingFileIsZero) {
  TuningCache cache;
  EXPECT_EQ(cache.load("/tmp/definitely_missing_tda_cache.txt"), 0u);
}

// ---------- cache robustness: header, checksum, malformed records ----------

namespace cache_files {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  out << contents;
}

std::string save_one_entry(const std::string& path) {
  std::remove(path.c_str());
  TuningCache cache;
  CacheEntry e;
  e.points.stage3_system_size = 512;
  e.tuned_ms = 2.0;
  cache.store(TuningCache::make_key("GeForce GTX 470", 8, 32, 2048), e);
  EXPECT_TRUE(cache.save(path));
  return read_file(path);
}

}  // namespace cache_files

TEST(CacheRobustness, SavedFileCarriesVersionedChecksumHeader) {
  const std::string path = "/tmp/tda_cache_header.txt";
  const std::string contents = cache_files::save_one_entry(path);
  EXPECT_EQ(contents.rfind("# tridiag_autotune tuning cache v2 checksum=", 0),
            0u)
      << contents;
  TuningCache loaded;
  EXPECT_EQ(loaded.load(path), 1u);
  std::remove(path.c_str());
}

TEST(CacheRobustness, BitFlippedFileIsRejectedWholesale) {
  const std::string path = "/tmp/tda_cache_bitflip.txt";
  std::string contents = cache_files::save_one_entry(path);
  // The shared corruption helper: "a corrupt file" means the same thing
  // in tests and in CacheCorrupt injection.
  faults::corrupt_bytes(contents, 7, 3);
  cache_files::write_file(path, contents);

  TuningCache loaded;
  EXPECT_EQ(loaded.load(path), 0u);
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

TEST(CacheRobustness, TruncatedFileIsRejectedWholesale) {
  const std::string path = "/tmp/tda_cache_trunc.txt";
  const std::string contents = cache_files::save_one_entry(path);
  cache_files::write_file(path, contents.substr(0, contents.size() / 2));

  TuningCache loaded;
  EXPECT_EQ(loaded.load(path), 0u);
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

TEST(CacheRobustness, MissingHeaderIsRejectedWholesale) {
  const std::string path = "/tmp/tda_cache_nohdr.txt";
  const std::string contents = cache_files::save_one_entry(path);
  // Strip the header line; the records themselves are intact.
  const std::size_t nl = contents.find('\n');
  cache_files::write_file(path, contents.substr(nl + 1));

  TuningCache loaded;
  EXPECT_EQ(loaded.load(path), 0u);
  std::remove(path.c_str());
}

TEST(CacheRobustness, LegacyV1HeaderLoadsWithoutChecksum) {
  const std::string path = "/tmp/tda_cache_v1.txt";
  std::string contents = cache_files::save_one_entry(path);
  const std::size_t nl = contents.find('\n');
  cache_files::write_file(
      path, "# tridiag_autotune tuning cache v1" + contents.substr(nl));

  TuningCache loaded;
  EXPECT_EQ(loaded.load(path), 1u);
  std::remove(path.c_str());
}

TEST(CacheRobustness, MalformedRecordsAreSkippedNotFatal) {
  const std::string path = "/tmp/tda_cache_malformed.txt";
  std::string contents = cache_files::save_one_entry(path);
  const std::size_t nl = contents.find('\n');
  // v1 header (no checksum to invalidate), one good record, then a pile
  // of malformed ones: garbage, negative / non-finite / fractional
  // switch points, and a missing field.
  std::string doctored = "# tridiag_autotune tuning cache v1";
  doctored += contents.substr(nl);
  doctored += "complete garbage line\n";
  doctored += "dev|fp64|4x128\t-8 512 128 strided 1.0\n";
  doctored += "dev|fp64|4x256\tnan 512 128 strided 1.0\n";
  doctored += "dev|fp64|4x512\t8.5 512 128 strided 1.0\n";
  doctored += "dev|fp64|4x1024\t8 512\n";
  cache_files::write_file(path, doctored);

  TuningCache loaded;
  EXPECT_EQ(loaded.load(path), 1u);  // only the genuine record survives
  EXPECT_TRUE(loaded
                  .find(TuningCache::make_key("GeForce GTX 470", 8, 32,
                                              2048))
                  .has_value());
  EXPECT_FALSE(loaded.find("dev|fp64|4x128").has_value());
  std::remove(path.c_str());
}

TEST(CacheRobustness, InjectedCorruptionTriggersWholeFileFallback) {
  const std::string path = "/tmp/tda_cache_inject.txt";
  cache_files::save_one_entry(path);

  faults::FaultConfig fc;
  fc.seed = 11;
  fc.rate_of(faults::Site::CacheCorrupt) = 1.0;
  faults::ScopedFaultConfig scoped(fc);
  TuningCache loaded;
  // The injector flips bytes between disk and parser; the checksum must
  // catch it and the cache must come up empty rather than poisoned.
  EXPECT_EQ(loaded.load(path), 0u);
  EXPECT_EQ(loaded.size(), 0u);
  std::remove(path.c_str());
}

TEST(DynamicTuner, SecondTuneHitsCache) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  TuningCache cache;
  DynamicTuner<float> tuner(dev, &cache);
  auto first = tuner.tune({64, 2048});
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(cache.size(), 1u);
  auto second = tuner.tune({64, 2048});
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.points.stage3_system_size,
            first.points.stage3_system_size);
  EXPECT_EQ(second.evaluations, 0u);
}

// ---------- tuned solver still solves correctly ----------

TEST(DynamicTuner, TunedSolverProducesCorrectSolutions) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  DynamicTuner<double> tuner(dev);
  auto result = tuner.tune({8, 4096});
  solver::GpuTridiagonalSolver<double> s(dev, result.points);
  auto batch = tridiag::make_diag_dominant<double>(8, 4096, 999);
  auto pristine = batch;
  s.solve(batch);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-9);
}

}  // namespace
