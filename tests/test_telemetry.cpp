// Tests for the telemetry subsystem: span tracer, metrics registry,
// JSON parser, Chrome-trace/metrics exporters, env gating, and the
// integration through Device / solver / tuner / probes — including the
// acceptance guarantees that a disabled session records nothing and
// that the quickstart-style env-gated export is a valid, nested Chrome
// trace.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/log.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/probes.hpp"
#include "solver/auto_solver.hpp"
#include "solver/gpu_solver.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "tridiag/generators.hpp"
#include "tuning/dynamic_tuner.hpp"

namespace {

using namespace tda;
using telemetry::JsonValue;

// ---------- Tracer ----------

TEST(Tracer, NestingAndOrdering) {
  telemetry::Tracer tracer;
  tracer.enable();
  double clock = 0.0;
  tracer.set_clock([&clock] { return clock; });

  const auto root = tracer.begin("root", "test");
  clock = 1.0;
  const auto child = tracer.begin("child");
  EXPECT_EQ(tracer.current_path(), "root/child");
  clock = 2.0;
  const auto grandchild = tracer.begin("grandchild");
  clock = 3.0;
  tracer.end(grandchild);
  tracer.end(child);
  clock = 5.0;
  tracer.end(root);

  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, telemetry::kInvalidSpan);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[2].parent, child);
  EXPECT_DOUBLE_EQ(spans[0].begin_s, 0.0);
  EXPECT_DOUBLE_EQ(spans[0].end_s, 5.0);
  EXPECT_DOUBLE_EQ(spans[2].begin_s, 2.0);
  EXPECT_DOUBLE_EQ(spans[2].end_s, 3.0);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Tracer, ScopedSpanRaiiAndAttrs) {
  telemetry::Tracer tracer;
  tracer.enable();
  {
    telemetry::ScopedSpan outer(tracer, "outer");
    outer.attr("kind", "demo");
    outer.attr("count", 3.0);
    telemetry::ScopedSpan inner(tracer, "inner", "cat");
    EXPECT_TRUE(inner.active());
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_EQ(spans[0].attrs[0].first, "kind");
  EXPECT_EQ(spans[0].attrs[0].second, "demo");
  EXPECT_EQ(spans[0].attrs[1].second, "3");  // integral: no decimal point
  EXPECT_EQ(spans[1].category, "cat");
}

TEST(Tracer, EndClosesAbandonedChildren) {
  telemetry::Tracer tracer;
  tracer.enable();
  double clock = 0.0;
  tracer.set_clock([&clock] { return clock; });
  const auto root = tracer.begin("root");
  tracer.begin("leaked");
  clock = 7.0;
  tracer.end(root);  // must unwind "leaked" too
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_DOUBLE_EQ(tracer.spans()[1].end_s, 7.0);
}

TEST(Tracer, DisabledRecordsNothing) {
  telemetry::Tracer tracer;  // never enabled
  const auto id = tracer.begin("x");
  EXPECT_EQ(id, telemetry::kInvalidSpan);
  tracer.attr(id, "k", "v");
  tracer.end(id);
  EXPECT_EQ(tracer.emit("y", "c", 0.0, 1.0), telemetry::kInvalidSpan);
  EXPECT_TRUE(tracer.spans().empty());
  telemetry::ScopedSpan span(tracer, "scoped");
  EXPECT_FALSE(span.active());
  span.attr("k", 1.0);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Tracer, EmitParentsAtOpenSpan) {
  telemetry::Tracer tracer;
  tracer.enable();
  const auto root = tracer.begin("root");
  const auto leaf = tracer.emit("launch", "kernel", 0.5, 0.75);
  tracer.end(root);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[leaf].parent, root);
  EXPECT_EQ(tracer.spans()[leaf].depth, 1);
}

// ---------- Metrics ----------

TEST(Metrics, HistogramPercentiles) {
  telemetry::MetricsRegistry mx;
  mx.enable();
  for (int i = 1; i <= 100; ++i) mx.observe("h", static_cast<double>(i));
  const auto h = mx.histogram("h");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_DOUBLE_EQ(h.p50, 50.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(h.p95, 95.0);
  EXPECT_DOUBLE_EQ(h.mean, 50.5);
}

TEST(Metrics, SingleSampleAndMissingNames) {
  telemetry::MetricsRegistry mx;
  mx.enable();
  mx.observe("one", 42.0);
  const auto h = mx.histogram("one");
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.p50, 42.0);
  EXPECT_DOUBLE_EQ(h.p95, 42.0);
  EXPECT_EQ(mx.histogram("absent").count, 0u);
  EXPECT_DOUBLE_EQ(mx.counter("absent"), 0.0);
  EXPECT_DOUBLE_EQ(mx.gauge("absent"), 0.0);
}

TEST(Metrics, CountersAndGauges) {
  telemetry::MetricsRegistry mx;
  mx.enable();
  mx.add("c");
  mx.add("c", 2.5);
  mx.set("g", 1.0);
  mx.set("g", -3.0);
  EXPECT_DOUBLE_EQ(mx.counter("c"), 3.5);
  EXPECT_DOUBLE_EQ(mx.gauge("g"), -3.0);
}

TEST(Metrics, DisabledRecordsNothing) {
  telemetry::MetricsRegistry mx;  // never enabled
  mx.add("c");
  mx.set("g", 1.0);
  mx.observe("h", 1.0);
  EXPECT_TRUE(mx.empty());
}

TEST(Metrics, PercentileNearestRank) {
  EXPECT_DOUBLE_EQ(telemetry::percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(telemetry::percentile({3.0, 1.0, 2.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(telemetry::percentile({5.0}, 0.95), 5.0);
  EXPECT_DOUBLE_EQ(telemetry::percentile({}, 0.5), 0.0);
}

// ---------- JSON parser ----------

TEST(Json, ParsesScalarsArraysObjects) {
  auto v = telemetry::json_parse(
      R"({"a":1.5,"b":[true,false,null,"s"],"c":{"n":-2e3}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->find("a")->number, 1.5);
  ASSERT_TRUE(v->find("b")->is_array());
  EXPECT_EQ(v->find("b")->array.size(), 4u);
  EXPECT_TRUE(v->find("b")->array[0].boolean);
  EXPECT_EQ(v->find("b")->array[3].string, "s");
  EXPECT_DOUBLE_EQ(v->find("c")->find("n")->number, -2000.0);
}

TEST(Json, ParsesEscapes) {
  auto v = telemetry::json_parse(R"("a\"b\\c\nA")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string, "a\"b\\c\nA");
}

TEST(Json, RejectsGarbage) {
  EXPECT_FALSE(telemetry::json_parse("{").has_value());
  EXPECT_FALSE(telemetry::json_parse("{}x").has_value());
  EXPECT_FALSE(telemetry::json_parse("[1,]").has_value());
  EXPECT_FALSE(telemetry::json_parse("\"unterminated").has_value());
}

TEST(Json, EscapeRoundTrip) {
  const std::string nasty = "q\"b\\s\nt\tu\x01";
  auto v = telemetry::json_parse('"' + telemetry::json_escape(nasty) + '"');
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string, nasty);
}

TEST(Json, NonFiniteNumbersSerializeAsNullAndAreCounted) {
  const auto before = telemetry::nonfinite_dropped();
  EXPECT_EQ(telemetry::json_number(std::nan("")), "null");
  EXPECT_EQ(telemetry::json_number(
                std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(telemetry::json_number(
                -std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(telemetry::nonfinite_dropped(), before + 3);
  // Finite values are unaffected and not counted.
  EXPECT_EQ(telemetry::json_number(3.0), "3");
  EXPECT_EQ(telemetry::nonfinite_dropped(), before + 3);
}

TEST(Export, NonFiniteMetricEmitsNullAndHealthCounter) {
  telemetry::MetricsRegistry metrics;
  metrics.enable();
  metrics.set("good.gauge", 1.5);
  metrics.set("bad.gauge", std::nan(""));
  const std::string out = telemetry::to_metrics_json(metrics);
  auto v = telemetry::json_parse(out);  // "null" must still be valid JSON
  ASSERT_TRUE(v.has_value()) << out;
  const auto* gauges = v->find("gauges");
  ASSERT_NE(gauges, nullptr);
  const auto* bad = gauges->find("bad.gauge");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->kind, telemetry::JsonValue::Kind::Null) << out;
  const auto* counters = v->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* dropped = counters->find("telemetry.nonfinite_dropped");
  ASSERT_NE(dropped, nullptr) << out;
  EXPECT_GE(dropped->number, 1.0);
}

TEST(Export, NonFiniteSpanAttrSerializesAsNull) {
  telemetry::Tracer tracer;
  tracer.enable();
  const auto before = telemetry::nonfinite_dropped();
  const auto id = tracer.begin("span", "test");
  tracer.attr(id, "bad_attr", std::nan(""));
  tracer.end(id);
  EXPECT_EQ(telemetry::nonfinite_dropped(), before + 1);
  const std::string trace = telemetry::to_chrome_trace(tracer);
  EXPECT_NE(trace.find("\"bad_attr\":\"null\""), std::string::npos) << trace;
  ASSERT_TRUE(telemetry::json_parse(trace).has_value());
}

// ---------- Exporters ----------

TEST(Export, ChromeTraceIsValidAndNested) {
  telemetry::Tracer tracer;
  tracer.enable();
  double clock = 0.0;
  tracer.set_clock([&clock] { return clock; });
  const auto root = tracer.begin("solve", "solver");
  const auto stage = tracer.begin("stage1");
  tracer.attr(stage, "steps", 2.0);
  clock = 0.002;
  tracer.end(stage);
  clock = 0.003;
  tracer.end(root);

  const std::string json = telemetry::to_chrome_trace(tracer);
  auto doc = telemetry::json_parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  for (const auto& ev : events->array) {
    EXPECT_EQ(ev.find("ph")->string, "X");
    EXPECT_TRUE(ev.find("ts")->is_number());
    EXPECT_TRUE(ev.find("dur")->is_number());
    EXPECT_NE(ev.find("pid"), nullptr);
    EXPECT_NE(ev.find("tid"), nullptr);
  }
  // Enclosing span first on equal ts; child interval inside parent's.
  const auto& parent = events->array[0];
  const auto& child = events->array[1];
  EXPECT_EQ(parent.find("name")->string, "solve");
  EXPECT_EQ(child.find("name")->string, "stage1");
  EXPECT_GE(child.find("ts")->number, parent.find("ts")->number);
  EXPECT_LE(child.find("ts")->number + child.find("dur")->number,
            parent.find("ts")->number + parent.find("dur")->number);
  EXPECT_EQ(child.find("args")->find("steps")->string, "2");
}

TEST(Export, MetricsJsonParses) {
  telemetry::MetricsRegistry mx;
  mx.enable();
  mx.add("solver.solves", 2.0);
  mx.set("probe.peak_bandwidth_gb_s", 120.5);
  mx.observe("solve.total_ms", 1.0);
  mx.observe("solve.total_ms", 3.0);
  auto doc = telemetry::json_parse(telemetry::to_metrics_json(mx));
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->find("counters")->find("solver.solves")->number,
                   2.0);
  EXPECT_DOUBLE_EQ(
      doc->find("gauges")->find("probe.peak_bandwidth_gb_s")->number,
      120.5);
  const JsonValue* h = doc->find("histograms")->find("solve.total_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(h->find("max")->number, 3.0);
  EXPECT_DOUBLE_EQ(h->find("mean")->number, 2.0);
}

// ---------- Device / solver integration ----------

TEST(Integration, SolverEmitsStageAndLaunchSpans) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  telemetry::Telemetry tel;
  tel.enable_all();
  dev.set_telemetry(&tel);

  auto batch = tridiag::make_diag_dominant<float>(4, 4096, 11);
  solver::GpuTridiagonalSolver<float> s(dev, solver::SwitchPoints{});
  auto stats = s.solve(batch);

  const auto& spans = tel.tracer.spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(tel.tracer.open_spans(), 0u);

  std::size_t solve_idx = telemetry::kInvalidSpan;
  bool saw_stage = false, saw_kernel = false;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "solve") solve_idx = i;
    if (spans[i].name == "stage3_4") {
      saw_stage = true;
      EXPECT_EQ(spans[i].parent, solve_idx);
    }
    if (spans[i].category == "kernel") {
      saw_kernel = true;
      // every launch span is nested under some stage span
      ASSERT_NE(spans[i].parent, telemetry::kInvalidSpan);
      EXPECT_EQ(spans[spans[i].parent].category, "solver");
      EXPECT_GE(spans[i].begin_s, 0.0);
      EXPECT_GE(spans[i].end_s, spans[i].begin_s);
    }
  }
  EXPECT_NE(solve_idx, telemetry::kInvalidSpan);
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_kernel);

  EXPECT_DOUBLE_EQ(tel.metrics.counter("device.kernel_launches"),
                   static_cast<double>(stats.kernel_launches));
  EXPECT_DOUBLE_EQ(tel.metrics.counter("solver.solves"), 1.0);
  EXPECT_GT(tel.metrics.counter("device.bytes_moved"), 0.0);
  EXPECT_EQ(tel.metrics.histogram("solve.total_ms").count, 1u);
  EXPECT_GT(tel.metrics.histogram("solve.stage3.bandwidth_gb_s").count,
            0u);
}

TEST(Integration, DisabledTelemetryAllocatesZeroRecords) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  telemetry::Telemetry tel;  // attached but DISABLED
  dev.set_telemetry(&tel);

  auto batch = tridiag::make_diag_dominant<float>(4, 4096, 12);
  solver::GpuTridiagonalSolver<float> s(dev, solver::SwitchPoints{});
  s.solve(batch);
  tuning::DynamicTuner<float> tuner(dev);
  tuner.tune({4, 1024});
  gpusim::run_probes(dev);

  EXPECT_TRUE(tel.tracer.spans().empty());
  EXPECT_EQ(tel.tracer.open_spans(), 0u);
  EXPECT_TRUE(tel.metrics.empty());
}

TEST(Integration, TraceRecordsGainPhaseLabels) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  telemetry::Telemetry tel;
  tel.tracer.enable();
  dev.set_telemetry(&tel);
  dev.enable_trace();

  auto batch = tridiag::make_diag_dominant<float>(4, 4096, 13);
  solver::GpuTridiagonalSolver<float> s(dev, solver::SwitchPoints{});
  s.solve(batch);

  ASSERT_FALSE(dev.trace().empty());
  for (const auto& rec : dev.trace()) {
    EXPECT_EQ(rec.label.rfind("solve", 0), 0u) << rec.label;
  }
}

TEST(Integration, EnableTraceFalseFreesRecords) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.enable_trace();
  gpusim::LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = 32;
  dev.launch(cfg, [](gpusim::BlockContext&) {});
  ASSERT_EQ(dev.trace().size(), 1u);
  dev.enable_trace(false);
  EXPECT_TRUE(dev.trace().empty());
  EXPECT_EQ(dev.trace().capacity(), 0u);
}

TEST(Integration, TunerEmitsSearchTrajectory) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  telemetry::Telemetry tel;
  tel.enable_all();
  dev.set_telemetry(&tel);

  tuning::DynamicTuner<float> tuner(dev);
  auto result = tuner.tune({8, 2048});

  std::size_t evals = 0;
  bool saw_tune = false;
  for (const auto& sp : tel.tracer.spans()) {
    if (sp.name == "tune") saw_tune = true;
    if (sp.name == "tune.eval") ++evals;
  }
  EXPECT_TRUE(saw_tune);
  EXPECT_EQ(evals, result.evaluations);
  EXPECT_DOUBLE_EQ(tel.metrics.counter("tuner.evaluations"),
                   static_cast<double>(result.evaluations));
  EXPECT_EQ(tel.metrics.histogram("tuner.eval_ms").count,
            result.evaluations);
}

TEST(Integration, ProbesEmitSpansAndGauges) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  telemetry::Telemetry tel;
  tel.enable_all();
  dev.set_telemetry(&tel);

  auto rep = gpusim::run_probes(dev);
  bool saw_peak = false, saw_stride = false;
  for (const auto& sp : tel.tracer.spans()) {
    if (sp.name == "probe.peak_bandwidth") saw_peak = true;
    if (sp.name == "probe.stride_inflation") saw_stride = true;
  }
  EXPECT_TRUE(saw_peak);
  EXPECT_TRUE(saw_stride);
  EXPECT_DOUBLE_EQ(tel.metrics.gauge("probe.peak_bandwidth_gb_s"),
                   rep.peak_bandwidth_gb_s);
}

TEST(Integration, AutoSolverCacheHitMissCounters) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  solver::AutoSolver<float> auto_solver(dev);
  auto_solver.telemetry().enable_all();

  auto batch = tridiag::make_diag_dominant<float>(8, 1024, 21);
  auto_solver.solve(batch);  // miss: first time this shape is seen
  auto batch2 = tridiag::make_diag_dominant<float>(8, 1024, 22);
  auto_solver.solve(batch2);  // hit

  EXPECT_DOUBLE_EQ(auto_solver.telemetry().metrics.counter(
                       "tuner.cache_misses"), 1.0);
  EXPECT_DOUBLE_EQ(auto_solver.telemetry().metrics.counter(
                       "tuner.cache_hits"), 1.0);
  EXPECT_DOUBLE_EQ(auto_solver.telemetry().metrics.counter(
                       "solver.solves"), 2.0);
}

TEST(Integration, AutoSolverDetachesOnDestruction) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  {
    solver::AutoSolver<float> auto_solver(dev);
    EXPECT_EQ(dev.telemetry(), &auto_solver.telemetry());
  }
  EXPECT_EQ(dev.telemetry(), nullptr);
  // A caller-attached session survives AutoSolver construction.
  telemetry::Telemetry mine;
  dev.set_telemetry(&mine);
  {
    solver::AutoSolver<float> auto_solver(dev);
    EXPECT_EQ(dev.telemetry(), &mine);
  }
  EXPECT_EQ(dev.telemetry(), &mine);
}

// ---------- Env-gated export (the quickstart acceptance path) ----------

TEST(EnvExport, WritesNestedChromeTraceFromSolve) {
  const std::string path = "/tmp/tda_env_trace_test.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("TDA_TRACE", path.c_str(), 1), 0);
  {
    gpusim::Device dev(gpusim::geforce_gtx_470());
    telemetry::Telemetry tel;
    telemetry::EnvExport exporter(tel);
    ASSERT_TRUE(exporter.active());
    EXPECT_TRUE(tel.tracer.enabled());
    dev.set_telemetry(&tel);

    tuning::DynamicTuner<float> tuner(dev);
    auto tuned = tuner.tune({8, 2048});
    auto batch = tridiag::make_diag_dominant<float>(8, 2048, 31);
    solver::GpuTridiagonalSolver<float> s(dev, tuned.points);
    s.solve(batch);
  }  // EnvExport flushes here
  unsetenv("TDA_TRACE");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file was not written";
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = telemetry::json_parse(buf.str());
  ASSERT_TRUE(doc.has_value()) << "trace file is not valid JSON";
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_solve = false, saw_stage = false, saw_launch = false;
  for (const auto& ev : events->array) {
    const std::string& name = ev.find("name")->string;
    const std::string& cat = ev.find("cat")->string;
    if (name == "solve") saw_solve = true;
    if (name.rfind("stage", 0) == 0) saw_stage = true;
    if (cat == "kernel") saw_launch = true;
  }
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_launch);
  std::remove(path.c_str());
}

TEST(EnvExport, InactiveWithoutEnvVars) {
  unsetenv("TDA_TRACE");
  unsetenv("TDA_METRICS");
  telemetry::Telemetry tel;
  telemetry::EnvExport exporter(tel);
  EXPECT_FALSE(exporter.active());
  EXPECT_FALSE(tel.tracer.enabled());
  EXPECT_FALSE(tel.metrics.enabled());
}

// ---------- log_emit formatting ----------

TEST(Log, PrefixHasTimestampAndLevel) {
  std::ostringstream captured;
  auto* old = std::cerr.rdbuf(captured.rdbuf());
  const auto old_level = log_level();
  set_log_level(LogLevel::Info);
  TDA_INFO("hello telemetry");
  set_log_level(old_level);
  std::cerr.rdbuf(old);

  const std::string line = captured.str();
  EXPECT_EQ(line.rfind("[tda:INFO +", 0), 0u) << line;
  EXPECT_NE(line.find("s] hello telemetry\n"), std::string::npos) << line;
}

}  // namespace
