// Tests for the fault-injection framework: spec parsing, deterministic
// decision draws, counters, scoped overrides, byte corruption, system
// poisoning, and the device-side arming gate.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/occupancy.hpp"

namespace {

using namespace tda;
using namespace tda::faults;

// ---------- spec parsing ----------

TEST(FaultConfig, ParsesFullSpec) {
  const auto cfg = parse_fault_config(
      "seed=42,launch_fail=0.25,alloc_fail=0.5,worker_stall=0.1,"
      "worker_crash=0.2,cache_corrupt=1,nan_systems=0.05,"
      "zero_pivot_systems=0.15,stall_ms=7.5");
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::DeviceLaunch), 0.25);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::DeviceAlloc), 0.5);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::WorkerStall), 0.1);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::WorkerCrash), 0.2);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::CacheCorrupt), 1.0);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::PoisonNaN), 0.05);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::PoisonZeroPivot), 0.15);
  EXPECT_DOUBLE_EQ(cfg.stall_ms, 7.5);
  EXPECT_TRUE(cfg.any());
}

TEST(FaultConfig, EmptySpecIsInert) {
  const auto cfg = parse_fault_config("");
  EXPECT_FALSE(cfg.any());
  FaultInjector inj(cfg);
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultConfig, ClampsRatesAndSurvivesGarbage) {
  // Unknown keys, unparsable values and out-of-range rates must be
  // tolerated: a typo in TDA_FAULTS cannot be allowed to crash anything.
  const auto cfg = parse_fault_config(
      "launch_fail=7,worker_crash=-2,bogus_key=1,nan_systems=oops,,"
      "seed=123");
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::DeviceLaunch), 1.0);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::WorkerCrash), 0.0);
  EXPECT_DOUBLE_EQ(cfg.rate_of(Site::PoisonNaN), 0.0);
  EXPECT_EQ(cfg.seed, 123u);
}

TEST(FaultConfig, DescribeRoundTrips) {
  auto cfg = parse_fault_config("seed=9,launch_fail=0.125,worker_stall=0.5");
  const auto again = parse_fault_config(cfg.describe());
  EXPECT_EQ(again.seed, cfg.seed);
  for (int s = 0; s < kSiteCount; ++s) {
    EXPECT_DOUBLE_EQ(again.rate[s], cfg.rate[s]) << "site " << s;
  }
  EXPECT_DOUBLE_EQ(again.stall_ms, cfg.stall_ms);
}

// ---------- deterministic decisions ----------

TEST(FaultInjector, DecisionsAreDeterministicInSeed) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.rate_of(Site::DeviceLaunch) = 0.3;
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.fire(Site::DeviceLaunch), b.fire(Site::DeviceLaunch))
        << "decision " << i;
  }

  FaultConfig other = cfg;
  other.seed = 8;
  FaultInjector c(cfg), d(other);
  bool differs = false;
  for (int i = 0; i < 500; ++i) {
    if (c.fire(Site::DeviceLaunch) != d.fire(Site::DeviceLaunch)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, ObservedRateTracksConfiguredRate) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.rate_of(Site::WorkerCrash) = 0.2;
  FaultInjector inj(cfg);
  const int draws = 20'000;
  int hits = 0;
  for (int i = 0; i < draws; ++i) {
    if (inj.fire(Site::WorkerCrash)) ++hits;
  }
  const double observed = static_cast<double>(hits) / draws;
  EXPECT_NEAR(observed, 0.2, 0.02);
  EXPECT_EQ(inj.decisions(Site::WorkerCrash),
            static_cast<std::uint64_t>(draws));
  EXPECT_EQ(inj.injected(Site::WorkerCrash),
            static_cast<std::uint64_t>(hits));
  EXPECT_EQ(inj.total_injected(), static_cast<std::uint64_t>(hits));
}

TEST(FaultInjector, ZeroRateNeverFiresAndDrawsNoDecisions) {
  FaultInjector inj{FaultConfig{}};
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.fire(Site::DeviceLaunch));
  // Idle sites must not burn decision indices: enabling a rate later
  // starts the deterministic sequence from index 0.
  EXPECT_EQ(inj.decisions(Site::DeviceLaunch), 0u);
  EXPECT_EQ(inj.total_injected(), 0u);
}

TEST(FaultInjector, ConfigureResetsCounters) {
  FaultConfig cfg;
  cfg.rate_of(Site::DeviceAlloc) = 1.0;
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.fire(Site::DeviceAlloc));
  EXPECT_EQ(inj.injected(Site::DeviceAlloc), 1u);
  inj.configure(cfg);
  EXPECT_EQ(inj.decisions(Site::DeviceAlloc), 0u);
  EXPECT_EQ(inj.injected(Site::DeviceAlloc), 0u);
}

TEST(FaultInjector, MaybeDeviceFaultThrowsDeviceFault) {
  FaultConfig cfg;
  cfg.rate_of(Site::DeviceLaunch) = 1.0;
  FaultInjector inj(cfg);
  EXPECT_THROW(inj.maybe_device_fault(Site::DeviceLaunch, "stage3"),
               DeviceFault);
}

TEST(ScopedFaultConfig, RestoresPreviousGlobalConfig) {
  const auto before = FaultInjector::global().config();
  {
    FaultConfig cfg;
    cfg.seed = 99;
    cfg.rate_of(Site::PoisonNaN) = 0.5;
    ScopedFaultConfig scoped(cfg);
    EXPECT_EQ(FaultInjector::global().config().seed, 99u);
    EXPECT_DOUBLE_EQ(
        FaultInjector::global().config().rate_of(Site::PoisonNaN), 0.5);
  }
  const auto after = FaultInjector::global().config();
  EXPECT_EQ(after.seed, before.seed);
  for (int s = 0; s < kSiteCount; ++s) {
    EXPECT_DOUBLE_EQ(after.rate[s], before.rate[s]);
  }
}

// ---------- byte corruption ----------

TEST(CorruptBytes, IsDeterministicAndChangesContent) {
  const std::string original(256, 'x');
  std::string a = original, b = original;
  corrupt_bytes(a, 17, 8);
  corrupt_bytes(b, 17, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, original);

  std::string c = original;
  corrupt_bytes(c, 18, 8);
  EXPECT_NE(c, a);
}

TEST(CorruptBytes, EmptyInputIsNoOp) {
  std::string empty;
  corrupt_bytes(empty, 1, 8);
  EXPECT_TRUE(empty.empty());
}

// ---------- system poisoning ----------

TEST(PoisonSystem, NaNContaminatesMidSystem) {
  const std::size_t n = 16;
  std::vector<double> a(n, -1), b(n, 4), c(n, -1), d(n, 1);
  poison_system<double>(a, b, c, d, Poison::NaN);
  EXPECT_TRUE(std::isnan(b[n / 2]));
  EXPECT_TRUE(std::isnan(d[n / 2]));
}

TEST(PoisonSystem, ZeroPivotKillsLeadingDiagonal) {
  const std::size_t n = 16;
  std::vector<double> a(n, -1), b(n, 4), c(n, -1), d(n, 1);
  poison_system<double>(a, b, c, d, Poison::ZeroPivot);
  EXPECT_EQ(b[0], 0.0);
  EXPECT_EQ(c[0], 1.0);
  EXPECT_EQ(a[1], 0.0);
}

// ---------- device arming gate ----------

TEST(DeviceFaults, UnarmedDeviceIgnoresInjection) {
  FaultConfig cfg;
  cfg.rate_of(Site::DeviceLaunch) = 1.0;
  cfg.rate_of(Site::DeviceAlloc) = 1.0;
  ScopedFaultConfig scoped(cfg);

  gpusim::Device dev(gpusim::geforce_gtx_470());
  ASSERT_FALSE(dev.faults_armed());
  gpusim::LaunchConfig lc;
  lc.blocks = 2;
  lc.threads_per_block = 64;
  lc.regs_per_thread = 16;
  // A bare solver run must never see env-injected device faults.
  EXPECT_NO_THROW(dev.launch(lc, [](gpusim::BlockContext&) {}));
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(DeviceFaults, ArmedDeviceThrowsDeviceFault) {
  FaultConfig cfg;
  cfg.rate_of(Site::DeviceLaunch) = 1.0;
  ScopedFaultConfig scoped(cfg);

  gpusim::Device dev(gpusim::geforce_gtx_470());
  dev.arm_faults();
  ASSERT_TRUE(dev.faults_armed());
  gpusim::LaunchConfig lc;
  lc.blocks = 2;
  lc.threads_per_block = 64;
  lc.regs_per_thread = 16;
  EXPECT_THROW(dev.launch(lc, [](gpusim::BlockContext&) {}), DeviceFault);
  // Disarming restores normal operation without touching the config.
  dev.arm_faults(false);
  EXPECT_NO_THROW(dev.launch(lc, [](gpusim::BlockContext&) {}));
}

}  // namespace
