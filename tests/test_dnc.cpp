// Tests for the divide-and-conquer generalization (§VI-C): the
// multi-stage auto-tuned merge sort over the simulated GPU.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "dnc/mergesort.hpp"
#include "gpusim/launch.hpp"

namespace {

using namespace tda;
using namespace tda::dnc;

std::vector<float> random_input(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1e3, 1e3));
  return v;
}

// ---------- capacity / configuration ----------

TEST(MergeSortConfig, MaxChunkSizesPerDevice) {
  // 2 float arrays on chip, c/2 threads per block.
  EXPECT_EQ(max_chunk_size(gpusim::geforce_8800_gtx().query(), 4), 1024u);
  EXPECT_EQ(max_chunk_size(gpusim::geforce_gtx_280().query(), 4), 1024u);
  EXPECT_EQ(max_chunk_size(gpusim::geforce_gtx_470().query(), 4), 2048u);
}

TEST(MergeSortConfig, RejectsBadChunkSizes) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  SortSwitchPoints sp;
  sp.chunk_size = 3000;  // not a power of two
  EXPECT_THROW(MultiStageSorter<float>(dev, sp), ContractError);
  sp.chunk_size = 4096;  // beyond on-chip capacity for this device
  EXPECT_THROW(MultiStageSorter<float>(dev, sp), ContractError);
}

TEST(MergeSortConfig, PlanCountsLevels) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  SortSwitchPoints sp;
  sp.chunk_size = 1024;
  sp.coop_threshold = 16;
  MultiStageSorter<float> sorter(dev, sp);
  auto plan = sorter.plan_for(1 << 20);  // 1024 chunks
  EXPECT_EQ(plan.chunks, 1024u);
  EXPECT_EQ(plan.independent_levels, 6u);  // 1024 -> 16
  EXPECT_EQ(plan.cooperative_levels, 4u);  // 16 -> 1
}

// ---------- correctness ----------

class MergeSortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeSortSizes, SortsCorrectly) {
  const std::size_t n = GetParam();
  gpusim::Device dev(gpusim::geforce_gtx_470());
  MultiStageSorter<float> sorter(dev, default_sort_points());
  auto data = random_input(n, 1000 + n);
  auto ref = data;
  std::sort(ref.begin(), ref.end());
  auto stats = sorter.sort(data);
  EXPECT_EQ(data, ref) << "n=" << n;
  if (n > 1) {
    EXPECT_GT(stats.total_ms, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeSortSizes,
                         ::testing::Values(0, 1, 2, 100, 1024, 1025, 4096,
                                           100000, 1 << 18));

TEST(MergeSort, SortsOnEveryDevice) {
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    MultiStageSorter<float> sorter(dev, default_sort_points());
    auto data = random_input(50000, 77);
    auto ref = data;
    std::sort(ref.begin(), ref.end());
    sorter.sort(data);
    EXPECT_EQ(data, ref) << spec.name;
  }
}

TEST(MergeSort, AlreadySortedAndReverse) {
  gpusim::Device dev(gpusim::geforce_gtx_280());
  MultiStageSorter<float> sorter(dev, default_sort_points());
  std::vector<float> asc(10000);
  for (std::size_t i = 0; i < asc.size(); ++i)
    asc[i] = static_cast<float>(i);
  auto expect = asc;
  auto desc = asc;
  std::reverse(desc.begin(), desc.end());
  sorter.sort(asc);
  EXPECT_EQ(asc, expect);
  sorter.sort(desc);
  EXPECT_EQ(desc, expect);
}

TEST(MergeSort, DuplicatesPreserved) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  MultiStageSorter<float> sorter(dev, default_sort_points());
  Rng rng(5);
  std::vector<float> data(20000);
  for (auto& v : data) v = static_cast<float>(rng.below(8));
  auto ref = data;
  std::sort(ref.begin(), ref.end());
  sorter.sort(data);
  EXPECT_EQ(data, ref);
}

// ---------- cost behaviour mirrors the solver's tradeoffs ----------

TEST(MergeSort, CostOnlyMatchesFullTime) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  MultiStageSorter<float> sorter(dev, default_sort_points());
  auto data = random_input(1 << 18, 6);
  const double full_ms = sorter.sort(data).total_ms;
  const double sim_ms = sorter.simulate_ms(1 << 18);
  EXPECT_DOUBLE_EQ(full_ms, sim_ms);
}

TEST(MergeSort, BothThresholdExtremesLoseToTheMiddle) {
  // The same tension as the tridiagonal stage-1 target: never going
  // cooperative ends with a single starved block merging everything;
  // always going cooperative pays the grid-sync penalty on every level.
  // A moderate threshold beats both extremes.
  gpusim::Device dev(gpusim::geforce_gtx_280());
  const std::size_t n = 1 << 20;
  auto time_at = [&](std::size_t threshold) {
    SortSwitchPoints sp;
    sp.chunk_size = 1024;
    sp.coop_threshold = threshold;
    MultiStageSorter<float> s(dev, sp);
    return s.simulate_ms(n);
  };
  const double never_coop = time_at(1);
  const double always_coop = time_at(1 << 20);
  const double middle = time_at(32);
  EXPECT_LT(middle, never_coop);
  EXPECT_LT(middle, always_coop);
}

TEST(MergeSort, TunedNeverWorseThanDefaultOrStatic) {
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    for (std::size_t n : {std::size_t{1} << 16, std::size_t{1} << 21}) {
      auto tuned = tune_sorter<float>(dev, n);
      MultiStageSorter<float> def(dev, default_sort_points());
      MultiStageSorter<float> sta(
          dev, static_sort_points<float>(dev.query()));
      MultiStageSorter<float> dyn(dev, tuned.points);
      const double t_dyn = dyn.simulate_ms(n);
      EXPECT_LE(t_dyn, def.simulate_ms(n) * 1.0001)
          << spec.name << " n=" << n;
      EXPECT_LE(t_dyn, sta.simulate_ms(n) * 1.0001)
          << spec.name << " n=" << n;
    }
  }
}

TEST(MergeSort, TunedSorterStillSorts) {
  gpusim::Device dev(gpusim::geforce_8800_gtx());
  auto tuned = tune_sorter<float>(dev, 1 << 18);
  MultiStageSorter<float> sorter(dev, tuned.points);
  auto data = random_input(1 << 18, 8);
  auto ref = data;
  std::sort(ref.begin(), ref.end());
  sorter.sort(data);
  EXPECT_EQ(data, ref);
}

TEST(MergeSort, TuningIsCheap) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  auto tuned = tune_sorter<float>(dev, 1 << 20);
  // Two short ladders, additively.
  EXPECT_LE(tuned.evaluations, 30u);
  EXPECT_GE(tuned.evaluations, 10u);
}

}  // namespace
