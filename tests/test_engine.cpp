// Tests for the parallel block-execution engine (gpusim::ThreadPool +
// EngineScratch), the arena-hygiene guarantees of BlockContext, the
// pooled buffer allocator, and — most importantly — the determinism
// contract: simulated time, solutions, launch counts and fault-site
// decision counters must be bitwise identical at every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/alloc_stats.hpp"
#include "common/buffer_pool.hpp"
#include "faults/faults.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/thread_pool.hpp"
#include "kernels/device_batch.hpp"
#include "kernels/pcr_thomas_kernel.hpp"
#include "service/solve_service.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"

namespace {

using namespace tda;
using namespace tda::gpusim;
using tridiag::make_diag_dominant;

/// Restores the global pool's lane count when a test is done, so thread
/// sweeps cannot leak into later tests.
class PoolLanesGuard {
 public:
  PoolLanesGuard() : saved_(ThreadPool::global().lanes()) {}
  ~PoolLanesGuard() { ThreadPool::global().resize(saved_); }

 private:
  int saved_;
};

// ---------- ThreadPool mechanics ----------

TEST(ThreadPool, SingleLaneSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1);
  EXPECT_EQ(pool.workers(), 0);
  std::vector<int> hits(64, 0);
  pool.run(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(pool.inline_runs(), 1u);
  EXPECT_EQ(pool.parallel_runs(), 0u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 3);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.parallel_runs(), 1u);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(4);
  std::thread::id ran_on;
  pool.run(1, [&](std::size_t, std::size_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  EXPECT_EQ(pool.inline_runs(), 1u);
}

TEST(ThreadPool, ReentrantRunExecutesInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.run(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // A kernel body that itself tries to parallelize must not
      // deadlock on the shared workers.
      pool.run(4, [&](std::size_t ib, std::size_t ie) {
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ThreadPool, ResizeChangesWorkerCount) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.workers(), 1);
  pool.resize(5);
  EXPECT_EQ(pool.lanes(), 5);
  EXPECT_EQ(pool.workers(), 4);
  std::atomic<int> total{0};
  pool.run(100, [&](std::size_t b, std::size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 100);
  pool.resize(1);
  EXPECT_EQ(pool.workers(), 0);
}

TEST(ThreadPool, ConcurrentCallersShareWorkers) {
  ThreadPool pool(4);
  std::atomic<int> a{0}, b{0};
  std::thread other([&] {
    pool.run(500, [&](std::size_t lo, std::size_t hi) {
      a.fetch_add(static_cast<int>(hi - lo));
    });
  });
  pool.run(500, [&](std::size_t lo, std::size_t hi) {
    b.fetch_add(static_cast<int>(hi - lo));
  });
  other.join();
  EXPECT_EQ(a.load(), 500);
  EXPECT_EQ(b.load(), 500);
}

TEST(ThreadPool, LanesFromEnvParsesAndFallsBack) {
  const char* saved = std::getenv("TDA_THREADS");
  const std::string saved_val = saved != nullptr ? saved : "";
  ::setenv("TDA_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::lanes_from_env(), 3);
  ::setenv("TDA_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::lanes_from_env(), 1);
  ::setenv("TDA_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::lanes_from_env(), 1);
  if (saved != nullptr) {
    ::setenv("TDA_THREADS", saved_val.c_str(), 1);
  } else {
    ::unsetenv("TDA_THREADS");
  }
}

// ---------- EngineScratch ----------

TEST(EngineScratch, AllocationsAreStableAcrossGrowth) {
  EngineScratch& es = EngineScratch::local();
  es.reset_scratch();
  auto* first = static_cast<double*>(es.scratch_alloc(8 * sizeof(double),
                                                      alignof(double)));
  for (int i = 0; i < 8; ++i) first[i] = 41.0 + i;
  // Force chunk growth well past the first chunk's capacity; the first
  // allocation must not move (kernels hold spans across allocations).
  for (int k = 0; k < 64; ++k) {
    void* p = es.scratch_alloc(256 * 1024, 64);
    ASSERT_NE(p, nullptr);
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(first[i], 41.0 + i);
  es.reset_scratch();
}

TEST(EngineScratch, ResetReusesCapacity) {
  EngineScratch& es = EngineScratch::local();
  es.reset_scratch();
  (void)es.scratch_alloc(1024, 64);
  (void)es.scratch_alloc(2048, 64);
  const std::size_t cap = es.scratch_capacity();
  es.reset_scratch();
  (void)es.scratch_alloc(1024, 64);
  (void)es.scratch_alloc(2048, 64);
  EXPECT_EQ(es.scratch_capacity(), cap);  // no new chunks in steady state
  es.reset_scratch();
}

TEST(EngineScratch, RespectsAlignment) {
  EngineScratch& es = EngineScratch::local();
  es.reset_scratch();
  (void)es.scratch_alloc(1, 1);
  void* p = es.scratch_alloc(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  es.reset_scratch();
}

// ---------- arena hygiene (the cross-block stale-data fix) ----------

TEST(ArenaHygiene, BlocksNeverSeePriorBlockSharedData) {
  PoolLanesGuard guard;
  ThreadPool::global().resize(1);  // serial: blocks share one lane arena
  Device dev(geforce_gtx_470());
  dev.set_arena_poison(false);
  LaunchConfig cfg;
  cfg.blocks = 8;
  cfg.threads_per_block = 32;
  cfg.shared_bytes = 1024;
  std::atomic<int> leaks{0};
  dev.launch(cfg, [&](BlockContext& ctx) {
    auto s = ctx.shared_alloc<float>(64);
    for (float v : s) {
      if (v != 0.0f) leaks.fetch_add(1);
    }
    // Plant a sentinel the NEXT block must not observe.
    for (auto& v : s) v = 1234.5f;
  });
  EXPECT_EQ(leaks.load(), 0);
}

TEST(ArenaHygiene, PoisonMakesUninitializedReadsFailLoudly) {
  PoolLanesGuard guard;
  ThreadPool::global().resize(1);
  Device dev(geforce_gtx_470());
  dev.set_arena_poison(true);
  LaunchConfig cfg;
  cfg.blocks = 2;
  cfg.threads_per_block = 32;
  cfg.shared_bytes = 1024;
  std::atomic<int> nans{0};
  dev.launch(cfg, [&](BlockContext& ctx) {
    // A buggy kernel that READS shared memory it never wrote: with
    // poison on it must compute NaN, not a silently-stale value.
    auto s = ctx.shared_alloc<float>(16);
    auto r = ctx.scratch_alloc<float>(16);
    for (std::size_t i = 0; i < 16; ++i) {
      if (std::isnan(s[i]) && std::isnan(r[i])) nans.fetch_add(1);
    }
  });
  EXPECT_EQ(nans.load(), 2 * 16);
}

TEST(ArenaHygiene, PoisonedSolveStillCorrect) {
  // The full pipeline must write every shared/scratch word before
  // reading it — poison every allocation and demand a tiny residual.
  PoolLanesGuard guard;
  for (int lanes : {1, 4}) {
    ThreadPool::global().resize(lanes);
    Device dev(geforce_gtx_470());
    dev.set_arena_poison(true);
    solver::GpuTridiagonalSolver<double> solver(dev, solver::SwitchPoints{});
    auto batch = make_diag_dominant<double>(6, 1024, 42);
    const auto pristine = batch;
    solver.solve(batch);
    EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-9)
        << "lanes=" << lanes;
  }
}

// ---------- determinism: the engine's core contract ----------

struct SolveSnapshot {
  std::vector<double> x;
  double elapsed = 0.0;
  std::size_t launches = 0;
  std::uint64_t decisions[faults::kSiteCount] = {};
};

SolveSnapshot run_solve(int lanes, std::size_t m, std::size_t n,
                        kernels::LoadVariant variant) {
  ThreadPool::global().resize(lanes);
  auto& inj = faults::FaultInjector::global();
  inj.reset_counters();
  Device dev(geforce_gtx_470());
  dev.arm_faults();  // exercise the decision draws, not the faults
  solver::SwitchPoints sp;
  sp.variant = variant;
  solver::GpuTridiagonalSolver<double> solver(dev, sp);
  auto batch = make_diag_dominant<double>(m, n, 7 * m + n);
  solver.solve(batch);
  SolveSnapshot snap;
  snap.x.assign(batch.x().begin(), batch.x().end());
  snap.elapsed = dev.elapsed_seconds();
  snap.launches = dev.kernels_launched();
  for (int s = 0; s < faults::kSiteCount; ++s) {
    snap.decisions[s] = inj.decisions(static_cast<faults::Site>(s));
  }
  return snap;
}

class EngineDeterminism
    : public ::testing::TestWithParam<kernels::LoadVariant> {};

TEST_P(EngineDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  PoolLanesGuard guard;
  // Tiny rate so every decision is still drawn and counted.
  faults::FaultConfig fc;
  fc.rate_of(faults::Site::DeviceLaunch) = 1e-12;
  fc.rate_of(faults::Site::DeviceAlloc) = 1e-12;
  fc.rate_of(faults::Site::DeviceOOM) = 1e-12;
  faults::ScopedFaultConfig scoped(fc);

  // m=4, n=4096 engages all of stage 1 (to reach 16 systems), stage 2
  // (down to 256 on-chip) and stage 3/4.
  const auto ref = run_solve(1, 4, 4096, GetParam());
  ASSERT_GT(ref.launches, 3u);
  for (int lanes : {2, 8}) {
    const auto got = run_solve(lanes, 4, 4096, GetParam());
    ASSERT_EQ(got.x.size(), ref.x.size());
    EXPECT_EQ(std::memcmp(got.x.data(), ref.x.data(),
                          ref.x.size() * sizeof(double)),
              0)
        << "solutions differ at lanes=" << lanes;
    EXPECT_EQ(got.elapsed, ref.elapsed)
        << "simulated time differs at lanes=" << lanes;
    EXPECT_EQ(got.launches, ref.launches);
    for (int s = 0; s < faults::kSiteCount; ++s) {
      EXPECT_EQ(got.decisions[s], ref.decisions[s])
          << "fault decision count differs at site " << s
          << " lanes=" << lanes;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LoadVariants, EngineDeterminism,
                         ::testing::Values(kernels::LoadVariant::Strided,
                                           kernels::LoadVariant::Coalesced));

TEST(EngineDeterminism, ParallelRethrowsLowestFailingBlock) {
  PoolLanesGuard guard;
  LaunchConfig cfg;
  cfg.blocks = 64;
  cfg.threads_per_block = 32;
  cfg.shared_bytes = 256;
  for (int lanes : {1, 2, 8}) {
    ThreadPool::global().resize(lanes);
    Device dev(geforce_gtx_470());
    try {
      dev.launch(cfg, [&](BlockContext& ctx) {
        const std::size_t b = ctx.block_index();
        if (b == 11 || b == 37 || b == 60) {
          throw std::runtime_error("block " + std::to_string(b));
        }
      });
      FAIL() << "launch should have thrown (lanes=" << lanes << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "block 11") << "lanes=" << lanes;
    }
  }
}

TEST(EngineDeterminism, ParallelPathActuallyRuns) {
  PoolLanesGuard guard;
  ThreadPool::global().resize(4);
  const auto before = ThreadPool::global().parallel_runs();
  Device dev(geforce_gtx_470());
  LaunchConfig cfg;
  cfg.blocks = 256;
  cfg.threads_per_block = 64;
  cfg.shared_bytes = 0;
  std::set<std::thread::id> seen;
  std::mutex mu;
  dev.launch(cfg, [&](BlockContext&) {
    std::lock_guard lk(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GT(ThreadPool::global().parallel_runs(), before);
  EXPECT_GE(seen.size(), 1u);
}

// ---------- BufferPool ----------

TEST(BufferPool, ReusesReleasedBuffer) {
  BufferPool pool;
  std::byte* raw = nullptr;
  {
    PoolBlock b = pool.acquire(100 * 1024);
    raw = b.data();
    ASSERT_NE(raw, nullptr);
    EXPECT_GE(b.capacity(), 100u * 1024);
  }
  PoolBlock again = pool.acquire(100 * 1024);
  EXPECT_EQ(again.data(), raw);  // warm hit, same slab
  const auto st = pool.stats();
  EXPECT_EQ(st.acquires, 2u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
}

TEST(BufferPool, SizeClassRounding) {
  EXPECT_EQ(BufferPool::size_class(1), 4096u);
  EXPECT_EQ(BufferPool::size_class(4096), 4096u);
  EXPECT_EQ(BufferPool::size_class(4097), 8192u);
  // Same class => reuse even for slightly different requests.
  BufferPool pool;
  std::byte* raw = nullptr;
  {
    PoolBlock b = pool.acquire(5000);
    raw = b.data();
  }
  PoolBlock again = pool.acquire(6000);
  EXPECT_EQ(again.data(), raw);
}

TEST(BufferPool, TrimFreesCachedBuffers) {
  BufferPool pool;
  { PoolBlock b = pool.acquire(64 * 1024); }
  EXPECT_GT(pool.stats().cached_bytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
  EXPECT_EQ(pool.stats().cached_buffers, 0u);
}

TEST(BufferPool, ZeroCapEvictsOnRelease) {
  BufferPool pool(0);
  { PoolBlock b = pool.acquire(8 * 1024); }
  const auto st = pool.stats();
  EXPECT_EQ(st.cached_bytes, 0u);
  EXPECT_EQ(st.evictions, 1u);
}

TEST(BufferPool, PoisonFillsAcquiredBlocks) {
  BufferPool pool;
  pool.set_poison(true);
  PoolBlock b = pool.acquire(4096);
  const auto* f = reinterpret_cast<const float*>(b.data());
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(std::isnan(f[i]));
}

TEST(BufferPool, OutstandingBytesTracked) {
  BufferPool pool;
  PoolBlock a = pool.acquire(4096);
  EXPECT_EQ(pool.stats().outstanding_bytes, 4096u);
  a.reset();
  EXPECT_EQ(pool.stats().outstanding_bytes, 0u);
}

// ---------- pooled DeviceBatch ----------

TEST(PooledDeviceBatch, SteadyStateSolvePerformsNoHostAllocations) {
  // Serial lane: with one execution lane the scratch warm-up is
  // deterministic, so the steady state must be EXACTLY allocation-free.
  // (At higher lane counts a worker that loses every chunk race can warm
  // its thread-local arena on a later solve — bounded, but racy.)
  PoolLanesGuard guard;
  ThreadPool::global().resize(1);
  Device dev(geforce_gtx_470());
  solver::GpuTridiagonalSolver<double> solver(dev, solver::SwitchPoints{});
  auto batch = make_diag_dominant<double>(8, 1024, 3);
  solver.solve(batch);  // warms pool slab + the lane's scratch arena
  const auto before = host_alloc_count();
  solver.solve(batch);
  solver.solve(batch);
  EXPECT_EQ(host_alloc_count(), before)
      << "repeat solves of one shape must be allocation-free";
}

TEST(PooledDeviceBatch, ParallelSolvesReuseThePooledSlab) {
  PoolLanesGuard guard;
  ThreadPool::global().resize(4);
  Device dev(geforce_gtx_470());
  solver::GpuTridiagonalSolver<double> solver(dev, solver::SwitchPoints{});
  auto batch = make_diag_dominant<double>(8, 1024, 3);
  solver.solve(batch);
  const auto st0 = BufferPool::global().stats();
  solver.solve(batch);
  solver.solve(batch);
  const auto st1 = BufferPool::global().stats();
  EXPECT_EQ(st1.misses, st0.misses) << "device-batch slab must be a warm hit";
  EXPECT_EQ(st1.hits, st0.hits + 2);
}

TEST(PooledDeviceBatch, PoisonedPoolSolveIsCorrect) {
  // DeviceBatch deliberately skips zero-filling its pooled slab; prove
  // the pipeline overwrites everything it reads even when the slab
  // starts as all-NaN.
  auto& pool = BufferPool::global();
  pool.trim();
  pool.set_poison(true);
  Device dev(geforce_gtx_470());
  solver::GpuTridiagonalSolver<double> solver(dev, solver::SwitchPoints{});
  auto batch = make_diag_dominant<double>(4, 2048, 11);
  const auto pristine = batch;
  solver.solve(batch);
  pool.set_poison(false);
  EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-9);
}

TEST(PooledDeviceBatch, ShapeOnlyBatchStillInertWithPoisonedPool) {
  auto& pool = BufferPool::global();
  pool.trim();
  pool.set_poison(true);
  kernels::DeviceBatch<float> b(2, 8);
  pool.set_poison(false);
  auto sys = b.cur_system(0);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sys.a[i], 0.0f);
    EXPECT_EQ(sys.b[i], 1.0f);
    EXPECT_EQ(sys.c[i], 0.0f);
    EXPECT_EQ(sys.d[i], 0.0f);
  }
}

// ---------- service integration ----------

TEST(ServiceEngine, EngineThreadsKnobResizesSharedPool) {
  PoolLanesGuard guard;
  service::ServiceConfig cfg;
  cfg.engine_threads = 2;
  cfg.flush_systems = 1;
  {
    service::SolveService<double> svc({geforce_gtx_470()}, cfg);
    EXPECT_EQ(ThreadPool::global().lanes(), 2);
    service::SolveRequest<double> req;
    const std::size_t n = 64;
    req.a.assign(n, -1.0);
    req.b.assign(n, 4.0);
    req.c.assign(n, -1.0);
    req.d.assign(n, 2.0);
    req.a.front() = req.c.back() = 0.0;
    auto fut = svc.submit(std::move(req));
    auto resp = fut.get();
    EXPECT_EQ(resp.status, service::SolveStatus::Ok);
  }
}

}  // namespace
