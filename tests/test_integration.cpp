// Cross-module integration tests: the application patterns from the
// examples (ADI time stepping, spline fitting) run end to end through the
// tuner and the multi-stage solver; CPU and GPU paths cross-validate; the
// full pipeline behaves across precisions and devices.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "cpu/batch_solver.hpp"
#include "gpusim/launch.hpp"
#include "solver/gpu_solver.hpp"
#include "tridiag/generators.hpp"
#include "tridiag/verify.hpp"
#include "tuning/cache.hpp"
#include "tuning/dynamic_tuner.hpp"
#include "tuning/tuners.hpp"

namespace {

using namespace tda;

// ---------- GPU vs CPU cross-validation ----------

TEST(Integration, GpuAndCpuAgreeOnSameBatch) {
  auto gpu_batch = tridiag::make_diag_dominant<double>(24, 1500, 2024);
  auto cpu_batch = gpu_batch;

  gpusim::Device dev(gpusim::geforce_gtx_280());
  tuning::DynamicTuner<double> tuner(dev);
  auto tuned = tuner.tune({24, 1500});
  solver::GpuTridiagonalSolver<double> gpu(dev, tuned.points);
  gpu.solve(gpu_batch);

  cpu::BatchCpuSolver host(2);
  host.solve(cpu_batch);

  for (std::size_t k = 0; k < gpu_batch.total_equations(); ++k) {
    EXPECT_NEAR(gpu_batch.x()[k], cpu_batch.x()[k], 1e-8) << "k=" << k;
  }
}

TEST(Integration, AllGeneratorsSolvableByTunedSolver) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  tuning::DynamicTuner<double> tuner(dev);
  auto tuned = tuner.tune({8, 700});
  solver::GpuTridiagonalSolver<double> s(dev, tuned.points);

  auto check = [&](tridiag::TridiagBatch<double> batch, const char* name) {
    auto pristine = batch;
    s.solve(batch);
    EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), 1e-9)
        << name;
  };
  check(tridiag::make_diag_dominant<double>(8, 700, 1), "dominant");
  check(tridiag::make_poisson<double>(8, 700, 2), "poisson");
  check(tridiag::make_spline<double>(8, 700, 3), "spline");
  check(tridiag::make_toeplitz<double>(8, 700, -1.0, 4.0, -2.0, 4),
        "toeplitz");
}

TEST(Integration, KnownSolutionRecoveredExactly) {
  std::vector<double> x_true;
  auto batch = tridiag::make_with_known_solution<double>(6, 2048, 77,
                                                         &x_true);
  gpusim::Device dev(gpusim::geforce_8800_gtx());
  solver::GpuTridiagonalSolver<double> s(
      dev, tuning::default_switch_points<double>());
  s.solve(batch);
  double worst = 0.0;
  for (std::size_t k = 0; k < x_true.size(); ++k) {
    worst = std::max(worst, std::abs(batch.x()[k] - x_true[k]));
  }
  EXPECT_LT(worst, 1e-8);
}

// ---------- ADI heat stepping (the adi_heat example's core) ----------

TEST(Integration, AdiHeatStepMatchesEigenmodeDecay) {
  const std::size_t grid = 66;
  const double h = 1.0 / (grid - 1);
  const double dt = 0.25 * h;
  const double r = dt / (2.0 * h * h);
  const double pi = std::numbers::pi;
  const std::size_t inner = grid - 2;

  std::vector<double> u(grid * grid, 0.0);
  for (std::size_t y = 0; y < grid; ++y)
    for (std::size_t x = 0; x < grid; ++x)
      u[y * grid + x] = std::sin(pi * x * h) * std::sin(pi * y * h);

  gpusim::Device dev(gpusim::geforce_gtx_470());
  solver::GpuTridiagonalSolver<double> solver(
      dev, tuning::default_switch_points<double>());

  auto half_step = [&](bool transpose_dir) {
    tridiag::TridiagBatch<double> batch(inner, inner);
    auto a = batch.a();
    auto b = batch.b();
    auto c = batch.c();
    auto d = batch.d();
    for (std::size_t row = 0; row < inner; ++row) {
      for (std::size_t col = 0; col < inner; ++col) {
        const std::size_t y = transpose_dir ? col + 1 : row + 1;
        const std::size_t x = transpose_dir ? row + 1 : col + 1;
        const std::size_t k = row * inner + col;
        a[k] = (col == 0) ? 0.0 : -r;
        c[k] = (col == inner - 1) ? 0.0 : -r;
        b[k] = 1.0 + 2.0 * r;
        const std::size_t ym = transpose_dir ? y : y - 1;
        const std::size_t yp = transpose_dir ? y : y + 1;
        const std::size_t xm = transpose_dir ? x - 1 : x;
        const std::size_t xp = transpose_dir ? x + 1 : x;
        d[k] = (1.0 - 2.0 * r) * u[y * grid + x] +
               r * (u[ym * grid + xm] + u[yp * grid + xp]);
      }
    }
    solver.solve(batch);
    auto xs = batch.x();
    for (std::size_t row = 0; row < inner; ++row) {
      for (std::size_t col = 0; col < inner; ++col) {
        const std::size_t y = transpose_dir ? col + 1 : row + 1;
        const std::size_t x = transpose_dir ? row + 1 : col + 1;
        u[y * grid + x] = xs[row * inner + col];
      }
    }
  };

  const int steps = 5;
  for (int s = 0; s < steps; ++s) {
    half_step(false);
    half_step(true);
  }

  const double t_final = steps * dt;
  const double decay = std::exp(-2.0 * pi * pi * t_final);
  double max_err = 0.0;
  for (std::size_t y = 0; y < grid; ++y) {
    for (std::size_t x = 0; x < grid; ++x) {
      const double exact = decay * std::sin(pi * x * h) *
                           std::sin(pi * y * h);
      max_err = std::max(max_err, std::abs(u[y * grid + x] - exact));
    }
  }
  EXPECT_LT(max_err, 5e-3 * decay);
}

// ---------- spline fitting (the cubic_spline example's core) ----------

TEST(Integration, SplineSecondDerivativesMatchFunction) {
  // Fit a spline through sin(x); interior M values must approximate
  // -sin(x) (the true second derivative).
  const std::size_t knots = 257;
  const double h = 2.0 * std::numbers::pi / (knots - 1);
  const std::size_t inner = knots - 2;

  tridiag::TridiagBatch<double> batch(1, inner);
  auto a = batch.a();
  auto b = batch.b();
  auto c = batch.c();
  auto d = batch.d();
  for (std::size_t i = 0; i < inner; ++i) {
    a[i] = (i == 0) ? 0.0 : 1.0;
    c[i] = (i == inner - 1) ? 0.0 : 1.0;
    b[i] = 4.0;
    const double ym = std::sin(i * h);
    const double y0 = std::sin((i + 1) * h);
    const double yp = std::sin((i + 2) * h);
    d[i] = 6.0 * (ym - 2.0 * y0 + yp) / (h * h);
  }

  gpusim::Device dev(gpusim::geforce_gtx_280());
  solver::GpuTridiagonalSolver<double> s(
      dev, tuning::default_switch_points<double>());
  s.solve(batch);

  // Check interior M values away from the natural-BC boundary layer.
  for (std::size_t i = inner / 4; i < 3 * inner / 4; ++i) {
    const double exact = -std::sin((i + 1) * h);
    EXPECT_NEAR(batch.x()[i], exact, 5e-4) << "i=" << i;
  }
}

// ---------- tuning cache across solver runs ----------

TEST(Integration, CachedTuningReproducesSolvePerformance) {
  gpusim::Device dev(gpusim::geforce_gtx_470());
  tuning::TuningCache cache;
  const solver::Workload w{32, 4096};

  tuning::DynamicTuner<float> t1(dev, &cache);
  auto r1 = t1.tune(w);
  solver::GpuTridiagonalSolver<float> s1(dev, r1.points);
  const double ms1 = s1.simulate_ms(w);

  tuning::DynamicTuner<float> t2(dev, &cache);
  auto r2 = t2.tune(w);  // cache hit
  ASSERT_TRUE(r2.from_cache);
  solver::GpuTridiagonalSolver<float> s2(dev, r2.points);
  const double ms2 = s2.simulate_ms(w);

  EXPECT_DOUBLE_EQ(ms1, ms2);
}

// ---------- precision sweep through the whole stack ----------

template <typename T>
class PrecisionPipeline : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(PrecisionPipeline, Precisions);

TYPED_TEST(PrecisionPipeline, TuneSolveVerify) {
  using T = TypeParam;
  for (const auto& spec : gpusim::device_registry()) {
    gpusim::Device dev(spec);
    tuning::DynamicTuner<T> tuner(dev);
    auto tuned = tuner.tune({16, 3000});
    solver::GpuTridiagonalSolver<T> s(dev, tuned.points);
    auto batch = tridiag::make_diag_dominant<T>(16, 3000, 11);
    auto pristine = batch;
    s.solve(batch);
    const double tol = sizeof(T) == 4 ? 1e-3 : 1e-9;
    EXPECT_LT(tridiag::batch_residual_inf(pristine, batch.x()), tol)
        << spec.name;
  }
}

}  // namespace
